"""Regression: a shard exception mid-gather must leak nothing.

A shard blowing up inside the scatter (on the caller's thread or a fan-out
worker) has to propagate out of ``ShardedService.box_sum`` as-is — and the
cluster must remain fully usable afterwards: no stuck admission slot, no
leaked cluster read lock (a rebalance, which needs the write lock, is the
canary), no wedged executor.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.aggregator import BoxSumIndex
from repro.core.geometry import Box
from repro.obs import MetricsRegistry
from repro.shard import ShardedService

from ..conftest import random_box

#: Covers the whole workload span: every shard extent intersects it, so the
#: router must contact every shard (no extent pruning saves the victim).
WIDE = Box((0.0, 0.0), (120.0, 120.0))


def _exact_objects(rng, n, dims=2):
    return [(random_box(rng, dims), float(rng.randint(1, 9))) for _ in range(n)]


def _assert_cluster_recovers(cluster, reference, rng, dims=2):
    """Post-failure invariants: slots free, locks free, answers exact."""
    assert cluster.stats()["inflight"] == 0
    # Mutations need the cluster read lock.
    box, value = random_box(rng, dims), float(rng.randint(1, 9))
    reference.insert(box, value)
    cluster.insert(box, value)
    # Rebalance needs the cluster *write* lock: it deadlocks if any reader
    # leaked.  Run it on a side thread so a regression fails, not hangs.
    done = threading.Event()
    worker = threading.Thread(target=lambda: (cluster.rebalance(), done.set()))
    worker.start()
    worker.join(timeout=20.0)
    assert done.is_set(), "rebalance deadlocked: a cluster lock leaked"
    queries = [random_box(rng, dims, max_side=60.0) for _ in range(8)]
    assert cluster.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]


@pytest.mark.parametrize("workers", [0, 2])
def test_probe_path_exception_propagates_cleanly(workers):
    rng = random.Random(0xFA11)
    reference = BoxSumIndex(2, backend="ba")
    with ShardedService(
        2, 3, partitioner="kd", workers=workers, registry=MetricsRegistry()
    ) as cluster:
        objects = _exact_objects(rng, 60)
        reference.bulk_load(objects)
        cluster.bulk_load(objects)

        victim = cluster.services[1]
        original = victim.resolve_probe_values

        def boom(identities):
            raise RuntimeError("shard 1 exploded mid-gather")

        victim.resolve_probe_values = boom
        try:
            for _ in range(3):  # repeated failures must not accumulate leaks
                with pytest.raises(RuntimeError, match="exploded mid-gather"):
                    cluster.box_sum(WIDE)
        finally:
            victim.resolve_probe_values = original
        _assert_cluster_recovers(cluster, reference, rng)


@pytest.mark.parametrize("workers", [0, 2])
def test_monolithic_path_exception_propagates_cleanly(workers):
    """Same contract on the object-backend (no probe seam) gather."""
    rng = random.Random(0xFA12)
    reference = BoxSumIndex(2, backend="ar")
    with ShardedService(
        2, 3, backend="ar", partitioner="kd", workers=workers, registry=MetricsRegistry()
    ) as cluster:
        objects = _exact_objects(rng, 60)
        reference.bulk_load(objects)
        cluster.bulk_load(objects)

        victim = cluster.services[1]
        original = victim.batch

        def boom(queries):
            raise RuntimeError("shard 1 exploded mid-gather")

        victim.batch = boom
        try:
            with pytest.raises(RuntimeError, match="exploded mid-gather"):
                cluster.box_sum(WIDE)
        finally:
            victim.batch = original
        _assert_cluster_recovers(cluster, reference, rng)


def test_shard_admission_slot_is_released_on_gather_failure():
    """The *victim shard's* own gate must not leak either: the exception is
    raised before admission (here), or its finally releases the slot."""
    rng = random.Random(0xFA13)
    with ShardedService(2, 2, partitioner="kd", workers=0, registry=MetricsRegistry()) as cluster:
        cluster.bulk_load(_exact_objects(rng, 40))
        victim = cluster.services[0]
        original = victim.index.probe_value

        def corrupt(key, point):
            raise RuntimeError("probe blew up under the shard read lock")

        # Corners strictly inside the extents: the victim gets *needed*
        # probes (a full-space query would classify as covered/pruned and
        # never reach probe_value).
        mid = Box((20.0, 20.0), (70.0, 70.0))
        victim.index.probe_value = corrupt
        try:
            for _ in range(3):
                with pytest.raises(RuntimeError, match="probe blew up"):
                    cluster.box_sum(mid)
        finally:
            victim.index.probe_value = original
        assert victim.stats()["inflight"] == 0.0
        assert cluster.stats()["inflight"] == 0
        # The shard still serves and mutates: nothing under its RW lock leaked.
        victim.insert(random_box(rng, 2), 1.0)
        cluster.box_sum(random_box(rng, 2))
