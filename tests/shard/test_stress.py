"""Concurrency stress: queries, mutations and rebalances racing on a cluster.

CI runs everything marked ``shard_stress`` in a 20-round loop to surface
rare interleavings (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.geometry import Box
from repro.core.naive import NaiveBoxSum
from repro.obs import MetricsRegistry
from repro.shard import ShardedService

from ..conftest import random_box

pytestmark = pytest.mark.shard_stress


def test_concurrent_queries_mutations_and_rebalances():
    rng = random.Random(0xC0DE)
    cluster = ShardedService(
        2,
        4,
        partitioner="kd",
        workers=2,
        max_inflight=64,
        max_queue=256,
        registry=MetricsRegistry(),
    )
    seed = [(random_box(rng, 2), float(rng.randint(1, 9))) for _ in range(120)]
    cluster.bulk_load(seed)

    # Ground truth for everything that is live at the end: the mutator
    # below records its ops under a lock; queries racing mid-mutation only
    # assert internal consistency (no exception, finite answers).
    ledger_lock = threading.Lock()
    live = list(seed)
    errors = []
    stop = threading.Event()

    def querier(seed_offset):
        qrng = random.Random(seed_offset)
        try:
            while not stop.is_set():
                queries = [random_box(qrng, 2, max_side=50.0) for _ in range(4)]
                for answer in cluster.box_sum_batch(queries):
                    assert answer == answer  # not NaN
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def mutator():
        mrng = random.Random(0xFEED)
        try:
            for _ in range(150):
                if live and mrng.random() < 0.4:
                    with ledger_lock:
                        box, value = live.pop(mrng.randrange(len(live)))
                    cluster.delete(box, value)
                else:
                    box = random_box(mrng, 2)
                    value = float(mrng.randint(1, 9))
                    cluster.insert(box, value)
                    with ledger_lock:
                        live.append((box, value))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def rebalancer():
        try:
            for _ in range(8):
                cluster.rebalance()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=querier, args=(i,)) for i in range(3)]
    threads += [threading.Thread(target=mutator), threading.Thread(target=rebalancer)]
    for t in threads[3:]:
        t.start()
    for t in threads[:3]:
        t.start()
    threads[3].join(timeout=60.0)
    threads[4].join(timeout=60.0)
    stop.set()
    for t in threads[:3]:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads)
    assert not errors, errors[:3]

    # Quiescent state must match a naive oracle over the surviving multiset
    # exactly — the races above may not corrupt the ledger or the trees.
    oracle = NaiveBoxSum(2)
    for box, value in live:
        oracle.insert(box, value)
    assert cluster.num_objects == len(live)
    rng_final = random.Random(0xBEEF)
    queries = [random_box(rng_final, 2, max_side=80.0) for _ in range(20)]
    everything = Box((-10_000.0, -10_000.0), (10_000.0, 10_000.0))
    assert cluster.box_sum(everything) == pytest.approx(oracle.box_sum(everything), abs=1e-6)
    for query in queries:
        assert cluster.box_sum(query) == pytest.approx(oracle.box_sum(query), abs=1e-6)
    cluster.close()


def test_no_torn_views_during_migration():
    """A batch running concurrently with rebalances always sees every
    object exactly once: the whole-space sum never flickers."""
    rng = random.Random(0xAB)
    cluster = ShardedService(
        2,
        2,
        partitioner="kd",
        workers=2,
        max_inflight=64,
        max_queue=256,
        registry=MetricsRegistry(),
    )
    objects = [(random_box(rng, 2), 1.0) for _ in range(200)]
    cluster.bulk_load(objects)
    everything = Box((-10_000.0, -10_000.0), (10_000.0, 10_000.0))
    errors = []
    stop = threading.Event()

    def watcher():
        try:
            while not stop.is_set():
                assert cluster.box_sum(everything) == 200.0
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    watchers = [threading.Thread(target=watcher) for _ in range(3)]
    for t in watchers:
        t.start()
    try:
        for _ in range(10):
            cluster.rebalance()
    finally:
        stop.set()
        for t in watchers:
            t.join(timeout=60.0)
    assert not any(t.is_alive() for t in watchers)
    assert not errors, errors[:3]
    cluster.close()
