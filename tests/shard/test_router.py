"""Tests for the scatter-gather router and its extent shortcuts."""

from __future__ import annotations

import pytest

from repro.core.geometry import Box
from repro.shard import ShardedService
from repro.shard.router import _NEEDED, _COVERED, _PRUNED, _classify, _probe_bounds

from ..conftest import random_box


def _cluster(dims=2, shards=2, **kwargs):
    from repro.obs import MetricsRegistry

    kwargs.setdefault("partitioner", "roundrobin")
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("registry", MetricsRegistry())
    return ShardedService(dims, shards, **kwargs)


class TestProbeClassification:
    EXTENT = Box((10.0, 20.0), (30.0, 40.0))

    def test_corner_key_uses_extent_verbatim(self):
        low, high = _probe_bounds((0, 1), self.EXTENT)
        assert low == (10.0, 20.0)
        assert high == (30.0, 40.0)

    def test_eo82_key_negates_high_side(self):
        # EO82 stores -coordinate for HIGH-side dimensions, so the stored
        # range of dim 1 (HIGH) is [-high, -low].
        key = ((0, 1), (0, 1))  # dims subset (0,1); sides LOW, HIGH
        low, high = _probe_bounds(key, self.EXTENT)
        assert low == (10.0, -40.0)
        assert high == (30.0, -20.0)

    def test_probe_below_extent_is_pruned(self):
        probe = ((0, 0), (5.0, 5.0))
        assert _classify(probe, self.EXTENT) == _PRUNED

    def test_probe_above_extent_is_covered(self):
        probe = ((0, 0), (50.0, 50.0))
        assert _classify(probe, self.EXTENT) == _COVERED

    def test_probe_inside_extent_is_needed(self):
        probe = ((0, 0), (20.0, 30.0))
        assert _classify(probe, self.EXTENT) == _NEEDED

    def test_partial_dominance_is_needed_not_covered(self):
        # Above in one dim, inside in the other: must be executed.
        probe = ((0, 0), (50.0, 30.0))
        assert _classify(probe, self.EXTENT) == _NEEDED

    def test_missing_extent_is_conservatively_needed(self):
        # No extent means no pruning evidence: the probe must be executed.
        assert _classify(((0, 0), (5.0, 5.0)), None) == _NEEDED


class TestScatterShortcuts:
    def _loaded_cluster(self):
        cluster = _cluster()
        objects = [
            (Box((float(i), float(i)), (float(i) + 1.0, float(i) + 1.0)), 2.0)
            for i in range(10, 20)
        ]
        cluster.bulk_load(objects)
        return cluster

    def test_disjoint_query_contacts_no_corner_shard(self):
        with self._loaded_cluster() as cluster:
            result = cluster.batch([Box((-10.0, -10.0), (-5.0, -5.0))])
            assert result.results == [0.0]
            assert result.shards_contacted == 0
            assert result.probes_pruned > 0
            assert result.probes_executed == 0

    def test_covering_query_answers_from_totals(self):
        with self._loaded_cluster() as cluster:
            result = cluster.batch([Box((0.0, 0.0), (100.0, 100.0))])
            assert result.results == [20.0]

    def test_fanout_between_zero_and_one(self):
        with self._loaded_cluster() as cluster:
            result = cluster.batch(
                [Box((12.0, 12.0), (14.0, 14.0)), Box((-9.0, -9.0), (-8.0, -8.0))]
            )
            assert 0.0 <= result.fanout <= 1.0
            assert result.shards_total == 2

    def test_duplicate_queries_share_probes(self):
        with self._loaded_cluster() as cluster:
            query = Box((12.0, 12.0), (16.0, 16.0))
            single = cluster.batch([query])
            double = cluster.batch([query, query])
            assert double.probes_unique == single.probes_unique
            assert double.results[0] == double.results[1] == single.results[0]

    def test_eo82_contacts_every_shard_for_totals(self):
        with _cluster(reduction="eo82") as cluster:
            objects = [
                (Box((float(i), float(i)), (float(i) + 1.0, float(i) + 1.0)), 1.0)
                for i in range(10, 18)
            ]
            cluster.bulk_load(objects)
            # Even a fully disjoint query needs each shard's grand total to
            # seed the EO82 complement, so no shard can be skipped.
            result = cluster.batch([Box((-10.0, -10.0), (-5.0, -5.0))])
            assert result.results == [0.0]
            assert result.shards_contacted == cluster.num_shards

    def test_epochs_reported_per_shard(self):
        with self._loaded_cluster() as cluster:
            cluster.insert(Box((11.0, 11.0), (12.0, 12.0)), 1.0)
            result = cluster.batch([Box((10.0, 10.0), (20.0, 20.0))])
            epochs = cluster.epochs()
            assert set(result.shard_epochs) == set(range(cluster.num_shards))
            for sid, epoch in result.shard_epochs.items():
                assert epoch == epochs[sid]


class TestThreadedScatter:
    @pytest.mark.parametrize("workers", [0, 3])
    def test_workers_do_not_change_answers(self, rng, workers):
        objects = [(random_box(rng, 2), float(rng.randint(1, 9))) for _ in range(80)]
        queries = [random_box(rng, 2, max_side=50.0) for _ in range(12)]
        with _cluster(partitioner="kd", workers=0) as reference:
            reference.bulk_load(objects)
            expect = reference.box_sum_batch(queries)
        with _cluster(partitioner="kd", workers=workers) as cluster:
            cluster.bulk_load(objects)
            assert cluster.box_sum_batch(queries) == expect


class TestMonolithicFallback:
    def test_object_backend_routes_through_batch(self, rng):
        objects = [(random_box(rng, 2), float(rng.randint(1, 9))) for _ in range(60)]
        queries = [random_box(rng, 2, max_side=60.0) for _ in range(8)]
        with _cluster(backend="ar", workers=0) as cluster:
            cluster.bulk_load(objects)
            from repro.core.naive import NaiveBoxSum

            oracle = NaiveBoxSum(2)
            for box, value in objects:
                oracle.insert(box, value)
            got = cluster.box_sum_batch(queries)
            for answer, query in zip(got, queries):
                assert answer == pytest.approx(oracle.box_sum(query), abs=1e-6)
