"""Tests for the sharded service: routing, ledger, rebalancing, lifecycle."""

from __future__ import annotations

import pytest

from repro.core.errors import ServiceClosedError
from repro.core.geometry import Box
from repro.core.naive import NaiveBoxSum
from repro.inspect import dump
from repro.obs import MetricsRegistry
from repro.shard import ShardedService

from ..conftest import random_box


def _cluster(dims=2, shards=3, **kwargs):
    kwargs.setdefault("partitioner", "hash")
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("registry", MetricsRegistry())
    return ShardedService(dims, shards, **kwargs)


def _exact_objects(rng, n, dims=2):
    return [(random_box(rng, dims), float(rng.randint(1, 9))) for _ in range(n)]


class TestMutationRouting:
    def test_insert_returns_shard_and_counts(self, rng):
        with _cluster() as cluster:
            sids = [cluster.insert(random_box(rng, 2), 1.0) for _ in range(30)]
            assert all(0 <= sid < 3 for sid in sids)
            assert cluster.num_objects == 30
            assert sum(cluster.object_counts()) == 30

    def test_delete_routes_to_owning_shard(self, rng):
        with _cluster() as cluster:
            box = random_box(rng, 2)
            sid = cluster.insert(box, 4.0)
            assert cluster.delete(box, 4.0) == sid
            assert cluster.num_objects == 0
            assert cluster.box_sum(Box((-1000.0, -1000.0), (1000.0, 1000.0))) == 0.0

    def test_delete_after_rebalance_finds_migrated_owner(self, rng):
        with _cluster(partitioner="kd") as cluster:
            objects = _exact_objects(rng, 60)
            cluster.bulk_load(objects)
            cluster.rebalance()
            for box, value in objects:
                cluster.delete(box, value)
            assert cluster.num_objects == 0
            assert cluster.box_sum(Box((-1000.0, -1000.0), (1000.0, 1000.0))) == 0.0

    def test_bulk_load_fits_partitioner_and_balances(self, rng):
        with _cluster(partitioner="kd", shards=4) as cluster:
            per_shard = cluster.bulk_load(_exact_objects(rng, 200))
            assert sum(per_shard) == 200
            assert cluster.imbalance < 1.5

    def test_extents_cover_inserted_objects(self, rng):
        with _cluster() as cluster:
            boxes = [random_box(rng, 2) for _ in range(40)]
            sids = [cluster.insert(box) for box in boxes]
            extents = cluster.extents()
            for box, sid in zip(boxes, sids):
                extent = extents[sid]
                assert all(extent.low[d] <= box.low[d] for d in range(2))
                assert all(extent.high[d] >= box.high[d] for d in range(2))


class TestRebalance:
    def _skewed_cluster(self, rng):
        # Everything hashes wherever it wants, then one shard gets a pile
        # of extra objects through direct inserts in a tight region.
        cluster = _cluster(partitioner="kd", shards=2)
        cluster.bulk_load(_exact_objects(rng, 40))
        return cluster

    def test_rebalance_reduces_imbalance(self, rng):
        with self._skewed_cluster(rng) as cluster:
            counts = cluster.object_counts()
            if max(counts) - min(counts) <= 1:
                # kd fit already balanced: force skew through inserts.
                for _ in range(30):
                    cluster.insert(Box((0.0, 0.0), (1.0, 1.0)), 1.0)
            before = max(cluster.object_counts()) - min(cluster.object_counts())
            report = cluster.rebalance()
            after = max(cluster.object_counts()) - min(cluster.object_counts())
            assert report.strategy in ("split", "ledger", "noop")
            if report.strategy != "noop":
                assert report.moved > 0
                assert after < before
            assert sum(cluster.object_counts()) == cluster.num_objects

    def test_rebalance_preserves_answers(self, rng):
        oracle = NaiveBoxSum(2)
        with self._skewed_cluster(rng) as cluster:
            for _ in range(25):
                box = random_box(rng, 2, max_side=5.0)
                cluster.insert(box, 2.0)
            # Rebuild the oracle from scratch via a fresh query of record.
            queries = [random_box(rng, 2, max_side=60.0) for _ in range(10)]
            before = cluster.box_sum_batch(queries)
            cluster.rebalance()
            assert cluster.box_sum_batch(queries) == before

    def test_noop_when_already_balanced(self):
        with _cluster(shards=2) as cluster:
            cluster.insert(Box((0.0, 0.0), (1.0, 1.0)))
            report = cluster.rebalance()
            assert report.strategy == "noop"
            assert report.moved == 0
            assert report.imbalance >= 1.0

    def test_rebalance_counted_in_stats(self, rng):
        with self._skewed_cluster(rng) as cluster:
            cluster.rebalance()
            stats = cluster.stats()
            assert stats["rebalances"] == 1
            assert stats["migrated"] >= 0


class TestStatsAndInspect:
    def test_stats_shape(self, rng):
        with _cluster() as cluster:
            cluster.bulk_load(_exact_objects(rng, 20))
            cluster.box_sum_batch([random_box(rng, 2) for _ in range(3)])
            stats = cluster.stats()
            assert stats["shards"] == 3
            assert stats["objects_total"] == 20
            assert stats["batches"] == 1
            assert stats["queries"] == 3
            assert stats["partitioner"] == "hash"
            assert len(stats["epochs"]) == 3
            assert stats["inflight"] == 0

    def test_shard_stats_one_entry_per_shard(self, rng):
        with _cluster() as cluster:
            cluster.bulk_load(_exact_objects(rng, 20))
            per_shard = cluster.shard_stats()
            assert len(per_shard) == 3
            assert all("epoch" in entry for entry in per_shard)

    def test_dump_renders_cluster(self, rng):
        with _cluster(partitioner="kd") as cluster:
            cluster.bulk_load(_exact_objects(rng, 30))
            text = dump(cluster)
            assert "shards=3" in text
            assert "partitioner=kd" in text
            assert "imbalance" in text
            for sid in range(3):
                assert f"shard {sid}" in text

    def test_shard_map_exposed_and_serializable(self, rng):
        with _cluster(partitioner="kd") as cluster:
            cluster.bulk_load(_exact_objects(rng, 50))
            payload = cluster.shard_map.to_dict()
            assert payload["partitioner"] == "kd"
            assert payload["num_shards"] == 3


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_work(self, rng):
        cluster = _cluster()
        cluster.insert(random_box(rng, 2))
        cluster.close()
        cluster.close()
        assert cluster.closed
        with pytest.raises(ServiceClosedError):
            cluster.batch([random_box(rng, 2)])
        with pytest.raises(ServiceClosedError):
            cluster.insert(random_box(rng, 2))
        with pytest.raises(ServiceClosedError):
            cluster.rebalance()

    def test_context_manager_closes(self, rng):
        with _cluster() as cluster:
            cluster.insert(random_box(rng, 2))
        assert cluster.closed
        assert all(service.closed for service in cluster.services)

    def test_shard_count_validation(self):
        from repro.core.errors import ShardError

        with pytest.raises((ValueError, ShardError)):
            _cluster(shards=0)
