"""Sharded-vs-unsharded equivalence across every index family.

The routed scatter-gather is bit-identical to one unsharded index because
dominance sums are additive over any disjoint partition of the objects and
the router reassembles positive and negative terms in the same order as a
direct evaluation.  Weights are exact small integers so float addition
cannot smuggle in rounding differences — the assertions below use ``==``,
not ``approx``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.aggregator import BoxSumIndex
from repro.obs import MetricsRegistry
from repro.shard import ShardedService

from ..conftest import random_box

FAMILIES = ["ba", "ecdf-bu", "ecdf-bq", "bptree", "ar"]
PARTITIONERS = ["roundrobin", "hash", "kd"]


def _dims(backend: str) -> int:
    return 1 if backend == "bptree" else 2


def _exact_objects(rng, n, dims):
    return [(random_box(rng, dims), float(rng.randint(1, 9))) for _ in range(n)]


def _pair(backend: str, reduction: str, partitioner: str, shards: int = 3):
    dims = _dims(backend)
    reference = BoxSumIndex(dims, backend=backend, reduction=reduction)
    cluster = ShardedService(
        dims,
        shards,
        backend=backend,
        reduction=reduction,
        partitioner=partitioner,
        workers=0,
        registry=MetricsRegistry(),
    )
    return reference, cluster, dims


@pytest.mark.parametrize("partitioner", PARTITIONERS)
@pytest.mark.parametrize("backend", FAMILIES)
def test_bulk_loaded_batch_is_bit_identical(backend, partitioner):
    rng = random.Random(f"{backend}-{partitioner}")
    reference, cluster, dims = _pair(backend, "corner", partitioner)
    with cluster:
        objects = _exact_objects(rng, 90, dims)
        reference.bulk_load(objects)
        cluster.bulk_load(objects)
        queries = [random_box(rng, dims, max_side=60.0) for _ in range(25)]
        assert cluster.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]


@pytest.mark.parametrize("partitioner", PARTITIONERS)
@pytest.mark.parametrize("backend", FAMILIES)
def test_interleaved_mutations_and_rebalance_stay_bit_identical(backend, partitioner):
    """Satellite acceptance: inserts, deletes and rebalances interleaved
    with query batches, every answer equal to the unsharded index's."""
    rng = random.Random(f"{backend}-{partitioner}-mut")
    reference, cluster, dims = _pair(backend, "corner", partitioner)

    def check(n_queries=8):
        queries = [random_box(rng, dims, max_side=60.0) for _ in range(n_queries)]
        assert cluster.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]

    with cluster:
        seed = _exact_objects(rng, 60, dims)
        reference.bulk_load(seed)
        cluster.bulk_load(seed)
        live = list(seed)
        check()
        for round_no in range(3):
            for _ in range(10):
                box, value = random_box(rng, dims), float(rng.randint(1, 9))
                reference.insert(box, value)
                cluster.insert(box, value)
                live.append((box, value))
            check()
            for _ in range(6):
                box, value = live.pop(rng.randrange(len(live)))
                reference.delete(box, value)
                cluster.delete(box, value)
            check()
            cluster.rebalance()
            check()
        assert cluster.num_objects == len(live)


@pytest.mark.parametrize("partitioner", PARTITIONERS)
def test_eo82_reduction_is_bit_identical(partitioner):
    rng = random.Random(f"eo82-{partitioner}")
    reference, cluster, dims = _pair("ba", "eo82", partitioner)
    with cluster:
        objects = _exact_objects(rng, 80, dims)
        reference.bulk_load(objects)
        cluster.bulk_load(objects)
        for _ in range(10):
            box, value = random_box(rng, dims), float(rng.randint(1, 9))
            reference.insert(box, value)
            cluster.insert(box, value)
        cluster.rebalance()
        queries = [random_box(rng, dims, max_side=60.0) for _ in range(20)]
        assert cluster.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]


def test_single_shard_degenerates_to_unsharded():
    rng = random.Random(0x51)
    reference, cluster, dims = _pair("ba", "corner", "roundrobin", shards=1)
    with cluster:
        objects = _exact_objects(rng, 50, dims)
        reference.bulk_load(objects)
        cluster.bulk_load(objects)
        queries = [random_box(rng, dims, max_side=60.0) for _ in range(15)]
        assert cluster.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]
