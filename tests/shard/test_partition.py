"""Tests for partitioners and the serializable shard map."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ShardMapError
from repro.core.geometry import Box
from repro.shard import (
    HashPartitioner,
    KdMedianPartitioner,
    RoundRobinPartitioner,
    ShardMap,
    make_shard_map,
)

from ..conftest import random_box


class TestRoundRobin:
    def test_cycles_through_all_shards(self):
        part = RoundRobinPartitioner(3)
        box = Box((0, 0), (1, 1))
        assert [part.assign(box) for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_cursor_survives_serialization(self):
        part = RoundRobinPartitioner(3)
        box = Box((0, 0), (1, 1))
        part.assign(box)
        restored = ShardMap.from_dict(ShardMap(part).to_dict())
        assert restored.assign(box) == 1  # continues where the cursor stopped


class TestHash:
    def test_deterministic_and_in_range(self, rng):
        part = HashPartitioner(4)
        for _ in range(100):
            box = random_box(rng, 2)
            sid = part.assign(box)
            assert 0 <= sid < 4
            assert part.assign(box) == sid

    def test_spreads_over_all_shards(self, rng):
        part = HashPartitioner(4)
        hit = {part.assign(random_box(rng, 2)) for _ in range(200)}
        assert hit == {0, 1, 2, 3}


class TestKdMedian:
    def test_unfitted_routes_everything_to_shard_zero(self, rng):
        part = KdMedianPartitioner(4)
        assert all(part.assign(random_box(rng, 2)) == 0 for _ in range(20))

    def test_fit_balances_counts(self, rng):
        part = KdMedianPartitioner(4)
        boxes = [random_box(rng, 2) for _ in range(400)]
        part.fit(boxes)
        counts = [0] * 4
        for box in boxes:
            counts[part.assign(box)] += 1
        assert sum(counts) == 400
        assert max(counts) / (sum(counts) / 4) < 1.5

    def test_fit_uses_every_shard(self, rng):
        part = KdMedianPartitioner(8)
        boxes = [random_box(rng, 3) for _ in range(256)]
        part.fit(boxes)
        assert {part.assign(box) for box in boxes} == set(range(8))

    def test_degenerate_sample_stays_single_leaf(self):
        part = KdMedianPartitioner(4)
        same = Box((5, 5), (6, 6))
        part.fit([same] * 50)
        assert part.assign(same) == 0

    def test_rebalance_splits_hot_region(self, rng):
        part = KdMedianPartitioner(2)
        boxes = [random_box(rng, 2) for _ in range(100)]
        part.fit(boxes)
        hot = [box for box in boxes if part.assign(box) == 0]
        assert part.rebalance(0, 1, [box.center() for box in hot])
        moved = [box for box in hot if part.assign(box) == 1]
        assert moved  # part of the old region now routes to the cold shard
        assert len(moved) < len(hot)

    def test_rebalance_declines_degenerate_centers(self):
        part = KdMedianPartitioner(2)
        assert not part.rebalance(0, 1, [(1.0, 1.0)] * 10)
        assert not part.rebalance(0, 1, [])

    def test_serialization_round_trip_preserves_assignment(self, rng):
        part = KdMedianPartitioner(4)
        boxes = [random_box(rng, 2) for _ in range(200)]
        part.fit(boxes)
        payload = json.loads(json.dumps(ShardMap(part).to_dict()))
        restored = ShardMap.from_dict(payload)
        for box in boxes:
            assert restored.assign(box) == part.assign(box)


class TestShardMap:
    def test_rejects_unknown_version(self):
        with pytest.raises(ShardMapError):
            ShardMap.from_dict({"version": 99, "partitioner": "hash", "num_shards": 2})

    def test_rejects_unknown_partitioner(self):
        with pytest.raises(ShardMapError):
            ShardMap.from_dict({"version": 1, "partitioner": "nope", "num_shards": 2, "state": {}})

    def test_rejects_kd_leaf_out_of_range(self):
        with pytest.raises(ShardMapError):
            ShardMap.from_dict(
                {
                    "version": 1,
                    "partitioner": "kd",
                    "num_shards": 2,
                    "state": {"tree": {"shard": 5}},
                }
            )

    def test_make_shard_map_rejects_shard_count_mismatch(self):
        with pytest.raises(ShardMapError):
            make_shard_map(HashPartitioner(2), 4)


class TestReplicatedShardMap:
    """Schema v2: the map carries the replication factor (one integer is the
    whole topology — every member of a group holds the same objects)."""

    def test_replicas_round_trip(self):
        payload = json.loads(json.dumps(ShardMap(HashPartitioner(3), replicas=2).to_dict()))
        assert payload["version"] == 2
        assert payload["replicas"] == 2
        restored = ShardMap.from_dict(payload)
        assert restored.replicas == 2
        assert restored.num_shards == 3

    def test_v1_payloads_still_load_as_unreplicated(self):
        payload = ShardMap(HashPartitioner(3)).to_dict()
        payload["version"] = 1
        payload.pop("replicas")
        restored = ShardMap.from_dict(payload)
        assert restored.replicas == 0

    def test_negative_replicas_rejected(self):
        with pytest.raises(ShardMapError):
            ShardMap(HashPartitioner(2), replicas=-1)
        payload = ShardMap(HashPartitioner(2)).to_dict()
        payload["replicas"] = -3
        with pytest.raises(ShardMapError):
            ShardMap.from_dict(payload)

    def test_make_shard_map_conflicting_replicas_rejected(self):
        existing = ShardMap(HashPartitioner(2), replicas=1)
        with pytest.raises(ShardMapError):
            make_shard_map(existing, 2, replicas=2)
        # A zero-replica map accepts the caller's factor; matching is a no-op.
        assert make_shard_map(ShardMap(HashPartitioner(2)), 2, replicas=2).replicas == 2
        assert make_shard_map(existing, 2, replicas=1).replicas == 1

    def test_restored_map_drives_a_replicated_cluster(self):
        from repro.obs import MetricsRegistry
        from repro.shard import ShardedService

        payload = ShardMap(HashPartitioner(2), replicas=1).to_dict()
        with ShardedService(
            2,
            2,
            partitioner=ShardMap.from_dict(payload),
            workers=0,
            registry=MetricsRegistry(),
        ) as cluster:
            assert cluster.replicas == 1
            assert len(cluster.groups) == 2
            assert all(g.num_members == 2 for g in cluster.groups)

    def test_make_shard_map_accepts_name_instance_and_map(self):
        assert make_shard_map("hash", 3).num_shards == 3
        assert make_shard_map(HashPartitioner(3), 3).name == "hash"
        existing = ShardMap(KdMedianPartitioner(3))
        assert make_shard_map(existing, 3) is existing

    def test_zero_shards_rejected(self):
        with pytest.raises(ShardMapError):
            RoundRobinPartitioner(0)
