"""Smoke tests for the shard scaling experiment and its gate metrics."""

from __future__ import annotations

from repro.bench.config import BenchConfig
from repro.bench.shard import SHARD_COUNTS, shard_scaling_experiment, shard_smoke_metrics

TINY = BenchConfig().scaled(n=600, queries=12, page_size=512, buffer_mb=0.01, seed=3)


def test_experiment_shape_and_monotonic_baseline():
    rows = shard_scaling_experiment(TINY, verbose=False)
    assert [row[0] for row in rows] == list(SHARD_COUNTS)
    for _shards, reads, critical, speedup, imbalance, fanout_pct in rows:
        assert critical <= reads
        assert speedup > 0.0
        assert imbalance >= 1.0
        assert 0.0 <= fanout_pct <= 100.0
    # 1-shard row is its own baseline by construction.
    assert rows[0][3] == 1.0


def test_experiment_is_deterministic():
    assert shard_scaling_experiment(TINY, verbose=False) == shard_scaling_experiment(
        TINY, verbose=False
    )


def test_smoke_metrics_keys_and_ranges():
    metrics = shard_smoke_metrics(TINY)
    assert set(metrics) == {
        "shard.s2.read_critical_pct",
        "shard.s4.read_critical_pct",
        "shard.s8.read_critical_pct",
        "shard.s4.imbalance_x100",
        "shard.s4.fanout_pct",
    }
    for value in metrics.values():
        assert value >= 0.0
    # At this tiny scale the split trees barely differ from the baseline,
    # so only sanity is asserted here; the committed smoke baseline gate
    # (benchmarks/baseline_smoke.json) enforces the real 2x floor.
    assert metrics["shard.s4.read_critical_pct"] <= 150.0
    assert metrics["shard.s4.imbalance_x100"] < 150.0
