"""Tests for the dataset and query generators."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import InvalidQueryError
from repro.workloads import (
    clustered_boxes,
    functional_objects,
    query_boxes,
    query_points,
    uniform_boxes,
    zipf_weighted_boxes,
)


class TestUniformBoxes:
    def test_count_and_dims(self):
        objects = uniform_boxes(500, dims=3)
        assert len(objects) == 500
        assert all(box.dims == 3 for box, _v in objects)

    def test_boxes_inside_the_space(self):
        for box, _v in uniform_boxes(300, span=10.0, seed=1):
            assert all(0.0 <= lo for lo in box.low)
            assert all(hi <= 10.0 for hi in box.high)

    def test_average_side_matches_target(self):
        objects = uniform_boxes(4000, avg_side_fraction=1e-3, span=1.0, seed=2)
        sides = [box.side(0) for box, _v in objects]
        mean = sum(sides) / len(sides)
        assert math.isclose(mean, 1e-3, rel_tol=0.1)

    def test_deterministic_by_seed(self):
        a = uniform_boxes(50, seed=9)
        b = uniform_boxes(50, seed=9)
        c = uniform_boxes(50, seed=10)
        assert a == b
        assert a != c

    def test_value_range(self):
        for _box, value in uniform_boxes(200, value_range=(5.0, 6.0), seed=3):
            assert 5.0 <= value <= 6.0


class TestSkewedDatasets:
    def test_clustered_boxes_are_clustered(self):
        objects = clustered_boxes(2000, n_clusters=3, seed=4)
        xs = sorted(box.low[0] for box, _v in objects)
        # With 3 tight clusters, the middle 80% of x values span much less
        # than a uniform spread would.
        middle_span = xs[int(0.9 * len(xs))] - xs[int(0.1 * len(xs))]
        assert middle_span < 0.9

    def test_clustered_boxes_stay_in_space(self):
        for box, _v in clustered_boxes(500, span=1.0, seed=5):
            assert all(0.0 <= lo and hi <= 1.0 for lo, hi in zip(box.low, box.high))

    def test_zipf_weights_are_heavy_tailed(self):
        objects = zipf_weighted_boxes(2000, seed=6)
        weights = sorted((v for _b, v in objects), reverse=True)
        total = sum(weights)
        top_share = sum(weights[: len(weights) // 100]) / total
        assert top_share > 0.2  # the top 1% carries a disproportionate share


class TestFunctionalObjects:
    @pytest.mark.parametrize("degree", [0, 1, 2])
    def test_degree_respected(self, degree):
        objects = functional_objects(50, degree, seed=7)
        assert all(f.degree() <= degree for _b, f in objects)
        assert any(f.degree() == degree for _b, f in objects)

    def test_degree_zero_is_constant(self):
        for _box, f in functional_objects(20, 0, seed=8):
            assert f.n_terms == 1


class TestQueryBoxes:
    @pytest.mark.parametrize("qbs", [0.0001, 0.01, 0.25])
    def test_area_fraction(self, qbs):
        for box in query_boxes(20, qbs, dims=2, seed=9):
            assert box.volume() == pytest.approx(qbs, rel=1e-9)

    def test_3d_volume_fraction(self):
        for box in query_boxes(10, 0.001, dims=3, seed=10):
            assert box.volume() == pytest.approx(0.001, rel=1e-9)

    def test_fixed_shape(self):
        boxes = query_boxes(10, 0.01, seed=11)
        sides = {(round(b.side(0), 12), round(b.side(1), 12)) for b in boxes}
        assert len(sides) == 1

    def test_aspect_ratio(self):
        box = query_boxes(1, 0.01, aspect=4.0, seed=12)[0]
        assert box.side(0) / box.side(1) == pytest.approx(4.0)
        assert box.volume() == pytest.approx(0.01)

    def test_inside_space(self):
        for box in query_boxes(50, 0.1, span=2.0, seed=13):
            assert all(0.0 <= lo and hi <= 2.0 for lo, hi in zip(box.low, box.high))

    def test_validation(self):
        with pytest.raises(InvalidQueryError):
            query_boxes(1, 0.0)
        with pytest.raises(InvalidQueryError):
            query_boxes(1, 1.5)
        with pytest.raises(InvalidQueryError):
            query_boxes(1, 0.1, aspect=-1.0)


class TestQueryPoints:
    def test_points_in_space(self):
        points = query_points(100, dims=3, span=5.0, seed=14)
        assert len(points) == 100
        assert all(len(p) == 3 for p in points)
        assert all(0.0 <= c <= 5.0 for p in points for c in p)
