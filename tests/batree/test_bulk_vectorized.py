"""The vectorized bulk-build classification is exactly the scalar one."""

from __future__ import annotations

import random

import pytest

import repro.batree.batree as batree_module
from repro.batree import BATree
from repro.core.naive import NaiveDominanceSum
from repro.core.polynomial import Polynomial
from repro.storage import StorageContext


def _points(rng, n, dims):
    out = []
    for _ in range(n):
        mode = rng.random()
        if mode < 0.3:  # duplicated grid coordinates stress the strictness
            p = tuple(float(rng.randint(0, 5)) for _ in range(dims))
        else:
            p = tuple(rng.uniform(0, 100) for _ in range(dims))
        out.append((p, rng.uniform(-3, 6)))
    return out


@pytest.mark.parametrize("dims", [2, 3])
def test_vectorized_equals_scalar_build(dims, monkeypatch):
    rng = random.Random(dims * 31)
    points = _points(rng, 600, dims)
    fast = BATree(StorageContext(buffer_pages=None), dims, leaf_capacity=4, index_capacity=4)
    fast.bulk_load(points)
    monkeypatch.setattr(batree_module, "_classify_page_vectorized", lambda *_a, **_k: None)
    slow = BATree(StorageContext(buffer_pages=None), dims, leaf_capacity=4, index_capacity=4)
    slow.bulk_load(points)
    oracle = NaiveDominanceSum(dims)
    oracle.bulk_load(points)
    for _ in range(150):
        q = tuple(rng.uniform(-5, 105) for _ in range(dims))
        expected = oracle.dominance_sum(q)
        assert fast.dominance_sum(q) == pytest.approx(expected, abs=1e-6)
        assert slow.dominance_sum(q) == pytest.approx(expected, abs=1e-6)
    fast.check_invariants()


def test_polynomial_values_use_scalar_fallback():
    """Non-numeric values bypass the vectorized path but still build correctly."""
    ctx = StorageContext(buffer_pages=None)
    tree = BATree(ctx, 2, zero=Polynomial(2), value_bytes=64, leaf_capacity=4, index_capacity=4)
    x = Polynomial.variable(2, 0)
    tree.bulk_load([((float(i), float(i % 7)), x) for i in range(100)])
    agg = tree.dominance_sum((50.0, 99.0))
    assert agg.evaluate((1.0, 0.0)) == pytest.approx(50.0)


def test_vectorized_build_is_faster_at_scale():
    """Sanity: the fast path actually engages (no silent fallback)."""
    import time

    rng = random.Random(7)
    points = [((rng.uniform(0, 1), rng.uniform(0, 1)), 1.0) for _ in range(20_000)]
    ctx = StorageContext(page_size=2048, buffer_pages=None)
    tree = BATree(ctx, 2)
    start = time.process_time()
    tree.bulk_load(points)
    elapsed = time.process_time() - start
    # The scalar loop needs ~8s for this load on one core; the vectorized
    # path is several times faster.  Generous bound to avoid CI flakiness.
    assert elapsed < 6.0
    oracle = NaiveDominanceSum(2)
    oracle.bulk_load(points)
    for _ in range(20):
        q = (rng.uniform(0, 1), rng.uniform(0, 1))
        assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum(q))
