"""Tests for the BA-tree (dominance-sum correctness, splits, lifecycle)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batree import BATree
from repro.core.errors import DimensionMismatchError
from repro.core.naive import NaiveDominanceSum
from repro.core.polynomial import Polynomial
from repro.storage import StorageContext


def make_tree(dims=2, **kwargs):
    ctx = StorageContext(page_size=8192, buffer_pages=None)
    defaults = dict(leaf_capacity=4, index_capacity=4, spill_bytes=64)
    defaults.update(kwargs)
    return BATree(ctx, dims, **defaults), ctx


def _random_points(rng, n, dims, span=100.0):
    return [
        (tuple(rng.uniform(0, span) for _ in range(dims)), rng.uniform(-2, 5))
        for _ in range(n)
    ]


class TestBasics:
    def test_empty(self):
        tree, _ctx = make_tree()
        assert tree.dominance_sum((50.0, 50.0)) == 0.0
        assert tree.total() == 0.0

    def test_single_point_strictness(self):
        tree, _ctx = make_tree()
        tree.insert((5.0, 5.0), 3.0)
        assert tree.dominance_sum((6.0, 6.0)) == 3.0
        assert tree.dominance_sum((5.0, 6.0)) == 0.0
        assert tree.dominance_sum((6.0, 5.0)) == 0.0

    def test_duplicates_merge(self):
        tree, _ctx = make_tree()
        tree.insert((1.0, 1.0), 2.0)
        tree.insert((1.0, 1.0), 3.0)
        assert len(tree) == 1
        assert tree.dominance_sum((2.0, 2.0)) == 5.0

    def test_negative_values_cancel(self):
        tree, _ctx = make_tree()
        tree.insert((1.0, 1.0), 2.0)
        tree.insert((1.0, 1.0), -2.0)
        assert tree.dominance_sum((9.0, 9.0)) == pytest.approx(0.0)

    def test_arity_validation(self):
        tree, _ctx = make_tree()
        with pytest.raises(DimensionMismatchError):
            tree.insert((1.0,), 1.0)
        with pytest.raises(DimensionMismatchError):
            tree.dominance_sum((1.0, 2.0, 3.0))

    def test_1d_delegates_to_bptree(self):
        tree, _ctx = make_tree(dims=1)
        for i in range(100):
            tree.insert((float(i),), 1.0)
        assert tree.dominance_sum((50.0,)) == 50.0
        assert list(tree.collect())[0] == ((0.0,), 1.0)


@pytest.mark.parametrize("dims", [2, 3])
class TestOracleAgreement:
    def test_insert_path(self, dims):
        rng = random.Random(61 + dims)
        tree, _ctx = make_tree(dims=dims)
        oracle = NaiveDominanceSum(dims)
        for p, v in _random_points(rng, 450, dims):
            tree.insert(p, v)
            oracle.insert(p, v)
        tree.check_invariants()
        for _ in range(120):
            q = tuple(rng.uniform(-5, 105) for _ in range(dims))
            assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum(q), abs=1e-6)

    def test_bulk_path(self, dims):
        rng = random.Random(67 + dims)
        points = _random_points(rng, 450, dims)
        tree, _ctx = make_tree(dims=dims)
        tree.bulk_load(points)
        tree.check_invariants()
        oracle = NaiveDominanceSum(dims)
        oracle.bulk_load(points)
        for _ in range(120):
            q = tuple(rng.uniform(-5, 105) for _ in range(dims))
            assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum(q), abs=1e-6)

    def test_bulk_then_insert(self, dims):
        rng = random.Random(71 + dims)
        initial = _random_points(rng, 250, dims)
        extra = _random_points(rng, 250, dims)
        tree, _ctx = make_tree(dims=dims)
        tree.bulk_load(initial)
        oracle = NaiveDominanceSum(dims)
        oracle.bulk_load(initial)
        for p, v in extra:
            tree.insert(p, v)
            oracle.insert(p, v)
        tree.check_invariants()
        for _ in range(100):
            q = tuple(rng.uniform(-5, 105) for _ in range(dims))
            assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum(q), abs=1e-6)


class TestSplitStress:
    def test_clustered_inserts_force_index_splits(self):
        rng = random.Random(73)
        tree, _ctx = make_tree(leaf_capacity=3, index_capacity=3)
        oracle = NaiveDominanceSum(2)
        for cluster in range(8):
            cx, cy = rng.uniform(10, 90), rng.uniform(10, 90)
            for _ in range(60):
                p = (cx + rng.gauss(0, 0.5), cy + rng.gauss(0, 0.5))
                tree.insert(p, 1.0)
                oracle.insert(p, 1.0)
        tree.check_invariants()
        for _ in range(80):
            q = (rng.uniform(0, 100), rng.uniform(0, 100))
            assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum(q))

    def test_ascending_diagonal(self):
        """Worst-case insertion order for a k-d partition."""
        tree, _ctx = make_tree(leaf_capacity=3, index_capacity=3)
        oracle = NaiveDominanceSum(2)
        for i in range(300):
            p = (float(i), float(i))
            tree.insert(p, 1.0)
            oracle.insert(p, 1.0)
        tree.check_invariants()
        for q in [(0.0, 0.0), (150.5, 150.5), (300.0, 1.0), (300.0, 300.0)]:
            assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum(q))

    def test_identical_points_oversized_leaf(self):
        tree, _ctx = make_tree(leaf_capacity=2)
        for _ in range(30):
            tree.insert((5.0, 5.0), 1.0)
        assert tree.dominance_sum((6.0, 6.0)) == 30.0
        tree.check_invariants()

    def test_axis_aligned_duplicates(self):
        """Many points sharing one coordinate exercise degenerate planes."""
        rng = random.Random(79)
        tree, _ctx = make_tree(leaf_capacity=3, index_capacity=3)
        oracle = NaiveDominanceSum(2)
        for _ in range(200):
            p = (float(rng.randint(0, 2)), rng.uniform(0, 100))
            tree.insert(p, 1.0)
            oracle.insert(p, 1.0)
        for x in (-1.0, 0.5, 1.0, 3.0):
            for y in (0.0, 50.0, 101.0):
                assert tree.dominance_sum((x, y)) == pytest.approx(oracle.dominance_sum((x, y)))


class TestValuesAndLifecycle:
    def test_polynomial_values(self):
        ctx = StorageContext(buffer_pages=None)
        tree = BATree(
            ctx,
            2,
            zero=Polynomial(2),
            value_bytes=64,
            leaf_capacity=4,
            index_capacity=4,
        )
        x = Polynomial.variable(2, 0)
        for i in range(60):
            tree.insert((float(i), float(i)), x)
        agg = tree.dominance_sum((10.0, 999.0))
        assert agg.evaluate((1.0, 0.0)) == pytest.approx(10.0)

    def test_collect_round_trip(self):
        rng = random.Random(83)
        points = _random_points(rng, 150, 2)
        tree, _ctx = make_tree()
        tree.bulk_load(points)
        collected = dict(tree.collect())
        assert len(collected) == len({p for p, _v in points})
        assert sum(collected.values()) == pytest.approx(sum(v for _p, v in points))

    def test_destroy_frees_everything(self):
        tree, ctx = make_tree()
        rng = random.Random(89)
        for p, v in _random_points(rng, 300, 2):
            tree.insert(p, v)
        assert ctx.num_pages > 10
        tree.destroy()
        assert ctx.num_pages == 1
        assert ctx.slab.live_allocations() == 0

    def test_usable_after_destroy(self):
        tree, _ctx = make_tree()
        tree.insert((1.0, 1.0), 1.0)
        tree.destroy()
        tree.insert((2.0, 2.0), 5.0)
        assert tree.total() == 5.0
        assert tree.dominance_sum((3.0, 3.0)) == 5.0

    def test_bulk_load_fill_factor_validation(self):
        tree, _ctx = make_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([], fill_factor=1.5)


class TestQueryCost:
    def test_query_is_polylogarithmic_in_accesses(self):
        """Uniform data: a query touches one path plus O(1) borders per level."""
        rng = random.Random(97)
        ctx = StorageContext(page_size=2048, buffer_pages=None)
        tree = BATree(ctx, 2)
        tree.bulk_load([((rng.uniform(0, 1), rng.uniform(0, 1)), 1.0) for _ in range(20000)])
        ctx.cold_cache()
        ctx.reset_stats()
        n_queries = 50
        for _ in range(n_queries):
            tree.dominance_sum((rng.uniform(0, 1), rng.uniform(0, 1)))
        # Generous bound: far below scanning even 1% of the ~2k data pages.
        assert ctx.counter.accesses / n_queries < 30


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.tuples(
                    st.floats(0, 50, allow_nan=False), st.floats(0, 50, allow_nan=False)
                ),
                st.floats(-3, 3, allow_nan=False),
            ),
            max_size=120,
        ),
        st.tuples(st.floats(-5, 55, allow_nan=False), st.floats(-5, 55, allow_nan=False)),
    )
    def test_matches_oracle(self, points, query):
        tree, _ctx = make_tree(leaf_capacity=3, index_capacity=3)
        oracle = NaiveDominanceSum(2)
        for p, v in points:
            tree.insert(p, v)
            oracle.insert(p, v)
        assert tree.dominance_sum(query) == pytest.approx(oracle.dominance_sum(query), abs=1e-6)
        tree.check_invariants()
