"""Adversarial stress: pathological coordinate patterns under tiny pages.

Grid-aligned duplicates, tight clusters, diagonal runs and uniform noise,
interleaved with negative values and a mid-stream rebuild — against trees
configured with tiny capacities and spill thresholds so every split path
(leaf, index, forced, border partition/migration, spill) fires constantly.
"""

from __future__ import annotations

import random

import pytest

from repro.batree import BATree
from repro.core.naive import NaiveDominanceSum
from repro.ecdf import EcdfBTree
from repro.storage import StorageContext


def _point_generator(rng: random.Random, dims: int, anchor: float):
    def gen():
        mode = rng.random()
        if mode < 0.3:  # grid-aligned: heavy coordinate duplication
            return tuple(float(rng.randint(0, 6)) for _ in range(dims))
        if mode < 0.5:  # tight Gaussian cluster
            return tuple(anchor + rng.gauss(0, 0.2) for _ in range(dims))
        if mode < 0.6:  # diagonal run (worst case for axis splits)
            v = rng.uniform(0, 100)
            return (v,) * dims
        return tuple(rng.uniform(0, 100) for _ in range(dims))

    return gen


@pytest.mark.parametrize("dims", [2, 3])
@pytest.mark.parametrize("seed", [0, 1])
def test_pathological_patterns_under_tiny_pages(dims, seed):
    rng = random.Random(seed * 1337 + dims)
    gen = _point_generator(rng, dims, anchor=50.0 + seed)
    ba_tree = BATree(
        StorageContext(page_size=8192, buffer_pages=17),
        dims,
        leaf_capacity=3,
        index_capacity=3,
        spill_bytes=48,
    )
    ecdf_tree = EcdfBTree(
        StorageContext(buffer_pages=11),
        dims,
        variant="q",
        leaf_capacity=3,
        internal_capacity=3,
        spill_bytes=48,
    )
    oracle = NaiveDominanceSum(dims)
    inserted = []
    for i in range(500):
        point, value = gen(), rng.uniform(-4, 6)
        ba_tree.insert(point, value)
        ecdf_tree.insert(point, value)
        oracle.insert(point, value)
        inserted.append((point, value))
        if i == 250:
            ecdf_tree.bulk_load(inserted)  # mid-stream rebuild
    ba_tree.check_invariants()
    ecdf_tree.check_invariants()
    for _ in range(120):
        if rng.random() < 0.5:
            q = gen()  # probe exactly on the pathological patterns
        else:
            q = tuple(rng.uniform(-5, 105) for _ in range(dims))
        expected = oracle.dominance_sum(q)
        assert ba_tree.dominance_sum(q) == pytest.approx(expected, abs=1e-6)
        assert ecdf_tree.dominance_sum(q) == pytest.approx(expected, abs=1e-6)
