"""Shared fixtures and generators for the repro test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.core.geometry import Box


def random_box(rng: random.Random, dims: int, span: float = 100.0, max_side: float = 20.0) -> Box:
    """A random box inside [0, span]^dims with sides up to ``max_side``."""
    low = [rng.uniform(0.0, span - max_side) for _ in range(dims)]
    high = [lo + rng.uniform(0.0, max_side) for lo in low]
    return Box(low, high)


def random_point(rng: random.Random, dims: int, span: float = 100.0) -> Tuple[float, ...]:
    """A random point in [0, span]^dims."""
    return tuple(rng.uniform(0.0, span) for _ in range(dims))


def random_objects(
    rng: random.Random, n: int, dims: int, span: float = 100.0, max_side: float = 20.0
) -> List[Tuple[Box, float]]:
    """``n`` random weighted boxes with weights in [-5, 10]."""
    return [(random_box(rng, dims, span, max_side), rng.uniform(-5.0, 10.0)) for _ in range(n)]


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xBA7)
