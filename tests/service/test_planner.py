"""Tests for the corner-sharing batch planner and the probe seam."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.aggregator import BoxSumIndex
from repro.core.errors import DimensionMismatchError, NotSupportedError
from repro.core.geometry import Box
from repro.service.planner import BatchPlanner

from ..conftest import random_box, random_objects


def _built_index(rng, backend: str, dims: int = 2, n: int = 120, **kwargs) -> BoxSumIndex:
    index = BoxSumIndex(dims, backend=backend, page_size=512, buffer_pages=None, **kwargs)
    index.bulk_load(random_objects(rng, n, dims))
    return index


class TestProbeSeam:
    def test_plan_has_2_pow_d_probes(self, rng):
        index = _built_index(rng, "ba", dims=2)
        plan = index.probe_plan(random_box(rng, 2))
        assert len(plan) == 4

    def test_object_backend_has_no_probe_plan(self, rng):
        index = _built_index(rng, "ar", dims=2, n=30)
        assert not index.supports_probes
        with pytest.raises(NotSupportedError):
            index.probe_plan(random_box(rng, 2))
        with pytest.raises(NotSupportedError):
            BatchPlanner(index)

    @pytest.mark.parametrize("backend", ["ba", "ecdf-bu", "ecdf-bq", "naive"])
    def test_reassembly_is_bit_identical_corner(self, rng, backend):
        index = _built_index(rng, backend)
        for _ in range(20):
            query = random_box(rng, 2)
            plan = index.probe_plan(query)
            values = {p.identity: index.probe_value(*p.identity) for p in plan}
            assert index.box_sum_from_probes(plan, values) == index.box_sum(query)

    def test_reassembly_is_bit_identical_eo82(self, rng):
        index = BoxSumIndex(2, backend="naive", reduction="eo82")
        index.bulk_load(random_objects(rng, 80, 2))
        for _ in range(20):
            query = random_box(rng, 2)
            plan = index.probe_plan(query)
            values = {p.identity: index.probe_value(*p.identity) for p in plan}
            assert index.box_sum_from_probes(plan, values) == index.box_sum(query)

    def test_reassembly_is_bit_identical_1d_bptree(self, rng):
        index = BoxSumIndex(1, backend="bptree", page_size=512, buffer_pages=None)
        index.bulk_load(random_objects(rng, 120, 1))
        for _ in range(20):
            query = random_box(rng, 1)
            plan = index.probe_plan(query)
            values = {p.identity: index.probe_value(*p.identity) for p in plan}
            assert index.box_sum_from_probes(plan, values) == index.box_sum(query)

    def test_probe_plan_checks_arity(self, rng):
        index = _built_index(rng, "ba", dims=2)
        with pytest.raises(DimensionMismatchError):
            index.probe_plan(random_box(rng, 3))


class TestBatchPlan:
    def test_identical_queries_share_all_probes(self, rng):
        index = _built_index(rng, "ba")
        planner = BatchPlanner(index)
        query = random_box(rng, 2)
        plan = planner.plan([query] * 5)
        assert plan.probes_total == 20
        assert plan.probes_unique == 4
        assert plan.probes_saved == 16
        assert plan.dedup_ratio == pytest.approx(5.0)

    def test_disjoint_queries_share_nothing(self, rng):
        index = _built_index(rng, "ba")
        planner = BatchPlanner(index)
        plan = planner.plan([Box((0, 0), (1, 1)), Box((2, 2), (3, 3))])
        assert plan.probes_unique == plan.probes_total == 8
        assert plan.dedup_ratio == 1.0

    def test_empty_batch(self, rng):
        index = _built_index(rng, "ba")
        planner = BatchPlanner(index)
        plan = planner.plan([])
        assert plan.probes_total == 0
        assert plan.dedup_ratio == 1.0
        execution = planner.execute(plan)
        assert execution.results == []
        assert execution.probes_executed == 0


class TestBatchExecution:
    def test_answers_match_direct_box_sum(self, rng):
        index = _built_index(rng, "ba")
        planner = BatchPlanner(index)
        queries = [random_box(rng, 2) for _ in range(10)]
        execution = planner.execute(planner.plan(queries))
        assert execution.results == [index.box_sum(q) for q in queries]

    def test_probe_cache_hooks(self, rng):
        index = _built_index(rng, "ba")
        planner = BatchPlanner(index)
        query = random_box(rng, 2)
        stored = {}
        execution = planner.execute(
            planner.plan([query]),
            lookup=lambda identity: (identity in stored, stored.get(identity)),
            store=stored.__setitem__,
        )
        assert execution.probes_executed == 4
        assert execution.probe_cache_hits == 0
        assert len(stored) == 4
        # second run: everything served from the hook, nothing executed
        again = planner.execute(
            planner.plan([query]),
            lookup=lambda identity: (identity in stored, stored.get(identity)),
            store=stored.__setitem__,
        )
        assert again.probes_executed == 0
        assert again.probe_cache_hits == 4
        assert again.results == execution.results

    def test_executor_path_matches_sequential(self, rng):
        index = _built_index(rng, "ba")
        planner = BatchPlanner(index)
        queries = [random_box(rng, 2) for _ in range(8)]
        sequential = planner.execute(planner.plan(queries))
        with ThreadPoolExecutor(max_workers=4) as pool:
            threaded = planner.execute(planner.plan(queries), executor=pool)
        assert threaded.results == sequential.results
