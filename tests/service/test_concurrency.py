"""Concurrency stress tests for the query service (``service_stress`` marker).

CI runs these in a repeat loop to surface interleaving-dependent failures;
each test is still fast enough for the ordinary suite.

The central invariant: a :class:`BatchResult` carries the epoch its answers
were computed at, and under the readers–writer lock an answer at epoch ``e``
must reflect *exactly* the first ``e`` mutations — no torn reads, no stale
cache entries, no lost updates.
"""

from __future__ import annotations

import threading

import pytest

from repro import BoxSumIndex, MetricsRegistry, QueryService
from repro.core.geometry import Box

from ..conftest import random_box, random_objects

pytestmark = pytest.mark.service_stress


def _drive(threads, errors):
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not errors, errors[0]


class TestEpochConsistency:
    @pytest.mark.parametrize("backend", ["ba", "ecdf-bu", "ar"])
    def test_readers_see_exactly_the_mutations_of_their_epoch(self, rng, backend):
        """Answer at epoch e == base + e: each mutation adds 1.0 inside Q."""
        index = BoxSumIndex(2, backend=backend, page_size=512, buffer_pages=None)
        index.bulk_load(random_objects(rng, 60, 2))
        query = Box((10.0, 10.0), (90.0, 90.0))
        base = index.box_sum(query)
        writes = 15
        with QueryService(index, registry=MetricsRegistry()) as service:
            done = threading.Event()
            errors = []

            def writer():
                try:
                    for i in range(writes):
                        # distinct boxes fully inside the query window
                        lo = 20.0 + i * 4.0
                        service.insert(Box((lo, 20.0), (lo + 2.0, 22.0)), 1.0)
                finally:
                    done.set()

            def reader():
                try:
                    while not done.is_set():
                        result = service.batch([query])
                        expect = base + result.epoch
                        if abs(result.results[0] - expect) > 1e-6:
                            raise AssertionError(
                                f"epoch {result.epoch}: got {result.results[0]}, "
                                f"want {expect}"
                            )
                except Exception as exc:  # propagate to the main thread
                    errors.append(exc)

            _drive(
                [threading.Thread(target=writer)]
                + [threading.Thread(target=reader) for _ in range(4)],
                errors,
            )
            final = service.batch([query])
            assert final.epoch == writes
            assert final.results[0] == pytest.approx(base + writes)

    def test_no_stale_reads_after_close_race(self, rng):
        index = BoxSumIndex(2, backend="ba", page_size=512, buffer_pages=None)
        index.bulk_load(random_objects(rng, 40, 2))
        service = QueryService(index, registry=MetricsRegistry())
        errors = []

        def hammer():
            try:
                for _ in range(50):
                    service.box_sum(Box((10.0, 10.0), (20.0, 20.0)))
            except Exception as exc:
                from repro import ServiceClosedError

                if not isinstance(exc, ServiceClosedError):
                    errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for t in threads:
            t.start()
        service.close()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors, errors[0]


class TestParallelReaders:
    def test_shared_buffer_pool_under_eviction_pressure(self, rng):
        """Tiny locked buffer + many reader threads: answers stay exact."""
        index = BoxSumIndex(2, backend="ba", page_size=512, buffer_pages=8)
        index.bulk_load(random_objects(rng, 300, 2))
        queries = [random_box(rng, 2) for _ in range(12)]
        expected = [index.box_sum(q) for q in queries]
        with QueryService(index, workers=4, registry=MetricsRegistry()) as service:
            errors = []

            def reader():
                try:
                    for _ in range(5):
                        got = service.box_sum_batch(queries)
                        if got != expected:
                            raise AssertionError("answers diverged under concurrency")
                except Exception as exc:
                    errors.append(exc)

            _drive([threading.Thread(target=reader) for _ in range(6)], errors)
            stats = service.stats()
            assert stats["queries"] == 6 * 5 * len(queries)

    def test_mixed_single_and_batch_traffic(self, rng):
        index = BoxSumIndex(2, backend="ecdf-bq", page_size=512, buffer_pages=None)
        index.bulk_load(random_objects(rng, 150, 2))
        hot = [random_box(rng, 2) for _ in range(4)]
        expected = {q: index.box_sum(q) for q in hot}
        with QueryService(
            index, max_inflight=4, max_queue=64, registry=MetricsRegistry()
        ) as service:
            errors = []

            def single(q):
                try:
                    for _ in range(10):
                        if service.box_sum(q) != expected[q]:
                            raise AssertionError("single query diverged")
                except Exception as exc:
                    errors.append(exc)

            def batch():
                try:
                    for _ in range(10):
                        if service.box_sum_batch(hot) != [expected[q] for q in hot]:
                            raise AssertionError("batch diverged")
                except Exception as exc:
                    errors.append(exc)

            _drive(
                [threading.Thread(target=single, args=(q,)) for q in hot]
                + [threading.Thread(target=batch) for _ in range(2)],
                errors,
            )


class TestTracerThreadSafety:
    def test_spans_from_many_threads_stay_separated(self):
        """Each thread builds its own span tree; roots never interleave."""
        from repro.obs import Tracer

        tracer = Tracer()
        errors = []

        def work(tid):
            try:
                for i in range(20):
                    with tracer.span("outer", tid=tid, i=i):
                        with tracer.span("inner", tid=tid):
                            pass
            except Exception as exc:
                errors.append(exc)

        _drive([threading.Thread(target=work, args=(t,)) for t in range(6)], errors)
        assert len(tracer.spans) == 6 * 20
        for root in tracer.spans:
            assert root.name == "outer"
            assert [c.name for c in root.children] == ["inner"]
            assert root.children[0].attrs["tid"] == root.attrs["tid"]
