"""Tests for the query service: correctness, caching, admission, lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro import (
    BoxSumIndex,
    MetricsRegistry,
    QueryService,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.core.geometry import Box
from repro.core.naive import NaiveBoxSum
from repro.inspect import dump

from ..conftest import random_box, random_objects

FAMILIES = ["ba", "ecdf-bu", "ecdf-bq", "bptree", "ar"]


def _family_setup(rng, backend: str, n: int = 100):
    dims = 1 if backend == "bptree" else 2
    index = BoxSumIndex(dims, backend=backend, page_size=512, buffer_pages=None)
    objects = random_objects(rng, n, dims)
    index.bulk_load(objects)
    oracle = NaiveBoxSum(dims)
    for box, value in objects:
        oracle.insert(box, value)
    return index, oracle, dims


def _service(index, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return QueryService(index, **kwargs)


class TestCorrectness:
    @pytest.mark.parametrize("backend", FAMILIES)
    def test_batched_answers_match_direct_and_naive(self, rng, backend):
        index, oracle, dims = _family_setup(rng, backend)
        queries = [random_box(rng, dims) for _ in range(15)]
        direct = [index.box_sum(q) for q in queries]
        with _service(index) as service:
            served = service.box_sum_batch(queries)
        assert served == direct  # bit-identical to the unserved path
        for query, got in zip(queries, served):
            assert got == pytest.approx(oracle.box_sum(query), abs=1e-6)

    @pytest.mark.parametrize("backend", ["ba", "ar"])
    def test_single_box_sum(self, rng, backend):
        index, _oracle, dims = _family_setup(rng, backend, n=40)
        query = random_box(rng, dims)
        with _service(index) as service:
            assert service.box_sum(query) == index.box_sum(query)

    def test_worker_pool_matches_sequential(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba")
        queries = [random_box(rng, dims) for _ in range(12)]
        direct = [index.box_sum(q) for q in queries]
        with _service(index, workers=3) as service:
            assert service.box_sum_batch(queries) == direct


class TestCaching:
    def test_repeat_batch_hits_result_cache(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba")
        queries = [random_box(rng, dims) for _ in range(6)]
        with _service(index) as service:
            cold = service.batch(queries)
            warm = service.batch(queries)
        assert cold.result_cache_hits == 0
        assert warm.result_cache_hits == len(queries)
        assert warm.probes_executed == 0
        assert warm.results == cold.results

    def test_result_cache_key_is_canonical_across_spellings(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba")
        query = random_box(rng, dims)
        with _service(index) as service:
            first = service.batch([query])
            clone = Box(list(query.low), list(query.high))
            second = service.batch([clone])
        assert first.probes_executed == 4
        assert second.result_cache_hits == 1
        assert second.probes_executed == 0

    def test_shared_corner_hits_probe_cache_across_batches(self, rng):
        index, _oracle, _dims = _family_setup(rng, "ba")
        # same low corner -> the all-ones sign vector probes the same point
        a = Box((10.0, 10.0), (30.0, 30.0))
        b = Box((10.0, 10.0), (50.0, 50.0))
        with _service(index) as service:
            service.batch([a])
            second = service.batch([b])
        assert second.probe_cache_hits == 1
        assert second.probes_executed == 3
        assert second.results == [index.box_sum(b)]

    def test_dedup_within_batch(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba")
        query = random_box(rng, dims)
        with _service(index) as service:
            result = service.batch([query] * 8)
        assert result.probes_planned == 32
        assert result.probes_unique == 4
        assert result.dedup_ratio == pytest.approx(8.0)

    def test_caches_can_be_disabled(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba")
        query = random_box(rng, dims)
        with _service(index, result_cache=0, probe_cache=0) as service:
            service.batch([query])
            again = service.batch([query])
        assert again.result_cache_hits == 0
        assert again.probes_executed == 4


class TestEpochInvalidation:
    @pytest.mark.parametrize("backend", FAMILIES)
    def test_mutation_invalidates_cached_results(self, rng, backend):
        index, oracle, dims = _family_setup(rng, backend, n=60)
        query = Box([10.0] * dims, [90.0] * dims)
        inside = Box([40.0] * dims, [50.0] * dims)
        with _service(index) as service:
            before = service.box_sum(query)
            epoch = service.insert(inside, 7.0)
            oracle.insert(inside, 7.0)
            after = service.box_sum(query)
            assert service.epoch == epoch == 1
        assert after == pytest.approx(before + 7.0)
        assert after == pytest.approx(oracle.box_sum(query), abs=1e-6)

    def test_delete_bumps_epoch_and_updates_answers(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba", n=40)
        query = Box([0.0] * dims, [100.0] * dims)
        extra = Box([30.0] * dims, [35.0] * dims)
        with _service(index) as service:
            service.insert(extra, 5.0)
            with_extra = service.box_sum(query)
            service.delete(extra, 5.0)
            assert service.epoch == 2
            assert service.box_sum(query) == pytest.approx(with_extra - 5.0)

    def test_stale_entries_are_counted_not_served(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba", n=40)
        query = random_box(rng, dims)
        with _service(index) as service:
            service.box_sum(query)
            service.insert(Box([1.0] * dims, [2.0] * dims), 1.0)
            service.box_sum(query)
            stats = service.stats()
        assert stats["result_cache.stale"] >= 1.0
        assert stats["epoch"] == 1.0


class TestAdmission:
    def test_overload_sheds_immediately_with_empty_queue(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba", n=30)
        release = threading.Event()
        entered = threading.Event()

        class SlowIndex:
            supports_probes = False
            backend = "slow"
            storage = None

            def box_sum(self, query):
                entered.set()
                release.wait(timeout=10.0)
                return 0.0

        service = _service(SlowIndex(), max_inflight=1, max_queue=0)
        query = random_box(rng, dims)
        worker = threading.Thread(target=service.box_sum, args=(query,))
        worker.start()
        try:
            assert entered.wait(timeout=10.0)
            with pytest.raises(ServiceOverloadedError):
                service.box_sum(query)
            assert service.stats()["rejected"] == 1.0
        finally:
            release.set()
            worker.join(timeout=10.0)
            service.close()

    def test_overload_error_carries_load_snapshot(self, rng):
        """Satellite: ServiceOverloadedError reports inflight/queue_depth
        both as attributes and in the message, so operators can see how
        overloaded the service actually was."""
        index, _oracle, dims = _family_setup(rng, "ba", n=30)
        release = threading.Event()
        entered = threading.Event()

        class SlowIndex:
            supports_probes = False
            backend = "slow"
            storage = None

            def box_sum(self, query):
                entered.set()
                release.wait(timeout=10.0)
                return 0.0

        service = _service(SlowIndex(), max_inflight=1, max_queue=0)
        query = random_box(rng, dims)
        worker = threading.Thread(target=service.box_sum, args=(query,))
        worker.start()
        try:
            assert entered.wait(timeout=10.0)
            with pytest.raises(ServiceOverloadedError) as excinfo:
                service.box_sum(query)
            err = excinfo.value
            assert err.inflight == 1
            assert err.queue_depth == 0
            assert "inflight=1" in str(err)
            assert "queue_depth=0" in str(err)
        finally:
            release.set()
            worker.join(timeout=10.0)
            service.close()

    def test_queue_admits_when_slot_frees(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba", n=30)
        with _service(index, max_inflight=1, max_queue=4) as service:
            queries = [random_box(rng, dims) for _ in range(4)]
            results = {}
            threads = [
                threading.Thread(
                    target=lambda q=q: results.__setitem__(q, service.box_sum(q))
                )
                for q in queries
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert len(results) == 4
            for q in queries:
                assert results[q] == index.box_sum(q)

    def test_bad_admission_parameters_rejected(self, rng):
        index, _oracle, _dims = _family_setup(rng, "ba", n=10)
        with pytest.raises(ValueError):
            _service(index, max_inflight=0)
        with pytest.raises(ValueError):
            _service(index, max_queue=-1)


class TestProbeSnapshot:
    """The resolve_probe_values seam used by the shard router."""

    @pytest.mark.parametrize("backend", ["ba", "ecdf-bu", "ecdf-bq", "bptree"])
    def test_snapshot_matches_direct_probes(self, rng, backend):
        index, _oracle, dims = _family_setup(rng, backend, n=40)
        query = random_box(rng, dims)
        plan = index.probe_plan(query)
        identities = [probe.identity for probe in plan]
        with _service(index) as service:
            snap = service.resolve_probe_values(identities)
            values = dict(zip(identities, snap.values))
            assert index.box_sum_from_probes(plan, values) == index.box_sum(query)
            assert snap.total == index.total()
            assert snap.epoch == 0
            assert snap.probes_executed + snap.probe_cache_hits == len(identities)

    def test_snapshot_hits_probe_cache_on_repeat(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba", n=30)
        identities = [probe.identity for probe in index.probe_plan(random_box(rng, dims))]
        with _service(index) as service:
            first = service.resolve_probe_values(identities)
            second = service.resolve_probe_values(identities)
            assert first.values == second.values
            assert second.probe_cache_hits == len(identities)
            assert second.probes_executed == 0

    def test_object_backend_not_supported(self, rng):
        from repro.core.errors import NotSupportedError

        index, _oracle, _dims = _family_setup(rng, "ar", n=10)
        with _service(index) as service:
            with pytest.raises(NotSupportedError):
                service.resolve_probe_values([])


class TestLifecycle:
    def test_closed_service_rejects_queries_and_mutations(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba", n=20)
        service = _service(index)
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosedError):
            service.box_sum(random_box(rng, dims))
        with pytest.raises(ServiceClosedError):
            service.insert(random_box(rng, dims), 1.0)

    def test_close_is_idempotent(self, rng):
        index, _oracle, _dims = _family_setup(rng, "ba", n=10)
        service = _service(index)
        service.close()
        service.close()

    def test_context_manager_closes(self, rng):
        index, _oracle, _dims = _family_setup(rng, "ba", n=10)
        with _service(index) as service:
            pass
        assert service.closed


class TestObservability:
    def test_registry_counters_accumulate(self, rng):
        registry = MetricsRegistry()
        index, _oracle, dims = _family_setup(rng, "ba", n=30)
        with _service(index, registry=registry, label="t") as service:
            query = random_box(rng, dims)
            service.batch([query, query])
            service.insert(Box([1.0] * dims, [2.0] * dims), 1.0)
        snapshot = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in registry.collect()
        }
        assert snapshot[("repro_service_queries", (("label", "t"),))] == 2.0
        assert (snapshot[("repro_service_probes", (("label", "t"), ("stage", "planned")))]== 8.0)
        assert snapshot[("repro_service_mutations", (("label", "t"), ("op", "insert")))] == 1.0

    def test_stats_snapshot_keys(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba", n=20)
        with _service(index) as service:
            service.box_sum(random_box(rng, dims))
            stats = service.stats()
        for key in (
            "queries",
            "dedup_ratio",
            "epoch",
            "result_cache.hit_rate",
            "probe_cache.entries",
        ):
            assert key in stats

    def test_inspect_dump_renders_service(self, rng):
        index, _oracle, dims = _family_setup(rng, "ba", n=20)
        with _service(index, label="dash") as service:
            service.box_sum(random_box(rng, dims))
            text = dump(service)
        assert "QueryService(label=dash" in text
        assert "result_cache" in text
        assert "probe_cache" in text
