"""Close-is-drain regression tests: admitted work finishes, new work is shed.

The scenario that used to be ambiguous: a reader blocked *inside* the index
while ``close()`` arrives.  Graceful semantics demand the reader (and any
caller already queued for a slot) complete with a real answer; only
admissions arriving after the close may see ``ServiceClosedError``.
"""

from __future__ import annotations

import threading

import pytest

from repro import MetricsRegistry, QueryService, ServiceClosedError
from repro.core.geometry import Box

QUERY = Box((0.0, 0.0), (10.0, 10.0))


class BlockingIndex:
    """An index whose queries block until released (no probe seam)."""

    supports_probes = False
    backend = "blocking"

    def __init__(self) -> None:
        self.entered = threading.Event()
        self.release = threading.Event()

    def box_sum(self, query: Box) -> float:
        self.entered.set()
        assert self.release.wait(timeout=30.0), "test deadlock: release never set"
        return 42.0

    def insert(self, box: Box, value: float = 1.0) -> None:
        pass

    def bulk_load(self, objects) -> None:
        pass


def test_close_waits_for_the_blocked_inflight_reader():
    index = BlockingIndex()
    service = QueryService(index, result_cache=0, registry=MetricsRegistry())
    answers = []

    reader = threading.Thread(target=lambda: answers.append(service.box_sum(QUERY)))
    reader.start()
    assert index.entered.wait(timeout=10.0)  # the reader is inside the index

    closer = threading.Thread(target=service.close)
    closer.start()
    closer.join(timeout=0.2)
    assert closer.is_alive(), "close() must block draining the in-flight reader"
    assert service.closed  # new admissions are already rejected...
    with pytest.raises(ServiceClosedError):
        service.box_sum(QUERY)
    with pytest.raises(ServiceClosedError):
        service.insert(Box((0.0, 0.0), (1.0, 1.0)))

    index.release.set()  # ...but the admitted reader completes with a real answer
    reader.join(timeout=10.0)
    closer.join(timeout=10.0)
    assert not closer.is_alive()
    assert answers == [42.0]


def test_queued_waiter_admitted_before_close_also_completes():
    """A caller queued for a slot at close time drains too — no spurious error."""
    index = BlockingIndex()
    service = QueryService(
        index, result_cache=0, max_inflight=1, max_queue=4, registry=MetricsRegistry()
    )
    answers = []
    errors = []

    def read():
        try:
            answers.append(service.box_sum(QUERY))
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    first = threading.Thread(target=read)
    first.start()
    assert index.entered.wait(timeout=10.0)

    queued = threading.Thread(target=read)
    queued.start()
    for _ in range(500):  # ~5s budget for the second reader to reach the queue
        if service._gate.queue_depth == 1:
            break
        threading.Event().wait(0.01)
    assert service._gate.queue_depth == 1, "second reader should be queued"

    closer = threading.Thread(target=service.close)
    closer.start()
    closer.join(timeout=0.2)
    assert closer.is_alive()

    index.release.set()
    first.join(timeout=10.0)
    queued.join(timeout=10.0)
    closer.join(timeout=10.0)
    assert not errors, errors[0]
    assert answers == [42.0, 42.0]
    assert service.stats()["inflight"] == 0.0


def test_close_is_idempotent_and_post_close_queries_fail_fast():
    index = BlockingIndex()
    index.release.set()  # nothing should block in this test
    service = QueryService(index, result_cache=0, registry=MetricsRegistry())
    assert service.box_sum(QUERY) == 42.0
    service.close()
    service.close()  # second close: no-op, no error
    with pytest.raises(ServiceClosedError):
        service.box_sum(QUERY)
