"""Property-style serving test: random mutations interleaved with cached reads.

For every index family, a scripted but randomized interleaving of inserts,
deletes and (cached, batched) box-sums runs against a live oracle of the
current object multiset.  Every served answer must match a fresh full scan —
regardless of how many cache entries the preceding mutations invalidated —
and the service epoch must count the mutations exactly.
"""

from __future__ import annotations

import random

import pytest

from repro import BoxSumIndex, MetricsRegistry, QueryService
from repro.core.geometry import Box

from ..conftest import random_box

FAMILIES = ["ba", "ecdf-bu", "ecdf-bq", "bptree", "ar"]


def _scan(objects, query: Box) -> float:
    return sum(value for box, value in objects if box.intersects(query))


@pytest.mark.parametrize("backend", FAMILIES)
def test_interleaved_mutations_never_serve_stale_answers(backend):
    rng = random.Random(0xC0FFEE + hash(backend) % 1000)
    dims = 1 if backend == "bptree" else 2
    index = BoxSumIndex(dims, backend=backend, page_size=512, buffer_pages=None)

    live = []  # the oracle: (box, value) currently inserted
    seed = [(random_box(rng, dims), rng.uniform(-5.0, 10.0)) for _ in range(40)]
    index.bulk_load(seed)
    live.extend(seed)

    with QueryService(index, registry=MetricsRegistry()) as service:
        mutations = 0
        # hot queries repeat so the result cache actually fills up
        hot = [random_box(rng, dims) for _ in range(5)]
        for step in range(120):
            op = rng.random()
            if op < 0.2:
                box, value = random_box(rng, dims), rng.uniform(-5.0, 10.0)
                service.insert(box, value)
                live.append((box, value))
                mutations += 1
            elif op < 0.3 and live:
                box, value = live.pop(rng.randrange(len(live)))
                service.delete(box, value)
                mutations += 1
            else:
                queries = [rng.choice(hot), random_box(rng, dims)]
                got = service.box_sum_batch(queries)
                for query, answer in zip(queries, got):
                    assert answer == pytest.approx(_scan(live, query), abs=1e-6), (
                        f"stale or wrong answer at step {step} "
                        f"(epoch {service.epoch})"
                    )
        assert service.epoch == mutations
        stats = service.stats()
        # the cache was actually exercised: hits before mutations, stale
        # drops after them
        assert stats["result_cache.hits"] > 0
        assert stats["result_cache.stale"] > 0
