"""Tests for the epoch-invalidated LRU cache."""

from __future__ import annotations

import pytest

from repro.core.geometry import Box
from repro.service.cache import EpochLRUCache, box_key, make_caches, probe_key


class TestLRU:
    def test_hit_returns_stored_value(self):
        cache = EpochLRUCache(4)
        cache.put("k", 0, 42.0)
        assert cache.get("k", 0) == (True, 42.0)
        assert cache.hits == 1

    def test_absent_key_misses(self):
        cache = EpochLRUCache(4)
        assert cache.get("nope", 0) == (False, None)
        assert cache.misses == 1

    def test_eviction_drops_least_recently_used(self):
        cache = EpochLRUCache(2)
        cache.put("a", 0, 1.0)
        cache.put("b", 0, 2.0)
        cache.get("a", 0)          # refresh a; b is now LRU
        cache.put("c", 0, 3.0)     # evicts b
        assert cache.get("b", 0) == (False, None)
        assert cache.get("a", 0) == (True, 1.0)
        assert cache.get("c", 0) == (True, 3.0)
        assert cache.evictions == 1

    def test_put_refreshes_existing_key_without_eviction(self):
        cache = EpochLRUCache(2)
        cache.put("a", 0, 1.0)
        cache.put("b", 0, 2.0)
        cache.put("a", 0, 10.0)
        assert len(cache) == 2
        assert cache.get("a", 0) == (True, 10.0)
        assert cache.evictions == 0

    def test_capacity_zero_disables_cache(self):
        cache = EpochLRUCache(0)
        cache.put("a", 0, 1.0)
        assert len(cache) == 0
        assert cache.get("a", 0) == (False, None)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            EpochLRUCache(-1)


class TestEpochInvalidation:
    def test_stale_entry_is_never_served(self):
        cache = EpochLRUCache(4)
        cache.put("k", 0, 1.0)
        found, value = cache.get("k", 1)
        assert (found, value) == (False, None)
        assert cache.stale == 1
        # the stale entry was dropped outright
        assert len(cache) == 0

    def test_fresh_epoch_value_replaces_stale(self):
        cache = EpochLRUCache(4)
        cache.put("k", 0, 1.0)
        cache.get("k", 3)
        cache.put("k", 3, 2.0)
        assert cache.get("k", 3) == (True, 2.0)

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = EpochLRUCache(4)
        cache.put("k", 0, 1.0)
        cache.get("k", 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestStats:
    def test_stats_shape_and_hit_rate(self):
        cache = EpochLRUCache(4)
        cache.put("k", 0, 1.0)
        cache.get("k", 0)
        cache.get("absent", 0)
        stats = cache.stats()
        assert stats["hits"] == 1.0
        assert stats["misses"] == 1.0
        assert stats["entries"] == 1.0
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_empty_cache_hit_rate_is_zero(self):
        assert EpochLRUCache(4).stats()["hit_rate"] == 0.0


class TestKeys:
    def test_box_key_canonical_across_spellings(self):
        a = Box((0, 0), (1, 1))
        b = Box([0.0, 0.0], [1.0, 1.0])
        assert box_key(a) == box_key(b)

    def test_probe_key_distinguishes_index_keys(self):
        assert probe_key(((0, 1), (2.0, 3.0))) != probe_key(((1, 0), (2.0, 3.0)))

    def test_make_caches_respects_capacities(self):
        results, probes = make_caches(2, 0)
        assert results.capacity == 2
        assert probes.capacity == 0
