"""Tests for the temporal aggregation wrapper (1-d box-sums)."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import InvalidQueryError
from repro.temporal import TemporalAggregateIndex


def brute_cumulative(records, qs, qe):
    """Paper interval semantics: start < qe and not (end < qs)."""
    return [v for s, e, v in records if s < qe and not e < qs]


class TestCumulative:
    def test_basic_intersection(self):
        index = TemporalAggregateIndex(buffer_pages=None)
        index.insert(1.0, 5.0, 10.0)
        index.insert(4.0, 8.0, 20.0)
        index.insert(9.0, 12.0, 40.0)
        assert index.cumulative_sum(4.5, 6.0) == pytest.approx(30.0)
        assert index.cumulative_count(0.0, 100.0) == 3
        assert index.cumulative_avg(4.5, 6.0) == pytest.approx(15.0)

    def test_matches_brute_force(self):
        rng = random.Random(3)
        records = []
        index = TemporalAggregateIndex(buffer_pages=None)
        for _ in range(400):
            s = rng.uniform(0, 100)
            e = s + rng.expovariate(1 / 5.0)
            v = rng.uniform(1, 10)
            records.append((s, e, v))
            index.insert(s, e, v)
        for _ in range(60):
            qs = rng.uniform(0, 100)
            qe = qs + rng.uniform(0, 30)
            expected = brute_cumulative(records, qs, qe)
            assert index.cumulative_sum(qs, qe) == pytest.approx(sum(expected), abs=1e-6)
            assert index.cumulative_count(qs, qe) == len(expected)

    def test_bulk_load(self):
        index = TemporalAggregateIndex(buffer_pages=None)
        index.bulk_load([(0.0, 2.0, 1.0), (1.0, 3.0, 2.0), (5.0, 6.0, 4.0)])
        assert index.cumulative_sum(0.5, 1.5) == pytest.approx(3.0)
        assert index.num_records == 3

    def test_delete(self):
        index = TemporalAggregateIndex(buffer_pages=None)
        index.insert(1.0, 5.0, 10.0)
        index.delete(1.0, 5.0, 10.0)
        assert index.cumulative_sum(0.0, 10.0) == pytest.approx(0.0)
        assert index.num_records == 0

    def test_invalid_interval(self):
        index = TemporalAggregateIndex(buffer_pages=None)
        with pytest.raises(InvalidQueryError):
            index.insert(5.0, 1.0, 1.0)


class TestInstantaneous:
    def test_contains_instant(self):
        index = TemporalAggregateIndex(buffer_pages=None)
        index.insert(1.0, 5.0, 10.0)
        index.insert(3.0, 7.0, 20.0)
        assert index.instantaneous_sum(4.0) == pytest.approx(30.0)
        assert index.instantaneous_sum(6.0) == pytest.approx(20.0)
        assert index.instantaneous_sum(0.5) == pytest.approx(0.0)
        assert index.instantaneous_count(4.0) == 2

    def test_boundary_semantics(self):
        """[s, e] contains t iff s < t <= e under the paper's predicate."""
        index = TemporalAggregateIndex(buffer_pages=None)
        index.insert(1.0, 5.0, 1.0)
        assert index.instantaneous_sum(1.0) == pytest.approx(0.0)  # t == start
        assert index.instantaneous_sum(5.0) == pytest.approx(1.0)  # t == end

    def test_matches_brute_force(self):
        rng = random.Random(5)
        records = []
        index = TemporalAggregateIndex(buffer_pages=None)
        for _ in range(300):
            s = rng.uniform(0, 50)
            e = s + rng.uniform(0, 10)
            v = rng.uniform(1, 5)
            records.append((s, e, v))
            index.insert(s, e, v)
        for _ in range(50):
            t = rng.uniform(-5, 60)
            expected = sum(v for s, e, v in records if s < t <= e)
            assert index.instantaneous_sum(t) == pytest.approx(expected, abs=1e-6)


class TestBackends:
    @pytest.mark.parametrize("backend", ["ba", "ecdf-bu", "ecdf-bq", "naive"])
    def test_backends_agree(self, backend):
        rng = random.Random(7)
        records = [
            (s := rng.uniform(0, 100), s + rng.uniform(0, 10), rng.uniform(1, 5))
            for _ in range(200)
        ]
        reference = TemporalAggregateIndex(backend="naive")
        index = TemporalAggregateIndex(backend=backend, buffer_pages=None)
        for s, e, v in records:
            reference.insert(s, e, v)
            index.insert(s, e, v)
        for _ in range(30):
            qs = rng.uniform(0, 100)
            qe = qs + rng.uniform(0, 20)
            assert index.cumulative_sum(qs, qe) == pytest.approx(
                reference.cumulative_sum(qs, qe), abs=1e-6
            )
