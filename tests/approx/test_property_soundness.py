"""Satellite acceptance: the certified band always contains the exact answer.

Property test across every index family: a degrade-enabled cluster under
randomized seeded inserts and deletes, answered from the approximate tier
(direct, overloaded and stale paths), cross-checked against a naive scan
oracle.  ``lo <= exact <= hi`` must hold for every query — an escape is a
bug in the envelope derivation, never acceptable noise.
"""

from __future__ import annotations

import random

import pytest

from repro.approx import ApproxPolicy
from repro.core.naive import NaiveBoxSum
from repro.obs import MetricsRegistry
from repro.shard import ShardedService

from ..conftest import random_box

pytestmark = pytest.mark.approx

FAMILIES = ["ba", "ecdf-bu", "ecdf-bq", "bptree", "ar"]


def _dims(backend: str) -> int:
    return 1 if backend == "bptree" else 2


def _cluster(backend: str, dims: int, **kwargs) -> ShardedService:
    return ShardedService(
        dims,
        3,
        backend=backend,
        partitioner="hash",
        workers=0,
        registry=MetricsRegistry(),
        degrade="bounded",
        **kwargs,
    )


@pytest.mark.parametrize("backend", FAMILIES)
def test_bands_contain_exact_under_churn(backend):
    rng = random.Random(f"approx-{backend}")
    dims = _dims(backend)
    oracle = NaiveBoxSum(dims)
    with _cluster(backend, dims) as cluster:
        seed = [(random_box(rng, dims), float(rng.randint(-4, 9))) for _ in range(120)]
        cluster.bulk_load(seed)
        for box, value in seed:
            oracle.insert(box, value)
        live = list(seed)
        for round_no in range(6):
            # Churn: a few inserts and deletes between every answer batch.
            for _ in range(8):
                box, value = random_box(rng, dims), float(rng.randint(-4, 9))
                cluster.insert(box, value)
                oracle.insert(box, value)
                live.append((box, value))
            for _ in range(3):
                box, value = live.pop(rng.randrange(len(live)))
                cluster.delete(box, value)
                oracle.insert(box, -value)
            queries = [random_box(rng, dims, max_side=60.0) for _ in range(10)]
            result = cluster.degraded_batch(queries)
            exact = [oracle.box_sum(q) for q in queries]
            assert result.contains(exact), (backend, round_no, result, exact)


@pytest.mark.parametrize("backend", ["ba", "ar"])
def test_overload_path_sound(backend):
    """The shed-conversion path serves the same sound bands as direct."""
    rng = random.Random(f"approx-overload-{backend}")
    dims = _dims(backend)
    oracle = NaiveBoxSum(dims)
    with _cluster(backend, dims, max_inflight=1, max_queue=0) as cluster:
        objects = [(random_box(rng, dims), float(rng.randint(1, 9))) for _ in range(100)]
        cluster.bulk_load(objects)
        for box, value in objects:
            oracle.insert(box, value)
        cluster.admission.admit()  # occupy the only slot: next batch would shed
        try:
            queries = [random_box(rng, dims, max_side=60.0) for _ in range(8)]
            result = cluster.batch(queries)
            assert result.reason == "overload"
            assert result.contains([oracle.box_sum(q) for q in queries])
        finally:
            cluster.admission.release()


def test_stale_bands_stay_sound():
    """Pending mutations widen the band instead of invalidating it."""
    rng = random.Random("approx-stale")
    oracle = NaiveBoxSum(2)
    policy = ApproxPolicy(max_staleness=10_000, auto_refresh=False)
    with _cluster("ba", 2, approx_policy=policy) as cluster:
        seed = [(random_box(rng, 2), float(rng.randint(1, 9))) for _ in range(80)]
        cluster.bulk_load(seed)
        for box, value in seed:
            oracle.insert(box, value)
        cluster.degraded_batch([random_box(rng, 2)])  # force the initial build
        # Every subsequent mutation is pending against that stale synopsis.
        for _ in range(40):
            box, value = random_box(rng, 2), float(rng.randint(-6, 9))
            cluster.insert(box, value)
            oracle.insert(box, value)
        queries = [random_box(rng, 2, max_side=60.0) for _ in range(15)]
        result = cluster.degraded_batch(queries)
        assert result.staleness == 40
        assert result.contains([oracle.box_sum(q) for q in queries])
