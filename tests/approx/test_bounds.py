"""Unit tests for the certified-interval value algebra and result container."""

import pytest

from repro import Box
from repro.approx.bounds import REASONS, ApproxResult
from repro.core.values import BoundedValue


class TestBoundedValue:
    def test_basic_interval(self):
        bv = BoundedValue(1.0, 3.0, 2.0)
        assert bv.lo == 1.0 and bv.hi == 3.0 and bv.estimate == 2.0
        assert bv.width == 2.0
        assert not bv.is_exact

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            BoundedValue(3.0, 1.0, 2.0)

    def test_estimate_clamped_into_band(self):
        assert BoundedValue(0.0, 1.0, 5.0).estimate == 1.0
        assert BoundedValue(0.0, 1.0, -5.0).estimate == 0.0

    def test_exact(self):
        bv = BoundedValue.exact(4.5)
        assert bv.is_exact
        assert bv.width == 0.0
        assert bv.contains(4.5)
        assert not bv.contains(4.5001)

    def test_contains_endpoints(self):
        bv = BoundedValue(-1.0, 2.0, 0.0)
        assert bv.contains(-1.0) and bv.contains(2.0) and bv.contains(0.5)
        assert not bv.contains(-1.1) and not bv.contains(2.1)

    def test_interval_addition(self):
        a = BoundedValue(1.0, 2.0, 1.5)
        b = BoundedValue(10.0, 20.0, 15.0)
        c = a + b
        assert (c.lo, c.hi, c.estimate) == (11.0, 22.0, 16.5)

    def test_scalar_shift_and_radd(self):
        a = BoundedValue(1.0, 2.0, 1.5)
        assert ((a + 1.0).lo, (a + 1.0).hi) == (2.0, 3.0)
        assert ((1.0 + a).lo, (1.0 + a).hi) == (2.0, 3.0)
        assert sum([BoundedValue.exact(1.0), BoundedValue.exact(2.0)], 0).estimate == 3.0

    def test_bool_is_not_a_shift(self):
        with pytest.raises(TypeError):
            BoundedValue.exact(1.0) + True

    def test_negation_swaps_endpoints(self):
        bv = -BoundedValue(1.0, 3.0, 2.0)
        assert (bv.lo, bv.hi, bv.estimate) == (-3.0, -1.0, -2.0)

    def test_subtraction(self):
        a = BoundedValue(1.0, 2.0, 1.5)
        b = BoundedValue(0.5, 1.0, 0.75)
        c = a - b
        assert (c.lo, c.hi) == (0.0, 1.5)

    def test_widen(self):
        bv = BoundedValue(1.0, 2.0, 1.5).widen(-0.5, 0.25)
        assert (bv.lo, bv.hi, bv.estimate) == (0.5, 2.25, 1.5)

    def test_widen_rejects_shrinking(self):
        with pytest.raises(ValueError):
            BoundedValue(1.0, 2.0, 1.5).widen(0.1, 0.0)
        with pytest.raises(ValueError):
            BoundedValue(1.0, 2.0, 1.5).widen(0.0, -0.1)

    def test_addition_preserves_containment(self):
        # The soundness invariant the reduction relies on: if each band
        # contains its exact value, the interval sum contains the exact sum.
        a, b = BoundedValue(1.0, 3.0, 2.0), BoundedValue(-2.0, -1.0, -1.5)
        assert (a + b).contains(2.5 + -1.25)
        assert (a - b).contains(2.5 - -1.25)


class TestApproxResult:
    def test_basic_container(self):
        res = ApproxResult(
            [BoundedValue(0.0, 2.0, 1.0), BoundedValue.exact(5.0)],
            reason="overload",
            approximated=[0],
            probes=8,
        )
        assert len(res) == 2
        assert res[0].width == 2.0
        assert [bv.estimate for bv in res] == [1.0, 5.0]
        assert res.estimates() == [1.0, 5.0]
        assert res.bands() == [(0.0, 2.0), (5.0, 5.0)]
        assert res.max_width() == 2.0
        assert res.contains([1.5, 5.0])
        assert not res.contains([2.5, 5.0])

    def test_reason_validated(self):
        for reason in REASONS:
            ApproxResult([], reason=reason, approximated=[0])
        with pytest.raises(ValueError):
            ApproxResult([], reason="vibes", approximated=[0])

    def test_rejects_plain_floats(self):
        # The whole point of the type: exact-consumer code must fail loudly.
        with pytest.raises(TypeError):
            ApproxResult([1.0], reason="direct", approximated=[0])

    def test_slots_sorted_deduped(self):
        res = ApproxResult(
            [], reason="outage", approximated=[2, 0, 2], answered=[3, 1, 3]
        )
        assert res.approximated == (0, 2)
        assert res.answered == (1, 3)

    def test_contains_length_mismatch(self):
        res = ApproxResult([BoundedValue.exact(1.0)], reason="direct", approximated=[0])
        with pytest.raises(ValueError):
            res.contains([1.0, 2.0])

    def test_queries_attached(self):
        q = Box((0.0, 0.0), (1.0, 1.0))
        res = ApproxResult(
            [BoundedValue.exact(0.0)], reason="direct", approximated=[0], queries=[q]
        )
        assert res.queries == (q,)
        bare = ApproxResult([BoundedValue.exact(0.0)], reason="direct", approximated=[0])
        assert bare.queries is None

    def test_repr_mentions_reason_and_width(self):
        res = ApproxResult(
            [BoundedValue(0.0, 4.0, 2.0)], reason="outage", approximated=[1], staleness=3
        )
        text = repr(res)
        assert "outage" in text and "staleness=3" in text
