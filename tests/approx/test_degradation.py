"""Degradation wiring: overload, outage, staleness, desync and default-off."""

from __future__ import annotations

import random

import pytest

from repro import Box, BoxSumIndex
from repro.approx import ApproxPolicy, ApproxResult
from repro.core.errors import NotSupportedError, ShardUnavailableError
from repro.obs import MetricsRegistry
from repro.service import QueryService, ServiceOverloadedError
from repro.shard import ShardedService

from ..conftest import random_box


def _objects(rng, n, dims=2):
    return [(random_box(rng, dims), float(rng.randint(1, 9))) for _ in range(n)]


def _cluster(**kwargs) -> ShardedService:
    kwargs.setdefault("degrade", "bounded")
    return ShardedService(
        2, 4, partitioner="hash", workers=0, registry=MetricsRegistry(), **kwargs
    )


class _Down:
    """A member whose serving verbs raise ShardUnavailableError."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        if name in ("resolve_probe_values", "box_sum_batch", "batch", "box_sum"):
            def _raise(*args, **kwargs):
                raise ShardUnavailableError("injected outage", shard=0)

            return _raise
        return getattr(self._inner, name)


class TestClusterDegradation:
    def test_default_off_is_unchanged(self):
        rng = random.Random("off")
        with _cluster(degrade="off", max_inflight=1, max_queue=0) as cluster:
            cluster.bulk_load(_objects(rng, 40))
            assert cluster.approx_tier is None
            with pytest.raises(NotSupportedError):
                cluster.degraded_batch([random_box(rng, 2)])
            cluster.admission.admit()
            try:
                with pytest.raises(ServiceOverloadedError):
                    cluster.batch([random_box(rng, 2)])
            finally:
                cluster.admission.release()

    def test_invalid_degrade_mode_rejected(self):
        with pytest.raises(ValueError):
            _cluster(degrade="lossy")

    def test_overload_degrades_to_bounded(self):
        rng = random.Random("overload")
        with _cluster(max_inflight=1, max_queue=0) as cluster:
            objects = _objects(rng, 60)
            cluster.bulk_load(objects)
            queries = [random_box(rng, 2) for _ in range(5)]
            cluster.admission.admit()
            try:
                result = cluster.batch(queries)
            finally:
                cluster.admission.release()
            assert isinstance(result, ApproxResult)
            assert result.reason == "overload"
            assert len(result) == len(queries)
            assert cluster.stats()["degraded_batches"] == 1.0

    def test_outage_mixes_exact_and_bounded(self):
        rng = random.Random("outage")
        objects = _objects(rng, 80)
        oracle = BoxSumIndex(2, backend="naive")
        oracle.bulk_load(objects)
        with _cluster(
            service_wrapper=lambda svc, sid, mid: _Down(svc) if sid == 1 else svc
        ) as cluster:
            cluster.bulk_load(objects)
            queries = [random_box(rng, 2, max_side=60.0) for _ in range(10)]
            result = cluster.batch(queries)
            assert isinstance(result, ApproxResult)
            assert result.reason == "outage"
            assert result.approximated == (1,)
            assert result.answered == (0, 2, 3)
            assert result.contains([oracle.box_sum(q) for q in queries])

    def test_outage_without_tier_still_raises(self):
        rng = random.Random("outage-off")
        with _cluster(
            degrade="off",
            service_wrapper=lambda svc, sid, mid: _Down(svc) if sid == 1 else svc,
        ) as cluster:
            cluster.bulk_load(_objects(rng, 40))
            with pytest.raises(ShardUnavailableError):
                cluster.batch([random_box(rng, 2) for _ in range(6)])

    def test_exact_path_bit_identical_with_tier_enabled(self):
        rng = random.Random("bitident")
        objects = _objects(rng, 70)
        queries = [random_box(rng, 2, max_side=60.0) for _ in range(20)]
        with _cluster(degrade="off") as off, _cluster(degrade="bounded") as on:
            off.bulk_load(objects)
            on.bulk_load(objects)
            assert off.batch(queries).results == on.batch(queries).results

    def test_staleness_policy_and_rebuild(self):
        rng = random.Random("staleness")
        policy = ApproxPolicy(max_staleness=5)
        # One shard = one slot, so the pending-mutation arithmetic is exact.
        with ShardedService(
            2,
            1,
            partitioner="hash",
            workers=0,
            registry=MetricsRegistry(),
            degrade="bounded",
            approx_policy=policy,
        ) as cluster:
            cluster.bulk_load(_objects(rng, 50))
            cluster.degraded_batch([random_box(rng, 2)])
            for _ in range(3):
                cluster.insert(random_box(rng, 2), 2.0)
            result = cluster.degraded_batch([random_box(rng, 2)])
            assert result.staleness == 3  # within budget: widened, not rebuilt
            for _ in range(4):
                cluster.insert(random_box(rng, 2), 2.0)
            result = cluster.degraded_batch([random_box(rng, 2)])
            assert result.staleness == 0  # budget blown: stale slots rebuilt
            tier = cluster.approx_tier
            assert tier is not None
            assert all(slot["pending"] == 0 for slot in tier.stats()["per_slot"])

    def test_stats_expose_tier(self):
        with _cluster() as cluster:
            stats = cluster.stats()
            assert stats["degrade"] == "bounded"
            assert stats["approx"]["slots"] == 4


class TestServiceDegradation:
    def test_gate_occupied_degrades_single_query(self):
        rng = random.Random("svc")
        index = BoxSumIndex(2, backend="ba")
        svc = QueryService(
            index,
            max_inflight=1,
            max_queue=0,
            approx=ApproxPolicy(),
            registry=MetricsRegistry(),
        )
        with svc:
            objects = _objects(rng, 50)
            svc.bulk_load(objects)
            exact = svc.box_sum(Box((0.0, 0.0), (100.0, 100.0)))
            svc._gate.admit()
            try:
                degraded = svc.box_sum(Box((0.0, 0.0), (100.0, 100.0)))
            finally:
                svc._gate.release()
            assert isinstance(degraded, ApproxResult)
            assert degraded.reason == "overload"
            assert degraded.results[0].contains(exact)
            assert svc.stats()["degraded"] == 1.0

    def test_no_tier_sheds_as_before(self):
        index = BoxSumIndex(2, backend="ba")
        svc = QueryService(index, max_inflight=1, max_queue=0, registry=MetricsRegistry())
        with svc:
            svc._gate.admit()
            try:
                with pytest.raises(ServiceOverloadedError):
                    svc.box_sum(Box((0.0, 0.0), (1.0, 1.0)))
            finally:
                svc._gate.release()
            with pytest.raises(NotSupportedError):
                svc.degraded_batch([Box((0.0, 0.0), (1.0, 1.0))])

    def test_unrecorded_mutation_desyncs_tier(self):
        index = BoxSumIndex(2, backend="ba")
        svc = QueryService(index, approx=ApproxPolicy(), registry=MetricsRegistry())
        with svc:
            svc.bulk_load([(Box((0.0, 0.0), (1.0, 1.0)), 2.0)])
            assert svc.degraded_batch([Box((0.0, 0.0), (5.0, 5.0))]) is not None
            svc.mutate(lambda: None, op="restore", record=None)
            assert svc.approx.desynced
            with pytest.raises(NotSupportedError):
                svc.degraded_batch([Box((0.0, 0.0), (5.0, 5.0))])
            # A fresh bulk load reseeds the mirror and clears the desync.
            svc.bulk_load([(Box((0.0, 0.0), (1.0, 1.0)), 2.0)])
            result = svc.degraded_batch([Box((0.0, 0.0), (5.0, 5.0))])
            assert result.results[0].contains(2.0)

    def test_sync_epoch_desyncs_tier(self):
        index = BoxSumIndex(2, backend="ba")
        svc = QueryService(index, approx=ApproxPolicy(), registry=MetricsRegistry())
        with svc:
            svc.sync_epoch(17)
            assert svc.approx.desynced
