"""Wire-safety: ApproxResult and BoundedValue survive codec and pickling.

A bounded answer produced on a worker (or cached, or shipped to a log)
must come back as the same *typed* interval — a transport that flattened
it to a float would silently launder an approximate answer into an exact
one, which is exactly what the type exists to prevent.
"""

from __future__ import annotations

import pickle

import pytest

from repro.approx.bounds import ApproxResult
from repro.core.errors import WireProtocolError
from repro.core.geometry import Box
from repro.core.values import BoundedValue
from repro.rpc import codec

BOX = Box((1.0, 2.0), (11.0, 12.0))


def _pack_value(value) -> bytes:
    parts: list = []
    codec._pack_value(parts, value)
    return b"".join(parts)


def _result(with_queries: bool) -> ApproxResult:
    return ApproxResult(
        [BoundedValue(0.5, 2.5, 1.0), BoundedValue.exact(-3.0)],
        reason="outage",
        approximated=[1],
        answered=[0, 2],
        version=41,
        staleness=7,
        probes=16,
        queries=[BOX, Box((0.0, 0.0), (9.0, 9.0))] if with_queries else None,
    )


class TestBoundedValueWire:
    def test_value_codec_round_trip(self):
        bv = BoundedValue(-1.25, 4.75, 3.0)
        payload = _pack_value(bv)
        got, offset = codec._unpack_value(payload, 0)
        assert isinstance(got, BoundedValue)
        assert (got.lo, got.hi, got.estimate) == (bv.lo, bv.hi, bv.estimate)
        assert offset == len(payload)

    def test_value_codec_preserves_exactness(self):
        bv = BoundedValue.exact(7.0)
        got, _ = codec._unpack_value(_pack_value(bv), 0)
        assert got.is_exact and got.estimate == 7.0

    def test_pickle_round_trip(self):
        bv = BoundedValue(1.0, 3.0, 2.0)
        got = pickle.loads(pickle.dumps(bv))
        assert isinstance(got, BoundedValue)
        assert got == bv

    def test_never_decodes_to_float(self):
        got, _ = codec._unpack_value(_pack_value(BoundedValue(0.0, 1.0, 0.5)), 0)
        assert not isinstance(got, float)


class TestApproxResultWire:
    @pytest.mark.parametrize("with_queries", [True, False])
    def test_codec_round_trip(self, with_queries):
        result = _result(with_queries)
        got = codec.decode_approx_result(codec.encode_approx_result(result))
        assert isinstance(got, ApproxResult)
        assert all(isinstance(bv, BoundedValue) for bv in got.results)
        assert got.results == result.results
        assert got.reason == result.reason
        assert got.approximated == result.approximated
        assert got.answered == result.answered
        assert (got.version, got.staleness, got.probes) == (41, 7, 16)
        if with_queries:
            assert [q.low for q in got.queries] == [q.low for q in result.queries]
        else:
            assert got.queries is None

    def test_codec_rejects_trailing_bytes(self):
        payload = codec.encode_approx_result(_result(False)) + b"\x00"
        with pytest.raises(WireProtocolError):
            codec.decode_approx_result(payload)

    def test_pickle_round_trip(self):
        got = pickle.loads(pickle.dumps(_result(True)))
        assert isinstance(got, ApproxResult)
        assert got.reason == "outage"
        assert got.approximated == (1,)
        assert got.results == _result(True).results
        assert got.queries is not None

    def test_empty_batch_round_trips(self):
        result = ApproxResult([], reason="direct", approximated=[0])
        got = codec.decode_approx_result(codec.encode_approx_result(result))
        assert len(got) == 0 and got.reason == "direct"
