"""Satellite acceptance: chaos traffic with bounded degradation.

``repro.bench traffic --chaos --degrade bounded`` must convert overload
sheds and outage blips into typed bounded answers — with zero
silently-inexact results: every sampled answer is either exactly equal to
the oracle or a certified interval containing it (a failed check is a
soundness bug, and the run exits non-zero).
"""

from __future__ import annotations

import pytest

from repro.bench.__main__ import main
from repro.bench.config import BenchConfig
from repro.bench.traffic import run_traffic

pytestmark = pytest.mark.approx

CFG = BenchConfig().scaled(n=600, queries=10)


def test_sheds_convert_to_bounded_answers():
    payload = run_traffic(CFG, degrade="bounded")
    report = payload["report"]
    assert report["totals"]["sheds"] == 0.0
    assert report["resilience"]["bounded_answers"] > 0.0
    assert report["checks"]["sampled"] > 0.0
    assert report["checks"]["failed"] == 0.0
    assert payload["metadata"]["degrade"] == "bounded"


def test_chaos_outages_convert_to_bounded_answers():
    payload = run_traffic(CFG, chaos=True, degrade="bounded")
    report = payload["report"]
    # Chaos-injected outages and gate overruns both land as bounded
    # answers; zero checks may fail — bounded answers are verified by
    # *containment*, so an inexact-but-uncertified answer cannot hide.
    assert report["resilience"]["bounded_answers"] > 0.0
    assert report["totals"]["errors"] == 0.0
    assert report["checks"]["sampled"] > 0.0
    assert report["checks"]["failed"] == 0.0


def test_degrade_off_still_sheds():
    payload = run_traffic(CFG)
    report = payload["report"]
    assert report["resilience"]["bounded_answers"] == 0.0
    assert report["totals"]["sheds"] > 0.0
    assert report["checks"]["failed"] == 0.0


def test_cli_chaos_degrade_exits_clean(capsys):
    rc = main(
        ["traffic", "--chaos", "--degrade", "bounded", "--n", "600", "--queries", "10"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "degrade=bounded" in out
    assert "bounded answer(s)" in out
