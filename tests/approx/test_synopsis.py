"""Soundness and determinism of the synopsis index against a naive oracle."""

import random

import pytest

from repro import Box
from repro.approx.fit import build_grid_fit
from repro.approx.synopsis import build_synopsis, measured_weight
from repro.core.errors import DimensionMismatchError, NotSupportedError
from repro.core.naive import NaiveBoxSum

from ..conftest import random_box


def _random_items(rng, n, dims):
    """Signed-weight (box, value, count) triples, deletes included."""
    items = []
    for _ in range(n):
        box = random_box(rng, dims)
        value = rng.uniform(-5.0, 10.0)
        items.append((box, value, 1))
    return items


def _oracle(items, dims):
    oracle = NaiveBoxSum(dims)
    for box, value, count in items:
        for _ in range(count):
            oracle.insert(box, value)
    return oracle


class TestGridFit:
    def test_empty_fit_returns_zero(self):
        fit = build_grid_fit([], 2)
        assert fit.probe((5.0, 5.0)) == (0.0, 0.0, 0.0)
        assert fit.num_cells == 0

    def test_probe_band_contains_cumulative_sum(self):
        rng = random.Random(11)
        points = [((rng.uniform(0, 100), rng.uniform(0, 100)), rng.uniform(-3, 5)) for _ in range(400)]
        fit = build_grid_fit(points, 2, pieces=6)
        for _ in range(200):
            x = (rng.uniform(-10, 110), rng.uniform(-10, 110))
            exact = sum(w for p, w in points if p[0] < x[0] and p[1] < x[1])
            est, lo, hi = fit.probe(x)
            assert lo <= exact <= hi
            assert lo <= est <= hi

    def test_single_piece_grid(self):
        points = [((1.0,), 2.0), ((2.0,), 3.0)]
        fit = build_grid_fit(points, 1, pieces=1)
        assert fit.num_cells == 1
        est, lo, hi = fit.probe((10.0,))
        assert lo <= 5.0 <= hi


class TestSynopsisSoundness:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    @pytest.mark.parametrize("measure", ["sum", "count"])
    def test_band_contains_exact(self, dims, measure):
        rng = random.Random(100 + dims)
        items = _random_items(rng, 300, dims)
        synopsis = build_synopsis(items, dims, measure=measure)
        oracle = NaiveBoxSum(dims)
        for box, value, count in items:
            oracle.insert(box, measured_weight(value, measure) * count)
        for _ in range(150):
            query = random_box(rng, dims)
            exact = oracle.box_sum(query)
            bounded = synopsis.box_sum(query)
            assert bounded.contains(exact), (query, bounded, exact)

    @pytest.mark.parametrize("degree", [0, 1])
    def test_degrees_sound(self, degree):
        rng = random.Random(7)
        items = _random_items(rng, 250, 2)
        synopsis = build_synopsis(items, 2, degree=degree)
        oracle = _oracle(items, 2)
        for _ in range(100):
            query = random_box(rng, 2)
            assert synopsis.box_sum(query).contains(oracle.box_sum(query))

    def test_coarse_grid_sound(self):
        rng = random.Random(8)
        items = _random_items(rng, 200, 2)
        synopsis = build_synopsis(items, 2, pieces=1)
        oracle = _oracle(items, 2)
        for _ in range(80):
            query = random_box(rng, 2)
            assert synopsis.box_sum(query).contains(oracle.box_sum(query))

    def test_empty_synopsis(self):
        synopsis = build_synopsis([], 2)
        bounded = synopsis.box_sum(Box((0.0, 0.0), (10.0, 10.0)))
        assert bounded.is_exact and bounded.estimate == 0.0

    def test_total_query_is_tight_side(self):
        # A query covering everything probes the far corner of every grid.
        items = [(Box((1.0, 1.0), (2.0, 2.0)), 3.0, 2), (Box((5.0, 5.0), (6.0, 6.0)), -1.0, 1)]
        synopsis = build_synopsis(items, 2)
        bounded = synopsis.box_sum(Box((0.0, 0.0), (100.0, 100.0)))
        assert bounded.contains(5.0)


class TestSynopsisApi:
    def test_deterministic_rebuild(self):
        rng = random.Random(3)
        items = _random_items(rng, 150, 2)
        a = build_synopsis(items, 2)
        b = build_synopsis(items, 2)
        rng2 = random.Random(4)
        queries = [random_box(rng2, 2) for _ in range(40)]
        assert a.box_sum_batch(queries) == b.box_sum_batch(queries)

    def test_batch_matches_single(self):
        rng = random.Random(5)
        items = _random_items(rng, 100, 2)
        synopsis = build_synopsis(items, 2)
        queries = [random_box(rng, 2) for _ in range(10)]
        assert synopsis.box_sum_batch(queries) == [synopsis.box_sum(q) for q in queries]

    def test_dims_mismatch(self):
        synopsis = build_synopsis([], 2)
        with pytest.raises(DimensionMismatchError):
            synopsis.box_sum(Box((0.0,), (1.0,)))

    def test_unsupported_measure(self):
        with pytest.raises(NotSupportedError):
            build_synopsis([], 2, measure="max")

    def test_probes_and_stats(self):
        rng = random.Random(6)
        items = _random_items(rng, 50, 2)
        synopsis = build_synopsis(items, 2, pieces=4, epoch=9, version=50)
        assert synopsis.probes_per_query == 4
        stats = synopsis.stats()
        assert stats["epoch"] == 9 and stats["version"] == 50
        assert stats["cells"] == synopsis.num_cells() > 0
        assert synopsis.nbytes() > 0
