"""Tests for the data-cube range-sum structures (prefix-sum array, BA-tree cube)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, InvalidQueryError
from repro.cube import DynamicCube, PrefixSumCube
from repro.storage import StorageContext


class TestPrefixSumCube:
    def test_from_array_range_sum(self):
        array = np.arange(12, dtype=float).reshape(3, 4)
        cube = PrefixSumCube.from_array(array)
        assert cube.range_sum((0, 0), (2, 3)) == pytest.approx(array.sum())
        assert cube.range_sum((1, 1), (2, 2)) == pytest.approx(array[1:3, 1:3].sum())

    def test_single_cell_range(self):
        array = np.arange(6, dtype=float).reshape(2, 3)
        cube = PrefixSumCube.from_array(array)
        assert cube.range_sum((1, 2), (1, 2)) == pytest.approx(array[1, 2])

    def test_update(self):
        cube = PrefixSumCube((4, 4))
        cube.update((1, 1), 5.0)
        cube.update((2, 3), 2.0)
        assert cube.range_sum((0, 0), (3, 3)) == pytest.approx(7.0)
        assert cube.range_sum((0, 0), (1, 1)) == pytest.approx(5.0)
        assert cube.cell_value((1, 1)) == pytest.approx(5.0)

    def test_update_cost_is_cells_touched(self):
        cube = PrefixSumCube((10, 10))
        assert cube.update((0, 0), 1.0) == 100  # dominates the whole grid
        assert cube.update((9, 9), 1.0) == 1

    def test_validation(self):
        cube = PrefixSumCube((3, 3))
        with pytest.raises(InvalidQueryError):
            cube.range_sum((2, 2), (1, 1))
        with pytest.raises(InvalidQueryError):
            cube.update((5, 0), 1.0)
        with pytest.raises(DimensionMismatchError):
            cube.update((1,), 1.0)
        with pytest.raises(InvalidQueryError):
            PrefixSumCube(())

    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_random_ranges_match_numpy(self, dims):
        rng = random.Random(dims)
        shape = (7,) * dims
        array = np.array([rng.uniform(-2, 5) for _ in range(7**dims)], dtype=float).reshape(shape)
        cube = PrefixSumCube.from_array(array)
        for _ in range(40):
            low = tuple(rng.randint(0, 6) for _ in range(dims))
            high = tuple(rng.randint(l, 6) for l in low)
            region = tuple(slice(l, h + 1) for l, h in zip(low, high))
            assert cube.range_sum(low, high) == pytest.approx(array[region].sum())


class TestDynamicCube:
    def test_updates_and_ranges(self):
        cube = DynamicCube((8, 8), storage=StorageContext(buffer_pages=None))
        cube.update((1, 1), 5.0)
        cube.update((3, 4), 2.0)
        cube.update((1, 1), 1.0)  # accumulate in place
        assert cube.range_sum((0, 0), (7, 7)) == pytest.approx(8.0)
        assert cube.range_sum((0, 0), (2, 2)) == pytest.approx(6.0)
        assert cube.cell_value((1, 1)) == pytest.approx(6.0)

    def test_matches_prefix_sum_cube(self):
        rng = random.Random(11)
        dense = PrefixSumCube((10, 10))
        sparse = DynamicCube(
            (10, 10),
            storage=StorageContext(buffer_pages=None),
            leaf_capacity=4,
            index_capacity=4,
        )
        for _ in range(200):
            cell = (rng.randint(0, 9), rng.randint(0, 9))
            delta = rng.uniform(-3, 5)
            dense.update(cell, delta)
            sparse.update(cell, delta)
        for _ in range(50):
            low = (rng.randint(0, 9), rng.randint(0, 9))
            high = (rng.randint(low[0], 9), rng.randint(low[1], 9))
            assert sparse.range_sum(low, high) == pytest.approx(
                dense.range_sum(low, high), abs=1e-6
            )

    def test_three_dimensional(self):
        rng = random.Random(13)
        dense = PrefixSumCube((5, 5, 5))
        sparse = DynamicCube((5, 5, 5), storage=StorageContext(buffer_pages=None))
        for _ in range(100):
            cell = tuple(rng.randint(0, 4) for _ in range(3))
            dense.update(cell, 1.0)
            sparse.update(cell, 1.0)
        for _ in range(25):
            low = tuple(rng.randint(0, 4) for _ in range(3))
            high = tuple(rng.randint(l, 4) for l in low)
            assert sparse.range_sum(low, high) == pytest.approx(dense.range_sum(low, high))

    def test_space_tracks_nonzero_cells(self):
        ctx = StorageContext(buffer_pages=None)
        cube = DynamicCube((10_000, 10_000), storage=ctx)
        for i in range(20):
            cube.update((i, i), 1.0)
        # A dense 10k x 10k prefix array would need 800 MB; the sparse cube
        # holds 20 points in a handful of pages.
        assert cube.size_bytes < 1024 * 1024

    def test_validation(self):
        cube = DynamicCube((3, 3), storage=StorageContext(buffer_pages=None))
        with pytest.raises(InvalidQueryError):
            cube.range_sum((2, 2), (0, 0))
        with pytest.raises(InvalidQueryError):
            cube.update((3, 0), 1.0)
        with pytest.raises(DimensionMismatchError):
            cube.update((0,), 1.0)
