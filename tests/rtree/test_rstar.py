"""Tests for the R*-tree and its STR bulk loading."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import DimensionMismatchError
from repro.core.geometry import Box
from repro.core.naive import NaiveBoxSum
from repro.rtree import RStarTree
from repro.storage import StorageContext

from ..conftest import random_box, random_objects


def make_tree(dims=2, leaf_capacity=8, internal_capacity=8):
    ctx = StorageContext(page_size=8192, buffer_pages=None)
    return RStarTree(
        ctx, dims, leaf_capacity=leaf_capacity, internal_capacity=internal_capacity
    ), ctx


class TestBasics:
    def test_empty(self):
        tree, _ctx = make_tree()
        assert tree.box_sum(Box((0.0, 0.0), (10.0, 10.0))) == 0.0

    def test_single_object(self):
        tree, _ctx = make_tree()
        tree.insert(Box((1.0, 1.0), (3.0, 3.0)), 5.0)
        assert tree.box_sum(Box((2.0, 2.0), (9.0, 9.0))) == 5.0
        assert tree.box_sum(Box((4.0, 4.0), (9.0, 9.0))) == 0.0

    def test_paper_intersection_semantics(self):
        tree, _ctx = make_tree()
        tree.insert(Box((0.0, 0.0), (5.0, 5.0)), 1.0)
        assert tree.box_sum(Box((5.0, 5.0), (9.0, 9.0))) == 1.0
        assert tree.box_sum(Box((-4.0, -4.0), (0.0, 0.0))) == 0.0

    def test_capacity_validation(self):
        ctx = StorageContext(buffer_pages=None)
        with pytest.raises(ValueError):
            RStarTree(ctx, 2, leaf_capacity=2)

    def test_dims_validation(self):
        tree, _ctx = make_tree()
        with pytest.raises(DimensionMismatchError):
            tree.insert(Box((0.0,), (1.0,)), 1.0)

    def test_delete_as_negation(self):
        tree, _ctx = make_tree()
        box = Box((1.0, 1.0), (3.0, 3.0))
        tree.insert(box, 5.0)
        tree.delete(box, 5.0)
        assert tree.box_sum(Box((0.0, 0.0), (9.0, 9.0))) == pytest.approx(0.0)
        assert len(tree) == 0


@pytest.mark.parametrize("dims", [1, 2, 3])
class TestOracleAgreement:
    def test_insert_path(self, dims, rng):
        tree, _ctx = make_tree(dims=dims)
        oracle = NaiveBoxSum(dims)
        for box, value in random_objects(rng, 500, dims):
            tree.insert(box, value)
            oracle.insert(box, value)
        tree.check_invariants()
        for _ in range(80):
            q = random_box(rng, dims, max_side=40.0)
            assert tree.box_sum(q) == pytest.approx(oracle.box_sum(q), abs=1e-6)

    def test_bulk_path(self, dims, rng):
        objects = random_objects(rng, 500, dims)
        tree, _ctx = make_tree(dims=dims)
        tree.bulk_load(objects)
        tree.check_invariants()
        oracle = NaiveBoxSum(dims)
        for box, value in objects:
            oracle.insert(box, value)
        for _ in range(80):
            q = random_box(rng, dims, max_side=40.0)
            assert tree.box_sum(q) == pytest.approx(oracle.box_sum(q), abs=1e-6)

    def test_bulk_then_insert(self, dims, rng):
        initial = random_objects(rng, 300, dims)
        extra = random_objects(rng, 200, dims)
        tree, _ctx = make_tree(dims=dims)
        tree.bulk_load(initial)
        oracle = NaiveBoxSum(dims)
        for box, value in initial:
            oracle.insert(box, value)
        for box, value in extra:
            tree.insert(box, value)
            oracle.insert(box, value)
        tree.check_invariants()
        for _ in range(60):
            q = random_box(rng, dims, max_side=40.0)
            assert tree.box_sum(q) == pytest.approx(oracle.box_sum(q), abs=1e-6)


class TestStructure:
    def test_forced_reinsertion_happens(self, rng):
        """Skewed inserts trigger the once-per-level reinsertion path."""
        tree, _ctx = make_tree(leaf_capacity=4, internal_capacity=4)
        for i in range(200):
            lo = (float(i), float(i % 7))
            tree.insert(Box(lo, (lo[0] + 1.0, lo[1] + 1.0)), 1.0)
        tree.check_invariants()
        assert tree.height >= 3

    def test_range_report(self, rng):
        tree, _ctx = make_tree()
        objects = random_objects(rng, 200, 2)
        tree.bulk_load(objects)
        query = random_box(rng, 2, max_side=50.0)
        reported = list(tree.range_report(query))
        expected = [(b, v) for b, v in objects if b.intersects(query)]
        assert len(reported) == len(expected)
        assert sum(v for _b, v in reported) == pytest.approx(sum(v for _b, v in expected))

    def test_str_bulk_load_is_compact(self, rng):
        objects = random_objects(rng, 2000, 2)
        loaded, ctx_l = make_tree()
        loaded.bulk_load(objects)
        inserted, ctx_i = make_tree()
        for box, value in objects:
            inserted.insert(box, value)
        assert ctx_l.num_pages <= ctx_i.num_pages

    def test_destroy(self, rng):
        tree, ctx = make_tree()
        tree.bulk_load(random_objects(rng, 500, 2))
        tree.destroy()
        assert ctx.num_pages == 1
        assert tree.box_sum(Box((0.0, 0.0), (100.0, 100.0))) == 0.0
