"""Tests for the aR-tree and the functional aR-tree."""

from __future__ import annotations

import random

import pytest

from repro.core.geometry import Box
from repro.core.naive import NaiveBoxSum, NaiveFunctionalBoxSum
from repro.core.polynomial import Polynomial
from repro.rtree import ARTree, FunctionalARTree, RStarTree
from repro.storage import StorageContext

from ..conftest import random_box, random_objects


def make_ar(dims=2, use_path_buffer=True, page_size=8192, buffer_pages=None, **kw):
    ctx = StorageContext(page_size=page_size, buffer_pages=buffer_pages)
    defaults = dict(leaf_capacity=8, internal_capacity=8)
    defaults.update(kw)
    return ARTree(ctx, dims, use_path_buffer=use_path_buffer, **defaults), ctx


class TestAggregateQueries:
    @pytest.mark.parametrize("dims", [2, 3])
    def test_matches_oracle(self, dims, rng):
        tree, _ctx = make_ar(dims=dims)
        oracle = NaiveBoxSum(dims)
        for box, value in random_objects(rng, 400, dims):
            tree.insert(box, value)
            oracle.insert(box, value)
        tree.check_invariants()
        for _ in range(80):
            q = random_box(rng, dims, max_side=50.0)
            assert tree.box_sum(q) == pytest.approx(oracle.box_sum(q), abs=1e-6)

    def test_agrees_with_plain_rstar(self, rng):
        objects = random_objects(rng, 400, 2)
        ar_tree, _c1 = make_ar()
        ar_tree.bulk_load(objects)
        ctx = StorageContext(buffer_pages=None)
        plain = RStarTree(ctx, 2, leaf_capacity=8, internal_capacity=8)
        plain.bulk_load(objects)
        for _ in range(60):
            q = random_box(rng, 2, max_side=60.0)
            assert ar_tree.box_sum(q) == pytest.approx(plain.box_sum(q), abs=1e-6)

    def test_containment_pruning_reduces_io(self, rng):
        objects = [(random_box(rng, 2, span=1.0, max_side=0.01), 1.0) for _ in range(8000)]
        ar_tree, ctx_a = make_ar(page_size=2048, leaf_capacity=None, internal_capacity=None)
        ar_tree.bulk_load(objects)
        ctx_p = StorageContext(page_size=2048, buffer_pages=None)
        plain = RStarTree(ctx_p, 2)
        plain.bulk_load(objects)
        big = Box((0.05, 0.05), (0.95, 0.95))
        ctx_a.cold_cache()
        ctx_a.reset_stats()
        ar_tree.box_sum(big)
        ctx_p.cold_cache()
        ctx_p.reset_stats()
        plain.box_sum(big)
        assert ctx_a.counter.reads < ctx_p.counter.reads / 2

    def test_aggregated_nodes_have_smaller_fanout(self):
        ctx = StorageContext(buffer_pages=None)
        ar_tree = ARTree(ctx, 2)
        plain = RStarTree(ctx, 2)
        assert ar_tree.internal_capacity < plain.internal_capacity


class TestPathBuffer:
    def test_repeated_query_upper_levels_are_free(self, rng):
        tree, ctx = make_ar(page_size=2048, buffer_pages=4)
        tree.bulk_load([(random_box(rng, 2, span=1.0, max_side=0.005), 1.0) for _ in range(5000)])
        q = Box((0.4, 0.4), (0.400001, 0.400001))
        tree.box_sum(q)
        before = ctx.counter.snapshot()
        tree.box_sum(q)  # identical point query: whole path is remembered
        delta = ctx.counter.delta(before)
        assert delta.reads == 0

    def test_disabled_path_buffer_pays_lru(self, rng):
        tree, ctx = make_ar(page_size=2048, buffer_pages=1, use_path_buffer=False)
        tree.bulk_load([(random_box(rng, 2, span=1.0, max_side=0.005), 1.0) for _ in range(3000)])
        q = Box((0.4, 0.4), (0.400001, 0.400001))
        tree.box_sum(q)
        before = ctx.counter.snapshot()
        tree.box_sum(q)
        delta = ctx.counter.delta(before)
        assert delta.reads > 0


class TestFunctionalARTree:
    @staticmethod
    def _random_poly(rng, degree=2):
        x = Polynomial.variable(2, 0)
        y = Polynomial.variable(2, 1)
        f = Polynomial.constant(2, rng.uniform(0.1, 2.0))
        if degree >= 1:
            f = f + x.scale(rng.uniform(-0.1, 0.1))
        if degree >= 2:
            f = f + (x * y).scale(rng.uniform(-0.01, 0.01))
        return f

    @pytest.mark.parametrize("degree", [0, 1, 2])
    def test_matches_naive_integration(self, degree, rng):
        ctx = StorageContext(buffer_pages=None)
        tree = FunctionalARTree(ctx, 2, leaf_capacity=8, internal_capacity=8)
        oracle = NaiveFunctionalBoxSum(2)
        for _ in range(250):
            box = random_box(rng, 2)
            f = self._random_poly(rng, degree)
            tree.insert(box, f)
            oracle.insert(box, f)
        for _ in range(60):
            q = random_box(rng, 2, max_side=50.0)
            assert tree.functional_box_sum(q) == pytest.approx(
                oracle.functional_box_sum(q), abs=1e-4
            )

    def test_bulk_load_path(self, rng):
        objects = [(random_box(rng, 2), self._random_poly(rng)) for _ in range(300)]
        ctx = StorageContext(buffer_pages=None)
        tree = FunctionalARTree(ctx, 2, leaf_capacity=8, internal_capacity=8)
        tree.bulk_load(objects)
        oracle = NaiveFunctionalBoxSum(2)
        for box, f in objects:
            oracle.insert(box, f)
        for _ in range(50):
            q = random_box(rng, 2, max_side=50.0)
            assert tree.functional_box_sum(q) == pytest.approx(
                oracle.functional_box_sum(q), abs=1e-4
            )

    def test_constant_functions_accepted(self):
        ctx = StorageContext(buffer_pages=None)
        tree = FunctionalARTree(ctx, 2, leaf_capacity=8, internal_capacity=8)
        tree.insert(Box((0.0, 0.0), (2.0, 3.0)), 4.0)
        # Full containment: 4 * area = 24.
        assert tree.functional_box_sum(Box((-1.0, -1.0), (9.0, 9.0))) == (pytest.approx(24.0))

    def test_partial_overlap_integrates_exactly(self):
        ctx = StorageContext(buffer_pages=None)
        tree = FunctionalARTree(ctx, 2, leaf_capacity=8, internal_capacity=8)
        f = Polynomial.variable(2, 0) - Polynomial.constant(2, 2.0)
        tree.insert(Box((5.0, 3.0), (20.0, 15.0)), f)
        # The paper's Figure 3b: (11-7) * ∫_15^20 (x-2) dx = 310.
        assert tree.functional_box_sum(Box((15.0, 7.0), (30.0, 11.0))) == (pytest.approx(310.0))

    def test_degree_two_reduces_leaf_fanout(self):
        ctx = StorageContext(buffer_pages=None)
        small = FunctionalARTree(ctx, 2, function_bytes=18)
        large = FunctionalARTree(ctx, 2, function_bytes=158)
        assert large.leaf_capacity < small.leaf_capacity

    def test_delete_cancels(self):
        ctx = StorageContext(buffer_pages=None)
        tree = FunctionalARTree(ctx, 2, leaf_capacity=8, internal_capacity=8)
        box = Box((0.0, 0.0), (4.0, 4.0))
        tree.insert(box, 3.0)
        tree.delete(box, 3.0)
        assert tree.functional_box_sum(Box((0.0, 0.0), (9.0, 9.0))) == (pytest.approx(0.0))
