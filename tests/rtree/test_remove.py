"""Tests for physical deletion (FindLeaf + CondenseTree) in the R-tree family."""

from __future__ import annotations

import random

import pytest

from repro.core.geometry import Box
from repro.rtree import ARTree, RStarTree
from repro.storage import StorageContext

from ..conftest import random_box, random_objects


def make_tree(cls=RStarTree, **kw):
    ctx = StorageContext(buffer_pages=None)
    defaults = dict(leaf_capacity=6, internal_capacity=6)
    defaults.update(kw)
    return cls(ctx, 2, **defaults), ctx


class TestRemoveBasics:
    def test_remove_existing(self):
        tree, _ctx = make_tree()
        box = Box((1.0, 1.0), (3.0, 3.0))
        tree.insert(box, 5.0)
        assert tree.remove(box, 5.0)
        assert len(tree) == 0
        assert tree.box_sum(Box((0.0, 0.0), (9.0, 9.0))) == pytest.approx(0.0)

    def test_remove_missing_returns_false(self):
        tree, _ctx = make_tree()
        tree.insert(Box((1.0, 1.0), (3.0, 3.0)), 5.0)
        assert not tree.remove(Box((1.0, 1.0), (3.0, 3.0)), 6.0)  # wrong value
        assert not tree.remove(Box((2.0, 2.0), (4.0, 4.0)), 5.0)  # wrong box
        assert len(tree) == 1

    def test_remove_one_of_duplicates(self):
        tree, _ctx = make_tree()
        box = Box((1.0, 1.0), (3.0, 3.0))
        tree.insert(box, 5.0)
        tree.insert(box, 5.0)
        assert tree.remove(box, 5.0)
        assert tree.box_sum(Box((0.0, 0.0), (9.0, 9.0))) == pytest.approx(5.0)

    def test_remove_from_empty(self):
        tree, _ctx = make_tree()
        assert not tree.remove(Box((0.0, 0.0), (1.0, 1.0)), 1.0)


@pytest.mark.parametrize("cls", [RStarTree, ARTree])
class TestCondense:
    def test_interleaved_removals_match_oracle(self, cls, rng):
        tree, _ctx = make_tree(cls)
        live = random_objects(rng, 350, 2)
        for box, value in live:
            tree.insert(box, value)
        rng.shuffle(live)
        while len(live) > 20:
            box, value = live.pop()
            assert tree.remove(box, value)
            if len(live) % 50 == 0:
                tree.check_invariants()
                q = random_box(rng, 2, max_side=50.0)
                expected = sum(v for b, v in live if b.intersects(q))
                assert tree.box_sum(q) == pytest.approx(expected, abs=1e-6)
        tree.check_invariants()
        assert len(tree) == len(live)

    def test_empty_and_reuse(self, cls, rng):
        tree, ctx = make_tree(cls)
        objects = random_objects(rng, 200, 2)
        for box, value in objects:
            tree.insert(box, value)
        for box, value in objects:
            assert tree.remove(box, value)
        tree.check_invariants()
        assert len(tree) == 0
        assert tree.total() == pytest.approx(0.0, abs=1e-9)
        assert ctx.num_pages <= 2  # root (+ at most one stale page)
        tree.insert(Box((1.0, 1.0), (2.0, 2.0)), 3.0)
        assert tree.box_sum(Box((0.0, 0.0), (9.0, 9.0))) == pytest.approx(3.0)

    def test_root_collapses(self, cls, rng):
        tree, _ctx = make_tree(cls)
        objects = random_objects(rng, 300, 2)
        for box, value in objects:
            tree.insert(box, value)
        tall = tree.height
        for box, value in objects[: len(objects) - 5]:
            assert tree.remove(box, value)
        tree.check_invariants()
        assert tree.height < tall

    def test_remove_after_bulk_load(self, cls, rng):
        tree, _ctx = make_tree(cls)
        objects = random_objects(rng, 250, 2)
        tree.bulk_load(objects)
        for box, value in objects[:100]:
            assert tree.remove(box, value)
        tree.check_invariants()
        q = random_box(rng, 2, max_side=60.0)
        expected = sum(v for b, v in objects[100:] if b.intersects(q))
        assert tree.box_sum(q) == pytest.approx(expected, abs=1e-6)
