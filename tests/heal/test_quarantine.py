"""Crash-loop detection: exhausted repairs quarantine, never thrash."""

from __future__ import annotations

from repro.bench.heal import VirtualClock
from repro.core.aggregator import BoxSumIndex
from repro.heal import HealPolicy, HealSupervisor
from repro.heal.model import QUARANTINED
from repro.obs import MetricsRegistry
from repro.resilience import BreakerConfig, CrashableService, ResilienceConfig
from repro.resilience.breaker import FORCED_OPEN
from repro.service import QueryService
from repro.shard import ShardedService


class _Unrevivable(CrashableService):
    """A worker whose respawn always fails — the crash-loop case."""

    def restart(self) -> int:
        raise RuntimeError("respawn denied by the scheduler")


def _cluster(tmp_path, wrapper, *, replog=True, registry=None):
    kwargs = {}
    if replog:
        kwargs["replog_dir"] = str(tmp_path / "logs")
    return ShardedService(
        2,
        1,
        partitioner="hash",
        workers=0,
        replicas=2,
        registry=registry if registry is not None else MetricsRegistry(),
        resilience=ResilienceConfig(
            max_attempts=4,
            backoff_base_s=0.0,
            breaker=BreakerConfig(window=8, min_requests=4, cooldown_s=0.0),
            seed=0,
        ),
        service_wrapper=wrapper,
        **kwargs,
    )


def _supervisor(cluster, registry, **overrides):
    clock = VirtualClock()
    kwargs = dict(
        tick_interval_s=0.01,
        audit_every_ticks=1,
        audit_probes=4,
        backoff_base_s=0.0,
        max_repair_attempts=3,
        failure_window_s=1000.0,
        auto_start=False,
    )
    kwargs.update(overrides)
    supervisor = HealSupervisor(
        cluster, HealPolicy(**kwargs), registry=registry, clock=clock, sleep=clock.sleep
    )
    return supervisor, clock


def _unrevivable_wrapper(registry, broken):
    def make_fresh():
        return QueryService(BoxSumIndex(2, backend="ba"), registry=registry)

    def wrapper(service, sid, member):
        if member == 1:
            crashable = _Unrevivable(make_fresh, initial=service)
            broken.append(crashable)
            return crashable
        return service

    return wrapper


class TestCrashLoop:
    def test_exhausted_repairs_quarantine_not_thrash(self, tmp_path):
        registry = MetricsRegistry()
        broken = []
        wrapper = _unrevivable_wrapper(registry, broken)
        with _cluster(tmp_path, wrapper, registry=registry) as cluster:
            supervisor, clock = _supervisor(cluster, registry)
            broken[0].kill()
            for _ in range(3):
                supervisor.tick()
                clock.sleep(0.01)
            stats = supervisor.stats()
            assert stats["repairs_failed"] == 3
            assert stats["quarantines"] == 1
            assert supervisor.quarantined() == ((0, 1),)
            health = {(c.shard, c.member): c for c in supervisor.health()}
            component = health[(0, 1)]
            assert component.state == QUARANTINED
            assert "crash loop" in component.reason
            assert cluster.groups[0].breakers[1].state == FORCED_OPEN
            # Quarantine tolerates convergence but not full health.
            assert supervisor.converged
            assert not supervisor.fully_healthy
            # Further ticks never touch the quarantined member again.
            for _ in range(5):
                supervisor.tick()
                clock.sleep(0.01)
            after = supervisor.stats()
            assert after["repairs_failed"] == 3
            assert after["quarantines"] == 1

    def test_backoff_spaces_repair_attempts(self, tmp_path):
        registry = MetricsRegistry()
        broken = []
        wrapper = _unrevivable_wrapper(registry, broken)
        with _cluster(tmp_path, wrapper, registry=registry) as cluster:
            supervisor, clock = _supervisor(
                cluster,
                registry,
                backoff_base_s=10.0,
                backoff_max_s=60.0,
                backoff_jitter=0.0,
                max_repair_attempts=5,
            )
            broken[0].kill()
            supervisor.tick()
            # Within the backoff horizon: detection fires, repair waits.
            supervisor.tick()
            supervisor.tick()
            assert supervisor.stats()["repairs_failed"] == 1
            clock.sleep(10.0)
            supervisor.tick()
            assert supervisor.stats()["repairs_failed"] == 2

    def test_unrepairable_member_quarantines_immediately(self, tmp_path):
        # No replication log: there is nothing to restore a crashed member
        # from, so the repair raises NotSupportedError and retrying is
        # pointless — one tick, straight to quarantine.
        registry = MetricsRegistry()
        broken = []
        wrapper = _unrevivable_wrapper(registry, broken)
        with _cluster(tmp_path, wrapper, replog=False, registry=registry) as cluster:
            supervisor, _ = _supervisor(cluster, registry)
            broken[0].kill()
            events = supervisor.tick()
            assert any(e.kind == "quarantined" for e in events)
            stats = supervisor.stats()
            assert stats["quarantines"] == 1
            assert stats["repairs_failed"] == 0
            component = {(c.shard, c.member): c for c in supervisor.health()}[(0, 1)]
            assert component.state == QUARANTINED
            assert "repair impossible" in component.reason

    def test_replace_quarantined_bootstraps_a_new_member(self, tmp_path):
        registry = MetricsRegistry()
        broken = []
        wrapper = _unrevivable_wrapper(registry, broken)
        with _cluster(tmp_path, wrapper, registry=registry) as cluster:
            supervisor, clock = _supervisor(cluster, registry, replace_quarantined=True)
            group = cluster.groups[0]
            members_before = len(group.members)
            broken[0].kill()
            for _ in range(4):
                supervisor.tick()
                clock.sleep(0.01)
            assert supervisor.stats()["quarantines"] == 1
            assert supervisor.stats()["members_added"] == 1
            assert len(group.members) == members_before + 1
            assert any(e.kind == "member_added" for e in supervisor.events())
