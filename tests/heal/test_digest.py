"""Digest-audit property tests: digest equality tracks fold equality.

Across every index family, two services fed the same *multiset* of
admitted mutations must agree on the 64-bit stream digest and on every
answer, regardless of application order — and a service that silently
lost one write must disagree on the digest even while most answers still
look right.  This is the property the supervisor's divergence audit
stands on.
"""

from __future__ import annotations

import random

import pytest

from repro.core.aggregator import BoxSumIndex
from repro.core.geometry import Box
from repro.obs import MetricsRegistry
from repro.replog.digest import StateDigest, identity_token
from repro.replog.records import BulkLoadOp, DeleteOp, InsertOp
from repro.service import QueryService

FAMILIES = ["ba", "ecdf-bu", "ecdf-bq", "bptree", "ar"]


def _dims(backend: str) -> int:
    return 1 if backend == "bptree" else 2


def _service(backend: str) -> QueryService:
    return QueryService(
        BoxSumIndex(_dims(backend), backend=backend), registry=MetricsRegistry()
    )


def _objects(rng: random.Random, n: int, dims: int):
    out = []
    for _ in range(n):
        low = [rng.uniform(0.0, 80.0) for _ in range(dims)]
        high = [lo + rng.uniform(0.5, 15.0) for lo in low]
        out.append((Box(low, high), float(rng.randint(1, 9))))
    return out


def _queries(rng: random.Random, n: int, dims: int):
    return [box for box, _ in _objects(rng, n, dims)]


@pytest.mark.parametrize("backend", FAMILIES)
class TestDigestTracksFold:
    def test_order_insensitive_and_answers_agree(self, backend):
        rng = random.Random(11)
        dims = _dims(backend)
        objects = _objects(rng, 40, dims)
        doomed = rng.sample(objects, 12)
        a, b = _service(backend), _service(backend)
        for box, value in objects:
            a.insert(box, value)
        for box, value in doomed:
            a.delete(box, value)
        shuffled = list(objects)
        rng.shuffle(shuffled)
        for box, value in shuffled:
            b.insert(box, value)
        for box, value in reversed(doomed):
            b.delete(box, value)
        assert a.state_digest == b.state_digest
        for query in _queries(rng, 12, dims):
            assert a.box_sum(query) == b.box_sum(query)

    def test_lost_write_changes_digest(self, backend):
        rng = random.Random(13)
        dims = _dims(backend)
        objects = _objects(rng, 25, dims)
        honest, lossy = _service(backend), _service(backend)
        dropped = rng.randrange(len(objects))
        for i, (box, value) in enumerate(objects):
            honest.insert(box, value)
            if i != dropped:
                lossy.insert(box, value)
        assert honest.state_digest != lossy.state_digest
        # Applying the lost write repairs the digest — it is the multiset
        # that is hashed, not the history.
        box, value = objects[dropped]
        lossy.insert(box, value)
        assert honest.state_digest == lossy.state_digest

    def test_delete_cancels_insert(self, backend):
        rng = random.Random(17)
        dims = _dims(backend)
        service = _service(backend)
        baseline_objects = _objects(rng, 10, dims)
        for box, value in baseline_objects:
            service.insert(box, value)
        baseline = service.state_digest
        box, value = _objects(rng, 1, dims)[0]
        service.insert(box, value)
        assert service.state_digest != baseline
        service.delete(box, value)
        assert service.state_digest == baseline

    def test_bulk_load_resets_history(self, backend):
        rng = random.Random(19)
        dims = _dims(backend)
        objects = _objects(rng, 30, dims)
        incremental, loaded = _service(backend), _service(backend)
        for box, value in objects:
            incremental.insert(box, value)
        # A different prior history must not leak through a bulk load.
        for box, value in _objects(rng, 7, dims):
            loaded.insert(box, value)
        loaded.bulk_load(objects)
        assert incremental.state_digest == loaded.state_digest
        for query in _queries(rng, 8, dims):
            assert incremental.box_sum(query) == loaded.box_sum(query)

    def test_matches_record_stream_fold(self, backend):
        """The service digest equals folding its op records into StateDigest."""
        rng = random.Random(23)
        dims = _dims(backend)
        objects = _objects(rng, 20, dims)
        service = _service(backend)
        reference = StateDigest()
        reference.note(BulkLoadOp(tuple(objects[:5])))
        service.bulk_load(objects[:5])
        for box, value in objects[5:]:
            service.insert(box, value)
            reference.note(InsertOp(box, value))
        box, value = objects[7]
        service.delete(box, value)
        reference.note(DeleteOp(box, value))
        assert service.state_digest == reference.value


class TestIdentityToken:
    def test_stable_and_value_sensitive(self):
        box = Box((1.0, 2.0), (3.0, 4.0))
        assert identity_token(box, 5.0) == identity_token(Box((1.0, 2.0), (3.0, 4.0)), 5.0)
        assert identity_token(box, 5.0) != identity_token(box, 6.0)
        assert identity_token(box, 5.0) != identity_token(Box((1.0, 2.0), (3.0, 4.5)), 5.0)

    def test_dims_disambiguated(self):
        # A 1-d box must not collide with a 2-d box packing the same doubles.
        assert identity_token(Box((1.0,), (2.0,)), 3.0) != identity_token(
            Box((1.0, 2.0), (3.0, 3.0)), 3.0
        )
