"""Supervisor detect → repair → verify tests, driven in virtual time."""

from __future__ import annotations

import pytest

from repro.bench.heal import VirtualClock
from repro.core.aggregator import BoxSumIndex
from repro.core.errors import NotSupportedError
from repro.core.geometry import Box
from repro.heal import HealPolicy, HealSupervisor
from repro.heal.model import HEALTHY, SUSPECT
from repro.inspect import dump
from repro.obs import MetricsRegistry
from repro.resilience import BreakerConfig, CrashableService, ResilienceConfig
from repro.resilience.breaker import CLOSED, FORCED_OPEN
from repro.service import QueryService
from repro.shard import ShardedService

from ..conftest import random_box


def _fast_policy(**overrides) -> HealPolicy:
    kwargs = dict(
        tick_interval_s=0.01,
        audit_every_ticks=1,
        audit_probes=4,
        backoff_base_s=0.0,
        auto_start=False,
    )
    kwargs.update(overrides)
    return HealPolicy(**kwargs)


def _cluster(tmp_path, wrapper=None, *, replog=True, registry=None, **kwargs):
    kwargs.setdefault("partitioner", "hash")
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("replicas", 2)
    if replog:
        kwargs.setdefault("replog_dir", str(tmp_path / "logs"))
    kwargs.setdefault(
        "resilience",
        ResilienceConfig(
            max_attempts=4,
            backoff_base_s=0.0,
            breaker=BreakerConfig(window=8, min_requests=4, cooldown_s=0.0),
            seed=0,
        ),
    )
    return ShardedService(
        2,
        2,
        registry=registry if registry is not None else MetricsRegistry(),
        service_wrapper=wrapper,
        **kwargs,
    )


def _crashable_wrapper(registry, crashables):
    def make_fresh():
        return QueryService(BoxSumIndex(2, backend="ba"), registry=registry)

    def wrapper(service, sid, member):
        if member == 1:
            crashable = CrashableService(make_fresh, initial=service)
            crashables.append(crashable)
            return crashable
        return service

    return wrapper


def _supervisor(cluster, registry, **overrides):
    clock = VirtualClock()
    supervisor = HealSupervisor(
        cluster,
        _fast_policy(**overrides),
        registry=registry,
        clock=clock,
        sleep=clock.sleep,
    )
    return supervisor, clock


class TestDetectRepair:
    def test_killed_member_is_detected_then_repaired(self, tmp_path, rng):
        registry = MetricsRegistry()
        crashables = []
        wrapper = _crashable_wrapper(registry, crashables)
        with _cluster(tmp_path, wrapper, registry=registry) as cluster:
            objects = [(random_box(rng, 2), 1.0) for _ in range(40)]
            for box, value in objects:
                cluster.insert(box, value)
            supervisor, _ = _supervisor(cluster, registry)
            crashables[0].kill()
            before = supervisor.health()
            assert any(
                c.state == SUSPECT and c.reason == "worker process dead" for c in before
            )
            events = supervisor.tick()
            assert any(e.kind == "repaired" for e in events)
            assert supervisor.fully_healthy
            assert supervisor.stats()["repairs_ok"] >= 1
            # Repaired state answers bit-exactly.
            query = Box((-1000.0, -1000.0), (1000.0, 1000.0))
            assert cluster.box_sum(query) == float(len(objects))

    def test_converged_report_after_kill(self, tmp_path, rng):
        registry = MetricsRegistry()
        crashables = []
        wrapper = _crashable_wrapper(registry, crashables)
        with _cluster(tmp_path, wrapper, registry=registry) as cluster:
            for _ in range(10):
                cluster.insert(random_box(rng, 2), 2.0)
            supervisor, _ = _supervisor(cluster, registry)
            for crashable in crashables:
                crashable.kill()
            report = supervisor.run_until_converged(budget_s=5.0)
            assert report.converged and report.fully_healthy
            assert report.repairs >= len(crashables)
            assert report.quarantines == 0
            assert report.states[HEALTHY] == sum(report.states.values())

    def test_breaker_open_member_is_probed_closed(self, tmp_path):
        registry = MetricsRegistry()
        with _cluster(tmp_path, registry=registry) as cluster:
            supervisor, _ = _supervisor(cluster, registry)
            breaker = cluster.groups[0].breakers[0]
            for _ in range(8):
                breaker.record_failure()
            assert breaker.state != CLOSED
            assert any(
                c.state == SUSPECT and c.reason.startswith("breaker") for c in supervisor.health()
            )
            # cooldown_s=0 -> half-open immediately; two probe successes close.
            supervisor.tick()
            supervisor.tick()
            assert breaker.state == CLOSED
            assert supervisor.fully_healthy
            assert supervisor.stats()["probes_ok"] >= 2

    def test_healthy_cluster_is_a_noop(self, tmp_path):
        registry = MetricsRegistry()
        with _cluster(tmp_path, registry=registry) as cluster:
            supervisor, _ = _supervisor(cluster, registry)
            assert supervisor.tick() == []
            stats = supervisor.stats()
            assert stats["repairs_ok"] == 0 and stats["quarantines"] == 0
            assert stats["converged"] and stats["fully_healthy"]


class TestRestartWorkerAPI:
    def test_replicated_restart_worker_repairs_crashed_members(self, tmp_path, rng):
        registry = MetricsRegistry()
        crashables = []
        wrapper = _crashable_wrapper(registry, crashables)
        with _cluster(tmp_path, wrapper, registry=registry) as cluster:
            for _ in range(20):
                cluster.insert(random_box(rng, 2), 1.0)
            crashables[0].kill()
            report = cluster.restart_worker(0)
            assert report.shard == 0
            assert 1 in report.members
            assert not crashables[0].crashed
            assert not cluster.groups[0].is_poisoned(1)

    def test_restart_worker_requires_replication_log(self, tmp_path):
        with _cluster(tmp_path, replog=False) as cluster:
            with pytest.raises(NotSupportedError):
                cluster.restart_worker(0)

    def test_restart_worker_rejects_in_process_shards(self, tmp_path):
        with ShardedService(
            2,
            2,
            partitioner="hash",
            workers=0,
            registry=MetricsRegistry(),
            replog_dir=str(tmp_path / "logs"),
        ) as cluster:
            with pytest.raises(NotSupportedError):
                cluster.restart_worker(0)


class TestClusterIntegration:
    def test_heal_policy_starts_and_stops_with_cluster(self, tmp_path):
        registry = MetricsRegistry()
        cluster = _cluster(
            tmp_path, registry=registry, heal=HealPolicy(tick_interval_s=0.05)
        )
        try:
            supervisor = cluster.heal_supervisor
            assert supervisor is not None and supervisor.running
            assert "heal" in cluster.stats()
        finally:
            cluster.close()
        assert not supervisor.running

    def test_stop_is_idempotent_and_safe_before_start(self, tmp_path):
        registry = MetricsRegistry()
        with _cluster(tmp_path, registry=registry) as cluster:
            supervisor, _ = _supervisor(cluster, registry)
            assert supervisor.stop()
            supervisor.start()
            supervisor.start()  # second start is a no-op
            assert supervisor.stop()
            assert supervisor.stop()

    def test_dump_heal_renders(self, tmp_path):
        registry = MetricsRegistry()
        crashables = []
        wrapper = _crashable_wrapper(registry, crashables)
        with _cluster(tmp_path, wrapper, registry=registry) as cluster:
            supervisor, _ = _supervisor(cluster, registry)
            crashables[0].kill()
            supervisor.tick()
            text = dump(supervisor)
            assert "heal" in text
            assert "healthy" in text
            assert "repaired" in text or "repairs" in text

    def test_metrics_published(self, tmp_path):
        registry = MetricsRegistry()
        crashables = []
        wrapper = _crashable_wrapper(registry, crashables)
        with _cluster(tmp_path, wrapper, registry=registry) as cluster:
            supervisor, _ = _supervisor(cluster, registry)
            crashables[0].kill()
            supervisor.tick()
            text = registry.render()
            assert "repro_heal_ticks" in text
            assert "repro_heal_repairs" in text
            assert "repro_heal_members" in text
            assert "repro_heal_converged" in text


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tick_interval_s": 0.0},
            {"audit_every_ticks": -1},
            {"backoff_jitter": 1.0},
            {"backoff_multiplier": 0.5},
            {"backoff_max_s": 0.01, "backoff_base_s": 0.05},
            {"max_repair_attempts": 0},
            {"failure_window_s": 0.0},
            {"repair_budget_s": 0.0},
        ],
    )
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            HealPolicy(**kwargs)

    def test_quarantined_breaker_is_forced_open_constant(self):
        # The constant the supervisor pins quarantined members to.
        assert FORCED_OPEN == "forced_open"
