"""Seeded chaos soaks: the acceptance gate for the self-healing loop.

Kills, silent write drops and read faults all land on a replicated
cluster while the supervisor runs in virtual time; the run must stay
bit-exact against an unsharded oracle and end fully healthy with zero
operator intervention.  Marked ``heal`` so CI's torture matrix repeats
the soak across many seeds.
"""

from __future__ import annotations

import pytest

from repro.bench.heal import run_heal_soak

pytestmark = pytest.mark.heal


@pytest.mark.parametrize("seed", [0, 3, 7])
def test_soak_converges_exact_and_fully_healthy(seed):
    out = run_heal_soak(seed=seed)
    assert out["inexact"] == 0
    assert out["converged"] == 1.0
    assert out["fully_healthy"] == 1.0
    # The soak must actually have injected chaos for the pass to mean
    # anything.
    assert out["kills"] > 0
    assert out["drops"] > 0
    assert out["read_faults"] > 0


def test_soak_heals_through_the_supervisor():
    out = run_heal_soak(seed=1)
    # Every kill needs a repair, and the silent drops must be caught by
    # the digest audit (they are invisible to every other signal).
    assert out["repairs"] >= out["kills"]
    assert out["diverged_caught"] > 0
    assert out["quarantines"] == 0
