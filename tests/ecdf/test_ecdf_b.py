"""Tests for the disk-based dynamic ECDF-Bu- and ECDF-Bq-trees."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import DimensionMismatchError
from repro.core.naive import NaiveDominanceSum
from repro.core.polynomial import Polynomial
from repro.ecdf import EcdfBTree
from repro.storage import StorageContext


def make_tree(dims, variant, **kwargs):
    ctx = StorageContext(page_size=8192, buffer_pages=None)
    defaults = dict(leaf_capacity=4, internal_capacity=4, spill_bytes=64)
    defaults.update(kwargs)
    return EcdfBTree(ctx, dims, variant=variant, **defaults), ctx


def _random_points(rng, n, dims, span=100.0):
    return [
        (tuple(rng.uniform(0, span) for _ in range(dims)), rng.uniform(-2, 5))
        for _ in range(n)
    ]


class TestValidation:
    def test_bad_variant(self):
        ctx = StorageContext(buffer_pages=None)
        with pytest.raises(ValueError):
            EcdfBTree(ctx, 2, variant="x")

    def test_bad_dims(self):
        ctx = StorageContext(buffer_pages=None)
        with pytest.raises(DimensionMismatchError):
            EcdfBTree(ctx, 0)

    def test_point_arity_checked(self):
        tree, _ctx = make_tree(2, "u")
        with pytest.raises(DimensionMismatchError):
            tree.insert((1.0,), 1.0)
        with pytest.raises(DimensionMismatchError):
            tree.dominance_sum((1.0, 2.0, 3.0))


class TestOneDimensionalDelegation:
    def test_1d_tree_is_bptree(self):
        tree, _ctx = make_tree(1, "u")
        for i in range(50):
            tree.insert((float(i),), 1.0)
        assert tree.dominance_sum((25.0,)) == 25.0
        assert tree.total() == 50.0
        assert len(tree) == 50

    def test_1d_accepts_scalars_too(self):
        tree, _ctx = make_tree(1, "q")
        tree.insert(3.0, 2.0)
        assert tree.dominance_sum(4.0) == 2.0

    def test_1d_collect_yields_tuples(self):
        tree, _ctx = make_tree(1, "u")
        tree.insert((3.0,), 2.0)
        assert list(tree.collect()) == [((3.0,), 2.0)]


@pytest.mark.parametrize("variant", ["u", "q"])
class TestCorrectness:
    @pytest.mark.parametrize("dims", [2, 3])
    def test_insert_path_matches_oracle(self, variant, dims):
        rng = random.Random(17 + dims)
        tree, _ctx = make_tree(dims, variant)
        oracle = NaiveDominanceSum(dims)
        for p, v in _random_points(rng, 350, dims):
            tree.insert(p, v)
            oracle.insert(p, v)
        tree.check_invariants()
        for _ in range(80):
            q = tuple(rng.uniform(-5, 105) for _ in range(dims))
            assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum(q), abs=1e-6)

    @pytest.mark.parametrize("dims", [2, 3])
    def test_bulk_load_matches_oracle(self, variant, dims):
        rng = random.Random(23 + dims)
        points = _random_points(rng, 350, dims)
        tree, _ctx = make_tree(dims, variant)
        tree.bulk_load(points)
        tree.check_invariants()
        oracle = NaiveDominanceSum(dims)
        oracle.bulk_load(points)
        for _ in range(80):
            q = tuple(rng.uniform(-5, 105) for _ in range(dims))
            assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum(q), abs=1e-6)

    def test_bulk_load_then_inserts(self, variant):
        rng = random.Random(29)
        points = _random_points(rng, 200, 2)
        more = _random_points(rng, 150, 2)
        tree, _ctx = make_tree(2, variant)
        tree.bulk_load(points)
        oracle = NaiveDominanceSum(2)
        oracle.bulk_load(points)
        for p, v in more:
            tree.insert(p, v)
            oracle.insert(p, v)
        tree.check_invariants()
        for _ in range(60):
            q = (rng.uniform(-5, 105), rng.uniform(-5, 105))
            assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum(q), abs=1e-6)

    def test_duplicate_points_merge(self, variant):
        tree, _ctx = make_tree(2, variant)
        tree.insert((1.0, 1.0), 2.0)
        tree.insert((1.0, 1.0), 3.0)
        assert len(tree) == 1
        assert tree.dominance_sum((2.0, 2.0)) == 5.0

    def test_duplicate_first_coordinates(self, variant):
        """Many points sharing x exercise the unsplittable-leaf handling."""
        rng = random.Random(31)
        points = [((float(rng.randint(0, 3)), rng.uniform(0, 100)), 1.0) for _ in range(120)]
        tree, _ctx = make_tree(2, variant)
        oracle = NaiveDominanceSum(2)
        for p, v in points:
            tree.insert(p, v)
            oracle.insert(p, v)
        for x in (-1.0, 0.0, 1.5, 2.0, 4.0):
            for y in (0.0, 50.0, 101.0):
                assert tree.dominance_sum((x, y)) == pytest.approx(oracle.dominance_sum((x, y)))

    def test_negative_values_cancel(self, variant):
        tree, _ctx = make_tree(2, variant)
        tree.insert((5.0, 5.0), 4.0)
        tree.insert((5.0, 5.0), -4.0)
        assert tree.dominance_sum((10.0, 10.0)) == pytest.approx(0.0)

    def test_polynomial_values(self, variant):
        ctx = StorageContext(buffer_pages=None)
        tree = EcdfBTree(
            ctx,
            2,
            variant=variant,
            zero=Polynomial(2),
            value_bytes=64,
            leaf_capacity=4,
            internal_capacity=4,
        )
        x = Polynomial.variable(2, 0)
        for i in range(40):
            tree.insert((float(i), float(i)), x)
        agg = tree.dominance_sum((10.0, 99.0))
        assert agg.evaluate((1.0, 0.0)) == pytest.approx(10.0)

    def test_destroy_frees_all_pages(self, variant):
        tree, ctx = make_tree(2, variant)
        rng = random.Random(37)
        for p, v in _random_points(rng, 200, 2):
            tree.insert(p, v)
        assert ctx.num_pages > 5
        tree.destroy()
        assert ctx.num_pages == 1
        assert ctx.slab.live_allocations() == 0

    def test_collect_returns_all_points(self, variant):
        tree, _ctx = make_tree(2, variant)
        rng = random.Random(41)
        points = _random_points(rng, 100, 2)
        tree.bulk_load(points)
        collected = list(tree.collect())
        assert len(collected) == len({p for p, _v in points})
        assert sum(v for _p, v in collected) == pytest.approx(sum(v for _p, v in points))


class TestVariantAsymmetry:
    """The u/q distinction of Figure 6, observed through I/O counters."""

    @staticmethod
    def _loaded(variant, buffer_pages=None):
        ctx = StorageContext(page_size=8192, buffer_pages=buffer_pages)
        tree = EcdfBTree(
            ctx,
            2,
            variant=variant,
            leaf_capacity=16,
            internal_capacity=16,
            spill_bytes=128,
        )
        rng = random.Random(43)
        tree.bulk_load(_random_points(rng, 3000, 2))
        return tree, ctx

    def test_bq_uses_more_space_than_bu(self):
        _tu, ctx_u = self._loaded("u")
        _tq, ctx_q = self._loaded("q")
        assert ctx_q.num_pages > ctx_u.num_pages

    def test_bq_queries_fewer_borders_than_bu(self):
        tree_u, ctx_u = self._loaded("u")
        tree_q, ctx_q = self._loaded("q")
        rng = random.Random(47)
        queries = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(50)]
        for tree, ctx in ((tree_u, ctx_u), (tree_q, ctx_q)):
            ctx.cold_cache()
            ctx.reset_stats()
        for q in queries:
            tree_u.dominance_sum(q)
            tree_q.dominance_sum(q)
        assert ctx_q.counter.accesses < ctx_u.counter.accesses

    def test_bu_updates_fewer_borders_than_bq(self):
        tree_u, ctx_u = self._loaded("u")
        tree_q, ctx_q = self._loaded("q")
        rng = random.Random(53)
        inserts = [((rng.uniform(0, 100), rng.uniform(0, 100)), 1.0) for _ in range(50)]
        for ctx in (ctx_u, ctx_q):
            ctx.cold_cache()
            ctx.reset_stats()
        for p, v in inserts:
            tree_u.insert(p, v)
            tree_q.insert(p, v)
        assert ctx_u.counter.accesses < ctx_q.counter.accesses
