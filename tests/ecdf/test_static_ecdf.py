"""Tests for Bentley's static ECDF-tree and its logarithmic dynamization."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DimensionMismatchError, NotSupportedError
from repro.core.naive import NaiveDominanceSum
from repro.core.polynomial import Polynomial
from repro.ecdf import LogarithmicEcdfTree, StaticEcdfTree


def _random_points(rng, n, dims, span=100.0):
    return [
        (tuple(rng.uniform(0, span) for _ in range(dims)), rng.uniform(-2, 5))
        for _ in range(n)
    ]


class TestStaticEcdf:
    def test_empty_tree(self):
        tree = StaticEcdfTree(2)
        assert tree.dominance_sum((50.0, 50.0)) == 0.0
        assert tree.total() == 0.0

    def test_single_point(self):
        tree = StaticEcdfTree(2)
        tree.bulk_load([((1.0, 1.0), 5.0)])
        assert tree.dominance_sum((2.0, 2.0)) == 5.0
        assert tree.dominance_sum((1.0, 2.0)) == 0.0  # strict in dim 0
        assert tree.dominance_sum((2.0, 1.0)) == 0.0  # strict in dim 1

    def test_insert_raises(self):
        tree = StaticEcdfTree(2)
        with pytest.raises(NotSupportedError):
            tree.insert((1.0, 1.0), 1.0)

    def test_dimension_checks(self):
        tree = StaticEcdfTree(2)
        with pytest.raises(DimensionMismatchError):
            tree.bulk_load([((1.0,), 1.0)])
        with pytest.raises(DimensionMismatchError):
            tree.dominance_sum((1.0,))

    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    def test_matches_oracle(self, dims):
        rng = random.Random(dims)
        points = _random_points(rng, 600, dims)
        tree = StaticEcdfTree(dims)
        tree.bulk_load(points)
        oracle = NaiveDominanceSum(dims)
        oracle.bulk_load(points)
        for _ in range(100):
            q = tuple(rng.uniform(-5, 105) for _ in range(dims))
            assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum(q), abs=1e-6)

    def test_duplicate_coordinates(self):
        """Heavy duplication along dim 0 must not lose or double-count points."""
        rng = random.Random(5)
        points = [((float(rng.randint(0, 4)), rng.uniform(0, 10)), 1.0) for _ in range(200)]
        tree = StaticEcdfTree(2)
        tree.bulk_load(points)
        oracle = NaiveDominanceSum(2)
        oracle.bulk_load(points)
        for x in range(-1, 7):
            for y in (0.0, 5.0, 11.0):
                q = (float(x), y)
                assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum(q))

    def test_polynomial_values(self):
        tree = StaticEcdfTree(2, zero=Polynomial(2))
        x = Polynomial.variable(2, 0)
        tree.bulk_load([((1.0, 1.0), x), ((2.0, 2.0), x.scale(2.0))])
        agg = tree.dominance_sum((5.0, 5.0))
        assert agg.evaluate((1.0, 0.0)) == pytest.approx(3.0)

    def test_rebuild_replaces_content(self):
        tree = StaticEcdfTree(1)
        tree.bulk_load([((1.0,), 1.0)])
        tree.bulk_load([((2.0,), 7.0)])
        assert tree.total() == 7.0
        assert len(tree) == 1

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.tuples(st.floats(0, 50, allow_nan=False), st.floats(0, 50, allow_nan=False)),
                st.floats(-3, 3, allow_nan=False),
            ),
            max_size=80,
        ),
        st.tuples(st.floats(-5, 55, allow_nan=False), st.floats(-5, 55, allow_nan=False)),
    )
    def test_property_matches_oracle(self, points, query):
        tree = StaticEcdfTree(2)
        tree.bulk_load(points)
        oracle = NaiveDominanceSum(2)
        oracle.bulk_load(points)
        assert tree.dominance_sum(query) == pytest.approx(oracle.dominance_sum(query), abs=1e-6)


class TestLogarithmicEcdf:
    def test_insert_then_query(self):
        tree = LogarithmicEcdfTree(2, block_size=4)
        oracle = NaiveDominanceSum(2)
        rng = random.Random(8)
        for p, v in _random_points(rng, 150, 2):
            tree.insert(p, v)
            oracle.insert(p, v)
        for _ in range(50):
            q = (rng.uniform(-5, 105), rng.uniform(-5, 105))
            assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum(q), abs=1e-6)

    def test_block_count_is_logarithmic(self):
        tree = LogarithmicEcdfTree(1, block_size=1)
        for i in range(255):
            tree.insert((float(i),), 1.0)
        # 255 = 0b11111111 -> 8 blocks.
        assert tree.num_blocks == 8

    def test_buffered_points_are_visible(self):
        tree = LogarithmicEcdfTree(2, block_size=100)
        tree.insert((1.0, 1.0), 3.0)  # stays in the buffer
        assert tree.num_blocks == 0
        assert tree.dominance_sum((2.0, 2.0)) == 3.0

    def test_bulk_load(self):
        tree = LogarithmicEcdfTree(2)
        tree.bulk_load([((1.0, 1.0), 2.0), ((3.0, 3.0), 4.0)])
        assert tree.total() == 6.0
        assert tree.dominance_sum((2.0, 2.0)) == 2.0

    def test_total_and_len(self):
        tree = LogarithmicEcdfTree(1, block_size=2)
        for i in range(5):
            tree.insert((float(i),), 2.0)
        assert tree.total() == 10.0
        assert len(tree) == 5

    def test_validation(self):
        with pytest.raises(DimensionMismatchError):
            LogarithmicEcdfTree(0)
        with pytest.raises(ValueError):
            LogarithmicEcdfTree(1, block_size=0)
        tree = LogarithmicEcdfTree(2)
        with pytest.raises(DimensionMismatchError):
            tree.insert((1.0,), 1.0)
