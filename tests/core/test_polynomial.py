"""Unit and property tests for the coefficient-tuple polynomial algebra."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import DimensionMismatchError
from repro.core.polynomial import Polynomial, dense_coefficients, poly_sum


def polys(dims: int = 2, max_degree: int = 3):
    """Strategy for small random polynomials."""
    exps = st.tuples(*[st.integers(0, max_degree) for _ in range(dims)])
    coeff = st.floats(-100, 100, allow_nan=False)
    return st.dictionaries(exps, coeff, max_size=6).map(lambda t: Polynomial(dims, t))


points_2d = st.tuples(st.floats(-10, 10, allow_nan=False), st.floats(-10, 10, allow_nan=False))


class TestConstruction:
    def test_constant(self):
        p = Polynomial.constant(2, 5.0)
        assert p.evaluate((3.0, 4.0)) == 5.0
        assert p.degree() == 0

    def test_zero_constant_is_zero_poly(self):
        assert Polynomial.constant(2, 0.0).is_zero

    def test_variable(self):
        x = Polynomial.variable(2, 0)
        y = Polynomial.variable(2, 1)
        assert x.evaluate((3.0, 4.0)) == 3.0
        assert y.evaluate((3.0, 4.0)) == 4.0

    def test_monomial(self):
        p = Polynomial.monomial(2, (2, 1), 3.0)  # 3 x^2 y
        assert p.evaluate((2.0, 5.0)) == 60.0
        assert p.degree() == 3

    def test_rejects_wrong_arity_terms(self):
        with pytest.raises(DimensionMismatchError):
            Polynomial(2, {(1,): 1.0})

    def test_rejects_negative_exponents(self):
        with pytest.raises(ValueError):
            Polynomial(1, {(-1,): 1.0})

    def test_tiny_coefficients_are_pruned(self):
        p = Polynomial(1, {(1,): 1e-15})
        assert p.is_zero


class TestAlgebra:
    def test_addition_merges_terms(self):
        x = Polynomial.variable(1, 0)
        p = x + x
        assert p.coefficient((1,)) == 2.0

    def test_subtraction_cancels(self):
        x = Polynomial.variable(1, 0)
        assert (x - x).is_zero

    def test_multiplication(self):
        x = Polynomial.variable(2, 0)
        y = Polynomial.variable(2, 1)
        p = (x + y) * (x - y)  # x^2 - y^2
        assert p.coefficient((2, 0)) == 1.0
        assert p.coefficient((0, 2)) == -1.0
        assert p.coefficient((1, 1)) == 0.0

    def test_scalar_multiplication(self):
        x = Polynomial.variable(1, 0)
        assert (3 * x).evaluate((2.0,)) == 6.0
        assert (x * 3).evaluate((2.0,)) == 6.0

    def test_arity_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            Polynomial.variable(1, 0) + Polynomial.variable(2, 0)

    @given(polys(), polys(), points_2d)
    def test_add_is_pointwise(self, p, q, pt):
        lhs = (p + q).evaluate(pt)
        rhs = p.evaluate(pt) + q.evaluate(pt)
        assert math.isclose(lhs, rhs, rel_tol=1e-9, abs_tol=1e-6)

    @given(polys(), polys(), points_2d)
    def test_mul_is_pointwise(self, p, q, pt):
        lhs = (p * q).evaluate(pt)
        rhs = p.evaluate(pt) * q.evaluate(pt)
        assert math.isclose(lhs, rhs, rel_tol=1e-6, abs_tol=1e-4)

    @given(polys())
    def test_negation_is_additive_inverse(self, p):
        assert (p + (-p)).is_zero


class TestSubstitution:
    def test_substitute_removes_variable(self):
        x = Polynomial.variable(2, 0)
        y = Polynomial.variable(2, 1)
        p = x * y + x  # xy + x
        fixed = p.substitute(0, 3.0)  # 3y + 3
        assert fixed.evaluate((999.0, 2.0)) == 9.0

    @given(polys(), st.floats(-5, 5, allow_nan=False), points_2d)
    def test_substitute_agrees_with_evaluation(self, p, c, pt):
        lhs = p.substitute(0, c).evaluate(pt)
        rhs = p.evaluate((c, pt[1]))
        assert math.isclose(lhs, rhs, rel_tol=1e-6, abs_tol=1e-4)


class TestIntegration:
    def test_antiderivative_of_constant(self):
        p = Polynomial.constant(1, 4.0)
        anti = p.antiderivative(0)
        assert anti.coefficient((1,)) == 4.0

    def test_integral_from_anchors_at_lower_bound(self):
        p = Polynomial.constant(1, 4.0)
        g = p.integral_from(0, 2.0)  # 4x - 8
        assert g.evaluate((2.0,)) == 0.0
        assert g.evaluate((5.0,)) == 12.0

    def test_integral_between_is_scalar_in_that_var(self):
        x = Polynomial.variable(1, 0)
        # ∫_1^3 x dx = 4
        v = (x).integral_between(0, 1.0, 3.0)
        assert v.coefficient((0,)) == pytest.approx(4.0)

    def test_paper_figure_5b_tuple(self):
        # Object with constant 4 and low corner (2, 10):
        # ∫_2^x ∫_10^y 4 = 4xy - 40x - 8y + 80.
        f = Polynomial.constant(2, 4.0)
        g = f.integral_from(0, 2.0).integral_from(1, 10.0)
        assert dense_coefficients(g, 1) == (4.0, -40.0, -8.0, 80.0)

    def test_paper_figure_3b_integral(self):
        # (11-7) * ∫_15^20 (x-2) dx = 310.
        f = Polynomial.variable(2, 0) - Polynomial.constant(2, 2.0)
        total = f.integrate_over_box((15.0, 7.0), (20.0, 11.0))
        assert total == pytest.approx(310.0)

    def test_integrate_over_box_of_degenerate_box_is_zero(self):
        f = Polynomial.constant(2, 7.0)
        assert f.integrate_over_box((1.0, 1.0), (1.0, 5.0)) == pytest.approx(0.0)

    @given(polys(dims=1, max_degree=3), st.floats(-3, 3, allow_nan=False))
    def test_fundamental_theorem(self, p, a):
        # d/dx ∫_a^x p == p, checked via finite evaluation at a few points.
        g = p.integral_from(0, a)
        for x in (-2.0, 0.5, 1.5):
            h = 1e-5
            deriv = (g.evaluate((x + h,)) - g.evaluate((x - h,))) / (2 * h)
            assert math.isclose(deriv, p.evaluate((x,)), rel_tol=1e-3, abs_tol=1e-2)

    @given(polys(dims=2, max_degree=2))
    def test_integration_additivity_over_split_box(self, p):
        # ∫ over [0,4]x[0,2] == ∫ over [0,1]x[0,2] + ∫ over [1,4]x[0,2].
        whole = p.integrate_over_box((0.0, 0.0), (4.0, 2.0))
        left = p.integrate_over_box((0.0, 0.0), (1.0, 2.0))
        right = p.integrate_over_box((1.0, 0.0), (4.0, 2.0))
        assert math.isclose(whole, left + right, rel_tol=1e-6, abs_tol=1e-4)


class TestUtilities:
    def test_dense_coefficients_order(self):
        # 2xy + 3x - 5y + 7 -> (2, 3, -5, 7) at max_degree 1.
        p = Polynomial(2, {(1, 1): 2.0, (1, 0): 3.0, (0, 1): -5.0, (0, 0): 7.0})
        assert dense_coefficients(p, 1) == (2.0, 3.0, -5.0, 7.0)

    def test_poly_sum(self):
        xs = [Polynomial.constant(1, float(i)) for i in range(5)]
        assert poly_sum(xs, 1).evaluate((0.0,)) == 10.0
        assert poly_sum([], 1).is_zero

    def test_nbytes_grows_with_terms(self):
        small = Polynomial.constant(2, 1.0)
        big = small + Polynomial.monomial(2, (2, 2), 1.0) + Polynomial.variable(2, 0)
        assert big.nbytes() > small.nbytes()

    def test_repr_round_trips_information(self):
        p = Polynomial(2, {(1, 1): 2.0, (0, 0): -1.0})
        text = repr(p)
        assert "x0" in text and "x1" in text
