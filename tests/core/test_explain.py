"""Tests for the query-explain API (per-sub-query I/O breakdowns)."""

from __future__ import annotations

import pytest

from repro import Box, BoxSumIndex, FunctionalBoxSumIndex
from repro.core.errors import NotSupportedError
from repro.core.explain import explain_box_sum, explain_functional

from ..conftest import random_box, random_objects


@pytest.fixture
def loaded_index(rng):
    index = BoxSumIndex(2, backend="ba", buffer_pages=None, page_size=2048)
    index.bulk_load(random_objects(rng, 300, 2))
    return index


class TestExplainBoxSum:
    def test_result_matches_plain_query(self, loaded_index, rng):
        q = random_box(rng, 2, max_side=50.0)
        report = explain_box_sum(loaded_index, q)
        assert report.result == pytest.approx(loaded_index.box_sum(q))

    def test_has_2d_parts_with_alternating_parity(self, loaded_index, rng):
        report = explain_box_sum(loaded_index, random_box(rng, 2))
        assert len(report.parts) == 4
        assert sorted(p.parity for p in report.parts) == [-1, -1, 1, 1]
        labels = {p.label for p in report.parts}
        assert labels == {"corner00", "corner01", "corner10", "corner11"}

    def test_part_costs_sum_to_total(self, loaded_index, rng):
        loaded_index.storage.cold_cache()
        report = explain_box_sum(loaded_index, random_box(rng, 2, max_side=50.0))
        assert sum(p.reads for p in report.parts) == report.reads
        assert sum(p.hits for p in report.parts) == report.hits
        assert report.accesses == report.reads + report.hits
        assert report.reads > 0  # cold cache: something had to be fetched

    def test_eo82_reduction_labels(self, rng):
        index = BoxSumIndex(2, backend="ba", reduction="eo82", buffer_pages=None, page_size=2048)
        index.bulk_load(random_objects(rng, 150, 2))
        q = random_box(rng, 2, max_side=50.0)
        report = explain_box_sum(index, q)
        assert len(report.parts) == 8  # 3^2 - 1
        assert report.result == pytest.approx(index.box_sum(q))
        assert any(p.label.startswith("EO82[") for p in report.parts)

    def test_naive_backend_has_no_storage_costs(self, rng):
        index = BoxSumIndex(2, backend="naive")
        objects = random_objects(rng, 50, 2)
        for box, value in objects:
            index.insert(box, value)
        report = explain_box_sum(index, random_box(rng, 2, max_side=60.0))
        assert report.reads == 0
        assert report.result == pytest.approx(
            index.box_sum(random_box(rng, 2, max_side=0.0001)) * 0
            + report.result
        )

    def test_object_backend_rejected(self, rng):
        index = BoxSumIndex(2, backend="ar", buffer_pages=None)
        with pytest.raises(NotSupportedError):
            explain_box_sum(index, Box((0.0, 0.0), (1.0, 1.0)))

    def test_summary_text(self, loaded_index, rng):
        report = explain_box_sum(loaded_index, random_box(rng, 2))
        text = report.summary()
        assert "result=" in text
        assert "corner00" in text

    def test_by_label(self, loaded_index, rng):
        report = explain_box_sum(loaded_index, random_box(rng, 2))
        assert set(report.by_label()) == {
            "corner00",
            "corner01",
            "corner10",
            "corner11",
        }


class TestExplainFunctional:
    def test_result_matches_plain_query(self, rng):
        index = FunctionalBoxSumIndex(2, backend="ba", buffer_pages=None)
        for box, value in random_objects(rng, 100, 2):
            index.insert(box, abs(value))
        q = random_box(rng, 2, max_side=50.0)
        report = explain_functional(index, q)
        assert report.result == pytest.approx(index.functional_box_sum(q), abs=1e-6)
        assert len(report.parts) == 4
        assert all(p.label.startswith("OIFBS@") for p in report.parts)

    def test_object_backend_rejected(self, rng):
        index = FunctionalBoxSumIndex(2, backend="ar", buffer_pages=None)
        with pytest.raises(NotSupportedError):
            explain_functional(index, Box((0.0, 0.0), (1.0, 1.0)))
