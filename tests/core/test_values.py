"""Tests for the aggregate value protocol (scalars, SumCount, polynomials)."""

from __future__ import annotations

import pytest

from repro.core.errors import NotSupportedError
from repro.core.polynomial import Polynomial
from repro.core.values import (
    SumCount,
    accumulate,
    is_zero_value,
    value_nbytes,
    values_equal,
    zero_like,
)


class TestSumCount:
    def test_addition_is_componentwise(self):
        a = SumCount(3.0, 1.0) + SumCount(5.0, 2.0)
        assert a == SumCount(8.0, 3.0)

    def test_negation(self):
        assert -SumCount(3.0, 1.0) == SumCount(-3.0, -1.0)

    def test_average(self):
        assert SumCount(9.0, 3.0).average() == pytest.approx(3.0)

    def test_average_of_empty_raises(self):
        with pytest.raises(ZeroDivisionError):
            SumCount(0.0, 0.0).average()


class TestZeroLike:
    def test_scalar(self):
        assert zero_like(5.0) == 0.0
        assert zero_like(3) == 0.0

    def test_polynomial(self):
        z = zero_like(Polynomial.constant(2, 4.0))
        assert isinstance(z, Polynomial)
        assert z.is_zero

    def test_sumcount(self):
        assert zero_like(SumCount(1.0, 1.0)) == SumCount(0.0, 0.0)

    def test_bool_rejected(self):
        with pytest.raises(NotSupportedError):
            zero_like(True)

    def test_unknown_type_rejected(self):
        with pytest.raises(NotSupportedError):
            zero_like("nope")


class TestByteAccounting:
    def test_scalar_is_8(self):
        assert value_nbytes(1.5) == 8

    def test_sumcount_is_16(self):
        assert value_nbytes(SumCount(1.0, 1.0)) == 16

    def test_polynomial_delegates(self):
        p = Polynomial.constant(2, 1.0)
        assert value_nbytes(p) == p.nbytes()


class TestEqualityAndZero:
    def test_scalar_tolerance(self):
        assert values_equal(1.0, 1.0 + 1e-12)
        assert not values_equal(1.0, 1.1)

    def test_polynomial_equality(self):
        a = Polynomial.constant(1, 2.0)
        b = Polynomial.constant(1, 2.0 + 1e-12)
        assert values_equal(a, b)

    def test_is_zero_value(self):
        assert is_zero_value(0.0)
        assert is_zero_value(Polynomial(3))
        assert is_zero_value(SumCount(0.0, 0.0))
        assert not is_zero_value(SumCount(0.0, 1.0))

    def test_accumulate(self):
        assert accumulate([1.0, 2.0, 3.0], 0.0) == 6.0
        assert accumulate([], 5.0) == 5.0
