"""Unit and property tests for points, boxes and the paper's predicates."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import DimensionMismatchError, InvalidBoxError
from repro.core.geometry import (
    Box,
    dominates,
    intervals_intersect,
    sign_parity,
    strictly_dominates,
    universe_box,
)

coords_2d = st.tuples(st.floats(-1e6, 1e6, allow_nan=False), st.floats(-1e6, 1e6, allow_nan=False))


def boxes(dims: int = 2):
    """Strategy producing valid (possibly degenerate) boxes."""
    scalar = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)

    def build(pairs):
        low = tuple(min(a, b) for a, b in pairs)
        high = tuple(max(a, b) for a, b in pairs)
        return Box(low, high)

    return st.lists(st.tuples(scalar, scalar), min_size=dims, max_size=dims).map(build)


class TestDominance:
    def test_dominates_is_reflexive(self):
        assert dominates((1.0, 2.0), (1.0, 2.0))

    def test_strict_dominance_is_irreflexive(self):
        assert not strictly_dominates((1.0, 2.0), (1.0, 2.0))

    def test_partial_order_examples(self):
        assert dominates((3.0, 4.0), (1.0, 2.0))
        assert not dominates((3.0, 1.0), (1.0, 2.0))
        assert strictly_dominates((3.0, 4.0), (1.0, 2.0))
        assert not strictly_dominates((3.0, 2.0), (1.0, 2.0))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            dominates((1.0,), (1.0, 2.0))

    @given(coords_2d, coords_2d)
    def test_strict_implies_weak(self, x, y):
        if strictly_dominates(x, y):
            assert dominates(x, y)

    @given(coords_2d, coords_2d, coords_2d)
    def test_transitivity(self, x, y, z):
        if dominates(x, y) and dominates(y, z):
            assert dominates(x, z)


class TestIntervalIntersection:
    def test_paper_semantics_open_low_closed_high(self):
        # Touching at i1.low == i2.high does NOT intersect...
        assert not intervals_intersect(5.0, 8.0, 2.0, 5.0)
        # ...but touching at i1.high == i2.low DOES.
        assert intervals_intersect(2.0, 5.0, 5.0, 8.0)

    def test_overlap_and_disjoint(self):
        assert intervals_intersect(0.0, 3.0, 2.0, 5.0)
        assert not intervals_intersect(0.0, 1.0, 2.0, 3.0)

    def test_containment(self):
        assert intervals_intersect(0.0, 10.0, 4.0, 5.0)


class TestBoxConstruction:
    def test_rejects_inverted_corners(self):
        with pytest.raises(InvalidBoxError):
            Box((1.0, 0.0), (0.0, 1.0))

    def test_rejects_mixed_arity(self):
        with pytest.raises(DimensionMismatchError):
            Box((0.0,), (1.0, 1.0))

    def test_point_box(self):
        b = Box.from_point((3.0, 4.0))
        assert b.is_point
        assert b.volume() == 0.0

    def test_volume_margin_center(self):
        b = Box((0.0, 0.0), (2.0, 3.0))
        assert b.volume() == 6.0
        assert b.margin() == 5.0
        assert b.center() == (1.0, 1.5)


class TestBoxPredicates:
    def test_intersects_asymmetric_touching(self):
        a = Box((0.0, 0.0), (5.0, 5.0))
        b = Box((5.0, 0.0), (8.0, 5.0))
        # b starts exactly where a ends: a.low < b.high and not a.high < b.low.
        assert a.intersects(b)

    def test_contains_point_half_open(self):
        b = Box((0.0, 0.0), (5.0, 5.0))
        assert b.contains_point((0.0, 0.0))
        assert not b.contains_point((5.0, 0.0))
        assert b.contains_point_closed((5.0, 5.0))

    def test_contains_box(self):
        outer = Box((0.0, 0.0), (10.0, 10.0))
        inner = Box((2.0, 2.0), (5.0, 5.0))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    @given(boxes(), boxes())
    def test_intersects_is_symmetric_when_strictly_overlapping(self, a, b):
        inter = a.intersection(b)
        if inter is not None and inter.volume() > 0:
            assert a.intersects(b)
            assert b.intersects(a)

    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_box(a)
        assert u.contains_box(b)

    @given(boxes(), boxes())
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_box(inter)
            assert b.contains_box(inter)


class TestSplitAndCorners:
    def test_split_at_half_open(self):
        b = Box((0.0, 0.0), (10.0, 10.0))
        lower, upper = b.split_at(0, 4.0)
        assert lower == Box((0.0, 0.0), (4.0, 10.0))
        assert upper == Box((4.0, 0.0), (10.0, 10.0))

    def test_split_outside_raises(self):
        b = Box((0.0, 0.0), (10.0, 10.0))
        with pytest.raises(InvalidBoxError):
            b.split_at(0, 10.0)

    def test_corner_enumeration(self):
        b = Box((0.0, 0.0), (1.0, 2.0))
        corners = dict(b.corners())
        assert corners[(0, 0)] == (0.0, 0.0)
        assert corners[(1, 0)] == (1.0, 0.0)
        assert corners[(0, 1)] == (0.0, 2.0)
        assert corners[(1, 1)] == (1.0, 2.0)
        assert len(corners) == 4

    def test_corner_counts_in_3d(self):
        b = universe_box(3)
        assert len(dict(b.corners())) == 8

    def test_sign_parity(self):
        assert sign_parity((0, 0)) == 1
        assert sign_parity((1, 0)) == -1
        assert sign_parity((1, 1)) == 1

    def test_enclosing(self):
        b = Box.enclosing([Box((0.0,), (1.0,)), Box((3.0,), (5.0,))])
        assert b == Box((0.0,), (5.0,))
        with pytest.raises(InvalidBoxError):
            Box.enclosing([])
