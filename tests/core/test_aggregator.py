"""End-to-end tests of the public facades across every backend."""

from __future__ import annotations

import random

import pytest

from repro import Box, BoxSumIndex, FunctionalBoxSumIndex, Polynomial
from repro.core.errors import (
    DimensionMismatchError,
    InvalidQueryError,
    NotSupportedError,
)
from repro.core.naive import NaiveBoxSum, NaiveFunctionalBoxSum
from repro.storage import StorageContext

from ..conftest import random_box, random_objects

DYNAMIC_BACKENDS = ["naive", "ba", "ecdf-bu", "ecdf-bq", "ar", "rstar"]
DISK_BACKENDS = ["ba", "ecdf-bu", "ecdf-bq", "ar", "rstar"]


def _oracle(objects, dims=2):
    oracle = NaiveBoxSum(dims)
    for box, value in objects:
        oracle.insert(box, value)
    return oracle


class TestBoxSumBackends:
    @pytest.mark.parametrize("backend", DYNAMIC_BACKENDS)
    def test_insert_path_matches_oracle(self, backend, rng):
        objects = random_objects(rng, 250, 2)
        index = BoxSumIndex(2, backend=backend, buffer_pages=None)
        oracle = _oracle(objects)
        for box, value in objects:
            index.insert(box, value)
        for _ in range(40):
            q = random_box(rng, 2, max_side=40.0)
            assert index.box_sum(q) == pytest.approx(oracle.box_sum(q), abs=1e-6)

    @pytest.mark.parametrize("backend", DYNAMIC_BACKENDS + ["ecdf"])
    def test_bulk_load_matches_oracle(self, backend, rng):
        objects = random_objects(rng, 250, 2)
        index = BoxSumIndex(2, backend=backend, buffer_pages=None)
        index.bulk_load(objects)
        oracle = _oracle(objects)
        for _ in range(40):
            q = random_box(rng, 2, max_side=40.0)
            assert index.box_sum(q) == pytest.approx(oracle.box_sum(q), abs=1e-6)

    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_dimensions(self, dims, rng):
        objects = random_objects(rng, 150, dims)
        index = BoxSumIndex(dims, backend="ba", buffer_pages=None)
        oracle = _oracle(objects, dims)
        for box, value in objects:
            index.insert(box, value)
        for _ in range(30):
            q = random_box(rng, dims, max_side=40.0)
            assert index.box_sum(q) == pytest.approx(oracle.box_sum(q), abs=1e-6)

    def test_ecdf_log_backend(self, rng):
        """The Bentley–Saxe dynamization works as a facade backend."""
        objects = random_objects(rng, 150, 2)
        index = BoxSumIndex(2, backend="ecdf-log")
        oracle = _oracle(objects)
        for box, value in objects:
            index.insert(box, value)
        for _ in range(25):
            q = random_box(rng, 2, max_side=40.0)
            assert index.box_sum(q) == pytest.approx(oracle.box_sum(q), abs=1e-6)
        assert index.size_bytes == 0  # main-memory backend

    def test_bptree_backend_1d(self, rng):
        objects = random_objects(rng, 120, 1)
        index = BoxSumIndex(1, backend="bptree", buffer_pages=None)
        oracle = _oracle(objects, dims=1)
        for box, value in objects:
            index.insert(box, value)
        for _ in range(25):
            q = random_box(rng, 1, max_side=40.0)
            assert index.box_sum(q) == pytest.approx(oracle.box_sum(q), abs=1e-6)

    def test_bptree_backend_rejects_2d(self):
        with pytest.raises(NotSupportedError):
            BoxSumIndex(2, backend="bptree", buffer_pages=None)

    def test_eo82_3d_facade(self, rng):
        objects = random_objects(rng, 100, 3)
        index = BoxSumIndex(3, backend="ba", reduction="eo82", buffer_pages=None)
        oracle = _oracle(objects, dims=3)
        for box, value in objects:
            index.insert(box, value)
        assert len(index._indices) == 26  # 3^3 - 1 avoidance indices
        for _ in range(15):
            q = random_box(rng, 3, max_side=50.0)
            assert index.box_sum(q) == pytest.approx(oracle.box_sum(q), abs=1e-6)

    def test_eo82_reduction_agrees(self, rng):
        objects = random_objects(rng, 200, 2)
        corner = BoxSumIndex(2, backend="ba", buffer_pages=None)
        eo82 = BoxSumIndex(2, backend="ba", reduction="eo82", buffer_pages=None)
        for box, value in objects:
            corner.insert(box, value)
            eo82.insert(box, value)
        for _ in range(30):
            q = random_box(rng, 2, max_side=50.0)
            assert corner.box_sum(q) == pytest.approx(eo82.box_sum(q), abs=1e-6)

    def test_delete(self, rng):
        index = BoxSumIndex(2, backend="ba", buffer_pages=None)
        box = random_box(rng, 2)
        index.insert(box, 5.0)
        index.delete(box, 5.0)
        assert index.box_sum(random_box(rng, 2, max_side=90.0)) == pytest.approx(0.0)
        assert index.num_objects == 0

    def test_shared_storage(self, rng):
        """The 2^d sub-indices share one buffer, like the paper's setup."""
        ctx = StorageContext(buffer_pages=None)
        index = BoxSumIndex(2, backend="ba", storage=ctx)
        index.insert(random_box(rng, 2), 1.0)
        assert index.size_bytes == ctx.size_bytes > 0


class TestMeasures:
    def test_count_measure(self, rng):
        objects = random_objects(rng, 100, 2)
        index = BoxSumIndex(2, backend="ba", measure="count", buffer_pages=None)
        oracle = _oracle(objects)
        for box, value in objects:
            index.insert(box, value)
        q = random_box(rng, 2, max_side=60.0)
        assert index.box_count(q) == oracle.box_count(q)

    def test_sum_count_measure_enables_avg(self, rng):
        objects = random_objects(rng, 100, 2)
        index = BoxSumIndex(2, backend="ba", measure="sum+count", buffer_pages=None)
        oracle = _oracle(objects)
        for box, value in objects:
            index.insert(box, value)
        q = random_box(rng, 2, max_side=80.0)
        if oracle.box_count(q):
            assert index.box_avg(q) == pytest.approx(
                oracle.box_sum(q) / oracle.box_count(q), abs=1e-6
            )
            assert index.box_sum(q) == pytest.approx(oracle.box_sum(q), abs=1e-6)

    def test_count_requires_count_measure(self):
        index = BoxSumIndex(2, backend="naive")
        with pytest.raises(InvalidQueryError):
            index.box_count(Box((0.0, 0.0), (1.0, 1.0)))

    def test_avg_requires_sumcount_measure(self):
        index = BoxSumIndex(2, backend="naive", measure="count")
        with pytest.raises(InvalidQueryError):
            index.box_avg(Box((0.0, 0.0), (1.0, 1.0)))


class TestValidation:
    def test_unknown_backend(self):
        with pytest.raises(NotSupportedError):
            BoxSumIndex(2, backend="btree-of-holding")

    def test_unknown_reduction(self):
        with pytest.raises(NotSupportedError):
            BoxSumIndex(2, backend="ba", reduction="magic")

    def test_unknown_measure(self):
        with pytest.raises(InvalidQueryError):
            BoxSumIndex(2, backend="ba", measure="median")

    def test_object_backend_rejects_eo82(self):
        with pytest.raises(NotSupportedError):
            BoxSumIndex(2, backend="ar", reduction="eo82")

    def test_dimension_mismatch(self):
        index = BoxSumIndex(2, backend="naive")
        with pytest.raises(DimensionMismatchError):
            index.insert(Box((0.0,), (1.0,)), 1.0)

    def test_static_backend_rejects_insert(self):
        index = BoxSumIndex(2, backend="ecdf")
        with pytest.raises(NotSupportedError):
            index.insert(Box((0.0, 0.0), (1.0, 1.0)), 1.0)


class TestFunctionalFacade:
    @staticmethod
    def _objects(rng, n=120, degree=2):
        x = Polynomial.variable(2, 0)
        y = Polynomial.variable(2, 1)
        out = []
        for _ in range(n):
            f = Polynomial.constant(2, rng.uniform(0.1, 2.0))
            if degree >= 1:
                f = f + x.scale(rng.uniform(-0.05, 0.05))
            if degree >= 2:
                f = f + (x * y).scale(rng.uniform(-0.005, 0.005))
            out.append((random_box(rng, 2), f))
        return out

    @pytest.mark.parametrize("backend", ["naive", "ba", "ecdf-bu", "ecdf-bq", "ar"])
    def test_matches_naive_integration(self, backend, rng):
        objects = self._objects(rng)
        index = FunctionalBoxSumIndex(2, backend=backend, buffer_pages=None)
        oracle = NaiveFunctionalBoxSum(2)
        for box, f in objects:
            index.insert(box, f)
            oracle.insert(box, f)
        for _ in range(30):
            q = random_box(rng, 2, max_side=40.0)
            assert index.functional_box_sum(q) == pytest.approx(
                oracle.functional_box_sum(q), abs=1e-4
            )

    @pytest.mark.parametrize("backend", ["ba", "ar"])
    def test_bulk_load(self, backend, rng):
        objects = self._objects(rng)
        index = FunctionalBoxSumIndex(2, backend=backend, buffer_pages=None)
        index.bulk_load(objects)
        oracle = NaiveFunctionalBoxSum(2)
        for box, f in objects:
            oracle.insert(box, f)
        for _ in range(30):
            q = random_box(rng, 2, max_side=40.0)
            assert index.functional_box_sum(q) == pytest.approx(
                oracle.functional_box_sum(q), abs=1e-4
            )

    def test_constant_functions(self, rng):
        index = FunctionalBoxSumIndex(2, backend="ba", buffer_pages=None)
        index.insert(Box((0.0, 0.0), (2.0, 3.0)), 4.0)
        assert index.functional_box_sum(Box((-1.0, -1.0), (5.0, 5.0))) == (pytest.approx(24.0))

    def test_delete(self, rng):
        index = FunctionalBoxSumIndex(2, backend="ba", buffer_pages=None)
        box = Box((0.0, 0.0), (4.0, 4.0))
        index.insert(box, 3.0)
        index.delete(box, 3.0)
        assert index.functional_box_sum(Box((0.0, 0.0), (9.0, 9.0))) == (pytest.approx(0.0))
        assert index.num_objects == 0

    def test_oifbs_direct(self):
        index = FunctionalBoxSumIndex(2, backend="naive")
        index.insert(Box((1.0, 1.0), (3.0, 4.0)), 2.0)
        assert index.oifbs((10.0, 10.0)) == pytest.approx(12.0)

    def test_oifbs_requires_dominance_backend(self):
        index = FunctionalBoxSumIndex(2, backend="ar", buffer_pages=None)
        with pytest.raises(NotSupportedError):
            index.oifbs((1.0, 1.0))

    def test_degree_cap_enforced(self):
        index = FunctionalBoxSumIndex(2, backend="naive", max_degree=1)
        quad = Polynomial.monomial(2, (1, 1), 1.0)
        with pytest.raises(InvalidQueryError):
            index.insert(Box((0.0, 0.0), (1.0, 1.0)), quad)

    def test_degree_two_index_is_larger_than_degree_zero(self, rng):
        objects0 = [(box, 1.0) for box, _f in self._objects(rng, n=400)]
        i0 = FunctionalBoxSumIndex(2, backend="ba", max_degree=0, buffer_pages=None, page_size=2048)
        i0.bulk_load(objects0)
        i2 = FunctionalBoxSumIndex(2, backend="ba", max_degree=2, buffer_pages=None, page_size=2048)
        i2.bulk_load(objects0)
        assert i2.size_bytes > i0.size_bytes
