"""Tests for the functional box-sum reduction (Theorem 3, OIFBS)."""

from __future__ import annotations

import random

import pytest

from repro.core.functional import FunctionalReduction
from repro.core.geometry import Box
from repro.core.naive import NaiveDominanceSum, NaiveFunctionalBoxSum
from repro.core.polynomial import Polynomial

from ..conftest import random_box


def _random_polynomial(rng: random.Random, dims: int, degree: int) -> Polynomial:
    terms = {}
    for _ in range(rng.randint(1, 4)):
        exps = [0] * dims
        budget = degree
        for i in range(dims):
            exps[i] = rng.randint(0, budget)
            budget -= exps[i]
        terms[tuple(exps)] = rng.uniform(-3.0, 3.0)
    return Polynomial(dims, terms)


def _build_index(dims, objects):
    reduction = FunctionalReduction(dims)
    index = NaiveDominanceSum(dims, zero=Polynomial(dims))
    for box, function in objects:
        for point, tup in reduction.corner_tuples(box, function):
            index.insert(point, tup)
    return reduction, index


class TestCornerTuples:
    def test_one_object_produces_2d_tuples(self):
        reduction = FunctionalReduction(2)
        tuples = reduction.corner_tuples(Box((0.0, 0.0), (2.0, 3.0)), 1.0)
        assert len(tuples) == 4
        points = {pt for pt, _ in tuples}
        assert points == {(0.0, 0.0), (2.0, 0.0), (0.0, 3.0), (2.0, 3.0)}

    def test_origin_integral_vanishes_at_low_corner(self):
        reduction = FunctionalReduction(2)
        f = Polynomial.variable(2, 0) * Polynomial.variable(2, 1)
        g = reduction.origin_integral(Box((1.0, 2.0), (4.0, 5.0)), f)
        assert g.evaluate((1.0, 2.0)) == pytest.approx(0.0)

    def test_correction_tuples_vanish_on_their_boundary(self):
        """v2 evaluates to 0 at x = x2; v3 at y = y2; v4 at both (Figure 5a)."""
        reduction = FunctionalReduction(2)
        box = Box((1.0, 2.0), (4.0, 5.0))
        tuples = dict(reduction.corner_tuples(box, 2.0))
        v2 = tuples[(4.0, 2.0)]
        v3 = tuples[(1.0, 5.0)]
        v4 = tuples[(4.0, 5.0)]
        assert v2.evaluate((4.0, 7.0)) == pytest.approx(0.0)
        assert v3.evaluate((9.0, 5.0)) == pytest.approx(0.0)
        assert v4.evaluate((4.0, 9.0)) == pytest.approx(0.0)
        assert v4.evaluate((9.0, 5.0)) == pytest.approx(0.0)

    def test_tuple_degree_bound(self):
        """Corner tuples of a degree-k function have degree <= k + d (Theorem 3)."""
        reduction = FunctionalReduction(2)
        f = Polynomial.monomial(2, (1, 1), 1.0)  # degree 2
        for _pt, tup in reduction.corner_tuples(Box((0.0, 0.0), (1.0, 1.0)), f):
            assert tup.degree() <= 2 + 2


class TestOifbs:
    def test_oifbs_far_above_object_is_full_integral(self):
        reduction, index = _build_index(
            2, [(Box((1.0, 1.0), (3.0, 4.0)), Polynomial.constant(2, 2.0))]
        )
        # Full integral: 2 * area = 2 * 6 = 12.
        assert reduction.oifbs(index, (10.0, 10.0)) == pytest.approx(12.0)

    def test_oifbs_at_exact_high_corner_is_full_integral(self):
        reduction, index = _build_index(
            2, [(Box((1.0, 1.0), (3.0, 4.0)), Polynomial.constant(2, 2.0))]
        )
        assert reduction.oifbs(index, (3.0, 4.0)) == pytest.approx(12.0)

    def test_oifbs_inside_object(self):
        reduction, index = _build_index(
            2, [(Box((1.0, 1.0), (5.0, 5.0)), Polynomial.constant(2, 1.0))]
        )
        # [1,1]..[3,2] overlap: area 2*1 = 2.
        assert reduction.oifbs(index, (3.0, 2.0)) == pytest.approx(2.0)

    def test_oifbs_below_object_is_zero(self):
        reduction, index = _build_index(
            2, [(Box((5.0, 5.0), (8.0, 8.0)), Polynomial.constant(2, 3.0))]
        )
        assert reduction.oifbs(index, (4.0, 4.0)) == pytest.approx(0.0)

    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_oifbs_matches_direct_integration(self, dims):
        rng = random.Random(41 + dims)
        objects = [
            (random_box(rng, dims, span=50.0), _random_polynomial(rng, dims, 2))
            for _ in range(15)
        ]
        reduction, index = _build_index(dims, objects)
        for _ in range(25):
            p = tuple(rng.uniform(0.0, 60.0) for _ in range(dims))
            expected = 0.0
            for box, f in objects:
                clipped_high = tuple(min(h, c) for h, c in zip(box.high, p))
                if all(lo < hi for lo, hi in zip(box.low, clipped_high)):
                    expected += f.integrate_over_box(box.low, clipped_high)
            assert reduction.oifbs(index, p) == pytest.approx(expected, abs=1e-5)


class TestFunctionalBoxSum:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    @pytest.mark.parametrize("degree", [0, 1, 2])
    def test_matches_naive_integration(self, dims, degree):
        rng = random.Random(dims * 10 + degree)
        objects = [
            (random_box(rng, dims, span=40.0), _random_polynomial(rng, dims, degree))
            for _ in range(20)
        ]
        oracle = NaiveFunctionalBoxSum(dims)
        for box, f in objects:
            oracle.insert(box, f)
        reduction, index = _build_index(dims, objects)
        for _ in range(30):
            query = random_box(rng, dims, span=40.0, max_side=25.0)
            got = reduction.functional_box_sum(index, query)
            assert got == pytest.approx(oracle.functional_box_sum(query), abs=1e-5)

    def test_query_plan_signs(self):
        reduction = FunctionalReduction(2)
        plan = dict(reduction.query_plan(Box((1.0, 2.0), (3.0, 4.0))))
        assert plan[(3.0, 4.0)] == 1    # upper-right
        assert plan[(1.0, 4.0)] == -1   # upper-left
        assert plan[(3.0, 2.0)] == -1   # lower-right
        assert plan[(1.0, 2.0)] == 1    # lower-left

    def test_deleting_via_negated_function(self):
        reduction = FunctionalReduction(2)
        index = NaiveDominanceSum(2, zero=Polynomial(2))
        box = Box((0.0, 0.0), (4.0, 4.0))
        for point, tup in reduction.corner_tuples(box, 3.0):
            index.insert(point, tup)
        for point, tup in reduction.corner_tuples(box, -3.0):
            index.insert(point, tup)
        assert reduction.functional_box_sum(index, Box((0.0, 0.0), (9.0, 9.0))) == (
            pytest.approx(0.0)
        )
