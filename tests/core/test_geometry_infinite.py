"""Infinite-coordinate boxes: the k-d-B universe box and its splits."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import InvalidBoxError
from repro.core.geometry import Box, dominates, strictly_dominates

INF = float("inf")


class TestInfiniteUniverse:
    def universe(self, dims=2):
        return Box((-INF,) * dims, (INF,) * dims)

    def test_contains_everything(self):
        u = self.universe()
        assert u.contains_point((0.0, 0.0))
        assert u.contains_point((1e300, -1e300))

    def test_contains_minus_infinity_half_open(self):
        u = self.universe()
        # low <= p holds at -inf itself; high is exclusive so +inf is out.
        assert u.contains_point((-INF, 0.0))
        assert not u.contains_point((INF, 0.0))

    def test_split_at_finite_value(self):
        u = self.universe()
        lower, upper = u.split_at(0, 5.0)
        assert lower.contains_point((4.9, 0.0))
        assert not lower.contains_point((5.0, 0.0))
        assert upper.contains_point((5.0, 0.0))
        assert upper.high[0] == INF

    def test_split_at_infinity_rejected(self):
        with pytest.raises(InvalidBoxError):
            self.universe().split_at(0, INF)

    def test_repeated_splits_partition(self):
        u = self.universe()
        lower, upper = u.split_at(0, 0.0)
        ll, lu = lower.split_at(1, 10.0)
        for p in [(-5.0, 3.0), (-5.0, 50.0), (3.0, 3.0)]:
            holders = [b for b in (ll, lu, upper) if b.contains_point(p)]
            assert len(holders) == 1

    def test_dominance_with_infinities(self):
        assert dominates((INF, INF), (1.0, 2.0))
        assert strictly_dominates((INF, INF), (1.0, 2.0))
        assert not strictly_dominates((INF, INF), (INF, 2.0))
        assert dominates((1.0, 2.0), (-INF, -INF))

    def test_volume_is_infinite(self):
        assert math.isinf(self.universe().volume())

    def test_intersection_with_finite_box(self):
        u = self.universe()
        finite = Box((1.0, 2.0), (3.0, 4.0))
        assert u.intersection(finite) == finite
        assert u.contains_box(finite)

    def test_negative_infinity_border_entries_sort(self):
        """-inf keys (migrated BA border entries) order below everything."""
        from repro.bptree import AggBPlusTree
        from repro.storage import StorageContext

        tree = AggBPlusTree(StorageContext(buffer_pages=None), leaf_capacity=2, internal_capacity=3)
        tree.insert(-INF, 1.0)
        tree.insert(0.0, 2.0)
        tree.insert(5.0, 4.0)
        tree.insert(-INF, 3.0)  # merges with the first
        assert tree.dominance_sum(-1.0) == pytest.approx(4.0)
        assert tree.dominance_sum(-INF) == pytest.approx(0.0)  # strict
        tree.check_invariants()
