"""Acceptance tests: every worked number in the paper's Figures 1-5.

The scenario of Figures 3a and 5b (reconstructed coordinates):

* object with value 4:  box (2, 10)-(15, 26)
* object with value 3:  box (18, 4)-(30, 10)
* object with value 6:  box (20, 15)-(30, 26)
* query box:            (5, 4)-(20, 15)

These coordinates reproduce every number printed in the paper: the simple
box-sum 7; the functional box-sum 4*50 + 3*12 = 236; the corner tuples
⟨4,−40,−8,80⟩, ⟨−4,40,60,−600⟩, ⟨3,−12,−54,216⟩, ⟨−3,30,54,−540⟩; the
aggregate ⟨0,18,52,−844⟩; the OIFBS values 60 and 296; and Figure 3b's 310.
"""

from __future__ import annotations

import pytest

from repro.core.functional import FunctionalReduction
from repro.core.geometry import Box
from repro.core.naive import NaiveDominanceSum, NaiveFunctionalBoxSum
from repro.core.polynomial import Polynomial, dense_coefficients

OBJ4 = Box((2.0, 10.0), (15.0, 26.0))
OBJ3 = Box((18.0, 4.0), (30.0, 10.0))
OBJ6 = Box((20.0, 15.0), (30.0, 26.0))
QUERY = Box((5.0, 4.0), (20.0, 15.0))
OBJECTS = [(OBJ4, 4.0), (OBJ3, 3.0), (OBJ6, 6.0)]


@pytest.fixture
def functional_index():
    reduction = FunctionalReduction(2)
    index = NaiveDominanceSum(2, zero=Polynomial(2))
    for box, value in OBJECTS:
        for point, tup in reduction.corner_tuples(box, value):
            index.insert(point, tup)
    return reduction, index


class TestFigure3a:
    def test_simple_box_sum_is_7(self):
        from repro.core.naive import NaiveBoxSum

        oracle = NaiveBoxSum(2)
        for box, value in OBJECTS:
            oracle.insert(box, value)
        assert oracle.box_sum(QUERY) == pytest.approx(7.0)

    def test_object_6_touches_query_only_at_a_corner(self):
        # Paper semantics: o.l < q.h fails at equality, so no intersection.
        assert not OBJ6.intersects(QUERY)

    def test_functional_box_sum_is_236(self):
        oracle = NaiveFunctionalBoxSum(2)
        for box, value in OBJECTS:
            oracle.insert(box, value)
        assert oracle.functional_box_sum(QUERY) == pytest.approx(236.0)

    def test_intersection_areas_are_50_and_12(self):
        assert OBJ4.intersection(QUERY).volume() == pytest.approx(50.0)
        assert OBJ3.intersection(QUERY).volume() == pytest.approx(12.0)


class TestFigure3b:
    def test_moving_query_changes_functional_result(self):
        field = Box((5.0, 3.0), (20.0, 15.0))
        f = Polynomial.variable(2, 0) - Polynomial.constant(2, 2.0)  # f(x,y) = x-2
        oracle = NaiveFunctionalBoxSum(2)
        oracle.insert(field, f)
        # Query hugging the right border: (11-7) * ∫_15^20 (x-2) dx = 310.
        assert oracle.functional_box_sum(Box((15.0, 7.0), (25.0, 11.0))) == (pytest.approx(310.0))
        # Same-size intersection at the left border: (11-7) * ∫_5^10 (x-2) dx = 110.
        assert oracle.functional_box_sum(Box((0.0, 7.0), (10.0, 11.0))) == (pytest.approx(110.0))


class TestFigure5b:
    def test_tuple_inserted_at_c1(self, functional_index):
        reduction, _index = functional_index
        tuples = dict(reduction.corner_tuples(OBJ4, 4.0))
        assert dense_coefficients(tuples[(2.0, 10.0)], 1) == (4.0, -40.0, -8.0, 80.0)

    def test_tuples_at_c2_c3_c4(self, functional_index):
        reduction, _index = functional_index
        tuples4 = dict(reduction.corner_tuples(OBJ4, 4.0))
        tuples3 = dict(reduction.corner_tuples(OBJ3, 3.0))
        assert dense_coefficients(tuples4[(15.0, 10.0)], 1) == (-4.0, 40.0, 60.0, -600.0)
        assert dense_coefficients(tuples3[(18.0, 4.0)], 1) == (3.0, -12.0, -54.0, 216.0)
        assert dense_coefficients(tuples3[(18.0, 10.0)], 1) == (-3.0, 30.0, 54.0, -540.0)

    def test_oifbs_at_q1_is_60(self, functional_index):
        reduction, index = functional_index
        assert reduction.oifbs(index, (5.0, 15.0)) == pytest.approx(60.0)

    def test_aggregate_tuple_at_q2(self, functional_index):
        _reduction, index = functional_index
        aggregate = index.dominance_sum((20.0, 15.0))
        assert dense_coefficients(aggregate, 1) == (
            pytest.approx(0.0),
            pytest.approx(18.0),
            pytest.approx(52.0),
            pytest.approx(-844.0),
        )

    def test_oifbs_at_q2_is_296(self, functional_index):
        reduction, index = functional_index
        assert reduction.oifbs(index, (20.0, 15.0)) == pytest.approx(296.0)

    def test_lower_corners_have_zero_oifbs(self, functional_index):
        reduction, index = functional_index
        assert reduction.oifbs(index, (5.0, 4.0)) == pytest.approx(0.0)
        assert reduction.oifbs(index, (20.0, 4.0)) == pytest.approx(0.0)

    def test_functional_box_sum_via_reduction_is_236(self, functional_index):
        reduction, index = functional_index
        assert reduction.functional_box_sum(index, QUERY) == pytest.approx(236.0)
