"""Tests for the Theorem 1 (EO82) and Theorem 2 (corner) reductions.

Both reductions are checked operationally against the brute-force box-sum
over the naive dominance backend, across dimensions 1–3, with hypothesis
driving random object/query layouts.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Box
from repro.core.naive import NaiveBoxSum, NaiveDominanceSum
from repro.core.reduction import (
    CornerReduction,
    EO82Reduction,
    Probe,
    combine_probe_values,
    corner_query_count,
    eo82_query_count,
    reduction_comparison,
)

from ..conftest import random_box, random_objects


def _corner_setup(dims, objects):
    reduction = CornerReduction(dims)
    indices = {key: NaiveDominanceSum(dims) for key in reduction.index_keys()}
    for box, value in objects:
        for key, point, v in reduction.insertions(box, value):
            indices[key].insert(point, v)
    return reduction, indices


def _eo82_setup(dims, objects):
    reduction = EO82Reduction(dims)
    indices = {key: NaiveDominanceSum(len(key[0])) for key in reduction.index_keys()}
    total = 0.0
    for box, value in objects:
        total += value
        for key, point, v in reduction.insertions(box, value):
            indices[key].insert(point, v)
    return reduction, indices, total


class TestQueryCounts:
    def test_theorem_2_count(self):
        assert corner_query_count(1) == 2
        assert corner_query_count(2) == 4
        assert corner_query_count(3) == 8

    def test_theorem_1_count_formula(self):
        # sum_i 2^i C(d, i) == 3^d - 1
        for d in range(1, 10):
            assert eo82_query_count(d) == 3**d - 1

    def test_paper_example_d3(self):
        """'with d = 3 a method based on [13] would need 26 queries while our technique only 8'."""
        assert eo82_query_count(3) == 26
        assert corner_query_count(3) == 8

    def test_comparison_table(self):
        table = reduction_comparison(4)
        assert table == [(1, 2, 2), (2, 8, 4), (3, 26, 8), (4, 80, 16)]

    def test_index_key_counts_match_query_counts(self):
        assert len(CornerReduction(3).index_keys()) == 8
        assert len(EO82Reduction(3).index_keys()) == 26

    def test_num_queries_properties(self):
        assert CornerReduction(2).num_queries == 4
        assert EO82Reduction(2).num_queries == 8


class TestCornerReductionCorrectness:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_matches_brute_force(self, dims):
        rng = random.Random(7 + dims)
        objects = random_objects(rng, 120, dims)
        oracle = NaiveBoxSum(dims)
        for box, value in objects:
            oracle.insert(box, value)
        reduction, indices = _corner_setup(dims, objects)
        for _ in range(60):
            query = random_box(rng, dims, max_side=40.0)
            got = reduction.box_sum(indices, query)
            assert got == pytest.approx(oracle.box_sum(query), abs=1e-6)

    def test_figure_2_example(self):
        """Figure 2: index (1,0) stores (h1, l2) corners; its query point is (q.l1, q.h2)."""
        reduction = CornerReduction(2)
        box = Box((1.0, 2.0), (3.0, 4.0))
        inserts = {key: point for key, point, _v in reduction.insertions(box, 1.0)}
        assert inserts[(0, 0)] == (1.0, 2.0)  # lower-left
        assert inserts[(1, 0)] == (3.0, 2.0)  # lower-right
        assert inserts[(0, 1)] == (1.0, 4.0)  # upper-left
        assert inserts[(1, 1)] == (3.0, 4.0)  # upper-right
        query = Box((5.0, 6.0), (7.0, 8.0))
        plan = {key: (point, parity) for key, point, parity in reduction.query_plan(query)}
        assert plan[(0, 0)] == ((7.0, 8.0), 1)    # + at q's upper-right
        assert plan[(1, 0)] == ((5.0, 8.0), -1)   # - at q's upper-left
        assert plan[(0, 1)] == ((7.0, 6.0), -1)   # - at q's lower-right
        assert plan[(1, 1)] == ((5.0, 6.0), 1)    # + at q's lower-left

    def test_touching_objects_follow_paper_semantics(self):
        reduction, indices = _corner_setup(2, [(Box((0.0, 0.0), (5.0, 5.0)), 1.0)])
        # Query starting exactly at the object's high corner: intersects.
        assert reduction.box_sum(indices, Box((5.0, 5.0), (9.0, 9.0))) == pytest.approx(1.0)
        # Query ending exactly at the object's low corner: does NOT intersect.
        assert reduction.box_sum(indices, Box((-4.0, -4.0), (0.0, 0.0))) == pytest.approx(0.0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_random_layouts_2d(self, seed):
        rng = random.Random(seed)
        objects = random_objects(rng, 30, 2)
        oracle = NaiveBoxSum(2)
        for box, value in objects:
            oracle.insert(box, value)
        reduction, indices = _corner_setup(2, objects)
        query = random_box(rng, 2, max_side=60.0)
        assert reduction.box_sum(indices, query) == pytest.approx(oracle.box_sum(query), abs=1e-6)


class TestCombineProbeValues:
    def test_empty_plan_returns_base_unchanged(self):
        # Regression: a sharded router can prune every probe of a plan away;
        # the reassembly must then yield the reduction's additive identity
        # (zero for corner, the grand total for EO82), i.e. `base` verbatim.
        assert combine_probe_values([], {}, 0.0, 0.0) == 0.0
        assert combine_probe_values([], {}, 42.5, 0.0) == 42.5
        base = object()
        assert combine_probe_values([], {}, base, None) is base

    def test_empty_plan_ignores_stray_values(self):
        # Values for identities outside the plan must not leak in.
        assert combine_probe_values([], {("k", (1.0,)): 7.0}, 3.0, 0.0) == 3.0

    def test_matches_direct_evaluation(self):
        rng = random.Random(21)
        objects = random_objects(rng, 50, 2)
        reduction, indices = _corner_setup(2, objects)
        for _ in range(20):
            query = random_box(rng, 2, max_side=40.0)
            plan = [Probe(key, point, parity) for key, point, parity in reduction.query_plan(query)]
            values = {
                probe.identity: indices[probe.key].dominance_sum(probe.point)
                for probe in plan
            }
            assert combine_probe_values(plan, values, 0.0, 0.0) == reduction.box_sum(indices, query)


class TestEO82ReductionCorrectness:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_matches_brute_force(self, dims):
        rng = random.Random(11 + dims)
        objects = random_objects(rng, 100, dims)
        oracle = NaiveBoxSum(dims)
        for box, value in objects:
            oracle.insert(box, value)
        reduction, indices, total = _eo82_setup(dims, objects)
        for _ in range(50):
            query = random_box(rng, dims, max_side=40.0)
            got = reduction.box_sum(indices, total, query)
            assert got == pytest.approx(oracle.box_sum(query), abs=1e-6)

    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_agrees_with_corner_reduction(self, dims):
        rng = random.Random(13 + dims)
        objects = random_objects(rng, 80, dims)
        corner, corner_indices = _corner_setup(dims, objects)
        eo82, eo82_indices, total = _eo82_setup(dims, objects)
        for _ in range(40):
            query = random_box(rng, dims, max_side=50.0)
            assert corner.box_sum(corner_indices, query) == pytest.approx(
                eo82.box_sum(eo82_indices, total, query), abs=1e-6
            )
