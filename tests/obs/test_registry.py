"""Tests for the metrics registry: instruments, labels, pull collectors."""

from __future__ import annotations

import pytest

from repro.obs import (
    IOCounterCollector,
    MetricsRegistry,
    get_registry,
    null_registry,
    set_registry,
)
from repro.storage import StorageContext
from repro.storage.buffer import BufferPool
from repro.storage.stats import IOCounter


class TestCounter:
    def test_inc_defaults_to_one(self):
        reg = MetricsRegistry()
        c = reg.counter("queries")
        c.inc()
        c.inc()
        assert c.value() == 2.0

    def test_labels_select_independent_cells(self):
        reg = MetricsRegistry()
        c = reg.counter("ios")
        c.inc(3, method="ba")
        c.inc(5, method="aR")
        assert c.value(method="ba") == 3.0
        assert c.value(method="aR") == 5.0
        assert c.value() == 0.0

    def test_rejects_negative_amounts(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("ios").inc(-1)

    def test_untouched_cell_reads_zero(self):
        reg = MetricsRegistry()
        assert reg.counter("ios").value(method="nope") == 0.0


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("height")
        g.set(3)
        g.set(5)
        assert g.value() == 5.0

    def test_inc_may_go_negative(self):
        reg = MetricsRegistry()
        g = reg.gauge("resident")
        g.inc(2)
        g.inc(-5)
        assert g.value() == -3.0


class TestHistogram:
    def test_count_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", buckets=[1.0, 10.0])
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        assert h.count() == 3
        assert h.sum() == pytest.approx(55.5)

    def test_bucket_counts_with_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", buckets=[1.0, 10.0])
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        assert h.bucket_counts() == [1, 1, 1]

    def test_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=[10.0, 1.0])

    def test_samples_emit_count_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", buckets=[1.0])
        h.observe(0.5, method="ba")
        names = [name for name, _labels, _v in h.samples()]
        assert names == ["latency_count", "latency_sum"]


class TestRegistry:
    def test_instrument_lookup_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("ios") is reg.counter("ios")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("ios")
        with pytest.raises(ValueError):
            reg.gauge("ios")

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("ios")
        g = reg.gauge("height")
        h = reg.histogram("latency")
        c.inc()
        g.set(5)
        h.observe(1.0)
        assert c.value() == 0.0
        assert g.value() == 0.0
        assert h.count() == 0

    def test_enable_disable_is_dynamic(self):
        reg = MetricsRegistry()
        c = reg.counter("ios")
        reg.disable()
        c.inc()
        reg.enable()
        c.inc()
        assert c.value() == 1.0

    def test_reset_zeroes_instruments(self):
        reg = MetricsRegistry()
        reg.counter("ios").inc(7)
        reg.reset()
        assert reg.counter("ios").value() == 0.0

    def test_snapshot_keys_carry_labels(self):
        reg = MetricsRegistry()
        reg.counter("ios").inc(2, method="ba")
        snap = reg.snapshot()
        assert snap['ios{method="ba"}'] == 2.0

    def test_render_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("ios", help="page I/Os").inc(2)
        text = reg.render()
        assert "# HELP ios page I/Os" in text
        assert "# TYPE ios counter" in text
        assert "ios 2" in text

    def test_null_registry_is_shared_and_disabled(self):
        assert null_registry() is null_registry()
        assert not null_registry().enabled

    def test_set_registry_swaps_global(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestCollectors:
    def test_io_counter_collector_pulls_live_state(self):
        counter = IOCounter()
        reg = MetricsRegistry()
        reg.register_collector(IOCounterCollector(counter, method="ba"))
        counter.reads += 3
        counter.hits += 2
        snap = reg.snapshot()
        assert snap['repro_io_reads{method="ba"}'] == 3.0
        assert snap['repro_io_hits{method="ba"}'] == 2.0
        assert snap['repro_io_total{method="ba"}'] == 3.0

    def test_unregister_collector(self):
        counter = IOCounter()
        reg = MetricsRegistry()
        collector = reg.register_collector(IOCounterCollector(counter))
        reg.unregister_collector(collector)
        assert reg.collect() == []

    def test_reset_leaves_collectors_live(self):
        counter = IOCounter(reads=5)
        reg = MetricsRegistry()
        reg.register_collector(IOCounterCollector(counter))
        reg.reset()
        assert reg.snapshot()["repro_io_reads"] == 5.0

    def test_buffer_pool_watch(self):
        reg = MetricsRegistry()
        pool = BufferPool(capacity_pages=4)
        pool.watch(registry=reg, pool="test")
        pool.access(1)
        pool.access(1)
        snap = reg.snapshot()
        assert snap['repro_io_reads{pool="test"}'] == 1.0
        assert snap['repro_io_hits{pool="test"}'] == 1.0

    def test_storage_context_watch(self):
        reg = MetricsRegistry()
        storage = StorageContext(page_size=2048, buffer_pages=8)
        collectors = storage.watch(registry=reg, ctx="t")
        pid = storage.pager.allocate("payload")
        storage.buffer.access(pid)
        snap = reg.snapshot()
        assert snap['repro_io_reads{ctx="t"}'] == 1.0
        assert snap['repro_storage_pages{ctx="t"}'] == 1.0
        assert snap['repro_buffer_resident_pages{ctx="t"}'] == 1.0
        for collector in collectors:
            reg.unregister_collector(collector)
        assert reg.collect() == []


class TestPercentileEstimation:
    def test_p99_tracks_exact_percentile_within_bucket_width(self):
        import random

        from repro.obs import estimate_percentile

        rng = random.Random(41)
        samples = [rng.uniform(0.0, 100.0) for _ in range(5000)]
        width = 2.0
        bounds = [width * i for i in range(1, 51)]  # 2, 4, ..., 100
        counts = [0] * (len(bounds) + 1)
        for s in samples:
            for i, bound in enumerate(bounds):
                if s <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1

        ordered = sorted(samples)
        for q in (0.50, 0.95, 0.99, 0.999):
            # Exact percentile by rank over the sorted sample — the oracle
            # the bucketed estimate is pinned against.
            rank = q * len(ordered)
            exact = ordered[min(len(ordered) - 1, max(0, int(rank) - 1))]
            estimate = estimate_percentile(bounds, counts, q)
            assert abs(estimate - exact) <= width, (q, exact, estimate)

    def test_degenerate_inputs(self):
        import pytest

        from repro.obs import estimate_percentile

        assert estimate_percentile([1.0, 2.0], [0, 0, 0], 0.99) == 0.0
        with pytest.raises(ValueError):
            estimate_percentile([1.0, 2.0], [1, 1, 1], 1.5)
        with pytest.raises(ValueError):
            estimate_percentile([1.0, 2.0], [1, 1], 0.5)  # counts/bounds mismatch

    def test_overflow_bucket_clamps_to_top_bound(self):
        from repro.obs import estimate_percentile

        # Every observation beyond the last bound: the estimate cannot
        # invent mass above the histogram's ceiling.
        assert estimate_percentile([1.0, 2.0], [0, 0, 10], 0.99) == 2.0

    def test_histogram_percentile_uses_label_series(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 1.5, 3.0):
            h.observe(v, op="read")
        h.observe(100.0, op="write")
        assert 0.0 < h.percentile(0.5, op="read") <= 2.0
        assert h.percentile(0.5, op="write") == 4.0  # overflow clamps
        assert h.percentile(0.5, op="nope") == 0.0
