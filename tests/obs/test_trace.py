"""Tests for the tracer: span nesting, I/O deltas, events, (de)activation."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MAX_EVENTS_PER_SPAN,
    TRACE_SCHEMA_VERSION,
    Tracer,
    active,
    activate,
    deactivate,
    render_dict,
    tracing,
    walk_spans,
)
from repro.storage.buffer import BufferPool


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child_a"):
                pass
            with tracer.span("child_b"):
                with tracer.span("grandchild"):
                    pass
        assert len(tracer.spans) == 1
        root = tracer.spans[0]
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert root.children[1].children[0].name == "grandchild"

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        assert [s.name for s in tracer.spans] == ["one", "two"]

    def test_attrs_are_kept(self):
        tracer = Tracer()
        with tracer.span("q", backend="ba", dims=2):
            pass
        assert tracer.spans[0].attrs == {"backend": "ba", "dims": 2}

    def test_error_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("q"):
                raise ValueError("boom")
        assert tracer.spans[0].error == "ValueError"


class TestIoDeltas:
    def test_inclusive_deltas_from_counter(self):
        pool = BufferPool(capacity_pages=4)
        tracer = Tracer(counter=pool.counter)
        with tracer.span("root"):
            pool.access(1)
            with tracer.span("child"):
                pool.access(2)
                pool.access(2)
        root = tracer.spans[0]
        child = root.children[0]
        assert (root.reads, root.hits, root.writes) == (2, 1, 0)
        assert (child.reads, child.hits, child.writes) == (1, 1, 0)

    def test_self_io_subtracts_children(self):
        pool = BufferPool(capacity_pages=4)
        tracer = Tracer(counter=pool.counter)
        with tracer.span("root"):
            pool.access(1)
            with tracer.span("child"):
                pool.access(2)
        root = tracer.spans[0]
        assert root.self_io() == (1, 0, 0)

    def test_counterless_tracer_reports_zero_io(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        assert tracer.spans[0].reads == 0
        assert tracer.spans[0].total_ios == 0


class TestEvents:
    def test_events_attach_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                tracer.event("node", pid=7)
        child = tracer.spans[0].children[0]
        assert child.events == [("node", {"pid": 7})]

    def test_event_without_open_span_is_dropped(self):
        tracer = Tracer()
        tracer.event("node", pid=7)
        assert tracer.spans == []

    def test_event_cap_counts_drops(self):
        tracer = Tracer()
        with tracer.span("root"):
            for i in range(MAX_EVENTS_PER_SPAN + 5):
                tracer.event("node", pid=i)
        root = tracer.spans[0]
        assert len(root.events) == MAX_EVENTS_PER_SPAN
        assert root.dropped_events == 5


class TestBufferAttachment:
    def test_io_events_classify_read_vs_hit(self):
        pool = BufferPool(capacity_pages=4)
        tracer = Tracer(counter=pool.counter)
        tracer.attach_buffer(pool)
        try:
            with tracer.span("q"):
                pool.access(1)
                pool.access(1)
        finally:
            tracer.detach_buffers()
        events = tracer.spans[0].events
        assert [(name, attrs["kind"]) for name, attrs in events] == [
            ("io", "read"),
            ("io", "hit"),
        ]

    def test_detach_restores_class_method(self):
        pool = BufferPool(capacity_pages=4)
        tracer = Tracer(counter=pool.counter)
        tracer.attach_buffer(pool)
        assert "access" in vars(pool)
        tracer.detach_buffers()
        assert "access" not in vars(pool)
        assert pool.access.__func__ is BufferPool.access

    def test_no_events_outside_spans(self):
        pool = BufferPool(capacity_pages=4)
        tracer = Tracer(counter=pool.counter)
        tracer.attach_buffer(pool)
        try:
            pool.access(1)
        finally:
            tracer.detach_buffers()
        assert pool.counter.reads == 1
        assert tracer.spans == []


class TestActivation:
    def test_off_by_default(self):
        assert active() is None

    def test_activate_deactivate_roundtrip(self):
        tracer = Tracer()
        activate(tracer)
        try:
            assert active() is tracer
        finally:
            assert deactivate() is tracer
        assert active() is None

    def test_activation_does_not_nest(self):
        with tracing() as _tracer:
            with pytest.raises(RuntimeError):
                activate(Tracer())
        assert active() is None

    def test_tracing_context_manager_detaches_buffers(self):
        pool = BufferPool(capacity_pages=4)
        with tracing(counter=pool.counter, buffer=pool) as tracer:
            assert active() is tracer
            assert "access" in vars(pool)
        assert active() is None
        assert "access" not in vars(pool)


class TestSerialization:
    def _sample_tracer(self):
        pool = BufferPool(capacity_pages=4)
        tracer = Tracer(counter=pool.counter)
        with tracer.span("root", backend="ba"):
            pool.access(1)
            with tracer.span("child"):
                pool.access(2)
                tracer.event("node", pid=2)
        return tracer

    def test_to_dict_shape(self):
        payload = self._sample_tracer().to_dict()
        assert payload["schema_version"] == TRACE_SCHEMA_VERSION
        root = payload["spans"][0]
        assert root["name"] == "root"
        assert root["reads"] == 2
        assert root["self_reads"] == 1
        assert root["children"][0]["events"] == [{"type": "node", "pid": 2}]

    def test_json_roundtrip_renders_identically(self):
        tracer = self._sample_tracer()
        parsed = json.loads(tracer.to_json())
        assert render_dict(parsed) == tracer.render()
        assert "root" in tracer.render()
        assert "1 node visit(s)" in tracer.render()

    def test_walk_spans_visits_everything(self):
        payload = self._sample_tracer().to_dict()
        names = sorted(span["name"] for span in walk_spans(payload))
        assert names == ["child", "root"]

    def test_render_respects_max_depth(self):
        tracer = Tracer()
        with tracer.span("alpha"):
            with tracer.span("bravo"):
                with tracer.span("charlie"):
                    pass
        text = tracer.render(max_depth=2)
        assert "bravo" in text
        assert "charlie" not in text
        assert "..." in text


class TestThreadSafety:
    def test_span_stacks_are_thread_local(self):
        """Overlapping spans in different threads never nest into each other."""
        import threading

        tracer = Tracer()
        first_open = threading.Event()
        second_done = threading.Event()
        errors = []

        def holder():
            try:
                with tracer.span("holder"):
                    first_open.set()
                    assert second_done.wait(timeout=10.0)
            except Exception as exc:
                errors.append(exc)

        def interloper():
            try:
                assert first_open.wait(timeout=10.0)
                # opened while "holder" is still open in the other thread
                with tracer.span("interloper"):
                    pass
            finally:
                second_done.set()

        threads = [threading.Thread(target=holder), threading.Thread(target=interloper)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors, errors[0]
        # both are roots: the interloper did not become a child of "holder"
        assert sorted(s.name for s in tracer.spans) == ["holder", "interloper"]
        assert all(not s.children for s in tracer.spans)

    def test_concurrent_root_spans_all_recorded(self):
        import threading

        tracer = Tracer()
        barrier = threading.Barrier(8)

        def work():
            barrier.wait(timeout=10.0)
            for _ in range(25):
                with tracer.span("w"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert len(tracer.spans) == 8 * 25
