"""The acceptance criterion: profiled span trees reconcile with the counters.

For one query per index family, the root span's inclusive I/O delta must
equal the storage counter's delta over the whole call — and survive a JSON
round-trip unchanged.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import Box, BoxSumIndex, FunctionalBoxSumIndex, profile
from repro.core.explain import QueryProfile
from repro.inspect import dump
from repro.kdb import KdbTree
from repro.obs import active, render_dict, walk_spans
from repro.storage import StorageContext

FAMILIES = [
    ("ba", 2),
    ("ecdf-bu", 2),
    ("ecdf-bq", 2),
    ("ar", 2),
    ("bptree", 1),
]


def build_index(backend: str, dims: int, **kwargs) -> BoxSumIndex:
    index = BoxSumIndex(dims=dims, backend=backend, page_size=2048, **kwargs)
    rng = random.Random(7)
    for _ in range(80):
        low = tuple(rng.uniform(0, 80) for _ in range(dims))
        high = tuple(c + rng.uniform(1, 15) for c in low)
        index.insert(Box(low, high), value=1.0)
    return index


def query_box(dims: int) -> Box:
    return Box((10.0,) * dims, (60.0,) * dims)


class TestRootSpanReconciles:
    @pytest.mark.parametrize("backend,dims", FAMILIES)
    def test_inclusive_root_delta_equals_counter_delta(self, backend, dims):
        index = build_index(backend, dims)
        prof = profile(index, query_box(dims))
        spans = prof.trace["spans"]
        assert len(spans) == 1
        root = spans[0]
        assert (root["reads"], root["hits"], root["writes"]) == (
            prof.reads,
            prof.hits,
            prof.writes,
        )
        assert prof.reads + prof.hits > 0

    @pytest.mark.parametrize("backend,dims", FAMILIES)
    def test_json_roundtrip_is_lossless(self, backend, dims):
        index = build_index(backend, dims)
        prof = profile(index, query_box(dims))
        parsed = json.loads(prof.to_json())
        assert parsed["trace"] == json.loads(json.dumps(prof.trace, default=str))
        assert render_dict(parsed["trace"]) == render_dict(prof.trace)

    def test_eviction_writes_are_attributed_to_the_root_span(self):
        index = build_index("ba", 2, buffer_pages=2)
        prof = profile(index, query_box(2))
        root = prof.trace["spans"][0]
        assert root["writes"] == prof.writes

    def test_result_matches_untraced_query(self):
        index = build_index("ba", 2)
        expected = index.box_sum(query_box(2))
        prof = profile(index, query_box(2))
        assert prof.result == pytest.approx(expected)

    def test_tracer_is_deactivated_afterwards(self):
        index = build_index("bptree", 1)
        profile(index, query_box(1))
        assert active() is None


class TestSpanStructure:
    def test_box_sum_fans_out_into_dominance_sums(self):
        index = build_index("ba", 2)
        prof = profile(index, query_box(2))
        root = prof.trace["spans"][0]
        assert root["name"] == "box_sum"
        corners = [c for c in root["children"] if c["name"] == "dominance_sum"]
        assert len(corners) == 4  # 2^d corner dominance-sums
        assert all(
            c["name"].endswith("ba.dominance_sum")
            for corner in corners
            for c in corner["children"]
        )

    def test_node_visits_are_recorded_as_events(self):
        index = build_index("ecdf-bu", 2)
        prof = profile(index, query_box(2))
        node_events = [
            e
            for span in walk_spans(prof.trace)
            for e in span.get("events", [])
            if e["type"] == "node"
        ]
        assert node_events
        assert all("pid" in e for e in node_events)

    def test_record_io_logs_page_accesses(self):
        index = build_index("ba", 2)
        prof = profile(index, query_box(2), record_io=True)
        io_events = [
            e
            for span in walk_spans(prof.trace)
            for e in span.get("events", [])
            if e["type"] == "io"
        ]
        assert io_events
        assert {e["kind"] for e in io_events} <= {"read", "hit"}

    def test_functional_profile(self):
        index = FunctionalBoxSumIndex(dims=1, backend="bptree", page_size=2048)
        rng = random.Random(11)
        for _ in range(40):
            lo = rng.uniform(0, 80)
            index.insert(Box((lo,), (lo + rng.uniform(1, 10),)), 2.0)
        prof = profile(index, query_box(1))
        assert prof.op == "functional_box_sum"
        root = prof.trace["spans"][0]
        assert root["name"] == "functional_box_sum"
        assert (root["reads"], root["hits"], root["writes"]) == (
            prof.reads,
            prof.hits,
            prof.writes,
        )

    def test_range_count_profile_on_raw_kdb_tree(self):
        ctx = StorageContext(page_size=2048, buffer_pages=None)
        tree = KdbTree(ctx, 2)
        rng = random.Random(3)
        for _ in range(60):
            tree.insert((rng.uniform(0, 80), rng.uniform(0, 80)))
        prof = profile(tree, query_box(2))
        assert prof.op == "range_count"
        root = prof.trace["spans"][0]
        assert root["name"] == "kdb.range_count"
        assert (root["reads"], root["hits"], root["writes"]) == (
            prof.reads,
            prof.hits,
            prof.writes,
        )


class TestRendering:
    def test_profile_render_and_dump_dispatch(self):
        index = build_index("ba", 2)
        prof = profile(index, query_box(2))
        text = prof.render()
        assert text.startswith("box_sum: result=")
        assert dump(prof) == text
        assert dump(prof.trace) == render_dict(prof.trace)

    def test_render_survives_json_roundtrip(self):
        index = build_index("ecdf-bq", 2)
        prof = profile(index, query_box(2))
        parsed = json.loads(json.dumps(prof.trace, default=str))
        assert render_dict(parsed) == render_dict(prof.trace)
