"""Public API surface: the names downstream code is entitled to rely on."""

from __future__ import annotations

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "name",
        [
            "Box",
            "Polynomial",
            "SumCount",
            "ReproError",
            "BoxSumIndex",
            "FunctionalBoxSumIndex",
            "make_dominance_index",
            "NaiveBoxSum",
            "NaiveDominanceSum",
            "NaiveFunctionalBoxSum",
            "StorageContext",
            "IOCounter",
            "CostModel",
        ],
    )
    def test_exported(self, name):
        assert name in repro.__all__
        assert getattr(repro, name) is not None

    def test_subpackages_import(self):
        import repro.analysis
        import repro.batree
        import repro.bench
        import repro.borders
        import repro.bptree
        import repro.cube
        import repro.durable
        import repro.ecdf
        import repro.inspect
        import repro.kdb
        import repro.rtree
        import repro.storage
        import repro.temporal
        import repro.testing
        import repro.workloads

        assert repro.batree.BATree is not None
        assert repro.temporal.TemporalAggregateIndex is not None

    def test_quickstart_from_docstring(self):
        """The README/module-docstring quickstart works verbatim."""
        from repro import Box, BoxSumIndex

        index = BoxSumIndex(dims=2, backend="ba")
        index.insert(Box((2, 10), (15, 26)), value=4.0)
        index.insert(Box((5, 3), (18, 15)), value=3.0)
        total = index.box_sum(Box((5, 7), (20, 15)))
        assert total == pytest.approx(7.0)

    def test_error_hierarchy(self):
        from repro.core.errors import (
            DimensionMismatchError,
            PageNotFoundError,
            ReproError,
            SlabError,
            StorageError,
            TreeInvariantError,
        )

        for exc in (
            DimensionMismatchError,
            PageNotFoundError,
            SlabError,
            StorageError,
            TreeInvariantError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(PageNotFoundError, StorageError)
        assert issubclass(SlabError, StorageError)
