"""Cross-module integration tests: durability, shared buffers, skewed data, 4-d."""

from __future__ import annotations

import pickle
import random

import pytest

from repro import Box, BoxSumIndex, FunctionalBoxSumIndex, Polynomial
from repro.batree import BATree
from repro.core.naive import NaiveBoxSum, NaiveDominanceSum
from repro.ecdf import EcdfBTree
from repro.storage import StorageContext
from repro.workloads import clustered_boxes, query_boxes, uniform_boxes

from .conftest import random_box


class TestDurability:
    """Indexes survive a pickle round trip of the whole simulated disk."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda ctx: BATree(ctx, 2, leaf_capacity=8, index_capacity=8),
            lambda ctx: EcdfBTree(ctx, 2, variant="u", leaf_capacity=8, internal_capacity=8),
            lambda ctx: EcdfBTree(ctx, 2, variant="q", leaf_capacity=8, internal_capacity=8),
        ],
    )
    def test_tree_round_trip(self, factory, tmp_path):
        rng = random.Random(21)
        points = [((rng.uniform(0, 100), rng.uniform(0, 100)), 1.0) for _ in range(300)]
        tree = factory(StorageContext(buffer_pages=None))
        tree.bulk_load(points)
        path = tmp_path / "tree.pkl"
        with open(path, "wb") as f:
            pickle.dump(tree, f)
        with open(path, "rb") as f:
            reopened = pickle.load(f)
        for _ in range(20):
            q = (rng.uniform(0, 100), rng.uniform(0, 100))
            assert reopened.dominance_sum(q) == pytest.approx(tree.dominance_sum(q))
        reopened.insert((50.0, 50.0), 3.0)
        assert reopened.dominance_sum((60.0, 60.0)) == pytest.approx(
            tree.dominance_sum((60.0, 60.0)) + 3.0
        )

    def test_facade_round_trip(self, tmp_path, rng):
        index = BoxSumIndex(2, backend="ba", buffer_pages=None)
        objects = [(random_box(rng, 2), rng.uniform(0, 5)) for _ in range(150)]
        index.bulk_load(objects)
        path = tmp_path / "index.pkl"
        with open(path, "wb") as f:
            pickle.dump(index, f)
        with open(path, "rb") as f:
            reopened = pickle.load(f)
        q = random_box(rng, 2, max_side=60.0)
        assert reopened.box_sum(q) == pytest.approx(index.box_sum(q))


class TestSharedBuffer:
    def test_multiple_indexes_one_disk(self, rng):
        """Two facades on one context contend for the same LRU buffer."""
        ctx = StorageContext(page_size=2048, buffer_pages=16)
        a = BoxSumIndex(2, backend="ba", storage=ctx)
        b = BoxSumIndex(2, backend="ecdf-bu", storage=ctx)
        objects = [(random_box(rng, 2), 1.0) for _ in range(400)]
        a.bulk_load(objects)
        b.bulk_load(objects)
        q = random_box(rng, 2, max_side=50.0)
        assert a.box_sum(q) == pytest.approx(b.box_sum(q))
        assert ctx.num_pages > 0
        assert ctx.buffer.resident_pages <= 16


class TestSkewedData:
    @pytest.mark.parametrize("backend", ["ba", "ecdf-bu", "ecdf-bq", "ar"])
    def test_clustered_dataset(self, backend):
        objects = clustered_boxes(800, n_clusters=5, avg_side_fraction=0.002, seed=31)
        index = BoxSumIndex(2, backend=backend, buffer_pages=None, page_size=2048)
        index.bulk_load(objects)
        oracle = NaiveBoxSum(2)
        for box, value in objects:
            oracle.insert(box, value)
        for query in query_boxes(30, 0.01, seed=32):
            assert index.box_sum(query) == pytest.approx(oracle.box_sum(query), abs=1e-6)

    def test_all_objects_at_one_point(self):
        """Fully degenerate data: every structure must survive it."""
        box = Box((0.5, 0.5), (0.5, 0.5))
        for backend in ("ba", "ecdf-bu", "ecdf-bq", "ar"):
            index = BoxSumIndex(
                2,
                backend=backend,
                buffer_pages=None,
            )
            for _ in range(100):
                index.insert(box, 1.0)
            assert index.box_sum(Box((0.0, 0.0), (1.0, 1.0))) == pytest.approx(100.0)
            assert index.box_sum(Box((0.6, 0.6), (1.0, 1.0))) == pytest.approx(0.0)


class TestHigherDimensions:
    def test_4d_box_sum(self):
        rng = random.Random(41)
        dims = 4
        index = BoxSumIndex(dims, backend="ba", buffer_pages=None)
        oracle = NaiveBoxSum(dims)
        for _ in range(150):
            low = [rng.uniform(0, 80) for _ in range(dims)]
            box = Box(low, [lo + rng.uniform(0, 15) for lo in low])
            index.insert(box, 1.0)
            oracle.insert(box, 1.0)
        assert len(index._indices) == 16  # 2^4 corner trees
        for _ in range(20):
            low = [rng.uniform(0, 60) for _ in range(dims)]
            q = Box(low, [lo + rng.uniform(5, 40) for lo in low])
            assert index.box_sum(q) == pytest.approx(oracle.box_sum(q), abs=1e-6)

    def test_3d_functional(self):
        rng = random.Random(43)
        index = FunctionalBoxSumIndex(3, backend="ba", max_degree=1, buffer_pages=None)
        from repro.core.naive import NaiveFunctionalBoxSum

        oracle = NaiveFunctionalBoxSum(3)
        for _ in range(60):
            low = [rng.uniform(0, 50) for _ in range(3)]
            box = Box(low, [lo + rng.uniform(1, 10) for lo in low])
            f = Polynomial.constant(3, rng.uniform(0.5, 2.0)) + (
                Polynomial.variable(3, 0).scale(rng.uniform(-0.02, 0.02))
            )
            index.insert(box, f)
            oracle.insert(box, f)
        for _ in range(15):
            low = [rng.uniform(0, 40) for _ in range(3)]
            q = Box(low, [lo + rng.uniform(5, 25) for lo in low])
            assert index.functional_box_sum(q) == pytest.approx(
                oracle.functional_box_sum(q), abs=1e-4
            )


class TestMixedWorkload:
    def test_interleaved_inserts_deletes_queries(self, rng):
        """A long randomized session against the oracle, with deletions."""
        index = BoxSumIndex(2, backend="ba", buffer_pages=None, page_size=2048)
        oracle: list = []
        for step in range(600):
            action = rng.random()
            if action < 0.55 or not oracle:
                box = random_box(rng, 2)
                value = rng.uniform(0.5, 5.0)
                index.insert(box, value)
                oracle.append((box, value))
            elif action < 0.7:
                box, value = oracle.pop(rng.randrange(len(oracle)))
                index.delete(box, value)
            else:
                q = random_box(rng, 2, max_side=50.0)
                expected = sum(v for b, v in oracle if b.intersects(q))
                assert index.box_sum(q) == pytest.approx(expected, abs=1e-6)

    def test_uniform_workload_end_to_end(self):
        """The bench pipeline end to end at miniature scale."""
        objects = uniform_boxes(600, seed=51)
        queries = query_boxes(25, 0.01, seed=52)
        results = {}
        for backend in ("ba", "ecdf-bu", "ecdf-bq", "ar", "rstar", "naive"):
            index = BoxSumIndex(2, backend=backend, buffer_pages=None, page_size=2048)
            index.bulk_load(objects)
            results[backend] = [round(index.box_sum(q), 6) for q in queries]
        baseline = results.pop("naive")
        for backend, series in results.items():
            assert series == pytest.approx(baseline, abs=1e-5), backend
