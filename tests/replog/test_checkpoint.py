"""Unit tests for checkpoint serialization and the atomic checkpoint store."""

from __future__ import annotations

import os

import pytest

from repro.core.errors import ReplicationLogError
from repro.core.geometry import Box
from repro.replog import Checkpoint, CheckpointStore


def sample_checkpoint(lsn=42, epoch=142):
    return Checkpoint(
        lsn=lsn,
        epoch=epoch,
        dims=2,
        objects=(
            (Box([0.0, 0.0], [5.0, 5.0]), 2.5, 3),
            (Box([1.0, 2.0], [3.0, 4.0]), 1.0, -1),  # cluster-routed delete
        ),
        meta=(("durable-header", b"\x01\x02"), ("empty", b"")),
    )


class TestCodec:
    def test_round_trip(self):
        ckpt = sample_checkpoint()
        assert Checkpoint.decode(ckpt.encode()) == ckpt

    def test_empty_checkpoint_round_trips(self):
        ckpt = Checkpoint(lsn=0, epoch=0, dims=0, objects=(), meta=())
        assert Checkpoint.decode(ckpt.encode()) == ckpt

    def test_num_instances_sums_signed_counts(self):
        assert sample_checkpoint().num_instances == 2

    def test_bit_flip_rejected(self):
        blob = bytearray(sample_checkpoint().encode())
        blob[len(blob) // 2] ^= 0x10
        with pytest.raises(ReplicationLogError):
            Checkpoint.decode(bytes(blob))

    def test_truncation_rejected(self):
        blob = sample_checkpoint().encode()
        with pytest.raises(ReplicationLogError):
            Checkpoint.decode(blob[:-3])

    def test_bad_magic_rejected(self):
        blob = sample_checkpoint().encode()
        with pytest.raises(ReplicationLogError):
            Checkpoint.decode(b"NOTACKPT" + blob[8:])


class TestStore:
    def test_save_load_and_ordering(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for lsn in (30, 10, 20):
            store.save(sample_checkpoint(lsn=lsn, epoch=100 + lsn))
        assert store.lsns() == [10, 20, 30]
        assert store.load(20).epoch == 120
        assert store.latest().lsn == 30

    def test_best_for_picks_newest_at_or_below(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for lsn in (10, 20, 30):
            store.save(sample_checkpoint(lsn=lsn))
        assert store.best_for(25).lsn == 20
        assert store.best_for(30).lsn == 30
        assert store.best_for(9) is None

    def test_best_for_skips_corrupt_files(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(sample_checkpoint(lsn=10))
        path = store.save(sample_checkpoint(lsn=20))
        # Corrupt the newest file: an older intact checkpoint (plus a
        # longer log tail) must still win over a loud failure.
        with open(path, "r+b") as f:
            f.seek(12)
            f.write(b"\xff\xff")
        best = store.best_for(25)
        assert best is not None and best.lsn == 10

    def test_name_body_mismatch_rejected(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        path = store.save(sample_checkpoint(lsn=10))
        os.rename(path, os.path.join(str(tmp_path), f"ckpt-{99:020d}.ckpt"))
        with pytest.raises(ReplicationLogError):
            store.load(99)

    def test_retain_keeps_newest(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for lsn in (10, 20, 30, 40):
            store.save(sample_checkpoint(lsn=lsn))
        assert store.retain(2) == 30
        assert store.lsns() == [30, 40]
        # Retaining more than exist is a no-op reporting the oldest kept.
        assert store.retain(5) == 30

    def test_retain_rejects_zero(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(str(tmp_path)).retain(0)

    def test_tmp_debris_is_ignored(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(sample_checkpoint(lsn=10))
        # A crash between the tmp write and os.replace leaves a .tmp file.
        debris = os.path.join(str(tmp_path), f"ckpt-{20:020d}.ckpt.tmp")
        with open(debris, "wb") as f:
            f.write(b"half a checkpoint")
        assert store.lsns() == [10]
        assert store.latest().lsn == 10

    def test_sizes_reports_every_file(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(sample_checkpoint(lsn=10))
        sizes = store.sizes()
        assert set(sizes) == {10} and sizes[10] > 0
