"""Unit tests for the logical operation codec (wire round trips, rejection)."""

from __future__ import annotations

import pytest

from repro.core.errors import ReplicationLogError
from repro.core.geometry import Box
from repro.replog import (
    OP_BULK,
    OP_DELETE,
    OP_INSERT,
    OP_SET_META,
    BulkLoadOp,
    DeleteOp,
    InsertOp,
    SetMetaOp,
    decode_op,
    encode_op,
)

BOX_2D = Box([1.5, -2.0], [4.0, 7.25])
BOX_1D = Box([0.0], [10.0])


class TestRoundTrip:
    @pytest.mark.parametrize(
        "op",
        [
            InsertOp(BOX_2D, 3.5),
            InsertOp(BOX_1D),  # default weight
            DeleteOp(BOX_2D, -2.0),
            SetMetaOp("pager-header", b"\x00\x01\xff" * 7),
            SetMetaOp("empty-blob", b""),
            BulkLoadOp(((BOX_2D, 1.0), (BOX_2D, 1.0), (Box([0, 0], [1, 1]), 9.0))),
            BulkLoadOp(()),
        ],
    )
    def test_encode_decode_identity(self, op):
        kind, payload = encode_op(op)
        assert kind == op.kind
        assert decode_op(kind, payload) == op

    def test_same_op_always_encodes_to_same_bytes(self):
        a = encode_op(InsertOp(BOX_2D, 3.5))
        b = encode_op(InsertOp(Box([1.5, -2.0], [4.0, 7.25]), 3.5))
        assert a == b

    def test_wire_kinds_are_stable(self):
        # On-disk values: renumbering would corrupt every existing log.
        assert (OP_INSERT, OP_DELETE, OP_SET_META, OP_BULK) == (1, 2, 3, 4)

    def test_unicode_meta_key_survives(self):
        op = SetMetaOp("clé-étendue", b"blob")
        assert decode_op(*encode_op(op)) == op


class TestRejection:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReplicationLogError):
            decode_op(99, b"")

    def test_trailing_bytes_rejected(self):
        kind, payload = encode_op(InsertOp(BOX_2D, 1.0))
        with pytest.raises(ReplicationLogError):
            decode_op(kind, payload + b"\x00")

    def test_truncated_payload_rejected(self):
        kind, payload = encode_op(DeleteOp(BOX_2D, 1.0))
        with pytest.raises(ReplicationLogError):
            decode_op(kind, payload[:-3])

    def test_meta_length_mismatch_rejected(self):
        kind, payload = encode_op(SetMetaOp("k", b"vvv"))
        with pytest.raises(ReplicationLogError):
            decode_op(kind, payload[:-1])

    def test_mixed_dims_bulk_load_rejected(self):
        with pytest.raises(ReplicationLogError):
            encode_op(BulkLoadOp(((BOX_2D, 1.0), (BOX_1D, 1.0))))

    def test_oversized_meta_key_rejected(self):
        with pytest.raises(ReplicationLogError):
            encode_op(SetMetaOp("k" * 70_000, b""))
