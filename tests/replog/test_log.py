"""Unit tests for the segmented operation log: framing, rotation, torn tails.

The torn-write torture mirrors :func:`repro.testing.check_crash_recovery`'s
discipline: a dry run counts every mutating file operation, then the same
workload is repeated with a torn write landed at *each* operation in turn.
Whatever survives must reopen to a contiguous committed prefix and keep
accepting appends — including tears at segment rotation boundaries, which
the small ``segment_bytes`` below forces every few records.
"""

from __future__ import annotations

import os

import pytest

from repro.core.errors import ReplicationLogError
from repro.obs import MetricsRegistry
from repro.replog import MAX_PAYLOAD, OperationLog
from repro.storage.faults import CrashPoint, FaultInjector, SimulatedCrashError

#: Small enough that a handful of appends spans several segments.
SEG_BYTES = 96


def payload_for(lsn: int) -> bytes:
    return bytes([lsn % 251]) * (10 + lsn % 7)


def make_log(directory, **kwargs):
    kwargs.setdefault("segment_bytes", SEG_BYTES)
    kwargs.setdefault("registry", MetricsRegistry())
    return OperationLog(str(directory), **kwargs)


class TestAppendAndRead:
    def test_lsns_are_contiguous_from_one(self, tmp_path):
        with make_log(tmp_path / "log") as log:
            assert log.head_lsn == 0
            assert log.oldest_lsn == 0
            for i in range(1, 9):
                assert log.append(1, payload_for(i)) == i
            got = list(log.records())
            assert [lsn for lsn, _k, _p in got] == list(range(1, 9))
            assert all(p == payload_for(lsn) for lsn, _k, p in got)

    def test_rotation_spans_segments(self, tmp_path):
        with make_log(tmp_path / "log") as log:
            for i in range(1, 13):
                log.append(2, payload_for(i))
            segments = log.segment_files()
            assert len(segments) > 1
            bases = [base for base, _p, _s in segments]
            assert bases == sorted(bases) and bases[0] == 1
            # Ranged reads cross segment boundaries transparently.
            got = [lsn for lsn, _k, _p in log.records(start_lsn=3, end_lsn=11)]
            assert got == list(range(3, 12))

    def test_reopen_resumes_head(self, tmp_path):
        with make_log(tmp_path / "log") as log:
            for i in range(1, 8):
                log.append(1, payload_for(i))
        with make_log(tmp_path / "log") as log:
            assert log.head_lsn == 7
            assert log.append(1, payload_for(8)) == 8
            assert len(list(log.records())) == 8

    def test_oversized_payload_rejected(self, tmp_path):
        with make_log(tmp_path / "log") as log:
            with pytest.raises(ReplicationLogError):
                log.append(1, b"\x00" * (MAX_PAYLOAD + 1))
            assert log.head_lsn == 0

    def test_alien_file_in_directory_rejected(self, tmp_path):
        d = tmp_path / "log"
        make_log(d).close()
        (d / "notes.seg").write_bytes(b"junk")
        with pytest.raises(ReplicationLogError):
            make_log(d)


class TestTornWrites:
    N_APPENDS = 9

    def _workload(self, directory, injector):
        """Append N records through the injector; returns appends completed."""
        completed = 0
        log = None
        try:
            log = make_log(directory, opener=injector.opener)
            for i in range(1, self.N_APPENDS + 1):
                log.append(1, payload_for(i))
                completed = i
        except SimulatedCrashError:
            pass  # the "process" died; survivor files are on disk
        finally:
            if log is not None and not injector.crashed:
                try:
                    log.close()  # close's own fsync can be the faulted op
                except SimulatedCrashError:
                    pass
        return completed

    def test_torn_write_at_every_operation_recovers_a_prefix(self, tmp_path):
        # Dry run: count the workload's mutating file operations.
        dry = FaultInjector()
        assert self._workload(tmp_path / "dry", dry) == self.N_APPENDS
        fired = 0
        for at_op in range(1, dry.ops + 1):
            directory = tmp_path / f"torn-{at_op}"
            injector = FaultInjector(CrashPoint(at_op=at_op, mode="torn"))
            completed = self._workload(directory, injector)
            if not injector.fired:
                continue
            fired += 1
            # Survivor files must reopen to a contiguous committed prefix:
            # every append that returned is durable, plus at most the one
            # in flight when the tear landed.
            with make_log(directory) as survivor:
                head = survivor.head_lsn
                assert completed <= head <= completed + 1
                got = list(survivor.records())
                assert [lsn for lsn, _k, _p in got] == list(range(1, head + 1))
                assert all(p == payload_for(lsn) for lsn, _k, p in got)
                # And the log still takes appends after the crash.
                assert survivor.append(1, payload_for(head + 1)) == head + 1
        # The loop tore real writes, including segment-boundary ones (the
        # workload rotates several times under SEG_BYTES).
        assert fired >= self.N_APPENDS

    def test_torn_segment_header_reseals_empty_tail_segment(self, tmp_path):
        d = tmp_path / "log"
        with make_log(d) as log:
            for i in range(1, 7):
                log.append(1, payload_for(i))
            segments = log.segment_files()
            assert len(segments) >= 2
            head = log.head_lsn
        # Tear the *next* rotation's header write by hand: a fresh segment
        # whose 16-byte header only half-persisted before the crash.
        base = head + 1
        path = os.path.join(str(d), f"{base:020d}.seg")
        with open(path, "wb") as f:
            f.write(b"REPROLG1"[:4])
        with make_log(d) as survivor:
            assert survivor.head_lsn == head
            assert survivor.append(1, payload_for(head + 1)) == head + 1
        with make_log(d) as reread:
            assert len(list(reread.records())) == head + 1


class TestCorruptionAndRetention:
    def test_mid_log_corruption_is_loud(self, tmp_path):
        d = tmp_path / "log"
        with make_log(d) as log:
            for i in range(1, 13):
                log.append(1, payload_for(i))
            first_base, first_path, _size = log.segment_files()[0]
            assert len(log.segment_files()) > 2
        # Truncate a *sealed* segment mid-record: replay cannot silently
        # skip a shipped mutation, so reading across it must raise.
        size = os.path.getsize(first_path)
        with open(first_path, "r+b") as f:
            f.truncate(size - 5)
        with make_log(d) as log:
            with pytest.raises(ReplicationLogError, match="corruption"):
                list(log.records())

    def test_prune_drops_only_wholly_stale_segments(self, tmp_path):
        with make_log(tmp_path / "log") as log:
            for i in range(1, 13):
                log.append(1, payload_for(i))
            segments = log.segment_files()
            assert len(segments) >= 3
            keep_from = segments[2][0]  # third segment's base LSN
            removed = log.prune(keep_from)
            assert removed == 2
            assert log.oldest_lsn == keep_from
            # Pruned history is unreadable — loudly.
            with pytest.raises(ReplicationLogError, match="pruned"):
                list(log.records(start_lsn=1))
            # The retained range still replays.
            got = [lsn for lsn, _k, _p in log.records(start_lsn=keep_from)]
            assert got == list(range(keep_from, 13))

    def test_prune_never_removes_the_active_segment(self, tmp_path):
        with make_log(tmp_path / "log") as log:
            log.append(1, payload_for(1))
            assert log.prune(10_000) == 0
            assert log.head_lsn == 1
            assert log.append(1, payload_for(2)) == 2
