"""Tests for the ReplicationLog facade: fold, checkpoint, restore, PITR."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.aggregator import BoxSumIndex
from repro.core.errors import ReplicationLogError
from repro.core.geometry import Box
from repro.core.naive import NaiveBoxSum
from repro.obs import MetricsRegistry
from repro.replog import (
    CatchUpDaemon,
    DeleteOp,
    InsertOp,
    LogicalState,
    ReplicationLog,
    RestoreReport,
    SetMetaOp,
)
from repro.service import QueryService

from ..conftest import random_box


def make_replog(tmp_path, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return ReplicationLog(str(tmp_path / "replog"), **kwargs)


def seeded_ops(n, seed=0, dims=2):
    rng = random.Random(seed)
    ops = []
    for i in range(n):
        box = random_box(rng, dims)
        value = float(rng.randint(1, 9))
        ops.append(DeleteOp(box, value) if i % 5 == 4 else InsertOp(box, value))
    return ops


class TestWriteAndFold:
    def test_record_assigns_contiguous_lsns(self, tmp_path):
        with make_replog(tmp_path) as rl:
            for i, op in enumerate(seeded_ops(10), start=1):
                assert rl.record(op) == i
            assert rl.head_lsn == 10
            assert rl.epoch_at(10) == 10

    def test_base_epoch_shifts_the_invariant(self, tmp_path):
        with make_replog(tmp_path, base_epoch=100) as rl:
            rl.record(InsertOp(Box([0, 0], [1, 1]), 2.0))
            assert rl.epoch_at(rl.head_lsn) == 101

    def test_reopen_recovers_folded_state(self, tmp_path):
        ops = seeded_ops(20)
        with make_replog(tmp_path) as rl:
            for op in ops:
                rl.record(op)
            before = rl.stats()
        with make_replog(tmp_path) as rl:
            after = rl.stats()
            assert after["head_lsn"] == before["head_lsn"] == 20.0
            assert after["state_identities"] == before["state_identities"]
            assert after["state_instances"] == before["state_instances"]

    def test_state_at_reconstructs_history(self, tmp_path):
        ops = seeded_ops(12)
        with make_replog(tmp_path) as rl:
            for op in ops:
                rl.record(op)
            oracle = LogicalState()
            for op in ops[:7]:
                oracle.apply(op)
            got = rl.state_at(7)
            # items() is already deterministically ordered — compare directly.
            assert list(got.items()) == list(oracle.items())
            with pytest.raises(ReplicationLogError):
                rl.state_at(99)


class TestCheckpointRetention:
    def test_checkpoint_prunes_log_history(self, tmp_path):
        with make_replog(tmp_path, segment_bytes=256, checkpoint_retain=1) as rl:
            for op in seeded_ops(15):
                rl.record(op)
            rl.checkpoint()
            for op in seeded_ops(15, seed=1):
                rl.record(op)
            rl.checkpoint()
            stats = rl.stats()
            assert stats["checkpoints"] == 1.0  # retain=1 dropped the first
            assert stats["newest_checkpoint_lsn"] == 30.0
            assert rl.oldest_lsn > 1  # stale segments were pruned
            # The retained checkpoint still restores without the old tail.
            assert rl.state_at(30).net_instances == rl.stats()["state_instances"]

    def test_restore_survives_pruned_history(self, tmp_path):
        with make_replog(tmp_path, segment_bytes=256, checkpoint_retain=1) as rl:
            for op in seeded_ops(25):
                rl.record(op)
            rl.checkpoint()
            for op in seeded_ops(5, seed=2):
                rl.record(op)
            service = QueryService(BoxSumIndex(2), registry=MetricsRegistry())
            report = rl.restore_into(service)
            assert isinstance(report, RestoreReport)
            assert report.checkpoint_lsn == 25
            assert report.tail_records == 5
            service.close()


class TestRestore:
    @pytest.mark.parametrize("backend", ["ba", "ecdf-bu"])
    def test_restored_member_is_bit_identical(self, tmp_path, backend):
        rng = random.Random(0x51)
        ops = seeded_ops(40)
        live = QueryService(BoxSumIndex(2, backend="ba"), registry=MetricsRegistry())
        with make_replog(tmp_path) as rl:
            for op in ops:
                if isinstance(op, InsertOp):
                    live.insert(op.box, op.value)
                else:
                    live.delete(op.box, op.value)
                rl.record(op)
            rl.checkpoint()
            # Restore onto a *different* backend: the logical multiset, not
            # the tree layout, is the contract.
            replica = QueryService(BoxSumIndex(2, backend=backend), registry=MetricsRegistry())
            report = rl.restore_into(replica)
            assert report.epoch == rl.epoch_at(rl.head_lsn)
            assert replica.epoch == live.epoch == report.epoch
            queries = [random_box(rng, 2, max_side=70.0) for _ in range(30)]
            assert replica.box_sum_batch(queries) == live.box_sum_batch(queries)
            live.close()
            replica.close()

    def test_negative_counts_replay_as_deletes(self, tmp_path):
        # A delete routed to a shard that never held the object: the
        # restored member must reproduce the negative contribution.
        box = Box([1.0, 1.0], [4.0, 4.0])
        oracle = NaiveBoxSum(2)
        oracle.insert(box, -3.0)
        with make_replog(tmp_path) as rl:
            rl.record(DeleteOp(box, 3.0))
            service = QueryService(BoxSumIndex(2), registry=MetricsRegistry())
            report = rl.restore_into(service)
            assert report.negatives_replayed == 1
            probe = Box([0.0, 0.0], [5.0, 5.0])
            assert service.box_sum(probe) == oracle.box_sum(probe)
            service.close()

    def test_meta_blobs_survive_checkpoint_and_restore(self, tmp_path):
        with make_replog(tmp_path) as rl:
            rl.record(SetMetaOp("app-header", b"\x07\x08"))
            rl.record(InsertOp(Box([0, 0], [1, 1]), 2.0))
            rl.checkpoint()
        with make_replog(tmp_path) as rl:
            assert rl.state_at(rl.head_lsn).meta == {"app-header": b"\x07\x08"}

    def test_restore_beyond_head_is_rejected(self, tmp_path):
        with make_replog(tmp_path) as rl:
            rl.record(InsertOp(Box([0, 0], [1, 1]), 1.0))
            service = QueryService(BoxSumIndex(2), registry=MetricsRegistry())
            with pytest.raises(ReplicationLogError):
                rl.restore_into(service, upto_lsn=5)
            service.close()


class TestPointInTimeRecovery:
    def test_recover_to_reproduces_the_past(self, tmp_path):
        rng = random.Random(0x717)
        ops = seeded_ops(30)
        with make_replog(tmp_path) as rl:
            for op in ops[:18]:
                rl.record(op)
            oracle = NaiveBoxSum(2)
            for op in ops[:18]:
                oracle.insert(op.box, op.value if isinstance(op, InsertOp) else -op.value)
            for op in ops[18:]:
                rl.record(op)
            # Without a factory: the logical state, enough for an audit diff.
            state = rl.recover_to(18)
            assert isinstance(state, LogicalState)
            # With one: a live service frozen at the historical epoch.
            service = rl.recover_to(18, index_factory=lambda: BoxSumIndex(2))
            assert service.epoch == rl.epoch_at(18)
            queries = [random_box(rng, 2, max_side=80.0) for _ in range(20)]
            assert service.box_sum_batch(queries) == [oracle.box_sum(q) for q in queries]
            # The head moved on: at least one answer differs.
            head_service = rl.recover_to(rl.head_lsn, index_factory=lambda: BoxSumIndex(2))
            assert service.box_sum_batch(queries) != head_service.box_sum_batch(queries)
            service.close()
            head_service.close()


class TestServiceAttachedLog:
    def test_service_mutations_ship_and_checkpoint(self, tmp_path):
        rng = random.Random(0xA11)
        with make_replog(tmp_path) as rl:
            service = QueryService(BoxSumIndex(2), registry=MetricsRegistry(), oplog=rl)
            for _ in range(12):
                service.insert(random_box(rng, 2), float(rng.randint(1, 9)))
            service.set_meta("k", b"v")
            assert rl.head_lsn == 13
            ckpt = service.checkpoint()
            assert ckpt.lsn == 13
            assert ckpt.epoch == service.epoch  # epoch = base + lsn held
            # A clone restored from the log answers identically.
            clone = QueryService(BoxSumIndex(2), registry=MetricsRegistry())
            rl.restore_into(clone)
            queries = [random_box(rng, 2, max_side=60.0) for _ in range(10)]
            assert clone.box_sum_batch(queries) == service.box_sum_batch(queries)
            assert clone.epoch == service.epoch
            service.close()
            clone.close()


class TestCatchUpDaemon:
    def test_daemon_ticks_and_counts_errors(self):
        calls = []
        fired = threading.Event()

        def fn():
            calls.append(1)
            fired.set()
            if len(calls) == 1:
                raise RuntimeError("first tick fails")

        daemon = CatchUpDaemon(fn, interval=0.005, registry=MetricsRegistry())
        with daemon:
            assert fired.wait(2.0)
            deadline = time.monotonic() + 5.0
            while len(calls) < 3 and time.monotonic() < deadline:
                time.sleep(0.005)  # a failed tick never kills the loop
        assert daemon.errors >= 1
        assert daemon.ticks >= 3

    def test_daemon_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            CatchUpDaemon(lambda: None, interval=0.0)

    def test_daemon_cannot_start_twice(self):
        daemon = CatchUpDaemon(lambda: None, interval=5.0, registry=MetricsRegistry())
        daemon.start()
        try:
            with pytest.raises(RuntimeError):
                daemon.start()
        finally:
            daemon.stop()
