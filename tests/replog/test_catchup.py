"""Acceptance property: log-shipped recovery is bit-exact, every family.

``check_log_shipping`` poisons a replica mid-stream, catches it up from
checkpoint + log tail, bootstraps a brand-new member, and recovers a
point-in-time service — all compared ``==`` against a scan oracle.  CI's
recovery-torture job repeats the ``recovery``-marked tests in a loop with
rotating seeds.
"""

from __future__ import annotations

import random

import pytest

from repro.core.aggregator import BoxSumIndex
from repro.core.errors import ReplicaDivergedError
from repro.obs import MetricsRegistry
from repro.replog import ReplicationLog
from repro.resilience import ChaosPlan, ReplicaGroup, ResilienceConfig
from repro.resilience.chaos import chaos_member_wrapper
from repro.service import QueryService
from repro.shard import ShardedService
from repro.testing import check_log_shipping

from ..conftest import random_box

FAMILIES = ["ba", "ecdf-bu", "ecdf-bq", "bptree", "ar"]


def _dims(backend: str) -> int:
    return 1 if backend == "bptree" else 2


@pytest.mark.recovery
@pytest.mark.parametrize("backend", FAMILIES)
def test_log_shipping_round_trip_every_family(backend, tmp_path):
    """Kill a member mid-stream, catch up, bootstrap, recover — bit-exact."""
    report = check_log_shipping(str(tmp_path / "replog"), dims=_dims(backend), backend=backend)
    assert report.ok, str(report)


@pytest.mark.recovery
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_log_shipping_survives_seed_rotation(seed, tmp_path):
    """The property is seed-independent, not a lucky workload."""
    report = check_log_shipping(str(tmp_path / "replog"), seed=seed)
    assert report.ok, str(report)


class TestGroupRecoveryVerbs:
    def _group(self, tmp_path, members=3, seed=0):
        registry = MetricsRegistry()
        replog = ReplicationLog(str(tmp_path / "replog"), registry=registry)

        def make_member():
            return QueryService(BoxSumIndex(2), registry=MetricsRegistry())

        group = ReplicaGroup(
            0,
            [make_member() for _ in range(members)],
            config=ResilienceConfig(max_attempts=3, backoff_base_s=0.0, seed=seed),
            registry=registry,
            replication_log=replog,
            member_factory=make_member,
        )
        return group, replog

    def test_audit_catches_a_tampered_member(self, tmp_path):
        """The catch-up audit is real: divergence keeps the member poisoned."""
        rng = random.Random(0xBAD)
        group, replog = self._group(tmp_path)
        try:
            for _ in range(20):
                group.insert(random_box(rng, 2), float(rng.randint(1, 9)))
            group.checkpoint()
            group._poison(2, "test", RuntimeError("simulated half-apply"))
            # Sabotage the restore target: an extra un-logged object makes
            # the restored member's answers drift from the live ones.
            victim = group.members[2]
            original_sync = victim.sync_epoch

            def tampered_sync(epoch):
                victim.index.insert(random_box(rng, 2), 5.0)
                original_sync(epoch)

            victim.sync_epoch = tampered_sync
            with pytest.raises(ReplicaDivergedError):
                group.catch_up(2)
            assert group.stats()["member_states"][2] == "poisoned"
            # Un-tamper; the next catch-up attempt succeeds.
            victim.sync_epoch = original_sync
            assert group.catch_up(2) is not None
            assert group.stats()["member_states"][2] != "poisoned"
        finally:
            group.close()
            replog.close()

    def test_catch_up_all_revives_every_poisoned_member(self, tmp_path):
        rng = random.Random(0xCA)
        group, replog = self._group(tmp_path, members=4)
        try:
            for _ in range(10):
                group.insert(random_box(rng, 2), float(rng.randint(1, 9)))
            group.checkpoint()
            group._poison(1, "test", RuntimeError())
            group._poison(3, "test", RuntimeError())
            for _ in range(5):
                group.insert(random_box(rng, 2), float(rng.randint(1, 9)))
            assert group.catch_up_all() == [1, 3]
            assert group.stats()["replica_lag"] == [0, 0, 0, 0]
        finally:
            group.close()
            replog.close()

    def test_add_member_bootstraps_before_serving(self, tmp_path):
        rng = random.Random(0xAD)
        group, replog = self._group(tmp_path)
        try:
            for _ in range(15):
                group.insert(random_box(rng, 2), float(rng.randint(1, 9)))
            group.checkpoint()
            mid = group.add_member()
            assert mid == 3
            queries = [random_box(rng, 2, max_side=60.0) for _ in range(10)]
            assert group.members[mid].box_sum_batch(queries) == group.members[
                0
            ].box_sum_batch(queries)
            assert group.members[mid].epoch == group.epoch
            assert group.stats()["replica_lag"][mid] == 0
        finally:
            group.close()
            replog.close()


@pytest.mark.recovery
class TestClusterRecovery:
    def _cluster(self, tmp_path, **kwargs):
        kwargs.setdefault("registry", MetricsRegistry())
        return ShardedService(
            2,
            3,
            partitioner="kd",
            workers=0,
            replicas=1,
            replog_dir=str(tmp_path / "replogs"),
            resilience=ResilienceConfig(max_attempts=3, backoff_base_s=0.0),
            **kwargs,
        )

    def test_poisoned_members_catch_up_cluster_wide(self, tmp_path):
        rng = random.Random(0x5EED)
        reference = BoxSumIndex(2)
        # Member 1 of every group fails its first mutation, then behaves.
        plan = ChaosPlan(raise_rate=1.0, mutations=True)
        with self._cluster(
            tmp_path, service_wrapper=chaos_member_wrapper(plan, member=1)
        ) as cluster:
            objects = [(random_box(rng, 2), float(rng.randint(1, 9))) for _ in range(60)]
            cluster.bulk_load(objects)  # poisons member 1 of every group
            reference.bulk_load(objects)
            for group in cluster.groups:
                assert group.stats()["member_states"][1] == "poisoned"
                group.members[1].enabled = False  # chaos lifted
            for _ in range(10):
                box, value = random_box(rng, 2), float(rng.randint(1, 9))
                cluster.insert(box, value)
                reference.insert(box, value)
            cluster.checkpoint()
            revived = cluster.catch_up_all()
            assert revived == {0: [1], 1: [1], 2: [1]}
            queries = [random_box(rng, 2, max_side=70.0) for _ in range(20)]
            assert cluster.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]
            # Every member of every group answers identically now.
            for group in cluster.groups:
                per_member = [m.box_sum_batch(queries) for m in group.members]
                assert all(ans == per_member[0] for ans in per_member)

    def test_add_replica_and_pitr_on_a_live_cluster(self, tmp_path):
        rng = random.Random(0xADD)
        with self._cluster(tmp_path) as cluster:
            objects = [(random_box(rng, 2), float(rng.randint(1, 9))) for _ in range(50)]
            cluster.bulk_load(objects)
            cluster.checkpoint()
            queries = [random_box(rng, 2, max_side=70.0) for _ in range(12)]
            group = cluster.groups[0]
            rl = cluster.replication_logs[0]
            pre_lsn = rl.head_lsn
            pre_answers = group.members[0].box_sum_batch(queries)
            # Mutations routed into shard 0 move its head past pre_lsn.
            while rl.head_lsn == pre_lsn:
                cluster.insert(random_box(rng, 2), float(rng.randint(1, 9)))
            # A new replica seeded from the log serves like its group.
            new_mid = cluster.add_replica(0)
            assert group.members[new_mid].box_sum_batch(queries) == group.members[
                0
            ].box_sum_batch(queries)
            # PITR: shard 0 as of the checkpoint answers its pre-fault bits.
            historical = cluster.recover_shard_to(0, pre_lsn)
            try:
                assert historical.epoch == rl.epoch_at(pre_lsn)
                assert historical.box_sum_batch(queries) == pre_answers
            finally:
                historical.close()
            assert "head_lsns" in cluster.stats()


class TestCatchUpDaemon:
    """Lifecycle and tick-outcome accounting of the dumb retry loop."""

    def test_stop_is_safe_before_start_and_idempotent(self):
        from repro.replog import CatchUpDaemon

        daemon = CatchUpDaemon(lambda: {}, interval=0.01, registry=MetricsRegistry())
        assert daemon.stop()  # never started
        daemon.start()
        assert daemon.stop()
        assert daemon.stop()  # second stop is a no-op
        # A stopped daemon can be started again.
        daemon.start()
        assert daemon.stop()

    def test_double_start_raises(self):
        from repro.replog import CatchUpDaemon

        daemon = CatchUpDaemon(lambda: {}, interval=5.0, registry=MetricsRegistry())
        daemon.start()
        try:
            with pytest.raises(RuntimeError):
                daemon.start()
        finally:
            assert daemon.stop()

    def test_ticks_labelled_by_outcome(self):
        import time

        from repro.replog import CatchUpDaemon

        registry = MetricsRegistry()
        outcomes = iter([{0: "revived"}, {}, RuntimeError("boom")])

        def fn():
            try:
                result = next(outcomes)
            except StopIteration:
                return {}
            if isinstance(result, Exception):
                raise result
            return result

        with CatchUpDaemon(fn, interval=0.005, registry=registry, label="t") as daemon:
            deadline = time.time() + 5.0
            while daemon.ticks < 4 and time.time() < deadline:
                time.sleep(0.01)
        assert daemon.ticks >= 4
        assert daemon.errors == 1
        text = registry.render()
        assert 'outcome="ok"' in text
        assert 'outcome="noop"' in text
        assert 'outcome="error"' in text
