"""Tests for the plain k-d-B-tree substrate."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import DimensionMismatchError
from repro.core.geometry import Box
from repro.kdb import KdbTree, choose_index_split_plane, choose_leaf_split_plane
from repro.storage import StorageContext


def make_tree(dims=2, leaf_capacity=4, index_capacity=4):
    ctx = StorageContext(page_size=8192, buffer_pages=None)
    return KdbTree(ctx, dims, leaf_capacity=leaf_capacity, index_capacity=index_capacity), ctx


class TestSplitPlanes:
    def test_leaf_plane_prefers_alternating_dim(self):
        points = [(float(i), float(i % 3)) for i in range(10)]
        box = Box((-100.0, -100.0), (100.0, 100.0))
        dim, _value = choose_leaf_split_plane(points, 2, depth=0, box=box)
        assert dim == 0
        dim, _value = choose_leaf_split_plane(points, 2, depth=1, box=box)
        assert dim == 1

    def test_leaf_plane_falls_back_on_degenerate_dim(self):
        points = [(5.0, float(i)) for i in range(10)]
        box = Box((-100.0, -100.0), (100.0, 100.0))
        dim, value = choose_leaf_split_plane(points, 2, depth=0, box=box)
        assert dim == 1
        assert 0.0 < value < 10.0

    def test_leaf_plane_none_when_all_identical(self):
        points = [(5.0, 5.0)] * 8
        box = Box((-100.0, -100.0), (100.0, 100.0))
        assert choose_leaf_split_plane(points, 2, depth=0, box=box) is None

    def test_leaf_plane_both_sides_nonempty(self):
        points = [(1.0, 0.0)] * 6 + [(9.0, 0.0)]
        box = Box((-100.0, -100.0), (100.0, 100.0))
        dim, value = choose_leaf_split_plane(points, 2, depth=0, box=box)
        assert dim == 0
        assert sum(1 for p in points if p[0] < value) >= 1
        assert sum(1 for p in points if p[0] >= value) >= 1

    def test_index_plane_uses_record_boundaries(self):
        box = Box((0.0, 0.0), (10.0, 10.0))
        boxes = [
            Box((0.0, 0.0), (4.0, 10.0)),
            Box((4.0, 0.0), (7.0, 10.0)),
            Box((7.0, 0.0), (10.0, 10.0)),
        ]
        dim, value = choose_index_split_plane(boxes, 2, depth=0, box=box)
        assert dim == 0
        assert value in (4.0, 7.0)


class TestKdbTree:
    def test_empty(self):
        tree, _ctx = make_tree()
        assert tree.range_count(Box((0.0, 0.0), (10.0, 10.0))) == 0

    def test_insert_and_report(self):
        tree, _ctx = make_tree()
        tree.insert((1.0, 1.0), "a")
        tree.insert((5.0, 5.0), "b")
        found = dict(tree.range_report(Box((0.0, 0.0), (3.0, 3.0))))
        assert found == {(1.0, 1.0): "a"}

    def test_arity_validation(self):
        tree, _ctx = make_tree()
        with pytest.raises(DimensionMismatchError):
            tree.insert((1.0,), None)
        with pytest.raises(DimensionMismatchError):
            list(tree.range_report(Box((0.0,), (1.0,))))

    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_matches_linear_scan(self, dims):
        rng = random.Random(dims * 7)
        tree, _ctx = make_tree(dims=dims)
        points = [tuple(rng.uniform(0, 100) for _ in range(dims)) for _ in range(500)]
        for p in points:
            tree.insert(p, None)
        tree.check_invariants()
        for _ in range(40):
            low = tuple(rng.uniform(0, 80) for _ in range(dims))
            high = tuple(lo + rng.uniform(0, 30) for lo in low)
            query = Box(low, high)
            expected = sum(1 for p in points if query.contains_point(p))
            assert tree.range_count(query) == expected

    def test_duplicate_points_allowed(self):
        tree, _ctx = make_tree(leaf_capacity=2)
        for _ in range(20):
            tree.insert((5.0, 5.0), None)
        # Unsplittable leaf stays oversized but queries remain exact.
        assert tree.range_count(Box((0.0, 0.0), (10.0, 10.0))) == 20
        tree.check_invariants()

    def test_forced_splits_preserve_structure(self):
        """Clustered inserts make index pages straddle split planes."""
        rng = random.Random(3)
        tree, _ctx = make_tree(leaf_capacity=3, index_capacity=3)
        points = []
        for cluster in range(10):
            cx, cy = rng.uniform(0, 100), rng.uniform(0, 100)
            for _ in range(40):
                points.append((cx + rng.gauss(0, 1), cy + rng.gauss(0, 1)))
        for p in points:
            tree.insert(p, None)
        tree.check_invariants()
        assert len(tree) == len(points)
        full = Box((-1000.0, -1000.0), (1000.0, 1000.0))
        assert tree.range_count(full) == len(points)

    def test_half_open_query_semantics(self):
        tree, _ctx = make_tree()
        tree.insert((5.0, 5.0), None)
        assert tree.range_count(Box((5.0, 5.0), (6.0, 6.0))) == 1
        assert tree.range_count(Box((4.0, 4.0), (5.0, 5.0))) == 0
