"""Tests for the structure dump utilities."""

from __future__ import annotations

import pytest

from repro.batree import BATree
from repro.bptree import AggBPlusTree
from repro.core.errors import NotSupportedError
from repro.ecdf import EcdfBTree
from repro.inspect import dump
from repro.kdb import KdbTree
from repro.rtree import ARTree, RStarTree
from repro.storage import StorageContext

from .conftest import random_objects


def ctx():
    return StorageContext(buffer_pages=None)


class TestDumpDispatch:
    def test_bptree(self):
        tree = AggBPlusTree(ctx(), leaf_capacity=3, internal_capacity=3)
        for i in range(10):
            tree.insert(float(i), 1.0)
        text = dump(tree)
        assert text.startswith("AggBPlusTree(entries=10")
        assert "leaf#" in text
        assert "internal#" in text

    def test_batree(self, rng):
        tree = BATree(ctx(), 2, leaf_capacity=4, index_capacity=4)
        for i in range(60):
            tree.insert((float(i % 10), float(i // 10)), 1.0)
        text = dump(tree)
        assert text.startswith("BATree(dims=2")
        assert "record" in text
        assert "subtotal=" in text
        assert "b0=" in text and "b1=" in text

    def test_batree_1d_delegate(self):
        tree = BATree(ctx(), 1)
        tree.insert((1.0,), 1.0)
        assert "1-d delegate" in dump(tree)

    @pytest.mark.parametrize("variant", ["u", "q"])
    def test_ecdf_b(self, variant, rng):
        tree = EcdfBTree(ctx(), 2, variant=variant, leaf_capacity=4, internal_capacity=4)
        for i in range(50):
            tree.insert((float(i), float(i)), 1.0)
        text = dump(tree)
        assert text.startswith(f"EcdfB{variant}Tree")
        assert "t0=" in text

    def test_kdb(self, rng):
        tree = KdbTree(ctx(), 2, leaf_capacity=4, index_capacity=4)
        for i in range(40):
            tree.insert((float(i % 7), float(i // 7)))
        text = dump(tree)
        assert text.startswith("KdbTree")
        assert "record" in text

    def test_rtree_plain_and_aggregated(self, rng):
        objects = random_objects(rng, 60, 2)
        plain = RStarTree(ctx(), 2, leaf_capacity=4, internal_capacity=4)
        aggregated = ARTree(ctx(), 2, leaf_capacity=4, internal_capacity=4)
        for box, value in objects:
            plain.insert(box, value)
            aggregated.insert(box, value)
        assert "agg=" not in dump(plain)
        assert "agg=" in dump(aggregated)

    def test_unknown_type_rejected(self):
        with pytest.raises(NotSupportedError):
            dump({"not": "a tree"})

    def test_max_depth_truncates(self):
        tree = AggBPlusTree(ctx(), leaf_capacity=2, internal_capacity=3)
        for i in range(64):
            tree.insert(float(i), 1.0)
        text = dump(tree, max_depth=2)
        assert "..." in text

    def test_dump_does_not_cost_io(self, rng):
        context = StorageContext(buffer_pages=None)
        tree = BATree(context, 2, leaf_capacity=4, index_capacity=4)
        for i in range(40):
            tree.insert((float(i), float(i)), 1.0)
        context.reset_stats()
        dump(tree)
        assert context.counter.accesses == 0
