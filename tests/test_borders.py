"""Tests for the border abstraction (slab arrays that spill into trees)."""

from __future__ import annotations

import random

import pytest

from repro.borders import Border
from repro.bptree import AggBPlusTree
from repro.core.errors import DimensionMismatchError
from repro.core.naive import NaiveDominanceSum
from repro.storage import StorageContext


def make_border(dims=1, spill_bytes=64, ctx=None):
    ctx = ctx or StorageContext(page_size=1024, buffer_pages=None)

    def factory():
        if dims == 1:
            return AggBPlusTree(ctx, leaf_capacity=4, internal_capacity=4)
        raise AssertionError("tests only exercise 1-d spill trees")

    return Border(
        ctx, dims, 0.0, entry_bytes=16, tree_factory=factory, spill_bytes=spill_bytes
    ), ctx


class TestArrayMode:
    def test_empty_border(self):
        border, _ctx = make_border()
        assert border.dominance_sum((5.0,)) == 0.0
        assert border.total() == 0.0
        assert not border.is_spilled

    def test_insert_and_query(self):
        border, _ctx = make_border()
        border.insert((1.0,), 2.0)
        border.insert((3.0,), 4.0)
        assert border.dominance_sum((2.0,)) == 2.0
        assert border.dominance_sum((9.0,)) == 6.0
        assert border.dominance_sum((1.0,)) == 0.0  # strict

    def test_duplicates_merge_in_array_mode(self):
        border, _ctx = make_border()
        border.insert((1.0,), 2.0)
        border.insert((1.0,), 3.0)
        assert len(border) == 1
        assert border.total() == 5.0

    def test_array_lives_in_shared_slab_page(self):
        ctx = StorageContext(page_size=1024, buffer_pages=None)
        a, _ = make_border(ctx=ctx, spill_bytes=256)
        b, _ = make_border(ctx=ctx, spill_bytes=256)
        a.insert((1.0,), 1.0)
        b.insert((2.0,), 1.0)
        # Both small borders fit in one shared page (the packing optimization).
        assert ctx.pager.num_pages == 1

    def test_query_costs_one_page_access(self):
        border, ctx = make_border()
        border.insert((1.0,), 1.0)
        ctx.reset_stats()
        border.dominance_sum((5.0,))
        assert ctx.counter.accesses == 1

    def test_arity_validation(self):
        border, _ctx = make_border()
        with pytest.raises(DimensionMismatchError):
            border.insert((1.0, 2.0), 1.0)


class TestSpill:
    def test_spills_after_threshold(self):
        border, _ctx = make_border(spill_bytes=64)  # 4 entries of 16 bytes
        for i in range(4):
            border.insert((float(i),), 1.0)
        assert not border.is_spilled
        border.insert((99.0,), 1.0)
        assert border.is_spilled

    def test_queries_agree_across_spill(self):
        border, _ctx = make_border(spill_bytes=64)
        oracle = NaiveDominanceSum(1)
        rng = random.Random(2)
        for _ in range(100):
            k = rng.uniform(0, 50)
            border.insert((k,), 1.0)
            oracle.insert((k,), 1.0)
        assert border.is_spilled
        for q in (0.0, 10.0, 25.0, 60.0):
            assert border.dominance_sum((q,)) == pytest.approx(oracle.dominance_sum((q,)))

    def test_bulk_load_large_goes_straight_to_tree(self):
        border, _ctx = make_border(spill_bytes=64)
        border.bulk_load([((float(i),), 1.0) for i in range(50)])
        assert border.is_spilled
        assert border.dominance_sum((25.0,)) == 25.0

    def test_bulk_load_small_stays_array(self):
        border, _ctx = make_border(spill_bytes=64)
        border.bulk_load([((1.0,), 1.0), ((2.0,), 2.0)])
        assert not border.is_spilled
        assert border.total() == 3.0

    def test_collect_after_spill_yields_tuples(self):
        border, _ctx = make_border(spill_bytes=32)
        border.bulk_load([((float(i),), 1.0) for i in range(10)])
        entries = list(border.collect())
        assert all(isinstance(p, tuple) and len(p) == 1 for p, _v in entries)
        assert len(entries) == 10


class TestLifecycle:
    def test_destroy_releases_slab(self):
        border, ctx = make_border()
        border.insert((1.0,), 1.0)
        border.destroy()
        assert ctx.slab.live_allocations() == 0
        assert ctx.pager.num_pages == 0

    def test_destroy_releases_tree_pages(self):
        border, ctx = make_border(spill_bytes=32)
        border.bulk_load([((float(i),), 1.0) for i in range(100)])
        assert ctx.pager.num_pages > 1
        border.destroy()
        assert ctx.pager.num_pages == 0

    def test_border_usable_after_destroy(self):
        border, _ctx = make_border()
        border.insert((1.0,), 1.0)
        border.destroy()
        border.insert((2.0,), 5.0)
        assert border.total() == 5.0
