"""Circuit breaker state machine, driven by a fake clock (no sleeping)."""

from __future__ import annotations

import pytest

from repro.resilience import (
    CLOSED,
    FORCED_OPEN,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)


class Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, s: float) -> None:
        self.now += s


def make(clock, **overrides) -> CircuitBreaker:
    defaults = dict(
        window=8, min_requests=4, failure_threshold=0.5, cooldown_s=10.0, half_open_probes=2
    )
    defaults.update(overrides)
    return CircuitBreaker(BreakerConfig(**defaults), clock=clock)


class TestTripping:
    def test_starts_closed_and_admits(self):
        breaker = make(Clock())
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_no_trip_below_min_requests(self):
        breaker = make(Clock(), min_requests=4)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_at_error_threshold(self):
        breaker = make(Clock())
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1/3 errors, below 0.5
        breaker.record_failure()  # 2/4 == the 0.5 threshold: trips
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_open_blocks_traffic(self):
        clock = Clock()
        breaker = make(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_successes_keep_it_closed(self):
        breaker = make(Clock())
        for _ in range(20):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_rolling_window_forgets_old_failures(self):
        """Failures older than the window cannot trip the breaker."""
        breaker = make(Clock(), window=4, min_requests=4)
        breaker.record_failure()
        breaker.record_failure()
        for _ in range(4):  # push the failures out of the 4-slot window
            breaker.record_success()
        breaker.record_failure()  # 1/4 in window, below threshold
        assert breaker.state == CLOSED


class TestHealing:
    def _trip(self, clock) -> CircuitBreaker:
        breaker = make(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        return breaker

    def test_cooldown_moves_to_half_open(self):
        clock = Clock()
        breaker = self._trip(clock)
        clock.advance(9.999)
        assert not breaker.allow()
        clock.advance(0.002)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()

    def test_probe_successes_close_with_a_clean_window(self):
        clock = Clock()
        breaker = self._trip(clock)
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # one probe is not enough
        breaker.record_success()
        assert breaker.state == CLOSED
        # The window was cleared: one new failure cannot re-trip.
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 3 < min_requests after the reset

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = Clock()
        breaker = self._trip(clock)
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.advance(5.0)  # cooldown restarted at the re-open
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.allow()


class TestForcedOpen:
    def test_forced_open_is_terminal(self):
        clock = Clock()
        breaker = make(clock)
        breaker.force_open()
        assert breaker.state == FORCED_OPEN
        assert not breaker.allow()
        clock.advance(1e9)  # no cooldown can revive it
        assert not breaker.allow()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == FORCED_OPEN

    def test_force_open_is_idempotent(self):
        breaker = make(Clock())
        breaker.force_open()
        trips = breaker.trips
        breaker.force_open()
        assert breaker.trips == trips


class TestObservability:
    def test_transition_hook_sees_every_change(self):
        clock = Clock()
        seen = []
        breaker = CircuitBreaker(
            BreakerConfig(window=8, min_requests=2, cooldown_s=1.0, half_open_probes=1),
            clock=clock,
            on_transition=lambda old, new: seen.append((old, new)),
        )
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.5)
        breaker.allow()
        breaker.record_success()
        assert seen == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]

    def test_stats_snapshot(self):
        breaker = make(Clock())
        breaker.record_success()
        breaker.record_failure()
        stats = breaker.stats()
        assert stats["state"] == CLOSED
        assert stats["window"] == 2.0
        assert stats["error_rate"] == pytest.approx(0.5)
        assert stats["trips"] == 0.0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"min_requests": 0},
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"cooldown_s": -1.0},
            {"half_open_probes": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)
