"""PartialResult semantics: exact partial sums, provable-exactness bound."""

from __future__ import annotations

import pytest

from repro.core.geometry import Box
from repro.resilience import PartialResult


def box(lo, hi):
    return Box((float(lo), float(lo)), (float(hi), float(hi)))


class TestConstruction:
    def test_requires_a_missing_shard(self):
        with pytest.raises(ValueError):
            PartialResult([1.0], answered=[0], missing=[], missing_extents={})

    def test_shard_sets_are_sorted_tuples(self):
        partial = PartialResult(
            [1.0],
            answered=[2, 0],
            missing=[3, 1],
            missing_extents={1: box(0, 1), 3: None},
        )
        assert partial.answered == (0, 2)
        assert partial.missing == (1, 3)
        assert partial.completeness == pytest.approx(0.5)

    def test_sequence_protocol(self):
        partial = PartialResult(
            [1.0, 2.0, 3.0],
            answered=[0],
            missing=[1],
            missing_extents={1: box(0, 1)},
        )
        assert len(partial) == 3
        assert list(partial) == [1.0, 2.0, 3.0]
        assert partial[1] == 2.0
        assert "missing=[1]" in repr(partial)


class TestExactnessBound:
    def test_disjoint_query_is_provably_exact(self):
        partial = PartialResult(
            [5.0, 7.0],
            answered=[0],
            missing=[1],
            missing_extents={1: box(0, 10)},
            queries=[box(20, 30), box(5, 15)],
        )
        assert partial.is_exact(0)  # far from the dead shard's extent
        assert not partial.is_exact(1)  # overlaps it: unknown deficit
        assert partial.exact_indices() == [0]

    def test_unknown_extent_taints_everything(self):
        partial = PartialResult(
            [5.0],
            answered=[0],
            missing=[1],
            missing_extents={1: None},
            queries=[box(1000, 2000)],
        )
        assert not partial.is_exact(0)
        assert partial.exact_indices() == []

    def test_unknown_queries_prove_nothing(self):
        partial = PartialResult([5.0], answered=[0], missing=[1], missing_extents={1: box(0, 1)})
        assert not partial.is_exact(0)
        assert partial.exact_indices() == []

    def test_touching_extents_taint(self):
        """Closed-box semantics: sharing a boundary point is intersecting."""
        partial = PartialResult(
            [5.0],
            answered=[0],
            missing=[1],
            missing_extents={1: box(0, 10)},
            queries=[box(10, 20)],
        )
        assert not partial.is_exact(0)

    def test_every_missing_extent_must_clear_the_query(self):
        partial = PartialResult(
            [5.0],
            answered=[0],
            missing=[1, 2],
            missing_extents={1: box(0, 5), 2: box(50, 60)},
            queries=[box(52, 58)],
        )
        assert not partial.is_exact(0)  # clears shard 1 but sits inside shard 2
