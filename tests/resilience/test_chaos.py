"""The chaos harness itself: deterministic, seeded, transparent when quiet."""

from __future__ import annotations

import pytest

from repro import BoxSumIndex, MetricsRegistry, QueryService
from repro.core.errors import PageCorruptionError
from repro.core.geometry import Box
from repro.resilience import (
    ChaosPlan,
    FaultyQueryService,
    InjectedFaultError,
    bitflip_injector,
    chaos_member_wrapper,
)

from ..conftest import random_objects


def make_service(rng, n=40) -> QueryService:
    index = BoxSumIndex(2, backend="ba")
    index.bulk_load(random_objects(rng, n, 2))
    return QueryService(index, registry=MetricsRegistry())


QUERY = Box((10.0, 10.0), (60.0, 60.0))


def fault_sequence(plan: ChaosPlan, service, calls: int = 40):
    """The observable outcome kinds of ``calls`` identical queries."""
    faulty = FaultyQueryService(service, plan)
    kinds = []
    for _ in range(calls):
        try:
            faulty.box_sum(QUERY)
            kinds.append("ok")
        except InjectedFaultError:
            kinds.append("raise")
        except PageCorruptionError:
            kinds.append("corrupt")
    return kinds, faulty


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self, rng):
        service = make_service(rng)
        plan = ChaosPlan(seed=17, raise_rate=0.3, corrupt_rate=0.2)
        first, faulty_a = fault_sequence(plan, service)
        second, faulty_b = fault_sequence(plan, service)
        assert first == second
        assert faulty_a.faults == faulty_b.faults
        assert "raise" in first and "corrupt" in first and "ok" in first

    def test_different_seeds_diverge(self, rng):
        service = make_service(rng)
        first, _ = fault_sequence(ChaosPlan(seed=1, raise_rate=0.4), service)
        second, _ = fault_sequence(ChaosPlan(seed=2, raise_rate=0.4), service)
        assert first != second

    def test_with_seed_reseeds(self):
        plan = ChaosPlan(seed=1, raise_rate=0.5)
        assert plan.with_seed(9).seed == 9
        assert plan.seed == 1  # frozen original untouched


class TestInjection:
    def test_faulted_answers_are_still_exact(self, rng):
        """A delayed/quiet call answers exactly; only raises are lossy."""
        service = make_service(rng)
        expected = service.box_sum(QUERY)
        faulty = FaultyQueryService(
            service, ChaosPlan(seed=3, raise_rate=0.3, delay_rate=0.3, delay_s=0.0001)
        )
        for _ in range(30):
            try:
                assert faulty.box_sum(QUERY) == expected
            except InjectedFaultError:
                pass

    def test_raise_is_not_a_repro_error(self, rng):
        from repro import ReproError

        assert not issubclass(InjectedFaultError, ReproError)

    def test_corrupt_mode_fakes_checksum_failure(self, rng):
        service = make_service(rng)
        faulty = FaultyQueryService(service, ChaosPlan(seed=0, corrupt_rate=1.0))
        with pytest.raises(PageCorruptionError):
            faulty.box_sum(QUERY)

    def test_mutations_quiet_by_default(self, rng):
        service = make_service(rng)
        faulty = FaultyQueryService(service, ChaosPlan(seed=0, raise_rate=1.0))
        faulty.insert(Box((1.0, 1.0), (2.0, 2.0)), 1.0)  # must not raise
        assert faulty.faults["raise"] == 0

    def test_mutations_opt_in(self, rng):
        service = make_service(rng)
        faulty = FaultyQueryService(service, ChaosPlan(seed=0, raise_rate=1.0, mutations=True))
        with pytest.raises(InjectedFaultError):
            faulty.insert(Box((1.0, 1.0), (2.0, 2.0)), 1.0)

    def test_disabled_wrapper_is_a_pure_passthrough(self, rng):
        service = make_service(rng)
        expected = service.box_sum(QUERY)
        faulty = FaultyQueryService(service, ChaosPlan(seed=0, raise_rate=1.0))
        faulty.enabled = False
        for _ in range(5):
            assert faulty.box_sum(QUERY) == expected
        assert faulty.faults["raise"] == 0
        assert faulty.calls == 5

    def test_unknown_attributes_delegate(self, rng):
        service = make_service(rng)
        faulty = FaultyQueryService(service, ChaosPlan())
        assert faulty.epoch == service.epoch
        assert faulty.index is service.index
        assert faulty.stats() == service.stats()

    def test_rates_must_stay_a_distribution(self):
        with pytest.raises(ValueError):
            ChaosPlan(raise_rate=0.7, delay_rate=0.6)
        with pytest.raises(ValueError):
            ChaosPlan(raise_rate=-0.1)


class TestVariableDelay:
    def test_delay_ms_must_be_an_ordered_pair(self):
        with pytest.raises(ValueError, match="pair"):
            ChaosPlan(delay_rate=0.1, delay_ms=(1.0,))
        with pytest.raises(ValueError, match="low <= high"):
            ChaosPlan(delay_rate=0.1, delay_ms=(3.0, 1.0))
        with pytest.raises(ValueError, match="low <= high"):
            ChaosPlan(delay_rate=0.1, delay_ms=(-1.0, 2.0))

    def test_delay_durations_are_drawn_from_the_range(self, rng):
        service = make_service(rng)
        plan = ChaosPlan(seed=13, delay_rate=1.0, delay_ms=(0.5, 3.0))
        faulty = FaultyQueryService(service, plan)
        draws = [faulty._draw() for _ in range(25)]
        assert all(kind == "delay" for kind, _sleep in draws)
        sleeps = [sleep for _kind, sleep in draws]
        assert all(0.0005 <= s <= 0.003 for s in sleeps)
        assert len(set(sleeps)) > 1  # variable, not the fixed delay_s

    def test_delay_schedule_replays_from_the_seed(self, rng):
        """Kinds *and* durations replay: the duration draw shares the RNG."""
        service = make_service(rng)
        plan = ChaosPlan(seed=21, raise_rate=0.2, delay_rate=0.5, delay_ms=(0.1, 2.0))
        a = FaultyQueryService(service, plan)
        b = FaultyQueryService(service, plan)
        assert [a._draw() for _ in range(40)] == [b._draw() for _ in range(40)]

    def test_without_delay_ms_the_fixed_duration_is_used(self, rng):
        service = make_service(rng)
        faulty = FaultyQueryService(service, ChaosPlan(seed=2, delay_rate=1.0, delay_s=0.007))
        assert all(faulty._draw() == ("delay", 0.007) for _ in range(10))


class TestClusterSeam:
    def test_wrapper_targets_one_member_with_decorrelated_seeds(self, rng):
        wrapper = chaos_member_wrapper(ChaosPlan(seed=5, raise_rate=0.5), member=1)
        primary = make_service(rng)
        replica = make_service(rng)
        assert wrapper(primary, 0, 0) is primary  # untouched
        wrapped2 = wrapper(replica, 2, 1)
        assert isinstance(wrapped2, FaultyQueryService)
        wrapped7 = wrapper(make_service(rng), 7, 1)
        assert wrapped2.plan.seed != wrapped7.plan.seed  # per-shard offset
        assert wrapped2.plan.seed == 5 + 7919 * 2

    def test_bitflip_injector_is_armed_for_corruption(self):
        injector = bitflip_injector(at_op=3, seed=11)
        assert injector.crash_point.at_op == 3
        assert injector.crash_point.mode == "bitflip"
        assert injector.seed == 11
