"""Replica groups: exact failover, poisoning, deadlines, hedging, containment."""

from __future__ import annotations

import threading
import time

import pytest

from repro import BoxSumIndex, MetricsRegistry, QueryService
from repro.core.errors import ShardUnavailableError
from repro.core.geometry import Box
from repro.resilience import (
    BreakerConfig,
    ChaosPlan,
    FaultyQueryService,
    ReplicaGroup,
    ResilienceConfig,
)

from ..conftest import random_box

QUERY = Box((10.0, 10.0), (70.0, 70.0))


def exact_objects(rng, n=50):
    return [(random_box(rng, 2), float(rng.randint(1, 9))) for _ in range(n)]


def make_member(objects) -> QueryService:
    index = BoxSumIndex(2, backend="ba")
    index.bulk_load(objects)
    return QueryService(index, registry=MetricsRegistry())


def fast_config(**overrides) -> ResilienceConfig:
    defaults = dict(max_attempts=3, backoff_base_s=0.0, seed=0)
    defaults.update(overrides)
    return ResilienceConfig(**defaults)


class TestFailoverExactness:
    def test_any_member_answers_bit_identically(self, rng):
        objects = exact_objects(rng)
        reference = BoxSumIndex(2, backend="ba")
        reference.bulk_load(objects)
        with ReplicaGroup(
            0,
            [make_member(objects) for _ in range(3)],
            config=fast_config(),
            registry=MetricsRegistry(),
        ) as group:
            queries = [random_box(rng, 2, max_side=60.0) for _ in range(10)]
            assert group.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]

    def test_dead_primary_fails_over_exactly(self, rng):
        objects = exact_objects(rng)
        primary = FaultyQueryService(make_member(objects), ChaosPlan(seed=0, raise_rate=1.0))
        replica = make_member(objects)
        with ReplicaGroup(
            0, [primary, replica], config=fast_config(), registry=MetricsRegistry()
        ) as group:
            expected = replica.box_sum(QUERY)
            assert group.box_sum(QUERY) == expected
            stats = group.stats()
            assert stats["failovers"] >= 1
            assert stats["failures"] >= 1

    def test_mutations_fan_out_to_every_member(self, rng):
        objects = exact_objects(rng)
        members = [make_member(objects) for _ in range(2)]
        with ReplicaGroup(0, members, config=fast_config(), registry=MetricsRegistry()) as group:
            group.insert(Box((20.0, 20.0), (30.0, 30.0)), 5.0)
            group.delete(*objects[0])
            assert members[0].box_sum(QUERY) == members[1].box_sum(QUERY)
            assert members[0].epoch == members[1].epoch == group.epoch


class TestPoisoning:
    class ExplodingOnInsert:
        """A member whose Nth insert raises mid-mutation."""

        def __init__(self, inner, explode_at=1):
            self.inner = inner
            self._countdown = explode_at

        def insert(self, box, value=1.0):
            self._countdown -= 1
            if self._countdown < 0:
                raise RuntimeError("disk full halfway through the insert")
            return self.inner.insert(box, value)

        def __getattr__(self, name):
            return getattr(self.inner, name)

    def test_failed_mutation_poisons_the_member_permanently(self, rng):
        objects = exact_objects(rng)
        flaky = self.ExplodingOnInsert(make_member(objects), explode_at=0)
        healthy = make_member(objects)
        with ReplicaGroup(
            0, [flaky, healthy], config=fast_config(), registry=MetricsRegistry()
        ) as group:
            group.insert(Box((20.0, 20.0), (30.0, 30.0)), 5.0)  # succeeds via healthy
            assert group.live_members == (1,)
            assert group.stats()["member_states"][0] == "poisoned"
            assert group.stats()["poisoned"] == 1
            # The poisoned member never serves again, even though its own
            # service still works — it may hold a half-applied mutation.
            expected = healthy.box_sum(QUERY)
            for _ in range(5):
                assert group.box_sum(QUERY) == expected
            assert group.epoch == healthy.epoch

    def test_all_members_failing_a_mutation_raises(self, rng):
        objects = exact_objects(rng)
        members = [self.ExplodingOnInsert(make_member(objects), explode_at=0) for _ in range(2)]
        with ReplicaGroup(0, members, config=fast_config(), registry=MetricsRegistry()) as group:
            with pytest.raises(ShardUnavailableError):
                group.insert(Box((1.0, 1.0), (2.0, 2.0)), 1.0)
            with pytest.raises(ShardUnavailableError):
                group.box_sum(QUERY)


class TestBreakerContainment:
    def test_breaker_stops_routing_then_readmits_after_probes(self, rng):
        """The acceptance-criteria breaker proof: trip → contain → heal."""
        objects = exact_objects(rng)
        faulty = FaultyQueryService(make_member(objects), ChaosPlan(seed=0, raise_rate=1.0))
        healthy = make_member(objects)
        now = [0.0]
        group = ReplicaGroup(
            0,
            [faulty, healthy],
            config=fast_config(
                breaker=BreakerConfig(
                    window=8, min_requests=3, failure_threshold=0.5, cooldown_s=1.0,
                    half_open_probes=2,
                )
            ),
            registry=MetricsRegistry(),
            clock=lambda: now[0],
            sleep=lambda s: None,
        )
        try:
            expected = healthy.box_sum(QUERY)
            for _ in range(6):
                assert group.box_sum(QUERY) == expected
            assert group.stats()["member_states"][0] == "open"
            # Containment: an open breaker means zero traffic to the member.
            frozen = faulty.calls
            for _ in range(10):
                assert group.box_sum(QUERY) == expected
            assert faulty.calls == frozen
            # Heal the member, elapse the cooldown: half-open probes re-admit.
            faulty.enabled = False
            now[0] += 1.001
            for _ in range(4):
                assert group.box_sum(QUERY) == expected
            assert group.stats()["member_states"][0] == "closed"
            assert faulty.calls > frozen
        finally:
            group.close()


class TestDeadlines:
    def test_hung_member_is_abandoned_at_the_deadline(self, rng):
        objects = exact_objects(rng)
        hung = FaultyQueryService(
            make_member(objects), ChaosPlan(seed=0, hang_rate=1.0, hang_s=0.5)
        )
        healthy = make_member(objects)
        with ReplicaGroup(
            0,
            [hung, healthy],
            config=fast_config(deadline_s=0.03),
            registry=MetricsRegistry(),
        ) as group:
            start = time.perf_counter()
            assert group.box_sum(QUERY) == healthy.box_sum(QUERY)
            assert time.perf_counter() - start < 0.45  # did not wait out the hang
            stats = group.stats()
            assert stats["timeouts"] >= 1
            assert stats["failovers"] >= 1

    def test_every_member_hung_raises_unavailable(self, rng):
        objects = exact_objects(rng)
        members = [
            FaultyQueryService(
                make_member(objects), ChaosPlan(seed=s, hang_rate=1.0, hang_s=0.3)
            )
            for s in range(2)
        ]
        with ReplicaGroup(
            0,
            members,
            config=fast_config(max_attempts=2, deadline_s=0.02),
            registry=MetricsRegistry(),
        ) as group:
            with pytest.raises(ShardUnavailableError) as excinfo:
                group.box_sum(QUERY)
            assert excinfo.value.shard == 0
            assert excinfo.value.attempts == 2
            assert group.stats()["unavailable"] == 1


class TestHedging:
    def test_hedge_wins_against_a_slow_primary(self, rng):
        objects = exact_objects(rng)
        slow = FaultyQueryService(
            make_member(objects), ChaosPlan(seed=0, delay_rate=1.0, delay_s=0.2)
        )
        fast = make_member(objects)
        with ReplicaGroup(
            0,
            [slow, fast],
            config=fast_config(hedge_delay_s=0.005),
            registry=MetricsRegistry(),
        ) as group:
            expected = fast.box_sum(QUERY)
            start = time.perf_counter()
            assert group.box_sum(QUERY) == expected
            assert time.perf_counter() - start < 0.18  # beat the 0.2s delay
            stats = group.stats()
            assert stats["hedges"] >= 1
            assert stats["hedge_wins"] >= 1

    def test_fast_primary_never_hedges(self, rng):
        objects = exact_objects(rng)
        members = [make_member(objects) for _ in range(2)]
        with ReplicaGroup(
            0,
            members,
            config=fast_config(hedge_delay_s=0.5),
            registry=MetricsRegistry(),
        ) as group:
            for _ in range(5):
                group.box_sum(QUERY)
            assert group.stats()["hedges"] == 0
            assert group.stats()["hedge_wins"] == 0


class TestLifecycle:
    def test_group_requires_members(self):
        with pytest.raises(ValueError):
            ReplicaGroup(0, [], registry=MetricsRegistry())

    def test_close_closes_every_member(self, rng):
        objects = exact_objects(rng)
        members = [make_member(objects) for _ in range(2)]
        group = ReplicaGroup(0, members, config=fast_config(), registry=MetricsRegistry())
        group.box_sum(QUERY)
        group.close()
        assert group.closed
        assert all(member.closed for member in members)

    def test_concurrent_serving_stays_exact(self, rng):
        objects = exact_objects(rng)
        flaky = FaultyQueryService(make_member(objects), ChaosPlan(seed=0, raise_rate=0.3))
        healthy = make_member(objects)
        with ReplicaGroup(
            0,
            [flaky, healthy],
            config=fast_config(max_attempts=4),
            registry=MetricsRegistry(),
        ) as group:
            expected = healthy.box_sum(QUERY)
            errors = []

            def hammer():
                try:
                    for _ in range(20):
                        assert group.box_sum(QUERY) == expected
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert not errors, errors[0]
