"""Chaos torture loop (``chaos`` marker — CI repeats these 20x).

Thin pytest shims over :func:`repro.testing.check_failover`, the
serving-path analogue of the storage layer's ``check_crash_recovery``
torture loop.  Everything inside is seeded, so the repeats guard against
interleaving bugs (thread pools, breaker races), not randomness.
"""

from __future__ import annotations

import pytest

from repro.testing import check_failover

pytestmark = pytest.mark.chaos


def test_check_failover_default_modes():
    report = check_failover(seed=0)
    assert report.ok, report.failures


def test_check_failover_with_hang_mode_and_deadlines():
    report = check_failover(modes=("raise", "hang"), n_objects=60, n_batches=12, seed=1)
    assert report.ok, report.failures


@pytest.mark.parametrize("backend", ["ba", "ar"])
def test_check_failover_probe_and_monolithic_paths(backend):
    report = check_failover(
        backend=backend, modes=("raise", "corrupt"), n_objects=60, n_batches=12, seed=2
    )
    assert report.ok, report.failures
