"""Acceptance property: chaos-injected failover stays bit-identical.

Every family answers exactly from any replica (additive dominance-sum
decomposition over disjoint partitions), so a cluster losing one member of
each group per query must still equal an unsharded reference index ``==``,
not ``approx``.  Weights are small integers so float summation order cannot
introduce rounding differences.
"""

from __future__ import annotations

import random

import pytest

from repro import ShardUnavailableError
from repro.core.aggregator import BoxSumIndex
from repro.obs import MetricsRegistry
from repro.resilience import ChaosPlan, FaultyQueryService, PartialResult, ResilienceConfig
from repro.resilience.chaos import chaos_member_wrapper
from repro.shard import ShardedService

from ..conftest import random_box

FAMILIES = ["ba", "ecdf-bu", "ecdf-bq", "bptree", "ar"]


def _dims(backend: str) -> int:
    return 1 if backend == "bptree" else 2


def _exact_objects(rng, n, dims):
    return [(random_box(rng, dims), float(rng.randint(1, 9))) for _ in range(n)]


def _chaotic_pair(backend: str, seed: int = 0, shards: int = 3):
    dims = _dims(backend)
    reference = BoxSumIndex(dims, backend=backend)
    cluster = ShardedService(
        dims,
        shards,
        backend=backend,
        partitioner="kd",
        workers=0,
        replicas=1,
        registry=MetricsRegistry(),
        service_wrapper=chaos_member_wrapper(ChaosPlan(seed=seed, raise_rate=0.4)),
        resilience=ResilienceConfig(max_attempts=4, backoff_base_s=0.0, seed=seed),
    )
    return reference, cluster, dims


@pytest.mark.parametrize("backend", FAMILIES)
def test_single_member_chaos_stays_bit_identical(backend):
    """One chaotic member per group, every family: answers never drift."""
    rng = random.Random(f"failover-{backend}")
    reference, cluster, dims = _chaotic_pair(backend)
    with cluster:
        objects = _exact_objects(rng, 80, dims)
        reference.bulk_load(objects)
        cluster.bulk_load(objects)
        for i in range(15):
            if i % 4 == 2:
                box, value = random_box(rng, dims), float(rng.randint(1, 9))
                reference.insert(box, value)
                cluster.insert(box, value)
            queries = [random_box(rng, dims, max_side=60.0) for _ in range(4)]
            got = cluster.box_sum_batch(queries)
            assert not isinstance(got, PartialResult)  # single members, never a group
            assert list(got) == [reference.box_sum(q) for q in queries]
        # The chaos was real: some group actually failed over.
        assert sum(g["failures"] for g in cluster.resilience_stats()) > 0


def _dead_shard_cluster(partial: bool, seed: int = 0):
    def dead_wrapper(service, sid, member):
        if sid != 0:
            return service
        return FaultyQueryService(service, ChaosPlan(seed=seed + member, raise_rate=1.0))

    return ShardedService(
        2,
        3,
        partitioner="kd",
        workers=0,
        replicas=1,
        registry=MetricsRegistry(),
        service_wrapper=dead_wrapper,
        resilience=ResilienceConfig(
            max_attempts=2, backoff_base_s=0.0, partial_results=partial, seed=seed
        ),
    )


class TestWholeGroupOutage:
    def test_default_raises_never_answers_wrong(self):
        rng = random.Random(0xDEAD)
        with _dead_shard_cluster(partial=False) as cluster:
            cluster.bulk_load(_exact_objects(rng, 60, 2))
            with pytest.raises(ShardUnavailableError) as excinfo:
                cluster.box_sum(random_box(rng, 2, max_side=90.0))
            assert excinfo.value.shard == 0

    def test_opt_in_degrades_to_an_explicit_partial(self):
        rng = random.Random(0xDEAD)
        objects = _exact_objects(rng, 60, 2)
        reference = BoxSumIndex(2, backend="ba")
        reference.bulk_load(objects)
        with _dead_shard_cluster(partial=True) as cluster:
            cluster.bulk_load(objects)
            # Sized so some queries provably clear the dead shard's extent
            # and some intersect it: both branches of the bound are exercised.
            queries = [random_box(rng, 2, max_side=20.0) for _ in range(20)]
            outcome = cluster.box_sum_batch(queries)
            assert isinstance(outcome, PartialResult)
            assert outcome.missing == (0,)
            assert outcome.answered == (1, 2)
            assert outcome.missing_extents[0] is not None
            full = [reference.box_sum(q) for q in queries]
            for i in range(len(queries)):
                if outcome.is_exact(i):
                    # Provably untouched by the outage: bit-identical.
                    assert outcome[i] == full[i]
                else:
                    # Non-negative weights: the partial sum is a lower bound.
                    assert outcome[i] <= full[i]
            # The bound is not vacuous on this workload: both kinds occur.
            exact = outcome.exact_indices()
            assert 0 < len(exact) < len(queries)
            assert cluster.stats()["partial_batches"] >= 1

    def test_single_query_partial_comes_back_typed(self):
        rng = random.Random(0xBEEF)
        with _dead_shard_cluster(partial=True) as cluster:
            cluster.bulk_load(_exact_objects(rng, 60, 2))
            outcome = cluster.box_sum(random_box(rng, 2, max_side=90.0))
            assert isinstance(outcome, PartialResult)
            assert len(outcome) == 1


class TestReplicatedClusterPlumbing:
    def test_replicated_cluster_is_bit_identical_when_healthy(self):
        rng = random.Random(0x9E)
        objects = _exact_objects(rng, 70, 2)
        reference = BoxSumIndex(2, backend="ba")
        reference.bulk_load(objects)
        with ShardedService(
            2, 3, partitioner="kd", workers=0, replicas=2, registry=MetricsRegistry()
        ) as cluster:
            cluster.bulk_load(objects)
            assert cluster.replicas == 2
            assert len(cluster.groups) == 3
            assert all(g.num_members == 3 for g in cluster.groups)
            for _ in range(8):
                box, value = random_box(rng, 2), float(rng.randint(1, 9))
                reference.insert(box, value)
                cluster.insert(box, value)
            queries = [random_box(rng, 2, max_side=60.0) for _ in range(15)]
            assert cluster.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]

    def test_failover_router_reads_policy_from_config(self):
        from repro.resilience import FailoverRouter

        rng = random.Random(0xF0)
        objects = _exact_objects(rng, 40, 2)
        with ShardedService(
            2,
            2,
            partitioner="kd",
            workers=0,
            replicas=1,
            registry=MetricsRegistry(),
            resilience=ResilienceConfig(partial_results=True),
        ) as cluster:
            cluster.bulk_load(objects)
            router = FailoverRouter(
                cluster.groups,
                config=cluster.resilience,
                registry=MetricsRegistry(),
            )
            assert router.allow_partial
            assert router.groups == list(cluster.groups)
            reference = BoxSumIndex(2, backend="ba")
            reference.bulk_load(objects)
            queries = [random_box(rng, 2, max_side=60.0) for _ in range(6)]
            got = router.scatter(queries, cluster.extents())
            assert got.results == [reference.box_sum(q) for q in queries]
