"""Poisoning/revival interplay: breakers, primaries, idempotence.

Poisoning forces a member's breaker open and removes it from rotation;
``revive()`` (operator override) and ``catch_up()`` (log-driven restore)
are the only ways back.  These tests pin the edges: breaker state across
the round trip, losing and reviving the *primary*, and double-poison /
double-revive idempotence.
"""

from __future__ import annotations

import pytest

from repro.core.aggregator import BoxSumIndex
from repro.core.errors import NotSupportedError
from repro.obs import MetricsRegistry
from repro.replog import ReplicationLog
from repro.resilience import (
    BreakerConfig,
    ChaosPlan,
    FaultyQueryService,
    ReplicaGroup,
    ResilienceConfig,
)
from repro.resilience.breaker import FORCED_OPEN, CircuitBreaker
from repro.service import QueryService

from ..conftest import random_box


def make_member():
    return QueryService(BoxSumIndex(2), registry=MetricsRegistry())


def faulty_member(seed=0):
    """A member whose mutations always fail while ``enabled``."""
    wrapper = FaultyQueryService(
        make_member(), ChaosPlan(raise_rate=1.0, mutations=True).with_seed(seed)
    )
    wrapper.enabled = False
    return wrapper


def make_group(members, tmp_path=None, **kwargs):
    replog = None
    if tmp_path is not None:
        replog = ReplicationLog(str(tmp_path / "replog"), registry=MetricsRegistry())
    kwargs.setdefault("config", ResilienceConfig(max_attempts=3, backoff_base_s=0.0, seed=0))
    group = ReplicaGroup(
        0,
        members,
        registry=MetricsRegistry(),
        replication_log=replog,
        member_factory=make_member,
        **kwargs,
    )
    return group, replog


def poison_via_mutation(group, victim, rng):
    """One armed mutation poisons ``victim``; the group survives it."""
    victim.enabled = True
    group.insert(random_box(rng, 2), 2.0)
    victim.enabled = False


class TestBreakerAcrossRevival:
    def test_poison_forces_open_revive_closes(self, rng, tmp_path):
        victim = faulty_member()
        group, replog = make_group([make_member(), victim], tmp_path)
        try:
            group.bulk_load([(random_box(rng, 2), 3.0) for _ in range(20)])
            poison_via_mutation(group, victim, rng)
            assert group.stats()["member_states"][1] == "poisoned"
            assert group.breakers[1].state == FORCED_OPEN
            assert not group.breakers[1].allow()
            assert group.revive(1)
            assert group.breakers[1].state == "closed"
            assert group.breakers[1].allow()
            assert group.stats()["member_states"][1] == "closed"
            # The revived member is live bookkeeping-wise: lag snapped to 0.
            assert group.stats()["replica_lag"][1] == 0
        finally:
            group.close()
            if replog is not None:
                replog.close()

    def test_catch_up_resets_breaker_too(self, rng, tmp_path):
        victim = faulty_member()
        group, replog = make_group([make_member(), victim], tmp_path)
        try:
            group.bulk_load([(random_box(rng, 2), 3.0) for _ in range(20)])
            group.checkpoint()
            poison_via_mutation(group, victim, rng)
            for _ in range(5):
                group.insert(random_box(rng, 2), 1.0)
            assert group.catch_up(1) is not None
            assert group.breakers[1].state == "closed"
            assert group.breakers[1].allow()
        finally:
            group.close()
            replog.close()

    def test_forced_open_survives_cooldown_until_revival(self, rng, tmp_path):
        # FORCED_OPEN must not decay into half-open like an ordinary trip:
        # only revive()/catch_up() reopen the member.
        now = [0.0]
        victim = faulty_member()
        group, replog = make_group(
            [make_member(), victim],
            tmp_path,
            config=ResilienceConfig(
                max_attempts=3,
                backoff_base_s=0.0,
                breaker=BreakerConfig(cooldown_s=0.01),
                seed=0,
            ),
            clock=lambda: now[0],
            sleep=lambda s: None,
        )
        try:
            group.bulk_load([(random_box(rng, 2), 3.0) for _ in range(10)])
            poison_via_mutation(group, victim, rng)
            now[0] += 10.0  # far past any cooldown
            assert not group.breakers[1].allow()
            assert group.stats()["member_states"][1] == "poisoned"
        finally:
            group.close()
            replog.close()


class TestPrimaryRevival:
    def test_group_serves_from_replica_then_readmits_primary(self, rng, tmp_path):
        primary = faulty_member()
        replica = make_member()
        group, replog = make_group([primary, replica], tmp_path)
        try:
            objects = [(random_box(rng, 2), float(rng.randint(1, 9))) for _ in range(25)]
            group.bulk_load(objects)
            group.checkpoint()
            poison_via_mutation(group, primary, rng)
            assert group.stats()["member_states"][0] == "poisoned"
            assert group.live_members == (1,)
            # The group still answers — exactly — from the replica, and the
            # epoch property follows the first *live* member.
            queries = [random_box(rng, 2, max_side=60.0) for _ in range(8)]
            assert group.box_sum_batch(queries) == replica.box_sum_batch(queries)
            assert group.epoch == replica.epoch
            # Catch the primary up; it serves first again.
            assert group.catch_up(0) is not None
            assert group.live_members == (0, 1)
            inner_calls = primary.calls
            assert group.box_sum_batch(queries) == replica.box_sum_batch(queries)
            assert primary.calls > inner_calls  # traffic reached the primary
        finally:
            group.close()
            replog.close()

    def test_all_members_poisoned_is_loud_until_catch_up(self, rng, tmp_path):
        from repro.core.errors import ShardUnavailableError

        m0, m1 = faulty_member(seed=1), faulty_member(seed=2)
        group, replog = make_group([m0, m1], tmp_path)
        try:
            group.bulk_load([(random_box(rng, 2), 2.0) for _ in range(10)])
            group.checkpoint()
            for victim in (m0, m1):
                victim.enabled = True
            with pytest.raises(ShardUnavailableError):
                group.insert(random_box(rng, 2), 1.0)
            for victim in (m0, m1):
                victim.enabled = False
            assert group.live_members == ()
            with pytest.raises(ShardUnavailableError):
                group.box_sum(random_box(rng, 2))
            # With no live reference the audit is vacuous: the log is the
            # only authority left, and it still restores both members.
            assert group.catch_up_all() == [0, 1]
            assert group.live_members == (0, 1)
            queries = [random_box(rng, 2, max_side=60.0) for _ in range(6)]
            group_answers = group.box_sum_batch(queries)
            assert group_answers == m0.box_sum_batch(queries)
            assert group_answers == m1.box_sum_batch(queries)
        finally:
            group.close()
            replog.close()


class TestIdempotence:
    def test_double_poison_counts_once(self, rng):
        victim = faulty_member()
        group, _ = make_group([make_member(), victim])
        try:
            group.bulk_load([(random_box(rng, 2), 2.0) for _ in range(10)])
            poison_via_mutation(group, victim, rng)
            trips_before = group.breakers[1].trips
            # A second poisoning of the same member must be a no-op.
            group._poison(1, "test", RuntimeError("again"))
            assert group.stats()["poisoned"] == 1
            assert group.breakers[1].trips == trips_before
            assert group.stats()["member_states"][1] == "poisoned"
        finally:
            group.close()

    def test_revive_of_live_member_is_a_noop(self, rng):
        group, _ = make_group([make_member(), make_member()])
        try:
            group.bulk_load([(random_box(rng, 2), 2.0) for _ in range(10)])
            assert not group.revive(1)
            assert group.stats()["revivals"] == 0
        finally:
            group.close()

    def test_catch_up_of_live_member_returns_none(self, rng, tmp_path):
        group, replog = make_group([make_member(), make_member()], tmp_path)
        try:
            group.bulk_load([(random_box(rng, 2), 2.0) for _ in range(10)])
            assert group.catch_up(1) is None
            assert group.stats()["catchups"] == 0
        finally:
            group.close()
            replog.close()

    def test_double_revive_counts_once(self, rng):
        victim = faulty_member()
        group, _ = make_group([make_member(), victim])
        try:
            group.bulk_load([(random_box(rng, 2), 2.0) for _ in range(10)])
            poison_via_mutation(group, victim, rng)
            assert group.revive(1)
            assert not group.revive(1)
            assert group.stats()["revivals"] == 1
        finally:
            group.close()


class TestWithoutReplicationLog:
    def test_revive_works_without_a_log(self, rng):
        victim = faulty_member()
        group, _ = make_group([make_member(), victim])
        try:
            group.bulk_load([(random_box(rng, 2), 2.0) for _ in range(10)])
            poison_via_mutation(group, victim, rng)
            # Revive first (fan-out skips poisoned members), then a
            # group-wide bulk_load equalizes every member's state — the
            # order that makes the operator override sound without a log.
            assert group.revive(1)
            group.bulk_load([(random_box(rng, 2), 2.0) for _ in range(10)])
            queries = [random_box(rng, 2) for _ in range(5)]
            assert group.members[1].box_sum_batch(queries) == group.members[
                0
            ].box_sum_batch(queries)
        finally:
            group.close()

    def test_recovery_verbs_require_a_log(self, rng):
        group, _ = make_group([make_member()])
        try:
            with pytest.raises(NotSupportedError):
                group.catch_up(0)
            with pytest.raises(NotSupportedError):
                group.add_member()
            with pytest.raises(NotSupportedError):
                group.checkpoint()
            with pytest.raises(NotSupportedError):
                group.recover_to(1)
        finally:
            group.close()


class TestBreakerResetUnit:
    def test_reset_is_the_only_exit_from_forced_open(self):
        breaker = CircuitBreaker(BreakerConfig(cooldown_s=0.0), clock=lambda: 1e9)
        breaker.force_open()
        assert breaker.state == FORCED_OPEN
        assert not breaker.allow()  # cooldown elapsed, still closed to traffic
        breaker.record_success()
        assert breaker.state == FORCED_OPEN
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_reset_on_closed_breaker_clears_outcomes(self):
        breaker = CircuitBreaker(BreakerConfig(window=4, min_requests=2))
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow()
