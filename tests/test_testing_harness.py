"""Tests for the public validation harness — run against every backend."""

from __future__ import annotations

import pytest

from repro import BoxSumIndex
from repro.core.aggregator import make_dominance_index
from repro.core.naive import NaiveDominanceSum
from repro.storage import StorageContext
from repro.testing import CheckReport, check_box_sum_index, check_dominance_index


class TestDominanceChecks:
    @pytest.mark.parametrize("backend", ["naive", "ba", "ecdf-bu", "ecdf-bq", "ecdf-log"])
    @pytest.mark.parametrize("dims", [1, 2])
    def test_shipped_backends_pass(self, backend, dims):
        def factory():
            return make_dominance_index(backend, dims, storage=StorageContext(buffer_pages=None))

        report = check_dominance_index(factory, dims=dims, n_points=200, n_queries=60)
        assert report.ok, report.failures[:3]

    def test_bulk_load_mode(self):
        def factory():
            return make_dominance_index("ba", 2, storage=StorageContext(buffer_pages=None))

        report = check_dominance_index(factory, dims=2, use_bulk_load=True)
        assert report.ok, report.failures[:3]

    def test_detects_a_broken_implementation(self):
        class OffByEpsilon(NaiveDominanceSum):
            def dominance_sum(self, query):
                return super().dominance_sum(query) + 1.0

        report = check_dominance_index(lambda: OffByEpsilon(2), dims=2)
        assert not report.ok
        assert report.failures

    def test_detects_nonstrict_dominance(self):
        class NonStrict(NaiveDominanceSum):
            def dominance_sum(self, query):
                total = self.zero
                for point, value in self._points:
                    if all(p <= q for p, q in zip(point, query)):  # wrong: <=
                        total = total + value
                return total

        report = check_dominance_index(lambda: NonStrict(2), dims=2)
        assert not report.ok


class TestBoxSumChecks:
    @pytest.mark.parametrize("backend", ["naive", "ba", "ar", "rstar"])
    def test_shipped_backends_pass(self, backend):
        def factory():
            return BoxSumIndex(2, backend=backend, buffer_pages=None)

        report = check_box_sum_index(factory, dims=2, n_objects=150, n_queries=50)
        assert report.ok, report.failures[:3]

    def test_bulk_load_mode(self):
        report = check_box_sum_index(
            lambda: BoxSumIndex(2, backend="ba", buffer_pages=None),
            dims=2,
            use_bulk_load=True,
            with_deletes=False,
        )
        assert report.ok, report.failures[:3]

    def test_detects_wrong_boundary_semantics(self):
        class ClosedBoxIndex(BoxSumIndex):
            """Deliberately wrong: counts boxes touching at the low edge."""

            def box_sum(self, query):
                total = 0.0
                for key, point, parity in self._reduction.query_plan(query):
                    nudged = tuple(c + 1e-9 for c in point)
                    total += parity * self._indices[key].dominance_sum(nudged)
                return total

        report = check_box_sum_index(
            lambda: ClosedBoxIndex(2, backend="naive"), dims=2, with_deletes=False
        )
        assert not report.ok

    def test_report_formatting(self):
        report = CheckReport()
        report.checks = 5
        assert report.ok
        report.fail("boom")
        assert not report.ok
        assert "boom" in report.failures[0]
