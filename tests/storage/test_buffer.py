"""Tests for the LRU buffer pool and the aR-tree path buffer."""

from __future__ import annotations

import pytest

from repro.core.errors import StorageError
from repro.storage.buffer import BufferPool, PathBuffer
from repro.storage.stats import IOCounter


class TestLruBasics:
    def test_first_access_is_a_read_miss(self):
        pool = BufferPool(capacity_pages=4)
        pool.access(1)
        assert pool.counter.reads == 1
        assert pool.counter.hits == 0

    def test_second_access_is_a_hit(self):
        pool = BufferPool(capacity_pages=4)
        pool.access(1)
        pool.access(1)
        assert pool.counter.reads == 1
        assert pool.counter.hits == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(StorageError):
            BufferPool(capacity_pages=0)

    def test_unbounded_pool_never_evicts(self):
        pool = BufferPool(capacity_pages=None)
        for pid in range(10_000):
            pool.access(pid)
        for pid in range(10_000):
            pool.access(pid)
        assert pool.counter.reads == 10_000
        assert pool.counter.hits == 10_000


class TestEviction:
    def test_lru_victim_selection(self):
        pool = BufferPool(capacity_pages=2)
        pool.access(1)
        pool.access(2)
        pool.access(1)      # 2 is now the LRU page
        pool.access(3)      # evicts 2
        assert pool.is_resident(1)
        assert not pool.is_resident(2)
        assert pool.is_resident(3)

    def test_clean_eviction_costs_no_write(self):
        pool = BufferPool(capacity_pages=1)
        pool.access(1)
        pool.access(2)
        assert pool.counter.writes == 0

    def test_dirty_eviction_costs_a_write(self):
        pool = BufferPool(capacity_pages=1)
        pool.access(1, write=True)
        pool.access(2)
        assert pool.counter.writes == 1

    def test_flush_writes_dirty_pages_once(self):
        pool = BufferPool(capacity_pages=8)
        pool.access(1, write=True)
        pool.access(2, write=True)
        pool.access(3)
        assert pool.flush() == 2
        assert pool.flush() == 0

    def test_invalidate_drops_without_write(self):
        pool = BufferPool(capacity_pages=8)
        pool.access(1, write=True)
        pool.invalidate(1)
        assert not pool.is_resident(1)
        assert pool.counter.writes == 0

    def test_write_flag_upgrades_resident_page(self):
        pool = BufferPool(capacity_pages=1)
        pool.access(1)
        pool.access(1, write=True)
        pool.access(2)
        assert pool.counter.writes == 1


class TestCounterPlumbing:
    def test_shared_counter(self):
        counter = IOCounter()
        pool = BufferPool(capacity_pages=4, counter=counter)
        pool.access(1)
        assert counter.reads == 1

    def test_snapshot_delta(self):
        counter = IOCounter()
        pool = BufferPool(capacity_pages=4, counter=counter)
        pool.access(1)
        before = counter.snapshot()
        pool.access(2)
        pool.access(2)
        delta = counter.delta(before)
        assert delta.reads == 1
        assert delta.hits == 1

    def test_total_ios(self):
        counter = IOCounter(reads=5, writes=3, hits=10)
        assert counter.total_ios == 8
        assert counter.accesses == 15

    def test_reset(self):
        counter = IOCounter(reads=5, writes=3, hits=10)
        counter.reset()
        assert counter.total_ios == 0


class TestCapacityOneChurn:
    """A capacity-1 pool degenerates to miss-on-alternation; counters must track it."""

    def test_alternating_clean_pages_always_miss(self):
        pool = BufferPool(capacity_pages=1)
        for _ in range(50):
            pool.access(1)
            pool.access(2)
        assert pool.counter.reads == 100
        assert pool.counter.hits == 0
        assert pool.counter.writes == 0
        assert pool.resident_pages == 1

    def test_alternating_dirty_pages_write_on_every_eviction(self):
        pool = BufferPool(capacity_pages=1)
        for _ in range(50):
            pool.access(1, write=True)
            pool.access(2, write=True)
        # Every access evicts the other page dirty, except the last one,
        # which is still resident (and still dirty) at the end.
        assert pool.counter.reads == 100
        assert pool.counter.writes == 99
        assert pool.flush() == 1

    def test_repeated_same_page_never_evicts(self):
        pool = BufferPool(capacity_pages=1)
        for _ in range(50):
            pool.access(7, write=True)
        assert pool.counter.reads == 1
        assert pool.counter.hits == 49
        assert pool.counter.writes == 0


class TestFlushAndClearSemantics:
    def test_flush_clears_dirty_flags_but_keeps_pages_resident(self):
        pool = BufferPool(capacity_pages=8)
        pool.access(1, write=True)
        pool.access(2)
        assert pool.flush() == 1
        assert pool.counter.writes == 1
        assert pool.is_resident(1) and pool.is_resident(2)
        pool.access(1)
        assert pool.counter.hits == 1

    def test_redirtied_page_flushes_again(self):
        pool = BufferPool(capacity_pages=8)
        pool.access(1, write=True)
        pool.flush()
        pool.access(1, write=True)
        assert pool.flush() == 1
        assert pool.counter.writes == 2

    def test_clear_drops_dirty_pages_without_writes(self):
        pool = BufferPool(capacity_pages=8)
        pool.access(1, write=True)
        pool.access(2, write=True)
        pool.clear()
        assert pool.counter.writes == 0
        assert pool.resident_pages == 0

    def test_access_after_clear_is_a_cold_read(self):
        pool = BufferPool(capacity_pages=8)
        pool.access(1)
        pool.clear()
        pool.access(1)
        assert pool.counter.reads == 2
        assert pool.counter.hits == 0


class TestPathBuffer:
    def test_path_pages_are_free(self):
        pool = BufferPool(capacity_pages=2)
        path = PathBuffer(pool)
        path.remember([10, 11, 12])
        path.access(11)
        assert pool.counter.reads == 0
        assert pool.counter.hits == 1

    def test_non_path_pages_fall_through(self):
        pool = BufferPool(capacity_pages=2)
        path = PathBuffer(pool)
        path.remember([10])
        path.access(99)
        assert pool.counter.reads == 1

    def test_writes_bypass_the_path(self):
        pool = BufferPool(capacity_pages=2)
        path = PathBuffer(pool)
        path.remember([10])
        path.access(10, write=True)
        assert pool.counter.reads == 1

    def test_forget(self):
        pool = BufferPool(capacity_pages=2)
        path = PathBuffer(pool)
        path.remember([10])
        path.forget()
        path.access(10)
        assert pool.counter.reads == 1

    def test_write_access_to_path_page_is_not_double_counted(self):
        """A write to a remembered page must cost exactly one pool access —
        no free path hit on top of the pool's read/hit accounting."""
        pool = BufferPool(capacity_pages=2)
        path = PathBuffer(pool)
        path.remember([10])
        path.access(10, write=True)
        assert pool.counter.reads == 1
        assert pool.counter.hits == 0
        assert pool.counter.accesses == 1

    def test_read_after_write_access_is_a_single_path_hit(self):
        pool = BufferPool(capacity_pages=2)
        path = PathBuffer(pool)
        path.remember([10])
        path.access(10, write=True)   # pool read, page now resident + dirty
        path.access(10)               # served by the path: one hit, no pool touch
        assert pool.counter.reads == 1
        assert pool.counter.hits == 1

    def test_remember_replaces_previous_path(self):
        pool = BufferPool(capacity_pages=4)
        path = PathBuffer(pool)
        path.remember([10, 11])
        path.remember([20])
        path.access(10)
        path.access(20)
        assert pool.counter.reads == 1   # 10 fell off the path
        assert pool.counter.hits == 1    # 20 is free


class TestThreadSafeMode:
    def test_make_thread_safe_is_idempotent(self):
        pool = BufferPool(capacity_pages=4)
        pool.make_thread_safe()
        lock = pool._lock
        pool.make_thread_safe()
        assert pool._lock is lock

    def test_locked_pool_behaves_identically(self):
        plain = BufferPool(capacity_pages=2)
        locked = BufferPool(capacity_pages=2)
        locked.make_thread_safe()
        for pool in (plain, locked):
            pool.access(1)
            pool.access(2, write=True)
            pool.access(3)  # evicts 1
            pool.access(1)
            pool.flush()
        assert locked.counter.reads == plain.counter.reads
        assert locked.counter.writes == plain.counter.writes
        assert locked.counter.hits == plain.counter.hits

    def test_concurrent_access_keeps_counters_consistent(self):
        """Hits + misses must equal total accesses even under contention."""
        import threading

        pool = BufferPool(capacity_pages=8)
        pool.make_thread_safe()
        per_thread, threads_n = 400, 4

        def work(tid):
            for i in range(per_thread):
                pool.access((tid * 7 + i) % 16)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert pool.counter.reads + pool.counter.hits == per_thread * threads_n
