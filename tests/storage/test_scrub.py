"""Scrub reports: online (FilePager.scrub) and offline (bench.scrub.scrub_file)."""

from __future__ import annotations

import pytest

from repro.bench.scrub import scrub_file, scrub_paths
from repro.core.errors import PageCorruptionError
from repro.durable import DurableAggIndex
from repro.storage.filepager import ScrubReport


def _flip(path, offset, mask=0xFF):
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ mask]))


def _build(path, keys=100):
    with DurableAggIndex.open(str(path), page_size=512) as index:
        for i in range(keys):
            index.insert(float(i), 1.0)
        index.checkpoint()


class TestOnlineScrub:
    def test_clean_index_scrubs_clean(self, tmp_path):
        path = tmp_path / "a.pages"
        with DurableAggIndex.open(str(path), page_size=512) as index:
            for i in range(100):
                index.insert(float(i), 1.0)
            index.checkpoint()
            report = index.scrub()
            assert isinstance(report, ScrubReport)
            assert report.clean
            assert report.corrupt == 0
            assert report.scanned >= 2  # header + at least one data slot

    def test_scrub_collects_every_bad_slot_where_verify_stops(self, tmp_path):
        path = tmp_path / "a.pages"
        _build(path)
        # Damage two distinct data slots on disk.
        _flip(path, 1 * 512 + 40)
        _flip(path, 3 * 512 + 40)
        with DurableAggIndex.open(str(path), page_size=512, create=False) as index:
            with pytest.raises(PageCorruptionError):
                index.verify()
            report = index.scrub()
            assert not report.clean
            assert report.corrupt == 2
            assert len(report.errors) == 2


class TestOfflineScrub:
    def test_matches_online_verdict(self, tmp_path):
        path = tmp_path / "a.pages"
        _build(path)
        report = scrub_file(str(path))
        assert report.clean
        _flip(path, 2 * 512 + 17)
        damaged = scrub_file(str(path))
        assert damaged.corrupt == 1
        assert not damaged.clean

    def test_corrupt_header_is_reported_not_fatal(self, tmp_path):
        path = tmp_path / "a.pages"
        _build(path)
        # Damage the header body (past the magic+page-size sniff prefix):
        # the offline walk must still cover the data slots.
        _flip(path, 200)
        report = scrub_file(str(path))
        assert not report.clean
        assert any(label == "header" for label, _ in report.errors)
        assert report.scanned > 1

    def test_non_pager_file_flagged_by_magic(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not a pager file")
        report = scrub_file(str(path))
        assert not report.clean
        assert report.errors[0][1].startswith("not a pager file")

    def test_truncated_tail_slot_is_reported(self, tmp_path):
        path = tmp_path / "a.pages"
        _build(path)
        size = path.stat().st_size
        with open(path, "r+b") as f:
            f.truncate(size - 100)
        report = scrub_file(str(path))
        assert not report.clean
        assert any("truncated" in message for _, message in report.errors)

    def test_scrub_paths_returns_one_report_per_file(self, tmp_path, capsys):
        a, b = tmp_path / "a.pages", tmp_path / "b.pages"
        _build(a)
        _build(b)
        _flip(b, 2 * 512 + 9)
        reports = scrub_paths([str(a), str(b)])
        assert [r.clean for r in reports] == [True, False]
        out = capsys.readouterr().out
        assert "CORRUPT" in out and "clean" in out
