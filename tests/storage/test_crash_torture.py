"""Crash-safety torture tests for the durable storage path.

The central claim of the WAL + checksum subsystem: for an insert workload
with a checkpoint after every insert, a crash at *any* mutating file
operation — clean kill, torn write, or transient I/O error — leaves the
index recoverable to a committed prefix of the workload, and silent
corruption is detected rather than aggregated over.
"""

from __future__ import annotations

import os

import pytest

from repro.core.errors import PageCorruptionError
from repro.durable import DurableAggIndex
from repro.storage.faults import CrashPoint, FaultInjector, SimulatedCrashError
from repro.testing import check_crash_recovery

PAGE = 512


def make_index(path, **kwargs):
    return DurableAggIndex.open(str(path), page_size=PAGE, **kwargs)


class TestEveryWritePoint:
    def test_crash_and_torn_at_every_write_point(self, tmp_path):
        report = check_crash_recovery(
            str(tmp_path / "torture.pages"), n_inserts=10, modes=("crash", "torn")
        )
        assert report.checks > 100  # the workload really has many write points
        assert report.ok, report

    def test_oserror_at_every_write_point(self, tmp_path):
        # A transient I/O failure surfaces as OSError mid-checkpoint; the
        # caller abandons the session and the survivor files must still
        # recover to a committed prefix (the WAL covers half-applied
        # batches, uncommitted ones are discarded).
        path = str(tmp_path / "oserror.pages")
        items = [(float(i), float(i + 1)) for i in range(6)]

        def run(at_op):
            injector = FaultInjector(CrashPoint(at_op=at_op, mode="oserror") if at_op else None)
            completed = 0
            index = make_index(path, create=False, opener=injector.opener)
            try:
                for key, value in items:
                    index.insert(key, value)
                    index.checkpoint()
                    completed += 1
                index.close()
            except OSError:
                # Simulated transient failure: release without checkpointing.
                index._pager.close(checkpoint=False)
            return injector, completed

        make_index(path).close()
        dry, completed = run(None)
        assert completed == len(items)
        for at_op in range(1, dry.ops + 1):
            for f in (path, path + ".wal"):
                if os.path.exists(f):
                    os.remove(f)
            make_index(path).close()
            injector, completed = run(at_op)
            if not injector.fired:
                continue
            with make_index(path, create=False) as survivor:
                recovered = len(survivor)
                assert completed <= recovered <= min(completed + 1, len(items))
                expected = sum(v for _k, v in items[:recovered])
                assert survivor.total() == pytest.approx(expected)
                survivor.verify()


class TestCorruptionDetection:
    def build(self, path, n=200):
        with make_index(path) as index:
            for i in range(n):
                index.insert(float(i), 1.0)

    def test_bitflipped_page_raises_not_wrong_answers(self, tmp_path):
        path = tmp_path / "flip.pages"
        self.build(path)
        # Flip one bit in the middle of the first data page (pid 0).
        with open(path, "r+b") as f:
            f.seek(PAGE + PAGE // 2)
            byte = f.read(1)
            f.seek(-1, os.SEEK_CUR)
            f.write(bytes([byte[0] ^ 0x10]))
        with make_index(path, create=False) as index:
            with pytest.raises(PageCorruptionError):
                # Touching every page guarantees the damaged one is read.
                index.range_sum(-1.0, 1e9)

    def test_verify_scrub_finds_damage_queries_missed(self, tmp_path):
        path = tmp_path / "scrub.pages"
        self.build(path)
        with open(path, "r+b") as f:
            f.seek(3 * PAGE + 7)
            byte = f.read(1)
            f.seek(-1, os.SEEK_CUR)
            f.write(bytes([byte[0] ^ 0x01]))
        with make_index(path, create=False) as index:
            with pytest.raises(PageCorruptionError):
                index.verify()

    def test_verify_passes_on_healthy_file(self, tmp_path):
        path = tmp_path / "healthy.pages"
        self.build(path)
        with make_index(path, create=False) as index:
            verified = index.verify()
            assert verified == index.storage.num_pages + 1  # + header slot

    def test_bitflip_injected_during_checkpoint_is_caught(self, tmp_path):
        path = str(tmp_path / "inject.pages")
        make_index(path).close()
        # Let some mid-workload write land with one bit flipped; either the
        # WAL record CRC rejects it at recovery, or the page CRC rejects it
        # at read time — silent wrong aggregates are the only failure.
        injector = FaultInjector(CrashPoint(at_op=9, mode="bitflip"))
        index = make_index(path, create=False, opener=injector.opener)
        for i in range(6):
            index.insert(float(i), float(i + 1))
            index.checkpoint()
        index.close()
        assert injector.fired
        try:
            with make_index(path, create=False) as survivor:
                survivor.verify()
                total = survivor.total()
        except PageCorruptionError:
            return  # detected — acceptable outcome
        # The flip landed in a WAL record that was superseded before apply,
        # or in slack space: the surviving state must then be fully correct.
        assert total == pytest.approx(sum(range(1, 7)))


class TestRecoveryProtocol:
    def test_wal_file_appears_next_to_the_index(self, tmp_path):
        path = str(tmp_path / "idx.pages")
        make_index(path).close()
        assert os.path.exists(path + ".wal")

    def test_deleting_the_wal_of_a_closed_index_is_safe(self, tmp_path):
        path = str(tmp_path / "idx.pages")
        with make_index(path) as index:
            for i in range(50):
                index.insert(float(i), 2.0)
        os.remove(path + ".wal")  # a clean close leaves nothing to redo
        with make_index(path, create=False) as reopened:
            assert reopened.total() == pytest.approx(100.0)

    def test_committed_unapplied_wal_redoes_on_open(self, tmp_path):
        # Crash *after* the WAL commit but before the page file caught up:
        # recovery must redo the batch, yielding the post-insert state.
        path = str(tmp_path / "redo.pages")
        make_index(path).close()
        dry = FaultInjector()
        index = make_index(path, create=False, opener=dry.opener)
        index.insert(1.0, 5.0)
        index.checkpoint()
        commit_ops = dry.ops  # ops up to and including the first checkpoint
        index.close()

        os.remove(path)
        os.remove(path + ".wal")
        make_index(path).close()
        # The WAL commit fsync is a handful of ops before the end of the
        # checkpoint; crash right after it (apply phase) for several points.
        for at_op in range(commit_ops - 4, commit_ops):
            injector = FaultInjector(CrashPoint(at_op=at_op, mode="crash"))
            idx2 = make_index(path, create=False, opener=injector.opener)
            try:
                idx2.insert(1.0, 5.0)
                idx2.checkpoint()
                idx2.close()
            except SimulatedCrashError:
                pass
            with make_index(path, create=False) as survivor:
                assert survivor.total() in (pytest.approx(0.0), pytest.approx(5.0))
                survivor.verify()
            # reset for the next crash point
            os.remove(path)
            os.remove(path + ".wal")
            make_index(path).close()
