"""Tests for the byte-level page codecs."""

from __future__ import annotations

import pytest

from repro.bptree.node import InternalNode, LeafNode
from repro.core.errors import PageOverflowError, StorageError
from repro.core.polynomial import Polynomial
from repro.core.values import SumCount
from repro.storage.codec import (
    BPlusNodeCodec,
    PolynomialValueCodec,
    ScalarValueCodec,
    SumCountValueCodec,
)


class TestValueCodecs:
    def test_scalar_round_trip(self):
        codec = ScalarValueCodec()
        data = codec.encode(3.25)
        value, offset = codec.decode(data, 0)
        assert value == 3.25
        assert offset == 8

    def test_sumcount_round_trip(self):
        codec = SumCountValueCodec()
        data = codec.encode(SumCount(7.5, 3.0))
        value, offset = codec.decode(data, 0)
        assert value == SumCount(7.5, 3.0)
        assert offset == 16

    def test_sumcount_rejects_scalar(self):
        with pytest.raises(StorageError):
            SumCountValueCodec().encode(1.0)

    def test_polynomial_round_trip(self):
        codec = PolynomialValueCodec(2)
        poly = Polynomial(2, {(1, 1): 4.0, (1, 0): -40.0, (0, 1): -8.0, (0, 0): 80.0})
        data = codec.encode(poly)
        value, offset = codec.decode(data, 0)
        assert value == poly
        assert offset == len(data)

    def test_polynomial_zero(self):
        codec = PolynomialValueCodec(3)
        data = codec.encode(Polynomial(3))
        value, _ = codec.decode(data, 0)
        assert value.is_zero

    def test_polynomial_arity_checked(self):
        codec = PolynomialValueCodec(2)
        with pytest.raises(StorageError):
            codec.encode(Polynomial(3))

    def test_polynomial_huge_exponent_rejected(self):
        codec = PolynomialValueCodec(1)
        with pytest.raises(StorageError):
            codec.encode(Polynomial.monomial(1, (300,), 1.0))

    def test_decode_at_offset(self):
        codec = ScalarValueCodec()
        blob = b"\xff" * 4 + codec.encode(9.0)
        value, offset = codec.decode(blob, 4)
        assert value == 9.0
        assert offset == 12


class TestBPlusNodeCodec:
    def make(self):
        return BPlusNodeCodec(ScalarValueCodec(), zero=0.0)

    def test_leaf_round_trip(self):
        codec = self.make()
        leaf = LeafNode(7, 0.0)
        leaf.keys = [1.0, 2.5, 4.0]
        leaf.values = [10.0, 20.0, 30.0]
        leaf.total = 60.0
        leaf.next_pid = 9
        image = codec.encode(leaf, 512)
        assert len(image) == 512
        decoded = codec.decode(image, 7)
        assert decoded.keys == leaf.keys
        assert decoded.values == leaf.values
        assert decoded.total == 60.0
        assert decoded.next_pid == 9
        assert decoded.pid == 7

    def test_leaf_no_next_sibling(self):
        codec = self.make()
        leaf = LeafNode(0, 0.0)
        image = codec.encode(leaf, 128)
        decoded = codec.decode(image, 0)
        assert decoded.next_pid == -1
        assert decoded.keys == []

    def test_internal_round_trip(self):
        codec = self.make()
        node = InternalNode(3, 0.0)
        node.seps = [5.0, 10.0]
        node.children = [1, 2, 4]
        node.aggs = [3.0, 7.0, 2.0]
        node.total = 12.0
        image = codec.encode(node, 256)
        decoded = codec.decode(image, 3)
        assert decoded.seps == node.seps
        assert decoded.children == node.children
        assert decoded.aggs == node.aggs
        assert decoded.total == 12.0

    def test_overflow_rejected(self):
        codec = self.make()
        leaf = LeafNode(0, 0.0)
        leaf.keys = [float(i) for i in range(100)]
        leaf.values = [1.0] * 100
        with pytest.raises(PageOverflowError):
            codec.encode(leaf, 64)

    def test_unknown_payload_rejected(self):
        codec = self.make()
        with pytest.raises(StorageError):
            codec.encode({"not": "a node"}, 128)

    def test_unknown_tag_rejected(self):
        codec = self.make()
        with pytest.raises(StorageError):
            codec.decode(b"X" + b"\x00" * 127, 0)

    def test_polynomial_nodes(self):
        codec = BPlusNodeCodec(PolynomialValueCodec(2), zero=Polynomial(2))
        leaf = LeafNode(1, Polynomial(2))
        poly = Polynomial(2, {(1, 0): 2.0})
        leaf.keys = [3.0]
        leaf.values = [poly]
        leaf.total = poly
        decoded = codec.decode(codec.encode(leaf, 512), 1)
        assert decoded.values[0] == poly
        assert decoded.total == poly
