"""Tests for the slab allocator (shared border pages)."""

from __future__ import annotations

import pytest

from repro.core.errors import SlabError
from repro.storage import StorageContext


@pytest.fixture
def ctx():
    return StorageContext(page_size=1024, buffer_pages=None)


class TestAllocate:
    def test_small_allocations_share_a_page(self, ctx):
        a = ctx.slab.allocate(100)
        b = ctx.slab.allocate(100)
        assert a.pid == b.pid
        assert ctx.pager.num_pages == 1

    def test_full_page_spills_to_new_page(self, ctx):
        a = ctx.slab.allocate(800)
        b = ctx.slab.allocate(800)
        assert a.pid != b.pid
        assert ctx.pager.num_pages == 2

    def test_oversized_allocation_raises(self, ctx):
        with pytest.raises(SlabError):
            ctx.slab.allocate(2048)

    def test_zero_size_raises(self, ctx):
        with pytest.raises(SlabError):
            ctx.slab.allocate(0)

    def test_allocation_counts_an_io(self, ctx):
        ctx.slab.allocate(100)
        assert ctx.counter.reads == 1


class TestFree:
    def test_free_makes_space_reusable(self, ctx):
        a = ctx.slab.allocate(800)
        ctx.slab.free(a)
        b = ctx.slab.allocate(800)
        assert ctx.pager.num_pages == 1
        assert b.nbytes == 800

    def test_emptied_page_is_released(self, ctx):
        a = ctx.slab.allocate(100)
        b = ctx.slab.allocate(100)
        ctx.slab.free(a)
        assert ctx.pager.num_pages == 1
        ctx.slab.free(b)
        assert ctx.pager.num_pages == 0

    def test_double_free_raises(self, ctx):
        a = ctx.slab.allocate(100)
        ctx.slab.free(a)
        with pytest.raises(SlabError):
            ctx.slab.free(a)

    def test_access_after_free_raises(self, ctx):
        a = ctx.slab.allocate(100)
        ctx.slab.free(a)
        with pytest.raises(SlabError):
            ctx.slab.access(a)


class TestResize:
    def test_grow_in_place(self, ctx):
        a = ctx.slab.allocate(100)
        b = ctx.slab.resize(a, 200)
        assert b.pid == a.pid
        assert b.nbytes == 200

    def test_grow_moves_when_page_is_full(self, ctx):
        a = ctx.slab.allocate(500)
        ctx.slab.allocate(500)  # fills the rest of the page (1000/1024 used)
        c = ctx.slab.resize(a, 600)
        assert c.pid != a.pid
        with pytest.raises(SlabError):
            ctx.slab.access(a)

    def test_shrink(self, ctx):
        a = ctx.slab.allocate(500)
        b = ctx.slab.resize(a, 100)
        assert b.nbytes == 100
        # Freed room is usable again.
        c = ctx.slab.allocate(900)
        assert c.pid == b.pid


class TestAccounting:
    def test_live_allocations(self, ctx):
        a = ctx.slab.allocate(10)
        b = ctx.slab.allocate(10)
        assert ctx.slab.live_allocations() == 2
        ctx.slab.free(a)
        assert ctx.slab.live_allocations() == 1
        ctx.slab.free(b)
        assert ctx.slab.live_allocations() == 0

    def test_used_bytes(self, ctx):
        a = ctx.slab.allocate(300)
        assert ctx.slab.used_bytes(a.pid) == 300

    def test_access_counts_hits_when_buffered(self, ctx):
        a = ctx.slab.allocate(100)
        before = ctx.counter.snapshot()
        ctx.slab.access(a)
        delta = ctx.counter.delta(before)
        assert delta.hits == 1
        assert delta.reads == 0
