"""Unit tests for the fault-injection wrappers themselves."""

from __future__ import annotations

import os

import pytest

from repro.storage.faults import (
    CrashPoint,
    FaultInjector,
    FaultyFile,
    SimulatedCrashError,
)


def open_file(tmp_path, injector, name="f.bin"):
    return injector.opener(str(tmp_path / name), "w+b")


class TestCounting:
    def test_mutations_are_counted_across_files(self, tmp_path):
        injector = FaultInjector()
        a = open_file(tmp_path, injector, "a.bin")
        b = open_file(tmp_path, injector, "b.bin")
        a.write(b"x")
        b.write(b"y")
        b.fsync()
        a.truncate(0)
        assert injector.ops == 4
        a.close()
        b.close()

    def test_reads_and_seeks_are_free(self, tmp_path):
        injector = FaultInjector()
        f = open_file(tmp_path, injector)
        f.write(b"abc")
        f.seek(0)
        assert f.read(3) == b"abc"
        f.tell()
        assert injector.ops == 1


class TestCrash:
    def test_crash_blocks_the_write_and_everything_after(self, tmp_path):
        injector = FaultInjector(CrashPoint(at_op=2, mode="crash"))
        f = open_file(tmp_path, injector)
        f.write(b"first")
        with pytest.raises(SimulatedCrashError):
            f.write(b"second")
        assert injector.crashed
        with pytest.raises(SimulatedCrashError):
            f.read(1)
        with pytest.raises(SimulatedCrashError):
            f.fsync()
        f.close()  # descriptors still close on a dead process
        assert os.path.getsize(tmp_path / "f.bin") == len(b"first")

    def test_torn_write_persists_a_prefix(self, tmp_path):
        injector = FaultInjector(CrashPoint(at_op=1, mode="torn"))
        f = open_file(tmp_path, injector)
        with pytest.raises(SimulatedCrashError):
            f.write(b"0123456789")
        f.close()
        assert (tmp_path / "f.bin").read_bytes() == b"01234"

    def test_oserror_is_transient(self, tmp_path):
        injector = FaultInjector(CrashPoint(at_op=1, mode="oserror"))
        f = open_file(tmp_path, injector)
        with pytest.raises(OSError):
            f.write(b"fails")
        f.write(b"works")
        f.close()
        assert (tmp_path / "f.bin").read_bytes() == b"works"

    def test_bitflip_corrupts_silently(self, tmp_path):
        injector = FaultInjector(CrashPoint(at_op=1, mode="bitflip"))
        f = open_file(tmp_path, injector)
        f.write(b"\x00" * 8)  # no exception: the corruption is silent
        f.close()
        data = (tmp_path / "f.bin").read_bytes()
        assert data != b"\x00" * 8
        assert sum(bin(byte).count("1") for byte in data) == 1  # one bit

    def test_bitflip_waits_for_a_write(self, tmp_path):
        injector = FaultInjector(CrashPoint(at_op=1, mode="bitflip"))
        f = open_file(tmp_path, injector)
        f.fsync()  # op 1 is not a write: nothing to flip yet
        f.write(b"\x00\x00")  # the flip lands here
        f.close()
        assert (tmp_path / "f.bin").read_bytes() != b"\x00\x00"

    def test_unfired_point_reports_itself(self, tmp_path):
        injector = FaultInjector(CrashPoint(at_op=99, mode="crash"))
        f = open_file(tmp_path, injector)
        f.write(b"x")
        f.close()
        assert not injector.fired

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CrashPoint(at_op=1, mode="gremlins")


class TestSeededDamage:
    """The documented determinism contract: seed=None keeps the legacy fixed
    damage byte-for-byte; a seed draws positions from ``random.Random(seed)``
    — same seed, same workload, same bytes on disk."""

    def test_unseeded_keeps_legacy_torn_prefix(self, tmp_path):
        injector = FaultInjector(CrashPoint(at_op=1, mode="torn"))
        f = open_file(tmp_path, injector)
        with pytest.raises(SimulatedCrashError):
            f.write(b"0123456789")
        f.close()
        assert (tmp_path / "f.bin").read_bytes() == b"01234"  # exactly half

    def test_unseeded_keeps_legacy_flip_position(self, tmp_path):
        injector = FaultInjector(CrashPoint(at_op=1, mode="bitflip"))
        f = open_file(tmp_path, injector)
        f.write(b"\x00" * 8)
        f.close()
        data = (tmp_path / "f.bin").read_bytes()
        assert data == b"\x00" * 4 + b"\x01" + b"\x00" * 3  # middle byte, bit 0

    def test_same_seed_same_damage(self, tmp_path):
        def run(name, seed):
            injector = FaultInjector(CrashPoint(at_op=1, mode="bitflip"), seed=seed)
            f = open_file(tmp_path, injector, name)
            f.write(b"\x00" * 64)
            f.close()
            return (tmp_path / name).read_bytes()

        assert run("a.bin", seed=5) == run("b.bin", seed=5)
        assert sum(bin(b).count("1") for b in run("c.bin", seed=5)) == 1

    def test_different_seeds_explore_different_damage(self, tmp_path):
        outcomes = set()
        for seed in range(8):
            injector = FaultInjector(CrashPoint(at_op=1, mode="torn"), seed=seed)
            f = open_file(tmp_path, injector, f"s{seed}.bin")
            with pytest.raises(SimulatedCrashError):
                f.write(b"x" * 100)
            f.close()
            outcomes.add(len((tmp_path / f"s{seed}.bin").read_bytes()))
        assert len(outcomes) > 1  # torn lengths actually vary across seeds

    def test_seeded_draws_happen_at_fire_time(self, tmp_path):
        """Pre-fire operations do not consume the RNG: two injectors with
        the same seed but different crash points tear identically."""
        results = []
        for at_op in (1, 3):
            injector = FaultInjector(CrashPoint(at_op=at_op, mode="torn"), seed=9)
            f = open_file(tmp_path, injector, f"op{at_op}.bin")
            try:
                for _ in range(at_op):
                    f.write(b"y" * 50)
            except SimulatedCrashError:
                pass
            f.close()
            size = len((tmp_path / f"op{at_op}.bin").read_bytes())
            results.append(size - (at_op - 1) * 50)  # torn tail length only
        assert results[0] == results[1]


class TestFileProtocol:
    def test_wrapper_is_unbuffered(self, tmp_path):
        injector = FaultInjector()
        f = open_file(tmp_path, injector)
        f.write(b"visible")
        # No flush/close: an unbuffered write is already in the OS, which is
        # exactly the semantics the crash simulation depends on.
        assert (tmp_path / "f.bin").read_bytes() == b"visible"
        f.close()

    def test_context_manager_and_closed(self, tmp_path):
        injector = FaultInjector()
        with open_file(tmp_path, injector) as f:
            assert isinstance(f, FaultyFile)
            assert not f.closed
        assert f.closed
