"""Tests for the simulated disk (pager)."""

from __future__ import annotations

import os

import pytest

from repro.core.errors import PageNotFoundError, StorageError
from repro.storage.pager import NO_PAGE, Pager


class TestAllocation:
    def test_allocate_returns_distinct_ids(self):
        pager = Pager()
        pids = {pager.allocate() for _ in range(100)}
        assert len(pids) == 100

    def test_allocate_with_payload(self):
        pager = Pager()
        pid = pager.allocate({"hello": 1})
        assert pager.get(pid) == {"hello": 1}

    def test_rejects_nonpositive_page_size(self):
        with pytest.raises(StorageError):
            Pager(page_size=0)

    def test_no_page_sentinel_is_never_allocated(self):
        pager = Pager()
        pid = pager.allocate()
        assert pid != NO_PAGE


class TestFreeAndAccess:
    def test_free_removes_page(self):
        pager = Pager()
        pid = pager.allocate("x")
        pager.free(pid)
        assert pid not in pager
        with pytest.raises(PageNotFoundError):
            pager.get(pid)

    def test_double_free_raises(self):
        pager = Pager()
        pid = pager.allocate()
        pager.free(pid)
        with pytest.raises(PageNotFoundError):
            pager.free(pid)

    def test_put_unknown_page_raises(self):
        pager = Pager()
        with pytest.raises(PageNotFoundError):
            pager.put(999, "x")

    def test_put_replaces_payload(self):
        pager = Pager()
        pid = pager.allocate("old")
        pager.put(pid, "new")
        assert pager.get(pid) == "new"


class TestSizeReporting:
    def test_size_bytes_tracks_live_pages(self):
        pager = Pager(page_size=4096)
        pids = [pager.allocate() for _ in range(10)]
        assert pager.num_pages == 10
        assert pager.size_bytes == 10 * 4096
        pager.free(pids[0])
        assert pager.size_bytes == 9 * 4096

    def test_allocations_ever_counts_freed(self):
        pager = Pager()
        pid = pager.allocate()
        pager.free(pid)
        pager.allocate()
        assert pager.allocations_ever == 2
        assert pager.num_pages == 1


class TestDurability:
    def test_save_load_round_trip(self, tmp_path):
        pager = Pager(page_size=1024)
        a = pager.allocate(("node", [1.0, 2.0]))
        b = pager.allocate({"keys": [3.0]})
        path = os.path.join(tmp_path, "disk.img")
        pager.save(path)
        reopened = Pager.load(path)
        assert reopened.page_size == 1024
        assert reopened.get(a) == ("node", [1.0, 2.0])
        assert reopened.get(b) == {"keys": [3.0]}
        # Allocation continues from where it left off: ids never collide.
        assert reopened.allocate() not in (a, b)
