"""Tests for the durable file pager and the durable aggregate index."""

from __future__ import annotations

import os
import random
import shutil

import pytest

from repro.bptree.node import LeafNode
from repro.core.errors import PageCorruptionError, PageNotFoundError, StorageError
from repro.core.polynomial import Polynomial
from repro.core.values import SumCount
from repro.durable import DurableAggIndex
from repro.storage.codec import BPlusNodeCodec, ScalarValueCodec
from repro.storage.filepager import FilePager


def make_codec():
    return BPlusNodeCodec(ScalarValueCodec(), zero=0.0)


def leaf(pid, keys=(), values=()):
    node = LeafNode(pid, 0.0)
    node.keys = list(keys)
    node.values = list(values)
    node.total = sum(values)
    return node


class TestFilePager:
    def test_allocate_put_get(self, tmp_path):
        with FilePager(str(tmp_path / "a.pages"), make_codec(), page_size=512) as pager:
            pid = pager.allocate()
            pager.put(pid, leaf(pid, [1.0], [5.0]))
            node = pager.get(pid)
            assert node.keys == [1.0]

    def test_identity_preserving_cache(self, tmp_path):
        with FilePager(str(tmp_path / "b.pages"), make_codec(), page_size=512) as pager:
            pid = pager.allocate(leaf(0))
            first = pager.get(pid)
            second = pager.get(pid)
            assert first is second  # in-place mutations stay visible

    def test_mutations_survive_reopen_via_sync(self, tmp_path):
        path = str(tmp_path / "c.pages")
        with FilePager(path, make_codec(), page_size=512) as pager:
            pid = pager.allocate(leaf(0))
            node = pager.get(pid)
            node.keys.append(7.0)
            node.values.append(1.0)
            node.total = 1.0
            # no explicit put: close() checkpoints the cache
        with FilePager(path, make_codec(), page_size=512, create=False) as reopened:
            assert reopened.get(pid).keys == [7.0]

    def test_free_and_reuse(self, tmp_path):
        with FilePager(str(tmp_path / "d.pages"), make_codec(), page_size=512) as pager:
            a = pager.allocate(leaf(0))
            pager.free(a)
            b = pager.allocate(leaf(0))
            assert b == a  # freed slot reused
            with pytest.raises(PageNotFoundError):
                pager.get(999)

    def test_free_list_survives_reopen(self, tmp_path):
        path = str(tmp_path / "e.pages")
        with FilePager(path, make_codec(), page_size=512) as pager:
            a = pager.allocate(leaf(0))
            pager.allocate(leaf(1))
            pager.free(a)
        with FilePager(path, make_codec(), page_size=512, create=False) as reopened:
            assert reopened.num_pages == 1
            assert reopened.allocate(leaf(0)) == a

    def test_user_meta_round_trip(self, tmp_path):
        path = str(tmp_path / "f.pages")
        with FilePager(path, make_codec(), page_size=512) as pager:
            pager.set_meta(b'{"root": 3}')
        with FilePager(path, make_codec(), page_size=512, create=False) as reopened:
            assert reopened.user_meta == b'{"root": 3}'

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "g.pages"
        path.write_bytes(b"NOTAPAGEFILE" + b"\x00" * 600)
        with pytest.raises(StorageError):
            FilePager(str(path), make_codec(), page_size=512, create=False)

    def test_page_size_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "h.pages")
        FilePager(path, make_codec(), page_size=512).close()
        with pytest.raises(StorageError):
            FilePager(path, make_codec(), page_size=1024, create=False)

    def test_missing_file_without_create(self, tmp_path):
        with pytest.raises(StorageError):
            FilePager(str(tmp_path / "nope.pages"), make_codec(), create=False)

    def test_file_size_on_disk(self, tmp_path):
        path = str(tmp_path / "i.pages")
        with FilePager(path, make_codec(), page_size=512) as pager:
            for _ in range(4):
                pager.allocate(leaf(0))
        assert os.path.getsize(path) == 5 * 512  # header + 4 pages

    def test_close_is_idempotent(self, tmp_path):
        pager = FilePager(str(tmp_path / "j.pages"), make_codec(), page_size=512)
        pager.allocate(leaf(0))
        pager.close()
        pager.close()  # second close must be a no-op, not a crash
        with pytest.raises(StorageError):
            pager.allocate(leaf(0))

    def test_exit_on_exception_skips_checkpoint(self, tmp_path):
        path = str(tmp_path / "k.pages")
        with FilePager(path, make_codec(), page_size=512) as pager:
            pid = pager.allocate(leaf(0, [1.0], [5.0]))
        with pytest.raises(RuntimeError):
            with FilePager(path, make_codec(), page_size=512, create=False) as pager:
                node = pager.get(pid)
                node.keys.append(2.0)  # half-mutated: values/total not updated
                raise RuntimeError("operation failed mid-mutation")
        with FilePager(path, make_codec(), page_size=512, create=False) as reopened:
            assert reopened.get(pid).keys == [1.0]  # good state survived

    def test_set_meta_is_durable_without_close(self, tmp_path):
        # A crash after set_meta must not lose the blob: copy the raw files
        # mid-session (nothing flushed by close) and reopen the copies.
        path = str(tmp_path / "l.pages")
        pager = FilePager(path, make_codec(), page_size=512)
        pager.allocate(leaf(0, [1.0], [2.0]))
        pager.set_meta(b'{"root": 0}')
        copy = str(tmp_path / "copy.pages")
        shutil.copyfile(path, copy)
        shutil.copyfile(path + ".wal", copy + ".wal")
        pager.close()
        with FilePager(copy, make_codec(), page_size=512, create=False) as snapshot:
            assert snapshot.user_meta == b'{"root": 0}'
            assert snapshot.get(0).keys == [1.0]  # pages synced with the meta

    def test_get_detects_checksum_mismatch(self, tmp_path):
        path = str(tmp_path / "m.pages")
        with FilePager(path, make_codec(), page_size=512) as pager:
            pid = pager.allocate(leaf(0, [1.0], [2.0]))
        with open(path, "r+b") as f:
            f.seek(512 + 100)
            f.write(b"\xff")
        with FilePager(path, make_codec(), page_size=512, create=False) as reopened:
            with pytest.raises(PageCorruptionError):
                reopened.get(pid)

    def test_verify_scrubs_all_slots(self, tmp_path):
        path = str(tmp_path / "n.pages")
        with FilePager(path, make_codec(), page_size=512) as pager:
            for i in range(6):
                pager.allocate(leaf(i, [float(i)], [1.0]))
            assert pager.verify() == 7  # six pages + the header slot
        with open(path, "r+b") as f:
            f.seek(3 * 512 + 50)
            f.write(b"\xee")
        with pytest.raises(PageCorruptionError):
            with FilePager(path, make_codec(), page_size=512, create=False) as p:
                p.verify()


class TestFreeListPersistence:
    def test_allocate_free_reopen_round_trip(self, tmp_path):
        path = str(tmp_path / "fl.pages")
        with FilePager(path, make_codec(), page_size=512) as pager:
            pids = [pager.allocate(leaf(i)) for i in range(8)]
            for pid in pids[::2]:
                pager.free(pid)
        with FilePager(path, make_codec(), page_size=512, create=False) as reopened:
            assert reopened.num_pages == 4
            assert sorted(reopened.page_ids()) == pids[1::2]
            # freed slots come back before the high-water mark grows
            reused = [reopened.allocate(leaf(0)) for _ in range(4)]
            assert sorted(reused) == pids[::2]
            assert reopened.allocate(leaf(0)) == 8
        with FilePager(path, make_codec(), page_size=512, create=False) as again:
            assert again.num_pages == 9
            assert not again._free

    def test_freed_page_unreadable_after_reopen(self, tmp_path):
        path = str(tmp_path / "fl2.pages")
        with FilePager(path, make_codec(), page_size=512) as pager:
            a = pager.allocate(leaf(0))
            pager.allocate(leaf(1))
            pager.free(a)
        with FilePager(path, make_codec(), page_size=512, create=False) as reopened:
            with pytest.raises(PageNotFoundError):
                reopened.get(a)

    def test_free_list_header_overflow_raises_and_preserves_state(self, tmp_path):
        path = str(tmp_path / "fl3.pages")
        # 512-byte page: header body is 508 bytes; 16 fixed + 4 + 4 = 24
        # bookkeeping leaves room for 121 free-list entries.
        with FilePager(path, make_codec(), page_size=512) as pager:
            pids = [pager.allocate(leaf(i)) for i in range(130)]
            with pytest.raises(StorageError, match="overflowed the header"):
                for pid in pids:
                    pager.free(pid)
            freed = len(pager._free)
            assert freed == 121  # the failing free left the list intact
        with FilePager(path, make_codec(), page_size=512, create=False) as reopened:
            assert reopened.num_pages == 130 - freed

    def test_meta_and_free_list_share_the_header_budget(self, tmp_path):
        path = str(tmp_path / "fl4.pages")
        with FilePager(path, make_codec(), page_size=512) as pager:
            pids = [pager.allocate(leaf(i)) for i in range(60)]
            for pid in pids:
                pager.free(pid)
            with pytest.raises(StorageError, match="overflowed the header"):
                pager.set_meta(b"x" * 400)
            pager.set_meta(b"x" * 100)
        with FilePager(path, make_codec(), page_size=512, create=False) as reopened:
            assert reopened.user_meta == b"x" * 100
            assert len(reopened._free) == 60


class TestDurableAggIndex:
    def test_insert_query_reopen(self, tmp_path):
        path = str(tmp_path / "idx.pages")
        rng = random.Random(5)
        items = [(rng.uniform(0, 100), rng.uniform(0, 5)) for _ in range(1500)]
        with DurableAggIndex.open(path, page_size=1024) as index:
            for k, v in items:
                index.insert(k, v)
            expected = index.range_sum(10.0, 60.0)
        with DurableAggIndex.open(path, page_size=1024, create=False) as reopened:
            assert reopened.range_sum(10.0, 60.0) == pytest.approx(expected)
            assert len(reopened) == len({round(k, 12) for k, _ in items} | set())

    def test_updates_after_reopen(self, tmp_path):
        path = str(tmp_path / "idx2.pages")
        with DurableAggIndex.open(path) as index:
            index.insert(5.0, 2.0)
        with DurableAggIndex.open(path, create=False) as index:
            index.insert(6.0, 3.0)
            assert index.total() == pytest.approx(5.0)
        with DurableAggIndex.open(path, create=False) as index:
            assert index.dominance_sum(10.0) == pytest.approx(5.0)

    def test_checkpoint_midway(self, tmp_path):
        path = str(tmp_path / "idx3.pages")
        index = DurableAggIndex.open(path)
        index.insert(1.0, 1.0)
        index.checkpoint()
        index.insert(2.0, 1.0)
        index.close()
        with DurableAggIndex.open(path, create=False) as reopened:
            assert reopened.total() == pytest.approx(2.0)

    def test_sumcount_values(self, tmp_path):
        path = str(tmp_path / "idx4.pages")
        with DurableAggIndex.open(path, value_kind="sum+count") as index:
            index.insert(1.0, SumCount(4.0, 1.0))
            index.insert(2.0, SumCount(6.0, 1.0))
        with DurableAggIndex.open(path, value_kind="sum+count", create=False) as r:
            agg = r.range_sum(0.0, 10.0)
            assert agg.average() == pytest.approx(5.0)

    def test_polynomial_values(self, tmp_path):
        path = str(tmp_path / "idx5.pages")
        x = Polynomial.variable(2, 0)
        with DurableAggIndex.open(path, value_kind="polynomial", poly_dims=2) as index:
            for i in range(100):
                index.insert(float(i), x)
        with DurableAggIndex.open(path, value_kind="polynomial", poly_dims=2, create=False) as r:
            agg = r.dominance_sum(50.0)
            assert agg.evaluate((1.0, 0.0)) == pytest.approx(50.0)

    def test_value_kind_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "idx6.pages")
        with DurableAggIndex.open(path, value_kind="scalar") as index:
            index.insert(1.0, 1.0)
        with pytest.raises(StorageError):
            DurableAggIndex.open(path, value_kind="sum+count", create=False)

    def test_unknown_value_kind(self, tmp_path):
        with pytest.raises(StorageError):
            DurableAggIndex.open(str(tmp_path / "x.pages"), value_kind="median")


class TestConcurrentAccess:
    def test_parallel_gets_and_syncs_are_serialized(self, tmp_path):
        """The pager's internal lock keeps file offsets consistent under threads."""
        import threading

        path = str(tmp_path / "concurrent.pages")
        pager = FilePager(path, page_size=512, codec=make_codec())
        pids = []
        for i in range(32):
            pid = pager.allocate()
            pager.put(pid, leaf(pid, keys=[float(i)], values=[float(i)]))
            pids.append(pid)
        pager.sync()
        errors = []

        def reader():
            try:
                for _ in range(20):
                    for pid in pids:
                        node = pager.get(pid)
                        assert node.values[0] == float(node.keys[0])
            except Exception as exc:
                errors.append(exc)

        def syncer():
            try:
                for i in range(10):
                    pid = pids[i % len(pids)]
                    pager.put(pid, leaf(pid, keys=[float(i)], values=[float(i)]))
                    pager.sync()
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=syncer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors, errors[0]
        pager.verify()
        pager.close()
