"""Tests for record layouts and page-capacity arithmetic."""

from __future__ import annotations

import pytest

from repro.core.errors import StorageError
from repro.storage.layout import Layout, polynomial_value_bytes
from repro.storage.stats import CostModel, Stopwatch


class TestCapacities:
    def test_bptree_leaf_capacity_8k_scalar(self):
        layout = Layout(page_size=8192, value_bytes=8)
        # 16 bytes per (key, value) entry -> 512 entries.
        assert layout.bptree_leaf_capacity() == 512

    def test_point_leaf_capacity_scales_with_dims(self):
        layout = Layout(page_size=8192, value_bytes=8)
        assert layout.point_leaf_capacity(2) == 8192 // 24
        assert layout.point_leaf_capacity(3) == 8192 // 32

    def test_kdb_index_record_includes_borders(self):
        layout = Layout(page_size=8192, value_bytes=8)
        # box 32 + pid 4 + subtotal 8 + 2 handles 16 = 60 bytes in 2-d.
        assert layout.kdb_index_record_bytes(2) == 60
        assert layout.kdb_index_capacity(2) == 8192 // 60

    def test_rtree_capacities(self):
        layout = Layout(page_size=8192)
        assert layout.rtree_leaf_capacity(2) == 8192 // 40
        assert layout.rtree_internal_capacity(2, aggregated=False) == 8192 // 36
        assert layout.rtree_internal_capacity(2, aggregated=True) == 8192 // 44

    def test_aggregated_entries_shrink_fanout(self):
        layout = Layout(page_size=8192)
        assert layout.rtree_internal_capacity(2, True) < layout.rtree_internal_capacity(2, False)

    def test_too_small_page_raises(self):
        with pytest.raises(StorageError):
            Layout(page_size=16, value_bytes=8).bptree_leaf_capacity()

    def test_with_value_bytes(self):
        layout = Layout(page_size=8192, value_bytes=8)
        wide = layout.with_value_bytes(100)
        assert wide.page_size == 8192
        assert wide.bptree_leaf_capacity() < layout.bptree_leaf_capacity()


class TestPolynomialValueBytes:
    def test_degree_zero_2d(self):
        # One coefficient: header 8 + 1 * (8 + 2) = 18.
        assert polynomial_value_bytes(2, 0) == 18

    def test_grows_with_degree(self):
        assert polynomial_value_bytes(2, 4) > polynomial_value_bytes(2, 2) > (
            polynomial_value_bytes(2, 0)
        )

    def test_matches_figure_9c_effect(self):
        """Degree-2 functional indices store degree-(2+d) tuples: smaller fanout."""
        layout0 = Layout(8192, polynomial_value_bytes(2, 0 + 2))
        layout2 = Layout(8192, polynomial_value_bytes(2, 2 + 2))
        assert layout2.bptree_leaf_capacity() < layout0.bptree_leaf_capacity()


class TestCostModel:
    def test_execution_time_combines_cpu_and_io(self):
        model = CostModel(io_time_ms=10.0)
        assert model.execution_time(1.5, 100) == pytest.approx(2.5)

    def test_custom_io_time(self):
        model = CostModel(io_time_ms=5.0)
        assert model.execution_time(0.0, 200) == pytest.approx(1.0)

    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch:
            sum(range(10_000))
        first = watch.cpu_seconds
        with watch:
            sum(range(10_000))
        assert watch.cpu_seconds >= first >= 0.0
