"""Unit tests for the write-ahead log: framing, commit discipline, replay."""

from __future__ import annotations

import os
import struct

import pytest

from repro.core.errors import WalError
from repro.storage.faults import CrashPoint, FaultInjector, SimulatedCrashError
from repro.storage.wal import HEADER_SLOT, WriteAheadLog

PAGE = 64


def make_wal(tmp_path, name="log.wal", page_size=PAGE):
    return WriteAheadLog(str(tmp_path / name), page_size)


def slot(fill, page_size=PAGE):
    return bytes([fill]) * page_size


class TestFraming:
    def test_committed_batch_replays(self, tmp_path):
        page_path = tmp_path / "pages.bin"
        page_path.write_bytes(b"\x00" * (3 * PAGE))
        wal = make_wal(tmp_path)
        wal.begin()
        wal.append_page(0, slot(0xAA))
        wal.append_page(1, slot(0xBB))
        wal.commit()
        wal.close()

        reopened = make_wal(tmp_path)
        assert reopened.pending
        with open(page_path, "r+b") as pages:
            assert reopened.recover_into(pages) == 2
        assert not reopened.pending
        data = page_path.read_bytes()
        # pid 0 lives at offset PAGE (slot 0 is the pager header)
        assert data[PAGE : 2 * PAGE] == slot(0xAA)
        assert data[2 * PAGE : 3 * PAGE] == slot(0xBB)

    def test_header_slot_replays_at_offset_zero(self, tmp_path):
        page_path = tmp_path / "pages.bin"
        page_path.write_bytes(b"\x00" * PAGE)
        wal = make_wal(tmp_path)
        wal.begin()
        wal.append_page(HEADER_SLOT, slot(0xCC))
        wal.commit()
        with open(page_path, "r+b") as pages:
            assert wal.recover_into(pages) == 1
        assert page_path.read_bytes()[:PAGE] == slot(0xCC)

    def test_uncommitted_batch_is_discarded(self, tmp_path):
        page_path = tmp_path / "pages.bin"
        page_path.write_bytes(b"\x07" * (2 * PAGE))
        wal = make_wal(tmp_path)
        wal.begin()
        wal.append_page(0, slot(0xAA))  # no commit: crash before the fsync
        wal.close()
        reopened = make_wal(tmp_path)
        assert not reopened.pending
        with open(page_path, "r+b") as pages:
            assert reopened.recover_into(pages) == 0
        assert page_path.read_bytes() == b"\x07" * (2 * PAGE)

    def test_torn_tail_after_commit_is_discarded(self, tmp_path):
        wal_path = str(tmp_path / "log.wal")
        page_path = tmp_path / "pages.bin"
        page_path.write_bytes(b"\x00" * (2 * PAGE))
        wal = make_wal(tmp_path)
        wal.begin()
        wal.append_page(0, slot(0xAA))
        wal.commit()
        wal.close()
        # Tear a second, half-written record onto the end of the log.
        with open(wal_path, "ab") as f:
            f.write(struct.pack("<BIII", 1, 1, PAGE, 0) + b"\x11" * (PAGE // 2))
        reopened = make_wal(tmp_path)
        with open(page_path, "r+b") as pages:
            assert reopened.recover_into(pages) == 1  # only the committed batch

    def test_corrupt_record_crc_stops_scan(self, tmp_path):
        wal_path = str(tmp_path / "log.wal")
        page_path = tmp_path / "pages.bin"
        page_path.write_bytes(b"\x00" * (2 * PAGE))
        wal = make_wal(tmp_path)
        wal.begin()
        wal.append_page(0, slot(0xAA))
        wal.commit()
        wal.close()
        # Flip a bit inside the record payload; its CRC must now reject it.
        with open(wal_path, "r+b") as f:
            f.seek(12 + 13 + 10)  # file header + record header + into payload
            byte = f.read(1)
            f.seek(-1, os.SEEK_CUR)
            f.write(bytes([byte[0] ^ 0x01]))
        reopened = make_wal(tmp_path)
        with open(page_path, "r+b") as pages:
            assert reopened.recover_into(pages) == 0

    def test_two_committed_batches_apply_in_order(self, tmp_path):
        page_path = tmp_path / "pages.bin"
        page_path.write_bytes(b"\x00" * (2 * PAGE))
        wal = make_wal(tmp_path)
        wal.begin()
        wal.append_page(0, slot(0xAA))
        wal.commit()
        # The first batch could not be applied (I/O error); a retry appends
        # a second batch after it rather than truncating it away.
        wal.begin()
        wal.append_page(0, slot(0xBB))
        wal.commit()
        with open(page_path, "r+b") as pages:
            assert wal.recover_into(pages) == 2
        assert page_path.read_bytes()[PAGE:] == slot(0xBB)  # newest wins


class TestCommittedEndDiscipline:
    """Appends land exactly after the last commit record, never after debris.

    Regression tests: ``begin()`` with a pending batch used to seek to the
    end of the file, so crash debris (a torn record, or a complete record
    from an aborted batch) sat between the commit record and the next
    batch — the scan then either lost the new commits entirely or leaked
    the aborted records into them.
    """

    def test_aborted_batch_records_never_leak_into_the_next(self, tmp_path):
        page_path = tmp_path / "pages.bin"
        page_path.write_bytes(b"\x00" * (3 * PAGE))
        wal = make_wal(tmp_path)
        wal.begin()
        wal.append_page(0, slot(0xAA))
        wal.commit()
        # Second batch: a record is appended, then the caller aborts
        # (an error before commit) — its record must never replay.
        wal.begin()
        wal.append_page(0, slot(0xBB))
        wal.begin()
        wal.append_page(1, slot(0xCC))
        wal.commit()
        with open(page_path, "r+b") as pages:
            assert wal.recover_into(pages) == 2
        data = page_path.read_bytes()
        assert data[PAGE : 2 * PAGE] == slot(0xAA)  # not the aborted 0xBB
        assert data[2 * PAGE : 3 * PAGE] == slot(0xCC)

    def test_commit_after_reopen_over_torn_debris_is_reachable(self, tmp_path):
        wal_path = str(tmp_path / "log.wal")
        page_path = tmp_path / "pages.bin"
        page_path.write_bytes(b"\x00" * (3 * PAGE))
        wal = make_wal(tmp_path)
        wal.begin()
        wal.append_page(0, slot(0xAA))
        wal.commit()
        wal.close()
        # Crash debris: a half-written record after the commit.
        with open(wal_path, "ab") as f:
            f.write(struct.pack("<BIII", 1, 1, PAGE, 0) + b"\x11" * (PAGE // 2))
        # The survivor process writes another checkpoint batch.  It must
        # land at the committed end (cutting the debris off), or the scan
        # would stop at the tear and silently drop this commit.
        survivor = make_wal(tmp_path)
        assert survivor.pending
        survivor.begin()
        survivor.append_page(1, slot(0xDD))
        survivor.commit()
        survivor.close()
        reopened = make_wal(tmp_path)
        with open(page_path, "r+b") as pages:
            assert reopened.recover_into(pages) == 2
        data = page_path.read_bytes()
        assert data[PAGE : 2 * PAGE] == slot(0xAA)
        assert data[2 * PAGE : 3 * PAGE] == slot(0xDD)

    def test_injected_torn_write_then_next_batch_recovers(self, tmp_path):
        wal_path = str(tmp_path / "log.wal")
        page_path = tmp_path / "pages.bin"
        page_path.write_bytes(b"\x00" * (3 * PAGE))
        wal = make_wal(tmp_path)
        wal.begin()
        wal.append_page(0, slot(0xAA))
        wal.commit()
        wal.close()
        # A second process starts batch 2 and dies mid-record-write.
        injector = FaultInjector(CrashPoint(at_op=2, mode="torn"))
        crashed = WriteAheadLog(wal_path, PAGE, opener=injector.opener)
        crashed.begin()  # op 1: the truncate to the committed end
        with pytest.raises(SimulatedCrashError):
            crashed.append_page(1, slot(0xBB))  # op 2: torn halfway
        assert injector.fired
        crashed.close()
        # A third process recovers batch 1, then commits its own batch.
        survivor = make_wal(tmp_path)
        assert survivor.pending
        survivor.begin()
        survivor.append_page(1, slot(0xEE))
        survivor.commit()
        with open(page_path, "r+b") as pages:
            assert survivor.recover_into(pages) == 2
        data = page_path.read_bytes()
        assert data[PAGE : 2 * PAGE] == slot(0xAA)
        # The torn 0xBB never replays; the survivor's 0xEE does.
        assert data[2 * PAGE : 3 * PAGE] == slot(0xEE)


class TestLifecycle:
    def test_begin_truncates_applied_log(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.begin()
        wal.append_page(0, slot(0xAA))
        wal.commit()
        wal.mark_applied()
        wal.begin()
        wal.commit()
        reopened_path = tmp_path / "log.wal"
        # applied content is gone; only header + empty committed batch remain
        assert os.path.getsize(reopened_path) < 2 * PAGE

    def test_wrong_payload_size_rejected(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.begin()
        with pytest.raises(WalError):
            wal.append_page(0, b"short")

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.wal"
        path.write_bytes(b"NOTAWALFILE!" + b"\x00" * 32)
        with pytest.raises(WalError):
            WriteAheadLog(str(path), PAGE)

    def test_page_size_mismatch_rejected(self, tmp_path):
        make_wal(tmp_path).close()
        with pytest.raises(WalError):
            WriteAheadLog(str(tmp_path / "log.wal"), PAGE * 2)

    def test_torn_creation_reinitializes(self, tmp_path):
        # A crash while writing the 12-byte file header leaves a short file;
        # no record can precede the header, so it is provably empty.
        path = tmp_path / "torn.wal"
        path.write_bytes(b"REPRO")  # prefix of the magic
        wal = WriteAheadLog(str(path), PAGE)
        assert not wal.pending
        wal.begin()
        wal.append_page(0, slot(0xAA))
        wal.commit()
        assert wal.pending
