"""WorkerClient lifecycle and verb coverage against a live child process."""

from __future__ import annotations

import random

import pytest

from repro.core.aggregator import BoxSumIndex
from repro.core.errors import (
    DimensionMismatchError,
    NotSupportedError,
    ServiceClosedError,
)
from repro.core.geometry import Box
from repro.obs import MetricsRegistry
from repro.replog.records import DeleteOp, InsertOp, SetMetaOp
from repro.replog.state import LogicalState
from repro.rpc import WorkerClient, make_spec

from ..conftest import random_box


@pytest.fixture
def client():
    spec = make_spec(2, label="test-worker")
    with WorkerClient(spec, registry=MetricsRegistry()) as c:
        yield c


def exact_objects(rng, n, dims=2):
    return [(random_box(rng, dims), float(rng.randint(1, 9))) for _ in range(n)]


class TestLifecycle:
    def test_hello_establishes_pid_and_epoch(self, client):
        assert client.pid is not None and client.pid > 0
        assert client.epoch == 0
        assert client.crashed is False

    def test_ping_round_trips_payload(self, client):
        assert client.ping(b"\x00\xffhello") == b"\x00\xffhello"

    def test_close_is_idempotent_and_final(self, client):
        client.close()
        client.close()
        assert client.closed
        with pytest.raises(ServiceClosedError):
            client.ping()

    def test_epoch_after_close_returns_last_known(self, client):
        client.insert(Box((0.0, 0.0), (1.0, 1.0)), 2.0)
        assert client.epoch == 1
        client.close()
        assert client.epoch == 1

    def test_context_manager_reaps_the_child(self):
        spec = make_spec(2)
        with WorkerClient(spec, registry=MetricsRegistry()) as c:
            proc = c._proc
            assert proc.is_alive()
        assert not proc.is_alive()


class TestVerbs:
    def test_mutations_advance_the_epoch(self, client):
        assert client.insert(Box((0.0, 0.0), (1.0, 1.0)), 2.0) == 1
        assert client.delete(Box((0.0, 0.0), (1.0, 1.0)), 2.0) == 2
        assert client.bulk_load([(Box((0.0, 0.0), (2.0, 2.0)), 1.0)]) == 3
        assert client.set_meta("k", b"blob") == 4

    def test_answers_match_a_local_index_bit_for_bit(self, client):
        rng = random.Random(0xC11E)
        objects = exact_objects(rng, 60)
        reference = BoxSumIndex(2)
        reference.bulk_load(objects)
        client.bulk_load(objects)
        queries = [random_box(rng, 2, max_side=60.0) for _ in range(20)]
        assert client.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]
        assert client.box_sum(queries[0]) == reference.box_sum(queries[0])

    def test_resolve_probe_values_matches_local_planning(self, client):
        rng = random.Random(0xB0B)
        objects = exact_objects(rng, 40)
        reference = BoxSumIndex(2)
        reference.bulk_load(objects)
        client.bulk_load(objects)
        query = random_box(rng, 2, max_side=50.0)
        identities = [probe.identity for probe in client.index.probe_plan(query)]
        snapshot = client.resolve_probe_values(identities)
        assert snapshot.values == [reference.probe_value(k, p) for k, p in identities]
        assert snapshot.epoch == 1

    def test_remote_errors_arrive_as_their_class(self, client):
        with pytest.raises(DimensionMismatchError):
            client.insert(Box((0.0,), (1.0,)), 1.0)  # 1-d object into a 2-d worker

    def test_mutate_closures_are_refused(self, client):
        with pytest.raises(NotSupportedError, match="closures"):
            client.mutate(lambda: None)

    def test_stats_merge_worker_and_client_sides(self, client):
        client.insert(Box((0.0, 0.0), (1.0, 1.0)), 1.0)
        stats = client.stats()
        assert stats["epoch"] == 1  # worker-side
        assert stats["rpc.requests"] >= 2  # client-side
        assert stats["rpc.pid"] == client.pid
        assert stats["rpc.crashed"] is False

    def test_sync_epoch_aligns_the_worker(self, client):
        client.sync_epoch(41)
        assert client.epoch == 41


class TestRestore:
    def test_restore_state_materializes_remotely(self, client):
        rng = random.Random(0x9E57)
        objects = exact_objects(rng, 30)
        state = LogicalState(dims=2)
        for box, value in objects:
            state.apply(InsertOp(box, value))
        removed = objects.pop(5)
        state.apply(DeleteOp(removed[0], removed[1]))
        state.apply(SetMetaOp("k", b"blob"))

        client.restore_state(state)
        reference = BoxSumIndex(2)
        reference.bulk_load(objects)
        queries = [random_box(rng, 2, max_side=60.0) for _ in range(10)]
        assert client.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]

    def test_planning_twin_stays_empty(self, client):
        client.bulk_load([(Box((0.0, 0.0), (1.0, 1.0)), 3.0)])
        # The parent-side twin is for data-independent planning only.
        assert client.index.num_objects == 0
        assert client.box_sum(Box((-1.0, -1.0), (2.0, 2.0))) == 3.0
