"""Worker-SIGKILL torture: crash detection, failover, log-shipped revival.

``rpc_stress``-marked: CI repeats this module in the torture loop.  The
chain under test is the tentpole's fault story end to end — a killed
worker process surfaces as :class:`WorkerCrashedError` from an ordinary
method call, the replica group fails reads over to the surviving member,
a mutation on the dead member poisons it, and ``catch_up`` restarts the
process and replays the replication log into it, after which the group
audits and revives it.  Exactness is asserted with ``==`` throughout.
"""

from __future__ import annotations

import os
import random
import signal
import time

import pytest

from repro.core.aggregator import BoxSumIndex
from repro.core.errors import WorkerCrashedError
from repro.core.geometry import Box
from repro.obs import MetricsRegistry
from repro.resilience import ResilienceConfig
from repro.rpc import WorkerClient, make_spec
from repro.shard import ShardedService

from ..conftest import random_box

pytestmark = pytest.mark.rpc_stress


def _exact_objects(rng, n, dims=2):
    return [(random_box(rng, dims), float(rng.randint(1, 9))) for _ in range(n)]


def _sigkill(pid: int) -> None:
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.01)


class TestClientCrash:
    def test_sigkill_surfaces_as_worker_crashed(self):
        with WorkerClient(make_spec(2), registry=MetricsRegistry()) as client:
            client.insert(Box((0.0, 0.0), (1.0, 1.0)), 2.0)
            _sigkill(client.pid)
            with pytest.raises(WorkerCrashedError):
                client.ping()
            assert client.crashed
            # Every later call fails fast without touching the dead socket.
            with pytest.raises(WorkerCrashedError):
                client.box_sum(Box((0.0, 0.0), (1.0, 1.0)))
            assert client.epoch == 1  # last known value, not a round-trip

    def test_restart_yields_a_fresh_empty_worker(self):
        with WorkerClient(make_spec(2), registry=MetricsRegistry()) as client:
            client.bulk_load([(Box((0.0, 0.0), (1.0, 1.0)), 5.0)])
            old_pid = client.pid
            _sigkill(old_pid)
            with pytest.raises(WorkerCrashedError):
                client.ping()
            new_pid = client.restart()
            assert new_pid != old_pid
            assert not client.crashed
            # Empty until the caller restores it — that is the contract.
            assert client.epoch == 0
            assert client.box_sum(Box((-1.0, -1.0), (2.0, 2.0))) == 0.0
            client.bulk_load([(Box((0.0, 0.0), (1.0, 1.0)), 5.0)])
            assert client.box_sum(Box((-1.0, -1.0), (2.0, 2.0))) == 5.0


class TestReplicatedFailoverAndRevival:
    def test_kill_failover_catch_up_revive_exactly(self, tmp_path):
        rng = random.Random(0xA51)
        reference = BoxSumIndex(2)
        cluster = ShardedService(
            2,
            2,
            partitioner="kd",
            workers="process",
            replicas=1,
            resilience=ResilienceConfig(max_attempts=3, backoff_base_s=0.0),
            replog_dir=str(tmp_path),
            registry=MetricsRegistry(),
            label="kill-test",
        )
        with cluster:
            objects = _exact_objects(rng, 60)
            reference.bulk_load(objects)
            cluster.bulk_load(objects)
            queries = [random_box(rng, 2, max_side=60.0) for _ in range(12)]
            want = [reference.box_sum(q) for q in queries]
            assert cluster.box_sum_batch(queries) == want

            group = cluster.groups[0]
            victim = group.members[0]
            _sigkill(victim.pid)

            # Reads fail over to the surviving replica, answers still exact.
            assert cluster.box_sum_batch(queries) == want

            # A mutation routed to shard 0 hits every member of its group;
            # the dead one poisons.  kd-routing may send any one box to the
            # other shard, so insert until shard 0 receives one.
            for _ in range(20):
                box, value = random_box(rng, 2), float(rng.randint(1, 9))
                reference.insert(box, value)
                cluster.insert(box, value)
                if group._poisoned[0]:
                    break
            assert group._poisoned[0]
            want = [reference.box_sum(q) for q in queries]
            assert cluster.box_sum_batch(queries) == want

            # Catch-up restarts the dead process, replays the log into it,
            # audits against a healthy member and revives it.
            revived = cluster.catch_up_all()
            assert revived.get(0) == [0]
            assert not any(group._poisoned)
            assert not victim.crashed

            # The revived worker answers for its shard bit-identically to
            # the member that never died.
            survivor = group.members[1]
            assert victim.box_sum_batch(queries) == survivor.box_sum_batch(queries)
            assert victim.epoch == survivor.epoch
            assert cluster.box_sum_batch(queries) == want

    def test_repeated_kill_revive_rounds_stay_exact(self, tmp_path):
        rng = random.Random(0x5E0)
        reference = BoxSumIndex(2)
        cluster = ShardedService(
            2,
            1,
            partitioner="roundrobin",
            workers="process",
            replicas=1,
            resilience=ResilienceConfig(max_attempts=3, backoff_base_s=0.0),
            replog_dir=str(tmp_path),
            registry=MetricsRegistry(),
            label="kill-rounds",
        )
        with cluster:
            objects = _exact_objects(rng, 40)
            reference.bulk_load(objects)
            cluster.bulk_load(objects)
            group = cluster.groups[0]
            for round_no in range(3):
                victim = group.members[round_no % 2]
                _sigkill(victim.pid)
                box, value = random_box(rng, 2), float(rng.randint(1, 9))
                reference.insert(box, value)
                cluster.insert(box, value)
                assert cluster.catch_up_all().get(0) == [round_no % 2]
                queries = [random_box(rng, 2, max_side=60.0) for _ in range(8)]
                assert cluster.box_sum_batch(queries) == [
                    reference.box_sum(q) for q in queries
                ]
