"""Orphan-process hygiene: no worker child outlives its cluster.

The satellite contract: ``ShardedService.close()`` / ``__exit__`` reap
every worker child through the graceful-drain → terminate → kill
escalation, including when the ``with`` block exits abnormally or a
worker was already dead.  ``multiprocessing.active_children()`` is the
oracle — it reaps and lists this process's live children.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.core.geometry import Box
from repro.obs import MetricsRegistry
from repro.rpc import WorkerClient, make_spec
from repro.shard import ShardedService


def _rpc_children():
    return [p for p in multiprocessing.active_children() if "repro-rpc" in (p.name or "")]


@pytest.fixture(autouse=True)
def no_preexisting_workers():
    assert _rpc_children() == []
    yield
    assert _rpc_children() == []


def _make_cluster():
    return ShardedService(
        2, 3, partitioner="kd", workers="process", registry=MetricsRegistry()
    )


class TestClusterReapsWorkers:
    def test_close_reaps_all_children(self):
        cluster = _make_cluster()
        assert len(_rpc_children()) == 3
        cluster.close()
        assert _rpc_children() == []

    def test_close_is_idempotent(self):
        cluster = _make_cluster()
        cluster.close()
        cluster.close()
        assert _rpc_children() == []

    def test_abnormal_with_exit_still_reaps(self):
        with pytest.raises(RuntimeError, match="mid-task"):
            with _make_cluster() as cluster:
                cluster.bulk_load([(Box((0.0, 0.0), (1.0, 1.0)), 2.0)])
                assert len(_rpc_children()) == 3
                raise RuntimeError("caller died mid-task")
        assert _rpc_children() == []

    def test_close_reaps_an_already_dead_worker(self):
        with _make_cluster() as cluster:
            victim = cluster.services[0]
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    os.kill(victim.pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.01)
        assert _rpc_children() == []


class TestClientReapsItsChild:
    def test_spawn_failure_leaves_no_child(self):
        # An invalid spec makes the child die before HELLO; the client must
        # reap it and raise instead of leaking a zombie.
        with pytest.raises(Exception):
            WorkerClient(make_spec(2, backend="no-such-backend"), registry=MetricsRegistry())
        assert _rpc_children() == []

    def test_close_after_crash_reaps(self):
        client = WorkerClient(make_spec(2), registry=MetricsRegistry())
        os.kill(client.pid, signal.SIGKILL)
        client.close()
        assert _rpc_children() == []
