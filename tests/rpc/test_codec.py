"""Payload codecs: round-trips, the stable error seam, pickling regressions.

The satellite contract: every exception that can cross the process
boundary (wire codec *and* pickle, since multiprocessing may carry one
through a queue) must arrive with its class and attributes intact —
retryable-overload classification in the replica group depends on them.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.core.errors import (
    DimensionMismatchError,
    InvalidQueryError,
    NotSupportedError,
    PageCorruptionError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardUnavailableError,
    WireProtocolError,
)
from repro.core.geometry import Box
from repro.core.values import SumCount
from repro.resilience.partial import PartialResult
from repro.rpc import codec
from repro.service.service import BatchResult, ProbeSnapshot

BOX = Box((1.0, 2.0), (3.0, 4.0))
BOX1D = Box((5.0,), (9.0,))


class TestRequestCodecs:
    def test_identities_round_trip_corner_keys(self):
        identities = [((0, 1), (1.5, 2.5)), ((1, 1), (0.0, -3.25))]
        assert codec.decode_identities(codec.encode_identities(identities)) == identities

    def test_identities_round_trip_eo82_keys(self):
        identities = [(((0,), (1,)), (7.0,)), (((0, 1), (0, 1)), (1.0, 2.0))]
        assert codec.decode_identities(codec.encode_identities(identities)) == identities

    def test_identities_pickle_fallback_for_exotic_keys(self):
        identities = [(("custom", 3.5), (1.0, 2.0))]
        assert codec.decode_identities(codec.encode_identities(identities)) == identities

    def test_queries_round_trip_mixed_dims(self):
        queries = [BOX, Box((0.0, 0.0), (1.0, 1.0)), BOX1D]
        out = codec.decode_queries(codec.encode_queries(queries))
        assert [(q.low, q.high) for q in out] == [(q.low, q.high) for q in queries]

    def test_object_round_trips_exact_float_bits(self):
        value = 0.1 + 0.2  # not representable "nicely"; bits must survive
        box, got = codec.decode_object(codec.encode_object(BOX, value))
        assert (box.low, box.high) == (BOX.low, BOX.high)
        assert got == value and math.copysign(1.0, got) == 1.0

    def test_objects_round_trip(self):
        objects = [(BOX, 2.0), (Box((0.0, 0.0), (1.0, 1.0)), -3.5)]
        out = codec.decode_objects(codec.encode_objects(objects))
        assert [(b.low, b.high, v) for b, v in out] == [
            (b.low, b.high, v) for b, v in objects
        ]

    def test_meta_round_trip(self):
        key, blob = codec.decode_meta(codec.encode_meta("partition", b"\x00\x01\xff"))
        assert (key, blob) == ("partition", b"\x00\x01\xff")

    def test_epoch_round_trip(self):
        assert codec.decode_epoch(codec.encode_epoch(2**40 + 7)) == 2**40 + 7

    def test_trailing_bytes_are_rejected(self):
        payload = codec.encode_epoch(3) + b"x"
        with pytest.raises(WireProtocolError, match="trailing"):
            codec.decode_epoch(payload)

    def test_restore_round_trip(self):
        objects = [(BOX, 1.0), (Box((0.0, 0.0), (2.0, 2.0)), 4.5)]
        negatives = [(BOX, 2.0, -3)]
        meta = [("kd", b"splits"), ("z", b"")]
        got = codec.decode_restore(codec.encode_restore(objects, negatives, meta))
        got_objects, got_negatives, got_meta = got
        assert [(b.low, v) for b, v in got_objects] == [(b.low, v) for b, v in objects]
        assert [(b.low, v, c) for b, v, c in got_negatives] == [
            (b.low, v, c) for b, v, c in negatives
        ]
        assert got_meta == meta


class TestResponseCodecs:
    def test_snapshot_round_trip_mixed_value_types(self):
        snapshot = ProbeSnapshot(
            values=[1.5, SumCount(3.0, 2.0), {"poly": [1, 2]}],
            base=0.0,
            total=4.5,
            epoch=9,
            probes_executed=2,
            probe_cache_hits=1,
        )
        got = codec.decode_snapshot(codec.encode_snapshot(snapshot))
        assert got.values == snapshot.values
        assert isinstance(got.values[1], SumCount)
        assert (got.base, got.total, got.epoch) == (0.0, 4.5, 9)
        assert (got.probes_executed, got.probe_cache_hits) == (2, 1)

    def test_batch_result_round_trip(self):
        result = BatchResult(
            results=[1.0, -2.5, 0.0],
            epoch=12,
            result_cache_hits=1,
            probes_planned=8,
            probes_unique=6,
            probes_executed=5,
            probe_cache_hits=1,
            queue_wait_s=0.0125,
        )
        got = codec.decode_batch_result(codec.encode_batch_result(result))
        assert got.results == result.results
        assert got.epoch == 12
        assert (got.probes_planned, got.probes_unique) == (8, 6)
        assert (got.probes_executed, got.probe_cache_hits) == (5, 1)
        assert got.queue_wait_s == 0.0125

    def test_stats_round_trip(self):
        stats = {"epoch": 3, "probes_executed": 17.0, "label": "w"}
        assert codec.decode_stats(codec.encode_stats(stats)) == {
            "epoch": 3,
            "probes_executed": 17.0,
            "label": "w",
        }


class TestErrorSeam:
    def test_overloaded_round_trips_with_saturation_snapshot(self):
        exc = ServiceOverloadedError("queue full", inflight=8, queue_depth=32, shard=3)
        got = codec.decode_error(codec.encode_error(exc))
        assert isinstance(got, ServiceOverloadedError)
        assert (got.inflight, got.queue_depth, got.shard) == (8, 32, 3)
        assert got.raw_message == "queue full"

    def test_overloaded_none_attributes_survive(self):
        got = codec.decode_error(codec.encode_error(ServiceOverloadedError("shed")))
        assert isinstance(got, ServiceOverloadedError)
        assert (got.inflight, got.queue_depth, got.shard) == (None, None, None)

    def test_shard_unavailable_round_trips_attribution(self):
        exc = ShardUnavailableError(
            "all members down", shard=2, attempts=4, members_tried=(0, 1)
        )
        got = codec.decode_error(codec.encode_error(exc))
        assert isinstance(got, ShardUnavailableError)
        assert (got.shard, got.attempts, got.members_tried) == (2, 4, (0, 1))

    @pytest.mark.parametrize(
        "cls",
        [
            ServiceClosedError,
            NotSupportedError,
            PageCorruptionError,
            InvalidQueryError,
            DimensionMismatchError,
        ],
    )
    def test_simple_errors_keep_their_class(self, cls):
        got = codec.decode_error(codec.encode_error(cls("boom")))
        assert type(got) is cls
        assert "boom" in str(got)

    def test_unknown_exception_carries_remote_type(self):
        got = codec.decode_error(codec.encode_error(ZeroDivisionError("1/0")))
        assert isinstance(got, codec.RemoteWorkerError)
        assert got.remote_type == "ZeroDivisionError"
        assert "1/0" in str(got)


class TestPicklingRegressions:
    """multiprocessing can carry exceptions through queues: pickle must not
    lose the attributes the wire codec preserves."""

    def test_overloaded_pickles_with_attributes(self):
        exc = ServiceOverloadedError("busy", inflight=2, queue_depth=5, shard=1)
        got = pickle.loads(pickle.dumps(exc))
        assert isinstance(got, ServiceOverloadedError)
        assert (got.inflight, got.queue_depth, got.shard) == (2, 5, 1)
        assert got.raw_message == "busy"

    def test_shard_unavailable_pickles_with_attributes(self):
        exc = ShardUnavailableError("down", shard=4, attempts=3, members_tried=(0, 2))
        got = pickle.loads(pickle.dumps(exc))
        assert isinstance(got, ShardUnavailableError)
        assert (got.shard, got.attempts, got.members_tried) == (4, 3, (0, 2))

    def test_service_closed_pickles(self):
        got = pickle.loads(pickle.dumps(ServiceClosedError("gone")))
        assert isinstance(got, ServiceClosedError)
        assert "gone" in str(got)


class TestPartialResultCodec:
    def _partial(self, with_queries: bool) -> PartialResult:
        return PartialResult(
            [1.0, 2.5],
            answered=[0, 2],
            missing=[1, 3],
            missing_extents={1: BOX, 3: None},
            queries=[BOX, Box((0.0, 0.0), (9.0, 9.0))] if with_queries else None,
        )

    @pytest.mark.parametrize("with_queries", [True, False])
    def test_round_trip(self, with_queries):
        partial = self._partial(with_queries)
        got = codec.decode_partial_result(codec.encode_partial_result(partial))
        assert got.results == partial.results
        assert got.answered == partial.answered
        assert got.missing == partial.missing
        assert (got.missing_extents[1].low, got.missing_extents[1].high) == (
            BOX.low,
            BOX.high,
        )
        assert got.missing_extents[3] is None
        if with_queries:
            assert [q.low for q in got._queries] == [q.low for q in partial._queries]
        else:
            assert got._queries is None

    def test_pickles(self):
        got = pickle.loads(pickle.dumps(self._partial(True)))
        assert got.missing == (1, 3)
        assert got.results == [1.0, 2.5]
