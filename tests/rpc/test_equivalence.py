"""Process-transport equivalence: bit-identical across every index family.

The satellite acceptance: ``ShardedService(workers="process")`` is a
config flip — same partitioner, same scatter-gather, same computation
order — so its answers must equal an unsharded index's with ``==``, not
``approx``, across all five index families and under interleaved inserts,
deletes and rebalances.  Weights are exact small integers so float
addition cannot smuggle in rounding differences.
"""

from __future__ import annotations

import random

import pytest

from repro.core.aggregator import BoxSumIndex
from repro.obs import MetricsRegistry
from repro.shard import ShardedService

from ..conftest import random_box

FAMILIES = ["ba", "ecdf-bu", "ecdf-bq", "bptree", "ar"]


def _dims(backend: str) -> int:
    return 1 if backend == "bptree" else 2


def _exact_objects(rng, n, dims):
    return [(random_box(rng, dims), float(rng.randint(1, 9))) for _ in range(n)]


def _pair(backend: str, reduction: str = "corner", shards: int = 3):
    dims = _dims(backend)
    reference = BoxSumIndex(dims, backend=backend, reduction=reduction)
    cluster = ShardedService(
        dims,
        shards,
        backend=backend,
        reduction=reduction,
        partitioner="kd",
        workers="process",
        registry=MetricsRegistry(),
    )
    return reference, cluster, dims


@pytest.mark.parametrize("backend", FAMILIES)
def test_bulk_loaded_batch_is_bit_identical(backend):
    rng = random.Random(f"rpc-{backend}")
    reference, cluster, dims = _pair(backend)
    with cluster:
        objects = _exact_objects(rng, 70, dims)
        reference.bulk_load(objects)
        cluster.bulk_load(objects)
        queries = [random_box(rng, dims, max_side=60.0) for _ in range(20)]
        assert cluster.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]


@pytest.mark.parametrize("backend", FAMILIES)
def test_interleaved_mutations_and_rebalance_stay_bit_identical(backend):
    rng = random.Random(f"rpc-{backend}-mut")
    reference, cluster, dims = _pair(backend)

    def check(n_queries=6):
        queries = [random_box(rng, dims, max_side=60.0) for _ in range(n_queries)]
        assert cluster.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]

    with cluster:
        seed = _exact_objects(rng, 50, dims)
        reference.bulk_load(seed)
        cluster.bulk_load(seed)
        live = list(seed)
        check()
        for _round in range(2):
            for _ in range(8):
                box, value = random_box(rng, dims), float(rng.randint(1, 9))
                reference.insert(box, value)
                cluster.insert(box, value)
                live.append((box, value))
            check()
            for _ in range(5):
                box, value = live.pop(rng.randrange(len(live)))
                reference.delete(box, value)
                cluster.delete(box, value)
            check()
            cluster.rebalance()
            check()
        assert cluster.num_objects == len(live)


def test_eo82_reduction_is_bit_identical():
    rng = random.Random("rpc-eo82")
    reference, cluster, dims = _pair("ba", reduction="eo82")
    with cluster:
        objects = _exact_objects(rng, 60, dims)
        reference.bulk_load(objects)
        cluster.bulk_load(objects)
        for _ in range(8):
            box, value = random_box(rng, dims), float(rng.randint(1, 9))
            reference.insert(box, value)
            cluster.insert(box, value)
        cluster.rebalance()
        queries = [random_box(rng, dims, max_side=60.0) for _ in range(15)]
        assert cluster.box_sum_batch(queries) == [reference.box_sum(q) for q in queries]


def test_process_and_inprocess_transports_are_bit_identical():
    """The wire adds framing, never arithmetic: both transports at the same
    topology must agree exactly, probe counters included."""
    rng = random.Random("rpc-transport")
    dims = 2
    objects = _exact_objects(rng, 80, dims)
    queries = [random_box(rng, dims, max_side=60.0) for _ in range(25)]

    def run(workers):
        cluster = ShardedService(
            dims, 3, partitioner="kd", workers=workers, registry=MetricsRegistry()
        )
        with cluster:
            cluster.bulk_load(objects)
            result = cluster.batch(queries)
            return list(result.results), result.probes_executed

    process_answers, process_probes = run("process")
    inproc_answers, inproc_probes = run(0)
    assert process_answers == inproc_answers
    assert process_probes == inproc_probes
