"""Framing layer: length-prefix + CRC discipline and the HELLO handshake."""

from __future__ import annotations

import socket
import struct
import zlib

import pytest

from repro.core.errors import WireProtocolError
from repro.rpc import wire


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFrames:
    def test_round_trip_preserves_header_and_payload(self, pair):
        a, b = pair
        wire.send_frame(a, wire.REQ_BATCH, wire.FLAG_TRACE, 42, b"payload bytes")
        kind, flags, rid, payload = wire.recv_frame(b)
        assert (kind, flags, rid, payload) == (wire.REQ_BATCH, wire.FLAG_TRACE, 42, b"payload bytes")

    def test_empty_payload_round_trips(self, pair):
        a, b = pair
        wire.send_frame(a, wire.REQ_PING, 0, 1, b"")
        assert wire.recv_frame(b) == (wire.REQ_PING, 0, 1, b"")

    def test_back_to_back_frames_stay_separate(self, pair):
        a, b = pair
        wire.send_frame(a, wire.REQ_PING, 0, 1, b"one")
        wire.send_frame(a, wire.REQ_PING, 0, 2, b"two")
        assert wire.recv_frame(b)[3] == b"one"
        assert wire.recv_frame(b)[3] == b"two"

    def test_sendall_returns_wire_bytes(self, pair):
        a, b = pair
        sent = wire.send_frame(a, wire.REQ_PING, 0, 1, b"xyz")
        # prefix (8) + header (6) + payload
        assert sent == 8 + 6 + 3

    def test_crc_corruption_is_rejected(self, pair):
        a, b = pair
        body = struct.Struct("<BBI").pack(wire.REQ_PING, 0, 1) + b"hello"
        frame = bytearray(struct.pack("<II", len(body), zlib.crc32(body)) + body)
        frame[-1] ^= 0xFF  # flip a payload bit after the CRC was computed
        a.sendall(bytes(frame))
        with pytest.raises(WireProtocolError, match="CRC"):
            wire.recv_frame(b)

    def test_absurd_length_is_rejected_before_reading(self, pair):
        a, b = pair
        a.sendall(struct.pack("<II", wire.MAX_FRAME + 1, 0))
        with pytest.raises(WireProtocolError, match="length"):
            wire.recv_frame(b)

    def test_undersized_length_is_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack("<II", 3, 0))  # shorter than the 6-byte header
        with pytest.raises(WireProtocolError, match="length"):
            wire.recv_frame(b)

    def test_peer_close_reads_as_eof(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(EOFError):
            wire.recv_frame(b)

    def test_mid_frame_close_reads_as_eof(self, pair):
        a, b = pair
        body = struct.Struct("<BBI").pack(wire.REQ_PING, 0, 1) + b"truncated"
        frame = struct.pack("<II", len(body), zlib.crc32(body)) + body
        a.sendall(frame[: len(frame) - 4])
        a.close()
        with pytest.raises(EOFError):
            wire.recv_frame(b)

    def test_oversize_send_is_refused(self, pair):
        a, _b = pair

        class FakeSock:
            def sendall(self, data):  # pragma: no cover - must not be reached
                raise AssertionError("oversize frame reached the socket")

        with pytest.raises(WireProtocolError, match="MAX_FRAME"):
            wire.send_frame(FakeSock(), wire.REQ_BULK, 0, 1, b"x" * (wire.MAX_FRAME + 1))


class TestHello:
    def test_round_trip(self):
        payload = wire.encode_hello(4242, True, 17, "cluster/s3")
        hello = wire.decode_hello(payload)
        assert hello == wire.Hello(wire.PROTOCOL_VERSION, 4242, True, 17, "cluster/s3")

    def test_probeless_and_empty_label(self):
        hello = wire.decode_hello(wire.encode_hello(1, False, 0, ""))
        assert hello.supports_probes is False
        assert hello.label == ""

    def test_bad_magic_is_rejected(self):
        payload = bytearray(wire.encode_hello(1, True, 0, "w"))
        payload[0] ^= 0xFF
        with pytest.raises(WireProtocolError, match="magic"):
            wire.decode_hello(bytes(payload))

    def test_version_mismatch_fails_fast(self):
        payload = bytearray(wire.encode_hello(1, True, 0, "w"))
        struct.pack_into("<H", payload, 8, wire.PROTOCOL_VERSION + 1)
        with pytest.raises(WireProtocolError, match="protocol"):
            wire.decode_hello(bytes(payload))

    def test_truncated_hello_is_rejected(self):
        with pytest.raises(WireProtocolError, match="truncated"):
            wire.decode_hello(b"\x00\x01")

    def test_label_length_mismatch_is_rejected(self):
        payload = wire.encode_hello(1, True, 0, "worker")
        with pytest.raises(WireProtocolError, match="label"):
            wire.decode_hello(payload + b"extra")
