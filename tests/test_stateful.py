"""Hypothesis stateful tests: random operation sequences against models.

Two rule-based machines drive the core substrate through arbitrary
interleavings and compare every observable against a trivial model:

* the slab allocator (allocate / resize / free, with byte accounting);
* the aggregated B+-tree (insert / dominance / range / bulk rebuild).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    consumes,
    invariant,
    rule,
)

from repro.bptree import AggBPlusTree
from repro.storage import StorageContext


class SlabMachine(RuleBasedStateMachine):
    """The slab allocator never loses, leaks or double-books bytes."""

    handles = Bundle("handles")

    def __init__(self) -> None:
        super().__init__()
        self.ctx = StorageContext(page_size=512, buffer_pages=None)
        self.model: dict = {}

    @rule(target=handles, nbytes=st.integers(1, 512))
    def allocate(self, nbytes):
        handle = self.ctx.slab.allocate(nbytes)
        self.model[handle] = nbytes
        return handle

    @rule(handle=consumes(handles), nbytes=st.integers(1, 512))
    def resize(self, handle, nbytes):
        if handle not in self.model:
            return
        del self.model[handle]
        new_handle = self.ctx.slab.resize(handle, nbytes)
        self.model[new_handle] = nbytes

    @rule(handle=consumes(handles))
    def free(self, handle):
        if handle not in self.model:
            return
        self.ctx.slab.free(handle)
        del self.model[handle]

    @rule(handle=handles)
    def access(self, handle):
        if handle in self.model:
            self.ctx.slab.access(handle)

    @invariant()
    def live_count_matches(self):
        assert self.ctx.slab.live_allocations() == len(self.model)

    @invariant()
    def pages_are_necessary_and_sufficient(self):
        total = sum(self.model.values())
        pages = self.ctx.pager.num_pages
        # Enough pages to hold the bytes; no pages at all when empty.
        assert pages * 512 >= total
        if not self.model:
            assert pages == 0

    @invariant()
    def per_page_usage_fits(self):
        for pid in list(self.ctx.pager.page_ids()):
            used = self.ctx.slab.used_bytes(pid)
            if used is not None:
                assert 0 < used <= 512


class AggBPlusTreeMachine(RuleBasedStateMachine):
    """The aggregated B+-tree agrees with a dict model after any op sequence."""

    def __init__(self) -> None:
        super().__init__()
        self.ctx = StorageContext(page_size=8192, buffer_pages=None)
        self.tree = AggBPlusTree(self.ctx, leaf_capacity=4, internal_capacity=4)
        self.model: dict = {}

    keys = st.floats(0, 100, allow_nan=False).map(lambda x: round(x, 3))
    values = st.floats(-10, 10, allow_nan=False)

    @rule(key=keys, value=values)
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = self.model.get(key, 0.0) + value

    @rule(key=keys)
    def query_dominance(self, key):
        expected = sum(v for k, v in self.model.items() if k < key)
        assert abs(self.tree.dominance_sum(key) - expected) < 1e-6

    @rule(low=keys, high=keys)
    def query_range(self, low, high):
        if low > high:
            low, high = high, low
        expected = sum(v for k, v in self.model.items() if low <= k < high)
        assert abs(self.tree.range_sum(low, high) - expected) < 1e-6

    @rule()
    def rebuild(self):
        self.tree.bulk_load(list(self.model.items()))

    @invariant()
    def structure_is_sound(self):
        self.tree.check_invariants()

    @invariant()
    def total_matches(self):
        assert abs(self.tree.total() - sum(self.model.values())) < 1e-6


class _DominanceMachine(RuleBasedStateMachine):
    """Shared model-based machine for 2-d dominance-sum structures."""

    def make_tree(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def __init__(self) -> None:
        super().__init__()
        self.ctx = StorageContext(page_size=8192, buffer_pages=None)
        self.tree = self.make_tree()
        self.model: dict = {}

    coords = st.tuples(
        st.floats(0, 50, allow_nan=False).map(lambda x: round(x, 2)),
        st.floats(0, 50, allow_nan=False).map(lambda x: round(x, 2)),
    )
    values = st.floats(-5, 5, allow_nan=False)

    @rule(point=coords, value=values)
    def insert(self, point, value):
        self.tree.insert(point, value)
        self.model[point] = self.model.get(point, 0.0) + value

    @rule(point=coords)
    def query(self, point):
        expected = sum(v for p, v in self.model.items() if p[0] < point[0] and p[1] < point[1])
        assert abs(self.tree.dominance_sum(point) - expected) < 1e-6

    @rule()
    def rebuild(self):
        self.tree.bulk_load(list(self.model.items()))

    @invariant()
    def total_matches(self):
        assert abs(self.tree.total() - sum(self.model.values())) < 1e-6

    @invariant()
    def structure_is_sound(self):
        self.tree.check_invariants()


class BATreeMachine(_DominanceMachine):
    def make_tree(self):
        from repro.batree import BATree

        return BATree(self.ctx, 2, leaf_capacity=4, index_capacity=4, spill_bytes=64)


class EcdfBuMachine(_DominanceMachine):
    def make_tree(self):
        from repro.ecdf import EcdfBTree

        return EcdfBTree(
            self.ctx,
            2,
            variant="u",
            leaf_capacity=4,
            internal_capacity=4,
            spill_bytes=64,
        )


class EcdfBqMachine(_DominanceMachine):
    def make_tree(self):
        from repro.ecdf import EcdfBTree

        return EcdfBTree(
            self.ctx,
            2,
            variant="q",
            leaf_capacity=4,
            internal_capacity=4,
            spill_bytes=64,
        )


TestSlabMachine = SlabMachine.TestCase
TestSlabMachine.settings = settings(max_examples=30, stateful_step_count=40, deadline=None)

TestAggBPlusTreeMachine = AggBPlusTreeMachine.TestCase
TestAggBPlusTreeMachine.settings = settings(max_examples=25, stateful_step_count=30, deadline=None)

TestBATreeMachine = BATreeMachine.TestCase
TestBATreeMachine.settings = settings(max_examples=15, stateful_step_count=25, deadline=None)

TestEcdfBuMachine = EcdfBuMachine.TestCase
TestEcdfBuMachine.settings = settings(max_examples=12, stateful_step_count=25, deadline=None)

TestEcdfBqMachine = EcdfBqMachine.TestCase
TestEcdfBqMachine.settings = settings(max_examples=12, stateful_step_count=25, deadline=None)
