"""Tests for the Theorem 4 cost model and the empirical-fit helpers."""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis import Theorem4, fit_power_law, growth_ratio, predicted_rows
from repro.core.errors import InvalidQueryError


class TestTheorem4:
    def setup_method(self):
        self.model = Theorem4(page_capacity=100, dims=2)

    def test_bq_space_exceeds_bu_space(self):
        for n in (10_000, 100_000, 1_000_000):
            assert self.model.bq_space(n) > self.model.bu_space(n)

    def test_bq_query_below_bu_query(self):
        for n in (10_000, 1_000_000):
            assert self.model.bq_query(n) < self.model.bu_query(n)

    def test_update_mirrors_query(self):
        n = 100_000
        assert self.model.bu_update(n) == self.model.bq_query(n)
        assert self.model.bq_update(n) == self.model.bu_query(n)

    def test_batree_sits_between(self):
        n = 1_000_000
        assert self.model.bq_query(n) == self.model.batree_query_avg(n)
        assert (self.model.bu_update(n) < self.model.batree_update_avg(n) < self.model.bq_update(n))

    def test_one_dimensional_collapses_to_btree(self):
        model = Theorem4(page_capacity=100, dims=1)
        n = 1_000_000
        # d = 1: every cost is log_B n (no border factors).
        assert model.bu_query(n) == pytest.approx(model.bq_query(n))
        assert model.bu_query(n) == pytest.approx(math.log(n) / math.log(100))

    def test_invalid_configuration(self):
        with pytest.raises(InvalidQueryError):
            Theorem4(page_capacity=1, dims=2).bu_space(100)
        with pytest.raises(InvalidQueryError):
            Theorem4(page_capacity=100, dims=0).bq_query(100)

    def test_predicted_rows_shape(self):
        rows = predicted_rows([1000, 2000], 64, 2)
        assert len(rows) == 4
        variants = {r[0] for r in rows}
        assert variants == {"Bu", "Bq"}


class TestFitPowerLaw:
    def test_exact_power_law(self):
        points = [(x, 3.0 * x**2) for x in (1.0, 2.0, 4.0, 8.0)]
        exponent, coefficient = fit_power_law(points)
        assert exponent == pytest.approx(2.0)
        assert coefficient == pytest.approx(3.0)

    def test_linear(self):
        points = [(x, 5.0 * x) for x in (10.0, 100.0, 1000.0)]
        exponent, _c = fit_power_law(points)
        assert exponent == pytest.approx(1.0)

    def test_noisy_fit(self):
        rng = random.Random(1)
        points = [(x, 2.0 * x**1.5 * rng.uniform(0.9, 1.1)) for x in (1, 2, 4, 8, 16, 32)]
        exponent, _c = fit_power_law(points)
        assert exponent == pytest.approx(1.5, abs=0.15)

    def test_needs_two_points(self):
        with pytest.raises(InvalidQueryError):
            fit_power_law([(1.0, 1.0)])

    def test_needs_distinct_x(self):
        with pytest.raises(InvalidQueryError):
            fit_power_law([(2.0, 1.0), (2.0, 3.0)])

    def test_ignores_nonpositive_points(self):
        points = [(0.0, 5.0), (1.0, 2.0), (2.0, 4.0), (4.0, 8.0)]
        exponent, _c = fit_power_law(points)
        assert exponent == pytest.approx(1.0)


class TestGrowthRatio:
    def test_linear_growth_is_one(self):
        assert growth_ratio([(1.0, 10.0), (4.0, 40.0)]) == pytest.approx(1.0)

    def test_sublinear_below_one(self):
        assert growth_ratio([(1.0, 10.0), (100.0, 100.0)]) < 1.0

    def test_validation(self):
        with pytest.raises(InvalidQueryError):
            growth_ratio([(1.0, 1.0)])
        with pytest.raises(InvalidQueryError):
            growth_ratio([(4.0, 1.0), (1.0, 2.0)])


class TestAgainstMeasurements:
    """The analytic model's orderings match what the structures actually do."""

    def test_measured_bu_bq_space_ordering(self):
        from repro.core.aggregator import make_dominance_index
        from repro.storage import StorageContext
        from repro.workloads import uniform_boxes

        points = [(box.corner((0, 0)), v) for box, v in uniform_boxes(3000, seed=3)]
        sizes = {}
        for backend in ("ecdf-bu", "ecdf-bq"):
            ctx = StorageContext(page_size=2048, buffer_pages=None)
            tree = make_dominance_index(backend, 2, storage=ctx)
            tree.bulk_load(points)
            sizes[backend] = ctx.num_pages
        model = Theorem4(page_capacity=85, dims=2)
        assert (sizes["ecdf-bq"] > sizes["ecdf-bu"]) == (
            model.bq_space(3000) > model.bu_space(3000)
        )

    def test_measured_space_growth_is_near_linear(self):
        from repro.core.aggregator import make_dominance_index
        from repro.storage import StorageContext
        from repro.workloads import uniform_boxes

        series = []
        for n in (1000, 2000, 4000, 8000):
            points = [(box.corner((0, 0)), v) for box, v in uniform_boxes(n, seed=4)]
            ctx = StorageContext(page_size=2048, buffer_pages=None)
            tree = make_dominance_index("ecdf-bu", 2, storage=ctx)
            tree.bulk_load(points)
            series.append((float(n), float(ctx.num_pages)))
        exponent, _c = fit_power_law(series)
        # Bu space is (n/B)·log n: near-linear in n (within log wiggle).
        assert 0.8 < exponent < 1.4
