"""Tests for the aggregated B+-tree (1-d dominance-sum index)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bptree import AggBPlusTree
from repro.core.naive import NaiveDominanceSum
from repro.core.polynomial import Polynomial
from repro.storage import StorageContext


def make_tree(leaf_capacity=4, internal_capacity=4, **kwargs):
    ctx = StorageContext(page_size=8192, buffer_pages=None)
    return AggBPlusTree(
        ctx, leaf_capacity=leaf_capacity, internal_capacity=internal_capacity, **kwargs
    )


class TestBasics:
    def test_empty_tree(self):
        tree = make_tree()
        assert tree.dominance_sum(100.0) == 0.0
        assert tree.total() == 0.0
        assert len(tree) == 0

    def test_single_insert(self):
        tree = make_tree()
        tree.insert(5.0, 2.0)
        assert tree.dominance_sum(6.0) == 2.0
        assert tree.dominance_sum(5.0) == 0.0  # strict
        assert tree.total() == 2.0

    def test_duplicate_keys_merge(self):
        tree = make_tree()
        tree.insert(5.0, 2.0)
        tree.insert(5.0, 3.0)
        assert len(tree) == 1
        assert tree.dominance_sum(6.0) == 5.0

    def test_negative_value_insert_acts_as_delete(self):
        tree = make_tree()
        tree.insert(5.0, 2.0)
        tree.insert(5.0, -2.0)
        assert tree.dominance_sum(10.0) == 0.0

    def test_range_sum(self):
        tree = make_tree()
        for k in range(10):
            tree.insert(float(k), 1.0)
        assert tree.range_sum(2.0, 5.0) == 3.0   # keys 2, 3, 4
        assert tree.range_sum(0.0, 10.0) == 10.0

    def test_capacity_validation(self):
        ctx = StorageContext(buffer_pages=None)
        with pytest.raises(ValueError):
            AggBPlusTree(ctx, leaf_capacity=1)
        with pytest.raises(ValueError):
            AggBPlusTree(ctx, internal_capacity=2)


class TestSplitsAndStructure:
    def test_inserts_force_splits_and_stay_correct(self):
        tree = make_tree(leaf_capacity=3, internal_capacity=3)
        oracle = NaiveDominanceSum(1)
        rng = random.Random(3)
        for _ in range(300):
            k = rng.uniform(0, 1000)
            v = rng.uniform(-2, 5)
            tree.insert(k, v)
            oracle.insert((k,), v)
        tree.check_invariants()
        assert tree.height > 2
        for _ in range(50):
            q = rng.uniform(-10, 1010)
            assert tree.dominance_sum(q) == pytest.approx(oracle.dominance_sum((q,)), abs=1e-6)

    def test_ascending_insert_order(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        for k in range(200):
            tree.insert(float(k), 1.0)
        tree.check_invariants()
        assert tree.dominance_sum(100.0) == 100.0

    def test_descending_insert_order(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        for k in reversed(range(200)):
            tree.insert(float(k), 1.0)
        tree.check_invariants()
        assert tree.dominance_sum(100.0) == 100.0

    def test_query_touches_single_path(self):
        ctx = StorageContext(page_size=8192, buffer_pages=None)
        tree = AggBPlusTree(ctx, leaf_capacity=8, internal_capacity=8)
        for k in range(2000):
            tree.insert(float(k), 1.0)
        ctx.cold_cache()
        ctx.reset_stats()
        tree.dominance_sum(1234.5)
        assert ctx.counter.reads == tree.height


class TestBulkLoad:
    def test_bulk_load_matches_inserts(self):
        rng = random.Random(9)
        items = [(rng.uniform(0, 100), rng.uniform(0, 5)) for _ in range(500)]
        loaded = make_tree(leaf_capacity=8, internal_capacity=8)
        loaded.bulk_load(items)
        inserted = make_tree(leaf_capacity=8, internal_capacity=8)
        for k, v in items:
            inserted.insert(k, v)
        loaded.check_invariants()
        for q in [0.0, 25.0, 50.0, 99.0, 101.0]:
            assert loaded.dominance_sum(q) == pytest.approx(inserted.dominance_sum(q))

    def test_bulk_load_merges_duplicates(self):
        tree = make_tree()
        tree.bulk_load([(1.0, 2.0), (1.0, 3.0), (2.0, 1.0)])
        assert len(tree) == 2
        assert tree.total() == 6.0

    def test_bulk_load_empty(self):
        tree = make_tree()
        tree.bulk_load([])
        assert tree.total() == 0.0
        tree.check_invariants()

    def test_bulk_load_then_insert(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        tree.bulk_load([(float(k), 1.0) for k in range(100)])
        for k in range(100, 150):
            tree.insert(float(k), 1.0)
        tree.check_invariants()
        assert tree.dominance_sum(1000.0) == 150.0

    def test_bulk_load_discards_existing_content(self):
        tree = make_tree()
        tree.insert(1.0, 5.0)
        tree.bulk_load([(2.0, 1.0)])
        assert tree.total() == 1.0

    def test_fill_factor_must_be_valid(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([(1.0, 1.0)], fill_factor=0.0)

    def test_partial_fill_leaves_insert_headroom(self):
        compact = make_tree(leaf_capacity=10, internal_capacity=10)
        compact.bulk_load([(float(k), 1.0) for k in range(100)], fill_factor=1.0)
        roomy = make_tree(leaf_capacity=10, internal_capacity=10)
        roomy.bulk_load([(float(k), 1.0) for k in range(100)], fill_factor=0.5)
        assert roomy.num_pages() > compact.num_pages()


class TestCollectAndDestroy:
    def test_collect_yields_sorted_entries(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        rng = random.Random(4)
        keys = [rng.uniform(0, 100) for _ in range(100)]
        for k in keys:
            tree.insert(k, 1.0)
        collected = list(tree.collect())
        assert [k for k, _v in collected] == sorted(set(keys))

    def test_destroy_frees_pages(self):
        ctx = StorageContext(buffer_pages=None)
        tree = AggBPlusTree(ctx, leaf_capacity=4, internal_capacity=4)
        for k in range(200):
            tree.insert(float(k), 1.0)
        assert ctx.num_pages > 10
        tree.destroy()
        assert ctx.num_pages == 1  # fresh empty root
        assert tree.total() == 0.0


class TestPolynomialValues:
    def test_aggregates_polynomials(self):
        ctx = StorageContext(buffer_pages=None)
        tree = AggBPlusTree(ctx, zero=Polynomial(1), leaf_capacity=4, internal_capacity=4)
        x = Polynomial.variable(1, 0)
        for k in range(50):
            tree.insert(float(k), x.scale(1.0))
        agg = tree.dominance_sum(10.0)
        assert agg.evaluate((2.0,)) == pytest.approx(20.0)  # 10 copies of x at x=2

    def test_value_bytes_shrinks_capacity(self):
        ctx = StorageContext(page_size=1024, buffer_pages=None)
        narrow = AggBPlusTree(ctx, value_bytes=8)
        wide = AggBPlusTree(ctx, value_bytes=100)
        assert wide.leaf_capacity < narrow.leaf_capacity


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 100, allow_nan=False), st.floats(-5, 5, allow_nan=False)),
            max_size=150,
        ),
        st.floats(-10, 110, allow_nan=False),
    )
    def test_matches_naive_oracle(self, items, query):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        oracle = NaiveDominanceSum(1)
        for k, v in items:
            tree.insert(k, v)
            oracle.insert((k,), v)
        assert tree.dominance_sum(query) == pytest.approx(oracle.dominance_sum((query,)), abs=1e-6)
        tree.check_invariants()
