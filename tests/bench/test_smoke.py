"""Tests for the smoke-bench gate: baseline format, tolerance bands, CLI plumbing."""

from __future__ import annotations

import json

import pytest

from repro.bench.smoke import (
    DEFAULT_ABS_SLACK,
    DEFAULT_REL_TOL,
    SMOKE_SCHEMA_VERSION,
    compare_to_baseline,
    dump_json,
    load_json,
    make_baseline,
    smoke_config,
)


def payload(metrics):
    return {
        "schema_version": SMOKE_SCHEMA_VERSION,
        "kind": "bench-smoke",
        "metadata": {"seed": 42},
        "metrics": dict(metrics),
    }


class TestBaselineFormat:
    def test_make_baseline_shape(self):
        base = make_baseline(payload({"fig9a.BAT.pages": 100.0}))
        assert base["schema_version"] == SMOKE_SCHEMA_VERSION
        assert base["default_rel_tol"] == DEFAULT_REL_TOL
        assert base["abs_slack"] == DEFAULT_ABS_SLACK
        assert base["per_metric_rel_tol"] == {}
        assert base["metrics"] == {"fig9a.BAT.pages": 100.0}

    def test_dump_load_roundtrip(self, tmp_path):
        doc = make_baseline(payload({"m": 1.0}))
        path = tmp_path / "baseline.json"
        dump_json(doc, str(path))
        assert load_json(str(path)) == doc
        # stable, human-diffable output
        assert path.read_text().endswith("\n")
        assert json.loads(path.read_text()) == doc

    def test_committed_baseline_is_well_formed(self):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        base = load_json(str(repo_root / "benchmarks" / "baseline_smoke.json"))
        assert base["schema_version"] == SMOKE_SCHEMA_VERSION
        assert base["metrics"]
        assert all(isinstance(v, (int, float)) for v in base["metrics"].values())

    def test_committed_baseline_gates_the_traffic_slice(self):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        base = load_json(str(repo_root / "benchmarks" / "baseline_smoke.json"))
        names = set(base["metrics"])
        for required in (
            "traffic.scheduled.point",
            "traffic.sheds",
            "traffic.check_failures",
            "traffic.steady.point.p99_ms",
            "traffic.ms_per_op",
        ):
            assert required in names
        # A smoke run that produced wrong answers must never become the
        # committed normal: the baseline pins these at hard zero.
        assert base["metrics"]["traffic.check_failures"] == 0.0
        assert base["metrics"]["traffic.errors"] == 0.0
        # The burst phase is sized to overload the smoke cluster: a
        # baseline without sheds means the overload path went untested.
        assert base["metrics"]["traffic.sheds"] > 0

    def test_smoke_config_is_reduced_scale(self):
        cfg = smoke_config()
        assert cfg.n == 2500
        assert cfg.queries == 15


class TestGate:
    def test_identical_run_passes(self):
        run = payload({"a": 100.0, "b": 7.0})
        ok, lines = compare_to_baseline(run, make_baseline(run))
        assert ok
        assert lines[-1] == "OK: 2 baseline metric(s) checked"

    def test_within_band_passes(self):
        base = make_baseline(payload({"a": 100.0}))
        ok, _lines = compare_to_baseline(payload({"a": 100.0 * (1 + DEFAULT_REL_TOL)}), base)
        assert ok

    def test_regression_beyond_band_fails(self):
        base = make_baseline(payload({"a": 100.0}))
        cur = 100.0 * (1 + DEFAULT_REL_TOL) + DEFAULT_ABS_SLACK + 1.0
        ok, lines = compare_to_baseline(payload({"a": cur}), base)
        assert not ok
        assert any(line.startswith("FAIL a:") for line in lines)
        assert lines[-1].startswith("REGRESSION")

    def test_abs_slack_absorbs_tiny_count_noise(self):
        base = make_baseline(payload({"a": 3.0}))
        ok, _lines = compare_to_baseline(payload({"a": 5.0}), base)
        assert ok  # 3 * 1.1 + 2 = 5.3

    def test_missing_metric_fails(self):
        base = make_baseline(payload({"a": 1.0, "gone": 2.0}))
        ok, lines = compare_to_baseline(payload({"a": 1.0}), base)
        assert not ok
        assert any("gone" in line and "missing" in line for line in lines)

    def test_schema_mismatch_fails(self):
        base = make_baseline(payload({"a": 1.0}))
        base["schema_version"] = SMOKE_SCHEMA_VERSION + 1
        ok, lines = compare_to_baseline(payload({"a": 1.0}), base)
        assert not ok
        assert "schema mismatch" in lines[0]

    def test_per_metric_tolerance_overrides_default(self):
        base = make_baseline(payload({"a": 100.0}))
        base["abs_slack"] = 0.0
        base["per_metric_rel_tol"] = {"a": 0.5}
        ok, _lines = compare_to_baseline(payload({"a": 149.0}), base)
        assert ok
        ok, _lines = compare_to_baseline(payload({"a": 151.0}), base)
        assert not ok

    def test_improvement_and_new_metric_are_notes_only(self):
        base = make_baseline(payload({"a": 100.0}))
        ok, lines = compare_to_baseline(payload({"a": 50.0, "brand_new": 1.0}), base)
        assert ok
        assert any("improved" in line for line in lines)
        assert any("new metric" in line for line in lines)

    def test_tightened_baseline_rejects_the_same_run(self):
        """The CI-gate drill: a stricter baseline must flip the verdict."""
        run = payload({"a": 100.0, "b": 10.0})
        loose = make_baseline(run)
        tight = make_baseline(run, default_rel_tol=-0.5, abs_slack=0.0)
        assert compare_to_baseline(run, loose)[0]
        assert not compare_to_baseline(run, tight)[0]


class TestCli:
    def test_unknown_experiment_is_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["not-an-experiment"])
        assert excinfo.value.code == 2

    def test_smoke_help_mentions_gate_flags(self, capsys):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "smoke" in out
        assert "--check" in out
        assert "--write-baseline" in out
