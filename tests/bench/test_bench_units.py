"""Unit tests for the bench harness plumbing (config, report, builders)."""

from __future__ import annotations

import pytest

from repro.bench.builders import (
    METHOD_BACKENDS,
    build_boxsum_index,
    fresh_storage,
    measure_query_batch,
)
from repro.bench.config import BenchConfig
from repro.bench.report import banner, format_table
from repro.workloads import query_boxes, uniform_boxes


class TestConfig:
    def test_defaults(self):
        cfg = BenchConfig()
        assert cfg.dims == 2
        assert cfg.buffer_pages >= 8

    def test_buffer_pages_arithmetic(self):
        cfg = BenchConfig(page_size=4096, buffer_mb=1.0)
        assert cfg.buffer_pages == 256

    def test_buffer_pages_floor(self):
        cfg = BenchConfig(page_size=8192, buffer_mb=0.0)
        assert cfg.buffer_pages == 8

    def test_scaled_copies(self):
        cfg = BenchConfig()
        bigger = cfg.scaled(n=999)
        assert bigger.n == 999
        assert bigger.page_size == cfg.page_size
        assert cfg.n != 999  # frozen original untouched


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [("a", 1.0), ("long-name", 12345.6)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "12,346" in text

    def test_format_small_floats(self):
        text = format_table(["x"], [(0.1234567,)])
        assert "0.1235" in text

    def test_banner(self):
        text = banner("hello")
        assert "hello" in text
        assert "=" in text


class TestBuilders:
    @pytest.fixture(scope="class")
    def small(self):
        cfg = BenchConfig(n=800, queries=10)
        objects = uniform_boxes(cfg.n, cfg.dims, cfg.avg_side_fraction, seed=1)
        return cfg, objects

    def test_method_map_covers_the_paper(self):
        assert set(METHOD_BACKENDS) == {"aR", "ECDFu", "ECDFq", "BAT", "R*"}

    def test_fresh_storage_uses_config(self, small):
        cfg, _objects = small
        storage = fresh_storage(cfg)
        assert storage.page_size == cfg.page_size
        assert storage.buffer.capacity_pages == cfg.buffer_pages

    @pytest.mark.parametrize("method", ["aR", "BAT"])
    def test_build_and_measure(self, small, method):
        cfg, objects = small
        index = build_boxsum_index(method, objects, cfg)
        assert index.num_objects == cfg.n
        queries = query_boxes(cfg.queries, 0.01, seed=2)
        ios, cpu = measure_query_batch(index, queries)
        assert ios > 0
        assert cpu >= 0.0

    def test_batch_starts_cold(self, small):
        cfg, objects = small
        index = build_boxsum_index("BAT", objects, cfg)
        queries = query_boxes(5, 0.01, seed=3)
        first, _ = measure_query_batch(index, queries)
        second, _ = measure_query_batch(index, queries)
        assert first == second  # cold start makes batches reproducible
