"""Chaos traffic: seeded latency injection must exercise the hedged reads.

The satellite contract: ``ChaosPlan.delay_ms`` jitter is wired into the
loadgen chaos run with a hedge trigger (``TRAFFIC_HEDGE_DELAY_S``) inside
the injected range, so slow draws actually race a second member under
traffic — and every answer stays exact regardless of who wins.
"""

from __future__ import annotations

from repro.bench import traffic as traffic_mod
from repro.bench.smoke import smoke_config
from repro.loadgen import smoke_profile
from repro.obs import MetricsRegistry


def _hedge_total(registry: MetricsRegistry) -> float:
    counter = registry.counter("repro_resilience_hedges")
    return sum(value for _name, _labels, value in counter.samples())


def test_chaos_run_hedges_under_traffic_with_exact_answers():
    cfg = smoke_config()
    registry = MetricsRegistry()
    report, _probe_work = traffic_mod._execute(
        cfg, smoke_profile(seed=cfg.seed), registry, mode="virtual", chaos=True
    )
    assert report.to_dict()["checks"]["failed"] == 0
    assert _hedge_total(registry) > 0


def test_chaos_constants_keep_the_hedge_inside_the_delay_range():
    low_ms, high_ms = traffic_mod.TRAFFIC_CHAOS_DELAY_MS
    hedge_ms = traffic_mod.TRAFFIC_HEDGE_DELAY_S * 1000.0
    assert low_ms <= hedge_ms <= high_ms
