"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.bench.plot import ascii_chart, bar_chart


class TestAsciiChart:
    def test_single_series(self):
        chart = ascii_chart({"a": [(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)]})
        assert "o" in chart
        assert "legend: o=a" in chart

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_chart({"first": [(0.0, 1.0)], "second": [(1.0, 2.0)], "third": [(2.0, 3.0)]})
        assert "o=first" in chart
        assert "x=second" in chart
        assert "*=third" in chart

    def test_log_scale(self):
        chart = ascii_chart(
            {"a": [(1.0, 1.0), (10.0, 100.0), (100.0, 10000.0)]},
            log_x=True,
            log_y=True,
        )
        assert "[log y]" in chart

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [(0.0, 1.0)]}, log_x=True)

    def test_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_title_and_label(self):
        chart = ascii_chart({"a": [(0.0, 1.0), (1.0, 2.0)]}, title="my title", y_label="I/Os")
        assert "my title" in chart
        assert "y: I/Os" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart({"a": [(1.0, 5.0), (2.0, 5.0)]})
        assert "o" in chart

    def test_dimensions(self):
        chart = ascii_chart({"a": [(0.0, 0.0), (9.0, 9.0)]}, width=30, height=8)
        body_lines = [l for l in chart.splitlines() if "|" in l]
        assert len(body_lines) == 8


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart([("small", 1.0), ("big", 10.0)], width=20)
        lines = chart.splitlines()
        small_bar = lines[0].count("#")
        big_bar = lines[1].count("#")
        assert big_bar == 20
        assert 1 <= small_bar <= 3

    def test_title(self):
        chart = bar_chart([("a", 1.0)], title="sizes")
        assert "sizes" in chart

    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_zero_values(self):
        chart = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "a" in chart and "b" in chart
