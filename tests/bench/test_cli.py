"""Tests for the benchmark CLI (`python -m repro.bench`)."""

from __future__ import annotations

import json

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_experiment_registry_covers_design_md(self):
        assert set(EXPERIMENTS) == {
            "fig9a",
            "fig9b",
            "crossover",
            "fig9c",
            "reduction",
            "rstar",
            "shape",
            "dims3",
            "table1",
            "ablation",
            "service",
            "shard",
            "resilience",
            "replog",
            "traffic",
            "workers",
            "approx",
            "heal",
            "scrub",
        }

    def test_run_reduction_experiment(self, capsys):
        code = main(["reduction", "--n", "400", "--queries", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 1 vs Theorem 2" in out
        assert "26" in out  # the d=3 headline number

    def test_json_dump(self, tmp_path, capsys):
        path = str(tmp_path / "out.json")
        code = main(["reduction", "--n", "300", "--queries", "5", "--json", path])
        assert code == 0
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
        assert payload["config"]["n"] == 300
        counts = payload["results"]["reduction"][0]
        assert [3, 26, 8] in [list(row) for row in counts]

    def test_overrides_reach_the_config(self, capsys):
        main(["table1", "--n", "2000", "--page-size", "1024", "--buffer-mb", "0.1"])
        out = capsys.readouterr().out
        assert "Table 1" in out
        # Four sizes per variant: n/8, n/4, n/2, n.
        assert "250" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_traffic_writes_payload_and_report(self, tmp_path, capsys):
        json_path = str(tmp_path / "traffic.json")
        text_path = str(tmp_path / "slo.txt")
        code = main(["traffic", "--n", "400", "--json", json_path, "--report", text_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "traffic SLO report" in out
        with open(json_path, encoding="utf-8") as f:
            payload = json.load(f)
        assert payload["kind"] == "bench-traffic"
        assert payload["report"]["clock"] == "virtual"
        assert payload["report"]["checks"]["failed"] == 0.0
        with open(text_path, encoding="utf-8") as f:
            text = f.read()
        assert "burst" in text and "shed rate" in text
