"""Tests for the load generator: determinism, shedding, SLO reports, chaos."""

from __future__ import annotations

import json

import pytest

from repro.loadgen import (
    LoadGenerator,
    OpMix,
    Phase,
    SLOReport,
    TrafficProfile,
    smoke_profile,
)
from repro.obs import MetricsRegistry
from repro.resilience import ChaosPlan, ResilienceConfig, chaos_member_wrapper
from repro.shard import ShardedService
from repro.workloads import uniform_boxes


def _mini_profile(seed=7, **overrides):
    """A sub-second profile: every phase shape, deliberately tiny."""
    defaults = dict(
        seed=seed,
        phases=(
            Phase("warmup", duration_s=0.2, rate=60.0),
            Phase("steady", duration_s=0.5, rate=200.0),
            Phase("burst", duration_s=0.2, rate=2500.0),
            Phase("ramp", duration_s=0.3, rate=100.0, rate_end=400.0),
        ),
        tenants=4,
        pool_size=6,
        batch_size=4,
        check_fraction=0.25,
    )
    defaults.update(overrides)
    return TrafficProfile(**defaults)


def _cluster(**kwargs):
    kwargs.setdefault("max_inflight", 1)
    kwargs.setdefault("max_queue", 2)
    return ShardedService(
        2,
        4,
        partitioner="kd",
        workers=0,
        registry=MetricsRegistry(),
        label="test-loadgen",
        **kwargs,
    )


def _run_virtual(profile, n_objects=300, seed=3, **cluster_kwargs):
    objects = uniform_boxes(n_objects, dims=2, seed=seed)
    with _cluster(**cluster_kwargs) as cluster:
        cluster.bulk_load(objects)
        generator = LoadGenerator(cluster, profile, initial_objects=objects)
        return generator.run(mode="virtual")


class TestVirtualDeterminism:
    def test_two_runs_on_fresh_clusters_are_bit_identical(self):
        docs = []
        for _ in range(2):
            report = _run_virtual(_mini_profile())
            docs.append(json.dumps(report.to_dict(), sort_keys=True))
        assert docs[0] == docs[1]

    def test_seed_changes_the_stream(self):
        a = _run_virtual(_mini_profile(seed=1))
        b = _run_virtual(_mini_profile(seed=2))
        assert a.extra["scheduled"] != b.extra["scheduled"]


class TestShedding:
    def test_overload_sheds_without_wrong_answers(self):
        # The burst phase offers ~2500 ops/s against a gate whose virtual
        # capacity (1 server, 2-deep queue, >=1ms per op) is far lower:
        # sheds must happen, answers must all stay exact, no errors.
        report = _run_virtual(_mini_profile())
        assert report.totals["sheds"] > 0
        assert report.totals["errors"] == 0
        assert report.checks["sampled"] > 0
        assert report.checks["failed"] == 0

    def test_sheds_concentrate_in_the_burst_phase(self):
        report = _run_virtual(_mini_profile())
        burst = report.phases["burst"]
        assert burst["sheds"] > 0
        assert burst["shed_rate"] > report.phases["warmup"]["shed_rate"]

    def test_only_query_classes_shed(self):
        report = _run_virtual(_mini_profile())
        for phase in report.phases.values():
            for op in ("insert", "delete"):
                cell = phase["ops"].get(op)
                if cell:
                    assert cell["sheds"] == 0

    def test_ample_capacity_sheds_nothing(self):
        calm = _mini_profile(phases=(Phase("steady", duration_s=0.5, rate=50.0),))
        report = _run_virtual(calm, max_inflight=8, max_queue=64)
        assert report.totals["sheds"] == 0
        assert report.checks["failed"] == 0


class TestSLOReportShape:
    def test_report_distinguishes_phases_and_op_classes(self):
        profile = _mini_profile()
        report = _run_virtual(profile)
        assert set(report.phases) == {p.name for p in profile.phases}
        steady_ops = report.phases["steady"]["ops"]
        assert {"point", "batch", "insert", "delete"} <= set(steady_ops)
        cell = report.phase_op("steady", "point")
        for key in ("p50_ms", "p95_ms", "p99_ms", "p999_ms", "mean_ms", "max_ms"):
            assert key in cell
        assert cell["p50_ms"] <= cell["p95_ms"] <= cell["p99_ms"] <= cell["p999_ms"]

    def test_totals_and_throughput_are_consistent(self):
        report = _run_virtual(_mini_profile())
        totals = report.totals
        assert totals["offered"] == pytest.approx(
            totals["completed"] + totals["sheds"] + totals["errors"]
        )
        assert totals["throughput_ops_s"] == pytest.approx(totals["completed"] / report.duration_s)

    def test_render_mentions_every_phase_and_checks(self):
        report = _run_virtual(_mini_profile())
        text = report.render()
        for name in ("warmup", "steady", "burst", "ramp"):
            assert name in text
        assert "sampled" in text and "failover" in text

    def test_to_dict_round_trips_through_from_dict(self):
        report = _run_virtual(_mini_profile())
        clone = SLOReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone.to_dict() == report.to_dict()

    def test_probe_totals_are_exported(self):
        report = _run_virtual(_mini_profile())
        probes = report.extra["probes"]
        assert probes["unique"] > 0
        assert probes["executed"] > 0


class TestChaosTraffic:
    def test_chaos_reports_blips_and_zero_wrong_answers(self):
        profile = _mini_profile()
        objects = uniform_boxes(200, dims=2, seed=5)
        with _cluster(
            replicas=1,
            service_wrapper=chaos_member_wrapper(ChaosPlan(seed=11, raise_rate=0.3)),
            resilience=ResilienceConfig(max_attempts=4, backoff_base_s=0.0, seed=11),
        ) as cluster:
            cluster.bulk_load(objects)
            generator = LoadGenerator(cluster, profile, initial_objects=objects)
            report = generator.run(mode="virtual")
        assert report.resilience["failover_blips"] > 0
        assert report.checks["sampled"] > 0
        assert report.checks["failed"] == 0
        assert report.totals["errors"] == 0


class TestWallClock:
    def test_wall_run_completes_and_verifies(self):
        # Keep it short: a 0.3s wall-clock run still exercises the open-loop
        # dispatcher, the real admission gate and the post-drain verifier.
        profile = TrafficProfile(
            seed=7,
            phases=(
                Phase("steady", duration_s=0.2, rate=150.0),
                Phase("burst", duration_s=0.1, rate=800.0),
            ),
            tenants=3,
            pool_size=4,
            batch_size=3,
            check_fraction=0.5,
        )
        objects = uniform_boxes(150, dims=2, seed=9)
        with _cluster(max_inflight=2, max_queue=8) as cluster:
            cluster.bulk_load(objects)
            generator = LoadGenerator(cluster, profile, initial_objects=objects)
            report = generator.run(mode="wall", max_workers=8)
        assert report.clock == "wall"
        assert report.totals["completed"] > 0
        assert report.checks["failed"] == 0

    def test_unknown_mode_is_rejected(self):
        objects = uniform_boxes(20, dims=2, seed=1)
        with _cluster() as cluster:
            cluster.bulk_load(objects)
            generator = LoadGenerator(cluster, _mini_profile(), initial_objects=objects)
            with pytest.raises(ValueError):
                generator.run(mode="simulated")
