"""Tests for schedule building: determinism, open-loop shape, pool safety."""

from __future__ import annotations

import random

import pytest

from repro.loadgen import (
    OpMix,
    Phase,
    TrafficProfile,
    ZipfSampler,
    build_schedule,
    op_counts,
    smoke_profile,
)
from repro.workloads import uniform_boxes


def _objects(n=60, seed=3):
    return uniform_boxes(n, dims=2, seed=seed)


class TestZipfSampler:
    def test_draws_are_deterministic_under_fixed_seed(self):
        sampler = ZipfSampler(50, 1.1)
        a = [sampler.sample(random.Random(9)) for _ in range(1)]
        first = [ZipfSampler(50, 1.1).sample(random.Random(9)) for _ in range(3)]
        assert first[0] == first[1] == first[2] == a[0]
        rng1, rng2 = random.Random(9), random.Random(9)
        seq1 = [sampler.sample(rng1) for _ in range(200)]
        seq2 = [sampler.sample(rng2) for _ in range(200)]
        assert seq1 == seq2

    def test_rank_zero_dominates_with_skew(self):
        sampler = ZipfSampler(20, 1.2)
        rng = random.Random(4)
        draws = [sampler.sample(rng) for _ in range(2000)]
        counts = [draws.count(rank) for rank in range(3)]
        assert counts[0] > counts[1] > draws.count(10)
        assert all(0 <= d < 20 for d in draws)

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.1)


class TestScheduleDeterminism:
    def test_two_builds_produce_identical_op_streams(self):
        profile = smoke_profile(seed=17)
        objects = _objects()
        first = build_schedule(profile, objects)
        second = build_schedule(profile, objects)
        # Boxes are frozen dataclasses, so whole ScheduledOps compare exactly.
        assert first == second

    def test_different_seeds_produce_different_streams(self):
        objects = _objects()
        a = build_schedule(smoke_profile(seed=1), objects)
        b = build_schedule(smoke_profile(seed=2), objects)
        assert a != b


class TestScheduleShape:
    def test_arrivals_are_sorted_and_inside_the_run(self):
        profile = smoke_profile()
        ops = build_schedule(profile, _objects())
        times = [op.t for op in ops]
        assert times == sorted(times)
        assert times[0] >= 0.0
        assert times[-1] < profile.total_duration_s

    def test_every_phase_contributes_and_is_labelled(self):
        profile = smoke_profile()
        ops = build_schedule(profile, _objects())
        phase_names = {op.phase for op in ops}
        assert phase_names == {p.name for p in profile.phases}

    def test_op_counts_track_the_mix(self):
        profile = smoke_profile()
        counts = op_counts(build_schedule(profile, _objects(200)))
        total = sum(counts.values())
        # Point queries carry 70% of the default mix; a schedule where they
        # don't dominate means the class draw ignored the weights.
        assert counts["point"] > 0.5 * total
        assert all(counts[name] > 0 for name in ("batch", "insert", "delete"))

    def test_query_payloads_match_op_class(self):
        profile = smoke_profile()
        for op in build_schedule(profile, _objects()):
            if op.op == "point":
                assert len(op.queries) == 1 and op.obj is None
            elif op.op == "batch":
                assert len(op.queries) == profile.batch_size and op.obj is None
            else:
                assert op.queries == () and op.obj is not None
                assert not op.check

    def test_ramp_phase_back_loads_arrivals(self):
        profile = TrafficProfile(
            seed=5,
            phases=(Phase("ramp", duration_s=2.0, rate=20.0, rate_end=400.0),),
        )
        times = [op.t for op in build_schedule(profile, _objects())]
        early = sum(1 for t in times if t < 1.0)
        late = len(times) - early
        # Intensity triples over the phase, so the second half must hold
        # clearly more arrivals than the first.
        assert late > 1.5 * early

    def test_deletes_never_reference_unknown_objects(self):
        profile = smoke_profile().scaled(mix=OpMix(point=0.2, batch=0.05, insert=0.3, delete=0.45))
        initial = _objects(10)
        live = {tuple(map(tuple, (b.low, b.high))) + (v,) for b, v in initial}
        for op in build_schedule(profile, initial):
            if op.obj is None:
                continue
            key = tuple(map(tuple, (op.obj[0].low, op.obj[0].high))) + (op.obj[1],)
            if op.op == "insert":
                live.add(key)
            else:
                assert key in live, "delete of an object the stream never owned"
                live.remove(key)

    def test_empty_pool_turns_deletes_into_inserts(self):
        profile = smoke_profile().scaled(mix=OpMix(point=0.1, batch=0.0, insert=0.1, delete=0.8))
        ops = build_schedule(profile, [])  # no initial objects at all
        counts = op_counts(ops)
        inserts_seen = 0
        for op in ops:
            if op.op == "insert":
                inserts_seen += 1
            elif op.op == "delete":
                assert inserts_seen > 0, "delete scheduled before any insert"
        assert counts["delete"] <= counts["insert"]


class TestCheckSampling:
    def test_check_fraction_zero_and_one(self):
        objects = _objects()
        none = build_schedule(smoke_profile().scaled(check_fraction=0.0), objects)
        assert not any(op.check for op in none)
        every = build_schedule(smoke_profile().scaled(check_fraction=1.0), objects)
        queries = [op for op in every if op.op in ("point", "batch")]
        assert queries and all(op.check for op in queries)
