"""Tests for traffic profiles: validation, phase ramps, serialization."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidQueryError
from repro.loadgen import OpMix, Phase, TrafficProfile, smoke_profile


class TestPhase:
    def test_flat_phase_rate_is_constant(self):
        phase = Phase("steady", duration_s=2.0, rate=100.0)
        assert phase.rate_at(0.0) == 100.0
        assert phase.rate_at(1.7) == 100.0
        assert phase.peak_rate == 100.0

    def test_ramp_interpolates_linearly_and_clamps(self):
        phase = Phase("ramp", duration_s=2.0, rate=100.0, rate_end=300.0)
        assert phase.rate_at(0.0) == 100.0
        assert phase.rate_at(1.0) == 200.0
        assert phase.rate_at(2.0) == 300.0
        assert phase.rate_at(99.0) == 300.0
        assert phase.peak_rate == 300.0

    def test_downward_ramp_peaks_at_start(self):
        phase = Phase("cooldown", duration_s=1.0, rate=300.0, rate_end=50.0)
        assert phase.peak_rate == 300.0

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_nonpositive_duration_and_rate(self, bad):
        with pytest.raises(InvalidQueryError):
            Phase("p", duration_s=bad, rate=10.0)
        with pytest.raises(InvalidQueryError):
            Phase("p", duration_s=1.0, rate=bad)


class TestOpMix:
    def test_rejects_negative_and_all_zero_weights(self):
        with pytest.raises(InvalidQueryError):
            OpMix(point=-0.1)
        with pytest.raises(InvalidQueryError):
            OpMix(point=0.0, batch=0.0, insert=0.0, delete=0.0)

    def test_round_trip(self):
        mix = OpMix(point=0.5, batch=0.2, insert=0.2, delete=0.1)
        assert OpMix.from_dict(mix.to_dict()) == mix


class TestTrafficProfile:
    def test_rejects_duplicate_phase_names(self):
        with pytest.raises(InvalidQueryError):
            TrafficProfile(phases=(Phase("a", 1.0, 10.0), Phase("a", 1.0, 20.0)))

    def test_rejects_empty_phases(self):
        with pytest.raises(InvalidQueryError):
            TrafficProfile(phases=())

    def test_total_duration_sums_phases(self):
        profile = smoke_profile()
        assert profile.total_duration_s == pytest.approx(sum(p.duration_s for p in profile.phases))

    def test_phase_mix_overrides_profile_mix(self):
        read_only = OpMix(point=1.0, batch=0.0, insert=0.0, delete=0.0)
        profile = TrafficProfile(
            phases=(
                Phase("mixed", 1.0, 10.0),
                Phase("reads", 1.0, 10.0, mix=read_only),
            )
        )
        assert profile.mix_for(profile.phases[0]) == profile.mix
        assert profile.mix_for(profile.phases[1]) == read_only

    def test_to_dict_from_dict_round_trip(self):
        profile = smoke_profile(seed=31).scaled(
            tenants=5,
            mix=OpMix(point=0.6, batch=0.2, insert=0.1, delete=0.1),
        )
        assert TrafficProfile.from_dict(profile.to_dict()) == profile

    def test_round_trip_survives_json(self):
        import json

        profile = smoke_profile()
        doc = json.loads(json.dumps(profile.to_dict()))
        assert TrafficProfile.from_dict(doc) == profile

    def test_from_dict_rejects_unknown_schema(self):
        doc = smoke_profile().to_dict()
        doc["schema_version"] = 999
        with pytest.raises(InvalidQueryError):
            TrafficProfile.from_dict(doc)

    def test_scaled_replaces_without_mutating(self):
        base = smoke_profile()
        scaled = base.scaled(tenants=3)
        assert scaled.tenants == 3
        assert base.tenants != 3
        assert scaled.phases == base.phases
