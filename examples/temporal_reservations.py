"""Temporal aggregation: hotel reservations as weighted time intervals.

The paper's related-work section observes that cumulative temporal
aggregation "for SUM is an 1-dimensional box-sum query" — a reservation
``[check-in, check-out]`` is a 1-d box weighted by its revenue.  This
example answers the two classic temporal queries over a year of bookings:

* cumulative  — revenue/count over reservations overlapping a date range;
* instantaneous — occupancy at a single point in time.

Run with::

    python examples/temporal_reservations.py
"""

from __future__ import annotations

import random

from repro.temporal import TemporalAggregateIndex

NIGHT = 1.0  # one day per unit


def main() -> None:
    rng = random.Random(7)
    index = TemporalAggregateIndex(backend="ba", measure="sum+count")

    # A year of reservations: arrivals all year, stays of 1-14 nights,
    # seasonal pricing (summer costs more).
    bookings = []
    for _ in range(8_000):
        check_in = rng.uniform(0, 365)
        nights = rng.randint(1, 14)
        season = 1.5 if 150 <= check_in <= 240 else 1.0
        revenue = nights * rng.uniform(80, 220) * season
        bookings.append((check_in, check_in + nights, revenue))
    index.bulk_load(bookings)
    print(f"indexed {index.num_records:,} reservations "
          f"({index.size_bytes / 2**20:.1f} MB)\n")

    # Cumulative queries: anything overlapping the window counts.
    windows = [("March", 59, 90), ("July", 181, 212), ("December", 334, 365)]
    print("revenue from reservations overlapping each month:")
    for name, start, end in windows:
        total = index.cumulative_sum(start, end)
        count = index.cumulative_count(start, end)
        avg = index.cumulative_avg(start, end)
        print(f"  {name:9s} {total:>13,.0f}  ({count:,.0f} bookings, avg {avg:,.0f})")

    # Instantaneous queries: occupancy on specific nights.
    print("\nrooms occupied at midnight:")
    for day in (45.5, 200.5, 359.5):
        print(f"  day {day:5.1f}:  {index.instantaneous_count(day):,.0f} rooms")

    # A cancellation retracts the interval.
    check_in, check_out, revenue = bookings[0]
    index.delete(check_in, check_out, revenue)
    print(f"\nafter one cancellation: {index.num_records:,} reservations")


if __name__ == "__main__":
    main()
