"""Spatio-temporal aggregation: 3-dimensional boxes (area x time interval).

The paper's introduction: "Each record represents the treatment of an area
over a certain time period and contains a 3-dimensional rectangle (that
is, a 2-dimensional area describing the field which is sprayed and the
corresponding time interval) and a value".  This example models cell-tower
traffic sessions: each session covers a coverage rectangle and a time
span, weighted by transferred megabytes, and queries ask for traffic over
a district during a window.

A 3-d box-sum reduces to 2^3 = 8 dominance-sum queries against eight
BA-trees — Theorem 2 at work beyond the plane.

Run with::

    python examples/spatiotemporal.py
"""

from __future__ import annotations

import random

from repro import Box, BoxSumIndex

DAY = 24.0  # hours


def make_sessions(n: int, seed: int = 11):
    """Synthetic sessions: (x, y, t) boxes over a 100x100 km city and one week."""
    rng = random.Random(seed)
    sessions = []
    for _ in range(n):
        cx, cy = rng.uniform(0, 100), rng.uniform(0, 100)
        radius = rng.uniform(0.5, 3.0)
        start = rng.uniform(0, 7 * DAY)
        duration = rng.expovariate(1 / 2.0)
        box = Box(
            (cx - radius, cy - radius, start),
            (cx + radius, cy + radius, start + duration),
        )
        megabytes = rng.uniform(1, 500)
        sessions.append((box, megabytes))
    return sessions


def main() -> None:
    index = BoxSumIndex(dims=3, backend="ba", measure="sum+count")
    sessions = make_sessions(5_000)
    index.bulk_load(sessions)
    print(f"loaded {index.num_objects} sessions, index = {index.size_bytes / 2**20:.1f} MB")

    # "Traffic in the downtown district on day 3."
    downtown_day3 = Box((40, 40, 2 * DAY), (60, 60, 3 * DAY))
    print("\ndowntown, day 3:")
    print(f"  total traffic:  {index.box_sum(downtown_day3):,.0f} MB")
    print(f"  sessions:       {index.box_count(downtown_day3):,.0f}")
    print(f"  avg per session: {index.box_avg(downtown_day3):,.1f} MB")

    # Compare a few windows — the index answers each with 8 dominance-sums
    # regardless of how many sessions fall inside.
    print("\nhourly sweep over downtown (day 3):")
    for hour in range(0, 24, 6):
        window = Box(
            (40, 40, 2 * DAY + hour), (60, 60, 2 * DAY + hour + 6)
        )
        print(
            f"  {hour:02d}:00-{hour + 6:02d}:00  "
            f"{index.box_sum(window):>10,.0f} MB in "
            f"{index.box_count(window):>5,.0f} sessions"
        )

    # Late data correction: a mis-reported session is retracted.
    wrong = sessions[0]
    index.delete(wrong[0], wrong[1])
    print(f"\nafter retracting one session: {index.num_objects} sessions remain")


if __name__ == "__main__":
    main()
