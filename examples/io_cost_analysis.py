"""Anatomy of a query: I/O breakdowns and buffer sensitivity.

Uses the explain API to show where a box-sum query's page accesses go —
the 2^d dominance-sums of Theorem 2, each walking one BA-tree path — and
sweeps the LRU buffer size to show how the upper tree levels amortize
across a query batch (the effect behind the paper's 10 MB-buffer setup).

Run with::

    python examples/io_cost_analysis.py
"""

from __future__ import annotations

from repro import Box, BoxSumIndex, StorageContext
from repro.core.explain import explain_box_sum
from repro.workloads import query_boxes, uniform_boxes


def main() -> None:
    objects = uniform_boxes(20_000, seed=3)

    # -- one query, dissected --------------------------------------------------
    storage = StorageContext(page_size=2048, buffer_pages=64)
    index = BoxSumIndex(dims=2, backend="ba", storage=storage)
    index.bulk_load(objects)
    storage.cold_cache()

    query = Box((0.40, 0.40), (0.50, 0.50))  # a 1%-of-space box
    report = explain_box_sum(index, query)
    print("one box-sum query = four dominance-sums (Theorem 2):\n")
    print(report.summary())
    print(
        "\n(each signed part walks one root-to-leaf path of its corner tree"
        "\nplus a couple of borders per level — cost independent of how many"
        "\nobjects the query box covers)"
    )

    # -- buffer sweep ------------------------------------------------------------
    print("\nbuffer sensitivity — 100 queries at QBS 1%:")
    print(f"{'buffer pages':>14} {'reads':>8} {'hits':>8} {'hit rate':>9}")
    queries = query_boxes(100, 0.01, seed=4)
    for buffer_pages in (16, 64, 256, 1024):
        ctx = StorageContext(page_size=2048, buffer_pages=buffer_pages)
        idx = BoxSumIndex(dims=2, backend="ba", storage=ctx)
        idx.bulk_load(objects)
        ctx.cold_cache()
        ctx.reset_stats()
        for q in queries:
            idx.box_sum(q)
        c = ctx.counter
        rate = c.hits / max(1, c.accesses)
        print(f"{buffer_pages:>14} {c.reads:>8} {c.hits:>8} {rate:>8.0%}")
    print(
        "\nreads fall as the buffer grows to hold the trees' upper levels;"
        "\npast that, only cold leaf pages miss — the regime the paper's"
        "\n10 MB buffer put every contender in."
    )


if __name__ == "__main__":
    main()
