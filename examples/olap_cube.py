"""OLAP range-sums over a data cube: prefix-sum array vs the BA-tree cube.

Section 1: "our solution applies also to computing range-sums over data
cubes ... the BA-tree partitions the space based on the data distribution
while [the dynamic data cube] does partitioning based on a uniform grid."

A sales cube over (day x store) is updated as transactions stream in.  The
classic prefix-sum array of Ho et al. answers any range in 2^d look-ups
but must patch up to the whole array per update; the BA-tree cube updates
in poly-log page I/Os and only materializes non-zero cells.

Run with::

    python examples/olap_cube.py
"""

from __future__ import annotations

import random

from repro.cube import DynamicCube, PrefixSumCube
from repro.storage import StorageContext

DAYS = 365
STORES = 200


def main() -> None:
    rng = random.Random(99)
    dense = PrefixSumCube((DAYS, STORES))
    storage = StorageContext(page_size=8192, buffer_pages=512)
    sparse = DynamicCube((DAYS, STORES), storage=storage)

    # Stream 20,000 sales transactions; only ~15% of stores trade daily,
    # so the cube is sparse.
    active_stores = rng.sample(range(STORES), 30)
    prefix_cells_touched = 0
    n_txn = 20_000
    for _ in range(n_txn):
        cell = (rng.randint(0, DAYS - 1), rng.choice(active_stores))
        amount = round(rng.uniform(5, 500), 2)
        prefix_cells_touched += dense.update(cell, amount)
        sparse.update(cell, amount)

    print(f"streamed {n_txn:,} transactions into a {DAYS}x{STORES} cube")
    print(
        f"prefix-sum array: {prefix_cells_touched:,} prefix cells patched "
        f"({prefix_cells_touched / n_txn:,.0f} per update)"
    )
    print(
        f"BA-tree cube:     {storage.counter.accesses:,} page accesses total "
        f"({storage.counter.accesses / n_txn:.1f} per update), "
        f"{storage.size_mb:.2f} MB on disk"
    )

    # Both structures answer the same OLAP questions.
    q2_start, q2_end = 90, 180
    top = active_stores[0]
    queries = [
        ("Q2 revenue, all stores", (q2_start, 0), (q2_end, STORES - 1)),
        (f"store {top}, whole year", (0, top), (DAYS - 1, top)),
        ("December, all stores", (334, 0), (364, STORES - 1)),
    ]
    print("\nrange-sum queries (prefix array == BA-tree cube):")
    for label, low, high in queries:
        a = dense.range_sum(low, high)
        b = sparse.range_sum(low, high)
        marker = "OK" if abs(a - b) < 1e-6 else "MISMATCH"
        print(f"  {label:28s} {a:>14,.2f}  [{marker}]")

    print(f"\ngrand total: {sparse.total():,.2f}")


if __name__ == "__main__":
    main()
