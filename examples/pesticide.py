"""The paper's running example: pesticide spraying records.

Section 1 motivates the problem with "a database in an agricultural agency
that keeps track of pesticide usage", and Section 3 develops the
*functional* variant: the value of a spray record is the volume *per
square yard*, possibly varying across the field, and the query asks for
the total volume sprayed inside an area.

This example reproduces every number the paper works out in Figures 3
and 5 — the simple box-sum of 7, the functional box-sum of
4·50 + 3·12 = 236, the OIFBS values 60 and 296, and the uneven field of
Figure 3b with its 310 / 110 gram totals.

Run with::

    python examples/pesticide.py
"""

from __future__ import annotations

from repro import Box, BoxSumIndex, FunctionalBoxSumIndex, Polynomial

# The three spray records of Figure 3a / 5b (coordinates in yards, values
# in grams per square yard).
FIELD_A = Box((2, 10), (15, 26))   # sprayed at 4 g/yd^2
FIELD_B = Box((18, 4), (30, 10))   # sprayed at 3 g/yd^2
FIELD_C = Box((20, 15), (30, 26))  # sprayed at 6 g/yd^2
QUERY = Box((5, 4), (20, 15))      # "Orange County" for "March 1999"


def simple_box_sum() -> None:
    """The simple variant: a record counts wholly iff it intersects the query."""
    index = BoxSumIndex(dims=2, backend="ba")
    index.insert(FIELD_A, 4.0)
    index.insert(FIELD_B, 3.0)
    index.insert(FIELD_C, 6.0)
    result = index.box_sum(QUERY)
    print(f"simple box-sum over the query area:       {result:.0f}   (paper: 7)")


def functional_box_sum() -> None:
    """The functional variant: volume = rate integrated over the overlap."""
    index = FunctionalBoxSumIndex(dims=2, backend="ba", max_degree=0)
    index.insert(FIELD_A, 4.0)
    index.insert(FIELD_B, 3.0)
    index.insert(FIELD_C, 6.0)
    total = index.functional_box_sum(QUERY)
    print(f"total grams sprayed in the query area:    {total:.0f}   (paper: 4*50 + 3*12 = 236)")

    # The two OIFBS corner evaluations of Figure 5b.
    q1 = index.oifbs((5.0, 15.0))
    q2 = index.oifbs((20.0, 15.0))
    print(f"OIFBS at q1 = (5, 15):                    {q1:.0f}    (paper: 60)")
    print(f"OIFBS at q2 = (20, 15):                   {q2:.0f}   (paper: 296)")


def uneven_field() -> None:
    """Figure 3b: the spray rate varies linearly across the field."""
    index = FunctionalBoxSumIndex(dims=2, backend="ba", max_degree=1)
    # f(x, y) = x - 2: 3 g/yd^2 at the left border (x = 5), 18 g/yd^2 at
    # the right border (x = 20).
    rate = Polynomial.variable(2, 0) - Polynomial.constant(2, 2.0)
    index.insert(Box((5, 3), (20, 15)), rate)

    right = index.functional_box_sum(Box((15, 7), (25, 11)))
    left = index.functional_box_sum(Box((0, 7), (10, 11)))
    print(f"query hugging the right border:           {right:.0f}   (paper: 310)")
    print(f"same-size overlap at the left border:     {left:.0f}   (paper: 110)")


def main() -> None:
    print("Pesticide-tracking example (paper Figures 3 and 5)\n")
    simple_box_sum()
    functional_box_sum()
    print()
    uneven_field()


if __name__ == "__main__":
    main()
