"""Quickstart: box-sum aggregation over objects with extent.

Builds a BA-tree-backed index over weighted rectangles, runs SUM / COUNT /
AVG queries, updates it dynamically, and prints the I/O statistics the
simulated disk collected along the way.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import Box, BoxSumIndex, StorageContext


def main() -> None:
    # One simulated disk: 8 KB pages behind an LRU buffer, exactly the
    # paper's setup.  All 2^d = 4 internal dominance-sum trees share it.
    storage = StorageContext(page_size=8192, buffer_pages=1280)
    index = BoxSumIndex(dims=2, backend="ba", measure="sum+count", storage=storage)

    # Insert 10,000 random rectangles with weights.
    rng = random.Random(42)
    for _ in range(10_000):
        low = (rng.uniform(0, 1000), rng.uniform(0, 1000))
        high = (low[0] + rng.uniform(0, 20), low[1] + rng.uniform(0, 20))
        index.insert(Box(low, high), value=rng.uniform(1, 100))

    # Aggregate everything intersecting a query rectangle.
    query = Box((200, 200), (400, 400))
    print(f"query box:       {query}")
    print(f"SUM of weights:  {index.box_sum(query):,.1f}")
    print(f"COUNT:           {index.box_count(query):,.0f}")
    print(f"AVG weight:      {index.box_avg(query):,.2f}")

    # Dynamic updates: deletion inserts the inverse weight.
    box = Box((250, 250), (260, 260))
    index.insert(box, value=1000.0)
    with_spike = index.box_sum(query)
    index.delete(box, value=1000.0)
    without_spike = index.box_sum(query)
    print(f"\nafter +1000 insert: {with_spike:,.1f}")
    print(f"after delete:       {without_spike:,.1f}")

    # The simulated disk reports exactly what the paper measures.
    print(f"\nindex size:      {storage.size_mb:.2f} MB ({storage.num_pages} pages)")
    print(
        f"I/O counters:    {storage.counter.reads} reads, "
        f"{storage.counter.writes} writes, {storage.counter.hits} buffer hits"
    )


if __name__ == "__main__":
    main()
