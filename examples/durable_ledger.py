"""Durable aggregation: a transaction ledger that survives restarts — and crashes.

The experiments run against a simulated disk (exact I/O accounting); this
example uses the production-shaped path instead — struct-encoded page
images in fixed slots of a real file.  A ledger of (timestamp, amount)
entries answers running-total and window queries, is closed, reopened, and
keeps aggregating where it left off.

Session 3 is the crash drill: a checkpoint is killed by a simulated torn
write mid-flight, and reopening the survivor files recovers the last
committed state through the write-ahead log, verified by a checksum scrub.

Run with::

    python examples/durable_ledger.py
"""

from __future__ import annotations

import os
import random
import tempfile

from repro.core.values import SumCount
from repro.durable import DurableAggIndex
from repro.storage.faults import CrashPoint, FaultInjector, SimulatedCrashError


def main() -> None:
    path = os.path.join(tempfile.gettempdir(), "repro_ledger.pages")
    for stale in (path, path + ".wal"):
        if os.path.exists(stale):
            os.remove(stale)
    rng = random.Random(17)

    # Session 1: ingest a day of transactions, then shut down.
    with DurableAggIndex.open(path, value_kind="sum+count", page_size=4096) as ledger:
        for _ in range(5_000):
            timestamp = rng.uniform(0.0, 24.0)
            amount = round(rng.uniform(-200.0, 500.0), 2)
            ledger.insert(timestamp, SumCount(amount, 1.0))
        morning = ledger.range_sum(6.0, 12.0)
        ledger.checkpoint()  # mutations reach the disk at checkpoints/close
        print("session 1 (before restart):")
        print(f"  06:00-12:00  net {morning.total:>12,.2f} over {morning.count:,.0f} txns")
        print(f"  whole day    net {ledger.total().total:>12,.2f}")
        print(f"  file size    {os.path.getsize(path):,} bytes")

    # Session 2: a fresh process would see exactly the same state.
    with DurableAggIndex.open(path, value_kind="sum+count", page_size=4096,
                              create=False) as ledger:
        morning = ledger.range_sum(6.0, 12.0)
        print("\nsession 2 (after restart):")
        print(f"  06:00-12:00  net {morning.total:>12,.2f} over {morning.count:,.0f} txns")
        # Keep ingesting: the evening batch lands in the same pages.
        for _ in range(1_000):
            ledger.insert(rng.uniform(18.0, 24.0), SumCount(rng.uniform(0, 100), 1.0))
        evening = ledger.range_sum(18.0, 24.0)
        print(f"  18:00-24:00  net {evening.total:>12,.2f} over {evening.count:,.0f} txns")
        print(f"  total txns   {len(ledger):,}")
        committed_total = ledger.total().total
        committed_txns = len(ledger)

    # Session 3: the process dies mid-checkpoint (a torn page write).
    # Mutations only reach the file through WAL-committed checkpoints, so
    # the uncheckpointed batch simply vanishes — the committed state does not.
    injector = FaultInjector(CrashPoint(at_op=4, mode="torn"))
    try:
        ledger = DurableAggIndex.open(path, value_kind="sum+count", page_size=4096,
                                      create=False, opener=injector.opener)
        for _ in range(500):
            ledger.insert(rng.uniform(0.0, 24.0), SumCount(rng.uniform(0, 100), 1.0))
        ledger.checkpoint()  # the torn write lands here
        ledger.close()
    except SimulatedCrashError:
        print("\nsession 3: simulated crash mid-checkpoint (torn write)")

    # Session 4: recovery on open replays the write-ahead log, discards the
    # torn tail, and a checksum scrub confirms every page is intact.
    with DurableAggIndex.open(path, value_kind="sum+count", page_size=4096,
                              create=False) as ledger:
        print("session 4 (after recovery):")
        print(f"  total txns   {len(ledger):,} (committed state restored)")
        print(f"  whole total  {ledger.total().total:>12,.2f}")
        pages = ledger.verify()
        print(f"  scrub        {pages} pages checksum-verified")
        assert len(ledger) == committed_txns
        assert abs(ledger.total().total - committed_total) < 1e-6

    os.remove(path)
    os.remove(path + ".wal")
    print("\n(ledger files removed)")


if __name__ == "__main__":
    main()
