#!/usr/bin/env bash
# Full-scale experiment runs backing EXPERIMENTS.md.
# Larger n than the pytest benches; takes ~30 minutes of CPU.
set -euo pipefail
cd "$(dirname "$0")/.."

python -m repro.bench fig9a     --n 100000 --queries 200
python -m repro.bench fig9b     --n 100000 --queries 200
python -m repro.bench crossover --n 200000 --queries 100
python -m repro.bench fig9c     --n 50000  --queries 100
python -m repro.bench reduction --n 50000
python -m repro.bench rstar     --n 200000 --queries 50
python -m repro.bench table1    --n 64000
python -m repro.bench ablation  --n 50000
python -m repro.bench shape     --n 100000 --queries 100
python -m repro.bench dims3     --n 30000  --queries 100
