"""E10 — Section 8's claim: BA-tree queries are independent of query *shape*.

Expected shape: at constant query area, skinnier query boxes have longer
boundaries, so the aR-tree's cost grows with the aspect ratio while the
BA-tree's stays flat (it always issues the same 2^d dominance-sums).
"""

from __future__ import annotations

from repro.bench.figures import shape_robustness


def test_shape_robustness(benchmark, cfg):
    rows = benchmark.pedantic(
        shape_robustness, args=(cfg,), kwargs={"verbose": True}, rounds=1, iterations=1
    )
    aspects = [a for a, _ar, _bat in rows]
    ar = [x for _a, x, _bat in rows]
    bat = [x for _a, _ar, x in rows]
    assert aspects == sorted(aspects)
    # aR cost grows with aspect ratio at constant area...
    assert ar[-1] > 1.5 * ar[0]
    # ...the BA-tree's stays flat (within 40% across a 64x aspect change).
    assert max(bat) < 1.4 * min(bat)
