"""E6 — Table 1: the ECDF-Bu / ECDF-Bq space-query-update trade-off.

Expected shape (Theorem 4): the Bq variant buys its ``O(log^d n)`` query
cost with far more space and update work; the Bu variant is the mirror
image.  Growth in n preserves the ordering.
"""

from __future__ import annotations

from collections import defaultdict

from repro.bench.figures import table1_complexity


def test_table1_complexity(benchmark, cfg):
    rows = benchmark.pedantic(
        table1_complexity, args=(cfg,), kwargs={"verbose": True}, rounds=1, iterations=1
    )
    by_variant = defaultdict(list)
    for variant, n, space, build, query, update in rows:
        by_variant[variant].append((n, space, build, query, update))
    for variant in ("Bu", "Bq"):
        assert [r[0] for r in by_variant[variant]] == sorted(
            r[0] for r in by_variant[variant]
        )
    largest_bu = by_variant["Bu"][-1]
    largest_bq = by_variant["Bq"][-1]
    # Space: Bq >> Bu at equal n.
    assert largest_bq[1] > 2 * largest_bu[1]
    # Query: Bq << Bu.
    assert largest_bq[3] < largest_bu[3]
    # Update: Bu << Bq.
    assert largest_bu[4] < largest_bq[4]
    # Space grows monotonically with n for both variants.
    for variant in ("Bu", "Bq"):
        spaces = [r[1] for r in by_variant[variant]]
        assert spaces == sorted(spaces)
