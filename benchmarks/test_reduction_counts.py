"""E4 — Theorem 1 vs Theorem 2: reduction counts and an operational check.

Expected: the [13] scheme needs ``3^d − 1`` dominance-sums (26 at d = 3),
the paper's corner reduction exactly ``2^d`` (8 at d = 3), and the corner
reduction also wins operationally (fewer I/Os) on a real index.
"""

from __future__ import annotations

from repro.bench.figures import reduction_experiment


def test_reduction_counts(benchmark, cfg):
    counts, measured = benchmark.pedantic(
        reduction_experiment, args=(cfg,), kwargs={"verbose": True}, rounds=1, iterations=1
    )
    table = {d: (old, new) for d, old, new in counts}
    assert table[3] == (26, 8)  # the paper's headline example
    for d, (old, new) in table.items():
        assert old == 3**d - 1
        assert new == 2**d
        assert new <= old
    by_name = {name: ios for name, ios, _mb in measured}
    assert by_name["corner (Thm 2)"] < by_name["EO82 (Thm 1)"]
