"""E8 — ablation: the sqrt(B)-borders-per-update design choice of Section 5.

Expected shape (paper): "The update of the ECDF-Bq-tree is expensive since
each update affects O(B) borders.  The BA-tree is faster since only
O(sqrt(B)) borders are affected" — with the ECDF-Bu-tree cheapest of all
(one border per level).
"""

from __future__ import annotations

from repro.bench.figures import ablation_border_touch


def test_ablation_border_touch(benchmark, cfg):
    rows = benchmark.pedantic(
        ablation_border_touch, args=(cfg,), kwargs={"verbose": True}, rounds=1, iterations=1
    )
    accesses = {name: acc for name, acc, _cpu in rows}
    assert set(accesses) == {"BAT", "ECDFq", "ECDFu"}
    # BA-tree updates touch far fewer pages than ECDF-Bq updates...
    assert accesses["BAT"] < accesses["ECDFq"] / 2
    # ...and land in the same regime as the update-optimized ECDF-Bu.
    assert accesses["BAT"] < 5 * accesses["ECDFu"]
