"""E2/E9 — Figure 9b: query cost vs query-box size, plus the aR/BAT crossover.

Expected shape (paper): the ECDF-Bq-tree queries cheapest with the BA-tree
very close; the ECDF-Bu-tree is much more expensive; the aR-tree degrades
sharply as QBS grows while the dominance-sum indices stay flat ("its
performance was independent of the query size characteristics").  At the
paper's n = 6M the aR-tree loses at every QBS; at scaled-down n the same
mechanism appears as a crossover in the n sweep.
"""

from __future__ import annotations

from collections import defaultdict

from repro.bench.figures import fig9b_crossover, fig9b_query_cost


def test_fig9b_query_cost(benchmark, cfg):
    rows = benchmark.pedantic(
        fig9b_query_cost, args=(cfg,), kwargs={"verbose": True}, rounds=1, iterations=1
    )
    by_method = defaultdict(list)
    for method, _qbs, ios in rows:
        by_method[method].append(ios)
    # The dominance-sum indices are insensitive to the query-box size.
    for method in ("BAT", "ECDFq", "ECDFu"):
        series = by_method[method]
        assert max(series) < 2.0 * max(1, min(series)), method
    # The aR-tree degrades sharply with QBS.
    ar = by_method["aR"]
    assert ar[-1] > 3 * max(1, ar[0])
    # ECDF-Bq beats ECDF-Bu by a wide margin; BAT sits between them.
    assert max(by_method["ECDFq"]) < min(by_method["ECDFu"])
    assert max(by_method["BAT"]) < min(by_method["ECDFu"])


def test_fig9b_crossover(benchmark, cfg):
    rows = benchmark.pedantic(
        fig9b_crossover, args=(cfg,), kwargs={"verbose": True}, rounds=1, iterations=1
    )
    ns = [n for n, _ar, _bat in rows]
    ar = [a for _n, a, _bat in rows]
    bat = [b for _n, _ar, b in rows]
    assert ns == sorted(ns)
    # aR per-query cost grows with n at a fixed large QBS...
    assert ar[-1] > 1.5 * ar[0]
    # ...and much faster than the BA-tree's (flat once the tree has its
    # final depth; the first point is skipped because tiny trees are still
    # gaining levels).
    ar_growth = ar[-1] / max(ar[1], 1e-9)
    bat_growth = bat[-1] / max(bat[1], 1e-9)
    assert ar_growth > 1.5 * bat_growth
    assert bat[-1] < 2.0 * bat[1]
