"""E5 — Section 6's claim: the BA-tree vs the plain (non-aggregated) R*-tree.

Expected shape (paper): "the BA-tree approach has a query time over 200
times faster than the plain R*-tree approach" at n = 6M.  The factor
shrinks with n (the R*-tree's cost is linear in the objects inside the
query box); at bench scale we assert a clear multiple, and the CLI run in
EXPERIMENTS.md reports the factor at larger n.
"""

from __future__ import annotations

from repro.bench.figures import rstar_speedup


def test_rstar_speedup(benchmark, cfg):
    big = cfg.scaled(n=30_000)
    rows, ratio = benchmark.pedantic(
        rstar_speedup, args=(big,), kwargs={"verbose": True}, rounds=1, iterations=1
    )
    ios = dict(rows)
    assert ios["R*"] > ios["BAT"]
    assert ratio > 1.5
