"""E3 — Figure 9c: functional box-sum execution time (CPU + 10 ms × I/O).

Expected shape (paper): "as the degree increases, the query performance
worsens since the index becomes larger" — degree-2 value functions cost
more than degree-0 for both the BA-tree and the aR-tree.
"""

from __future__ import annotations

from repro.bench.figures import fig9c_functional


def test_fig9c_functional(benchmark, cfg):
    small = cfg.scaled(n=6_000, queries=25)
    rows = benchmark.pedantic(
        fig9c_functional, args=(small,), kwargs={"verbose": True}, rounds=1, iterations=1
    )
    times = {name: total for name, total, _ios, _cpu in rows}
    assert set(times) == {"aR_d0", "BAT_d0", "aR_d2", "BAT_d2"}
    # Degree-2 indices are slower than degree-0 for both methods.
    assert times["aR_d2"] > times["aR_d0"]
    assert times["BAT_d2"] > times["BAT_d0"]
    # All four answer the same workload with non-trivial work.
    assert all(t > 0 for t in times.values())
