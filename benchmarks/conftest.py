"""Shared configuration for the benchmark suite.

These benches run the same experiment drivers as ``python -m repro.bench``
at a reduced scale so the whole suite finishes in a few minutes.  Runs for
EXPERIMENTS.md use the CLI with larger ``--n``.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchConfig


@pytest.fixture(scope="session")
def cfg() -> BenchConfig:
    """Scaled-down configuration shared across benchmark modules."""
    return BenchConfig(n=12_000, queries=40)
