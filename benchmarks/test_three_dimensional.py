"""E11 — Section 5's claim: "The BA-tree extends to higher dimensions in a
straightforward manner".

Expected shape: in 3-d the BA-tree (8 corner trees, each with 2-d borders
recursing into 1-d borders) still answers with a QBS-independent cost,
while the aR-tree's cost keeps growing with the query volume.
"""

from __future__ import annotations

from repro.bench.figures import three_dimensional


def test_three_dimensional(benchmark, cfg):
    small = cfg.scaled(n=8_000, queries=25)
    rows = benchmark.pedantic(
        three_dimensional, args=(small,), kwargs={"verbose": True}, rounds=1, iterations=1
    )
    ar = [x for _qbs, x, _bat in rows]
    bat = [x for _qbs, _ar, x in rows]
    # aR cost climbs with query volume...
    assert ar[-1] > 2 * ar[0]
    # ...the BA-tree's is flat across two orders of magnitude of QBS.
    assert max(bat) < 1.5 * min(bat)
    # And the answers were produced by genuinely 3-d structures.
    assert len(rows) == 3
