"""E1 — Figure 9a: index sizes of aR, ECDFu, ECDFq and BAT.

Expected shape (paper): the aR-tree is the smallest index; the ECDF-Bq-tree
is by far the largest; the BA-tree and ECDF-Bu-tree sit in between.
"""

from __future__ import annotations

from repro.bench.figures import fig9a_index_sizes


def test_fig9a_index_sizes(benchmark, cfg):
    rows = benchmark.pedantic(
        fig9a_index_sizes, args=(cfg,), kwargs={"verbose": True}, rounds=1, iterations=1
    )
    sizes = {method: mb for method, mb, _pages in rows}
    assert set(sizes) == {"aR", "ECDFu", "ECDFq", "BAT"}
    # aR is the smallest ("the aR-tree has linear space").
    assert sizes["aR"] < min(sizes["ECDFu"], sizes["ECDFq"], sizes["BAT"])
    # ECDFq dwarfs everything ("the ECDF-Bq-tree occupies the most space").
    assert sizes["ECDFq"] > 2 * sizes["BAT"]
    assert sizes["ECDFq"] > 2 * sizes["ECDFu"]
    # BAT and ECDFu are within an order of magnitude of each other.
    assert sizes["BAT"] < 10 * sizes["ECDFu"]
