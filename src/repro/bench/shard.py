"""Shard-scaling experiment: scatter-gather speedup and balance.

A clustered dataset is served through :class:`repro.shard.ShardedService`
at 1, 2, 4 and 8 shards (kd-median partitioning, sequential fan-out so
every number is deterministic).  The workload is a spatially skewed
hotspot batch (:func:`repro.workloads.hotspot_boxes`) — the serving
pattern sharding targets: most shards prune or cover their probes from
their extent MBR alone, and the ones that can't each scan a fraction of
the data against a full-size buffer pool.

Throughput is modeled by **page reads on the critical path**: every shard
evaluates in parallel in a real deployment, so a batch's latency is the
page reads of its *slowest* shard.  ``speedup`` is the 1-shard baseline's
reads over that critical path; it compounds two effects — each shard holds
``~1/s`` of the corner trees (shallower, more cacheable) and the shards'
buffer pools multiply the aggregate cache.  All answers are cross-checked
against :class:`repro.core.naive.NaiveBoxSum`, so the experiment doubles
as an end-to-end exactness gate for the sharded path.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..core.aggregator import BoxSumIndex
from ..core.errors import ReproError
from ..core.naive import NaiveBoxSum
from ..obs import MetricsRegistry
from ..shard import ShardedService
from ..workloads import clustered_boxes, hotspot_boxes
from .config import BenchConfig
from .report import banner, format_table

#: Shard counts exercised by the scaling sweep.
SHARD_COUNTS = (1, 2, 4, 8)

#: (shards, reads_total, reads_critical, speedup, imbalance, fanout_pct)
Row = Tuple[int, int, int, float, float, float]


def _check_answers(shards: int, queries, answers, oracle: NaiveBoxSum) -> None:
    for query, got in zip(queries, answers):
        want = oracle.box_sum(query)
        if not math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9):
            raise ReproError(
                f"sharded answer mismatch ({shards} shards): {got!r} != naive "
                f"{want!r} for {query}"
            )


def shard_scaling_experiment(cfg: BenchConfig, verbose: bool = True) -> List[Row]:
    """Critical-path reads and balance at 1/2/4/8 shards, vs. naive oracle."""
    objects = clustered_boxes(
        cfg.n,
        dims=cfg.dims,
        avg_side_fraction=cfg.avg_side_fraction,
        seed=cfg.seed,
    )
    oracle = NaiveBoxSum(cfg.dims)
    for box, value in objects:
        oracle.insert(box, value)
    queries = hotspot_boxes(
        cfg.queries, qbs_fraction=0.01, dims=cfg.dims, hotspot=0.3, seed=cfg.seed
    )

    rows: List[Row] = []
    baseline_critical = None
    for shards in SHARD_COUNTS:

        def factory(sid: int) -> BoxSumIndex:
            return BoxSumIndex(
                cfg.dims,
                backend="ba",
                page_size=cfg.page_size,
                buffer_pages=cfg.buffer_pages,
            )

        with ShardedService(
            cfg.dims,
            shards,
            partitioner="kd",
            index_factory=factory,
            workers=0,
            registry=MetricsRegistry(),
            label=f"bench-s{shards}",
        ) as cluster:
            cluster.bulk_load(objects)
            for service in cluster.services:
                service.index.storage.cold_cache()
                service.index.storage.reset_stats()
            result = cluster.batch(queries)
            _check_answers(shards, queries, result.results, oracle)
            reads = [service.index.storage.counter.reads for service in cluster.services]
            critical = max(reads)
            if baseline_critical is None:
                baseline_critical = critical
            speedup = baseline_critical / critical if critical else float(shards)
            fanout_pct = 100.0 * result.fanout
            rows.append(
                (
                    shards,
                    sum(reads),
                    critical,
                    round(speedup, 2),
                    round(cluster.imbalance, 3),
                    round(fanout_pct, 1),
                )
            )

    if verbose:
        print(banner(f"shard: scatter-gather scaling (n={cfg.n}, d={cfg.dims})"))
        print(
            format_table(
                ["shards", "reads", "critical", "speedup", "imbalance", "fanout %"],
                rows,
            )
        )
    return rows


def shard_smoke_metrics(cfg: BenchConfig, verbose: bool = False) -> Dict[str, float]:
    """Lower-is-better gate metrics for the smoke slice.

    Speedup is exported as ``read_critical_pct`` — critical-path reads as a
    percentage of the 1-shard baseline — so losing the scaling (percentage
    climbing back toward 100) trips the lower-is-better gate; the 2×
    acceptance floor at 4 shards is ``shard.s4.read_critical_pct <= 50``.
    """
    rows = shard_scaling_experiment(cfg, verbose=verbose)
    by_shards = {row[0]: row for row in rows}
    baseline = by_shards[1][2] or 1
    metrics: Dict[str, float] = {}
    for shards in (2, 4, 8):
        critical = by_shards[shards][2]
        metrics[f"shard.s{shards}.read_critical_pct"] = round(100.0 * critical / baseline, 2)
    metrics["shard.s4.imbalance_x100"] = round(100.0 * by_shards[4][4], 1)
    metrics["shard.s4.fanout_pct"] = by_shards[4][5]
    return metrics
