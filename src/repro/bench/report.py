"""Plain-text table formatting for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def banner(title: str) -> str:
    """A section banner for experiment output."""
    bar = "=" * max(60, len(title) + 4)
    return f"\n{bar}\n  {title}\n{bar}"
