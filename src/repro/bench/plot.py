"""ASCII charts for the benchmark output (terminal-friendly figures).

The paper presents its evaluation as bar and line charts; the harness
renders the same series as monospace plots so a benchmark run reads like
the figure it reproduces.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

#: Series markers, assigned in insertion order.
_MARKERS = "ox*#@+%&"


def ascii_chart(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    log_x: bool = False,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series on one monospace grid.

    ``log_y`` / ``log_x`` switch the axes to log scale (all values must
    then be positive).  Each series gets a marker from ``o x * # …``; the
    legend maps markers back to names.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    fx = _scaler(min(xs), max(xs), log_x)
    fy = _scaler(min(ys), max(ys), log_y)

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(_MARKERS, series.items()):
        for x, y in pts:
            col = round(fx(x) * (width - 1))
            row = height - 1 - round(fy(y) * (height - 1))
            grid[row][col] = marker

    y_lo, y_hi = min(ys), max(ys)
    labels = [_fmt(y_hi), _fmt((y_lo + y_hi) / 2), _fmt(y_lo)]
    label_width = max(len(s) for s in labels)
    lines: List[str] = []
    if title:
        lines.append(f"  {title}")
    for row in range(height):
        if row == 0:
            label = labels[0]
        elif row == height // 2:
            label = labels[1]
        elif row == height - 1:
            label = labels[2]
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(grid[row])}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_lo, x_hi = _fmt(min(xs)), _fmt(max(xs))
    x_gap = " " * max(1, width - len(x_lo) - len(x_hi) - 2)
    lines.append(" " * label_width + f"  {x_lo}{x_gap}{x_hi}")
    legend = "   ".join(f"{marker}={name}" for marker, name in zip(_MARKERS, series.keys()))
    suffix = "  [log y]" if log_y else ""
    lines.append(f"  legend: {legend}{suffix}")
    if y_label:
        lines.append(f"  y: {y_label}")
    return "\n".join(lines)


def _scaler(lo: float, hi: float, log: bool):
    """Map [lo, hi] (possibly log-scaled) onto [0, 1]."""
    if log:
        if lo <= 0:
            raise ValueError("log-scaled axes need positive values")
        lo_t, hi_t = math.log10(lo), math.log10(hi)

        def f(v: float) -> float:
            if hi_t == lo_t:
                return 0.5
            return (math.log10(v) - lo_t) / (hi_t - lo_t)

        return f

    def f_linear(v: float) -> float:
        if hi == lo:
            return 0.5
        return (v - lo) / (hi - lo)

    return f_linear


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000:
        return f"{value:.1e}"
    if abs(value) >= 10:
        return f"{value:,.0f}"
    if abs(value) >= 0.01:
        return f"{value:.2f}"
    return f"{value:.1e}"


def bar_chart(rows: Sequence[Tuple[str, float]], width: int = 50, title: str = "") -> str:
    """Horizontal bars, scaled to the largest value."""
    if not rows:
        return "(no data)"
    peak = max(v for _name, v in rows)
    name_width = max(len(name) for name, _v in rows)
    lines = [f"  {title}"] if title else []
    for name, value in rows:
        bar = "#" * max(1, round(width * value / peak)) if peak > 0 else ""
        lines.append(f"  {name:>{name_width}} |{bar} {_fmt(value)}")
    return "\n".join(lines)
