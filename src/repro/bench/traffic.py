"""Traffic experiment: SLO-grade load generation with a gateable smoke slice.

``python -m repro.bench traffic`` builds a small kd-partitioned
:class:`~repro.shard.ShardedService`, plays the reduced-scale
:func:`~repro.loadgen.profile.smoke_profile` through
:class:`~repro.loadgen.LoadGenerator` and prints the resulting SLO report
(phases × op classes, p50/p95/p99/p999, throughput, shed rate, answer
cross-checks).  Two knobs matter:

* ``mode="virtual"`` (the default, and what the smoke gate runs) executes
  the deterministic virtual-time twin — every exported metric is
  bit-stable under a fixed seed, including the smoke-scale p99 and
  throughput, because virtual latencies are priced from probe/page work
  rather than wall clock;
* ``chaos=True`` layers a seeded :class:`~repro.resilience.ChaosPlan` on a
  replicated cluster, so the report additionally shows failover blips —
  with, still, zero inexact answers (that's the point).

:func:`traffic_smoke_metrics` exports the lower-is-better slice the CI
gate pins: scheduled op counts, shed/error/check-failure counts, probe
work per unique probe (the dedup/pruning effectiveness under mixed
traffic), the steady-phase point p99 and inverse throughput.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from ..loadgen import LoadGenerator, SLOReport, TrafficProfile, smoke_profile
from ..obs import MetricsRegistry
from ..resilience import ChaosPlan, ResilienceConfig, chaos_member_wrapper
from ..shard import ShardedService
from ..workloads import uniform_boxes
from .config import BenchConfig
from .report import banner
from .runmeta import run_metadata

#: Version of the BENCH_traffic.json payload format.
TRAFFIC_SCHEMA_VERSION = 1

#: Admission limits of the traffic cluster — deliberately tight so the
#: smoke profile's burst phase overruns capacity and sheds (the gate pins
#: that the overload path actually exercises).
TRAFFIC_MAX_INFLIGHT = 1
TRAFFIC_MAX_QUEUE = 2

#: Shards in the traffic cluster.
TRAFFIC_SHARDS = 4

#: Chaos intensity of ``chaos=True`` runs (seeded, deterministic in
#: virtual mode where execution is sequential).
TRAFFIC_CHAOS_RAISE_RATE = 0.2

#: Seeded latency injection for ``chaos=True`` runs: this fraction of
#: member calls sleeps for a duration drawn uniformly from
#: ``TRAFFIC_CHAOS_DELAY_MS`` (milliseconds) — real wall-clock jitter that
#: exercises the hedged-read machinery under traffic.
TRAFFIC_CHAOS_DELAY_RATE = 0.15
TRAFFIC_CHAOS_DELAY_MS = (0.5, 3.0)

#: Hedge trigger for ``chaos=True`` runs: a read still unanswered after
#: this many seconds races a second member.  Sits inside the injected
#: delay range so the slow draws actually hedge.
TRAFFIC_HEDGE_DELAY_S = 0.001


def _make_cluster(
    cfg: BenchConfig,
    registry: MetricsRegistry,
    chaos: bool,
    degrade: Optional[str] = None,
) -> ShardedService:
    kwargs: Dict[str, Any] = {}
    if degrade is not None:
        kwargs["degrade"] = degrade
    if chaos:
        kwargs.update(
            replicas=1,
            service_wrapper=chaos_member_wrapper(
                ChaosPlan(
                    seed=cfg.seed,
                    raise_rate=TRAFFIC_CHAOS_RAISE_RATE,
                    delay_rate=TRAFFIC_CHAOS_DELAY_RATE,
                    delay_ms=TRAFFIC_CHAOS_DELAY_MS,
                )
            ),
            resilience=ResilienceConfig(
                max_attempts=4,
                backoff_base_s=0.0,
                hedge_delay_s=TRAFFIC_HEDGE_DELAY_S,
                seed=cfg.seed,
            ),
        )
    return ShardedService(
        cfg.dims,
        TRAFFIC_SHARDS,
        partitioner="kd",
        workers=0,
        max_inflight=TRAFFIC_MAX_INFLIGHT,
        max_queue=TRAFFIC_MAX_QUEUE,
        index_kwargs={"page_size": cfg.page_size, "buffer_pages": cfg.buffer_pages},
        registry=registry,
        label="bench-traffic",
        **kwargs,
    )


def _probe_work_pct(report: SLOReport) -> float:
    """Probe executions per unique probe, as a percentage, over the run.

    The router's per-batch accounting is summed by the driver.  A unique
    probe may execute on several shards, so 100% is the floor only with
    perfect extent pruning; dedup, pruning, covering and the probe cache
    all push this *down*, which is what makes it a lower-is-better gate
    metric — losing any of them inflates executions per unique probe.
    """
    probes = report.extra.get("probes", {})
    unique = float(probes.get("unique", 0))
    executed = float(probes.get("executed", 0))
    return 100.0 * executed / unique if unique else 0.0


def run_traffic(
    cfg: Optional[BenchConfig] = None,
    profile: Optional[TrafficProfile] = None,
    mode: str = "virtual",
    chaos: bool = False,
    degrade: Optional[str] = None,
    verbose: bool = False,
) -> Dict[str, Any]:
    """One traffic run; returns the schema-versioned payload (report inside)."""
    cfg = cfg if cfg is not None else BenchConfig()
    profile = profile if profile is not None else smoke_profile(seed=cfg.seed)
    registry = MetricsRegistry()
    start = time.time()
    report, probe_work = _execute(cfg, profile, registry, mode=mode, chaos=chaos, degrade=degrade)
    wall = time.time() - start
    if verbose:
        print(
            banner(
                f"traffic: {mode} clock, chaos={'on' if chaos else 'off'}"
                + (f", degrade={degrade}" if degrade else "")
            )
        )
        print(report.render())
    return {
        "schema_version": TRAFFIC_SCHEMA_VERSION,
        "kind": "bench-traffic",
        "metadata": run_metadata(
            cfg,
            wall_time_s=wall,
            extra={"mode": mode, "chaos": chaos, "degrade": degrade or "off"},
        ),
        "probe_work_pct": round(probe_work, 2),
        "report": report.to_dict(),
    }


def _execute(
    cfg: BenchConfig,
    profile: TrafficProfile,
    registry: MetricsRegistry,
    mode: str,
    chaos: bool,
    degrade: Optional[str] = None,
) -> Tuple[SLOReport, float]:
    objects = uniform_boxes(
        cfg.n, dims=profile.dims, avg_side_fraction=cfg.avg_side_fraction, seed=cfg.seed
    )
    with _make_cluster(cfg, registry, chaos, degrade) as cluster:
        cluster.bulk_load(objects)
        generator = LoadGenerator(cluster, profile, initial_objects=objects, registry=registry)
        report = generator.run(mode=mode)
        return report, _probe_work_pct(report)


def traffic_experiment(cfg: BenchConfig, verbose: bool = True) -> List[Tuple[str, float]]:
    """The CLI-table shape of :func:`run_traffic` (virtual clock, no chaos)."""
    payload = run_traffic(cfg, verbose=verbose)
    report = payload["report"]
    rows: List[Tuple[str, float]] = [
        ("offered", report["totals"]["offered"]),
        ("completed", report["totals"]["completed"]),
        ("sheds", report["totals"]["sheds"]),
        ("errors", report["totals"]["errors"]),
        ("throughput_ops_s", round(report["totals"]["throughput_ops_s"], 1)),
        ("checks_failed", report["checks"]["failed"]),
        ("probe_work_pct", payload["probe_work_pct"]),
    ]
    return rows


def traffic_smoke_metrics(cfg: BenchConfig, verbose: bool = False) -> Dict[str, float]:
    """Lower-is-better gate metrics from one virtual-clock smoke traffic run.

    Deterministic by construction: the schedule is a pure function of the
    profile, execution is sequential, latencies are virtual.  The inverse
    throughput (``ms_per_op``) and steady-phase point p99 turn the two
    higher-is-better SLO numbers into gateable lower-is-better ones.
    """
    payload = run_traffic(cfg, verbose=verbose)
    report = payload["report"]
    scheduled = report["extra"]["scheduled"]
    totals = report["totals"]
    steady_point = report["phases"]["steady"]["ops"].get("point", {})
    throughput = totals["throughput_ops_s"]
    return {
        "traffic.scheduled.point": float(scheduled["point"]),
        "traffic.scheduled.batch": float(scheduled["batch"]),
        "traffic.scheduled.insert": float(scheduled["insert"]),
        "traffic.scheduled.delete": float(scheduled["delete"]),
        "traffic.sheds": float(totals["sheds"]),
        "traffic.errors": float(totals["errors"]),
        "traffic.check_failures": float(report["checks"]["failed"]),
        "traffic.probe_work_pct": float(payload["probe_work_pct"]),
        "traffic.steady.point.p99_ms": float(steady_point.get("p99_ms", 0.0)),
        # Throughput is higher-is-better; the gate wants lower-is-better,
        # so pin its inverse: virtual milliseconds per completed op.
        "traffic.ms_per_op": round(1000.0 / throughput, 4) if throughput else 0.0,
    }


__all__ = [
    "TRAFFIC_SCHEMA_VERSION",
    "run_traffic",
    "traffic_experiment",
    "traffic_smoke_metrics",
]
