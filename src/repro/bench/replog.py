"""Replication-log experiment: what log-shipped recovery costs, measured.

Four deterministic costs (seeded workload, simulated disk — bit-stable
across runs, so they gate in the smoke baseline):

* **log bytes per op** — segment bytes appended per logged mutation,
  CRC framing included: the steady-state disk tax of shipping the
  logical stream;
* **checkpoint bytes** — the size of one folded-state snapshot; with the
  signed-multiset encoding this tracks *live identities*, not log
  length, which is why checkpoint + tail beats replaying history;
* **catch-up tail records** — how much log a member restored from the
  newest checkpoint actually replays: the knob ``checkpoint()``
  frequency buys down;
* **catch-up write cost** — page writes of a checkpoint + tail restore
  (one bulk load of the folded state) as a percentage of a full per-op
  rebuild's page writes: the headline reason revival is cheap.

Two wall-clock rows ride along for the CLI table only (never gated):
**tail-replay throughput** — records/s folding the whole log from LSN 1 —
and **catch-up speedup** — restore wall-clock vs. the per-op rebuild.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, List, Tuple

from ..core.aggregator import BoxSumIndex
from ..obs import MetricsRegistry
from ..replog import ReplicationLog
from ..replog.records import BulkLoadOp, DeleteOp, InsertOp, SetMetaOp, decode_op
from ..service import QueryService
from ..workloads import clustered_boxes
from .config import BenchConfig
from .report import banner, format_table

#: (metric, value, unit, note)
Row = Tuple[str, float, str, str]


def _make_service(cfg: BenchConfig, registry: MetricsRegistry) -> QueryService:
    index = BoxSumIndex(
        cfg.dims,
        backend="ba",
        page_size=cfg.page_size,
        buffer_pages=cfg.buffer_pages,
    )
    return QueryService(index, registry=registry)


def _page_writes(service: QueryService) -> int:
    return service.index.storage.counter.writes


def _rebuild_per_op(cfg: BenchConfig, replog: ReplicationLog) -> Tuple[QueryService, float]:
    """Replay every log record through the mutation API, one op at a time.

    This is what recovery costs *without* checkpoints: the per-op path an
    operator rebuilding a member by hand (or naive replication replay)
    pays, and the baseline the checkpoint + bulk-load restore is gated
    against.  Returns the rebuilt service and the wall time in seconds.
    """
    service = _make_service(cfg, MetricsRegistry())
    start = time.perf_counter()
    for _lsn, kind, payload in replog.log.records():
        op = decode_op(kind, payload)
        if isinstance(op, InsertOp):
            service.insert(op.box, op.value)
        elif isinstance(op, DeleteOp):
            service.delete(op.box, op.value)
        elif isinstance(op, BulkLoadOp):
            service.bulk_load(op.objects)
        elif isinstance(op, SetMetaOp):
            service.set_meta(op.key, op.blob)
    return service, time.perf_counter() - start


def _run(cfg: BenchConfig, directory: str) -> List[Row]:
    registry = MetricsRegistry()
    replog = ReplicationLog(directory, registry=registry, label="bench-replog")
    primary = _make_service(cfg, registry)
    primary.oplog = replog
    rebuilt = None
    restored = None
    try:
        # Ship the whole build through the log, one record per mutation —
        # the shape catch-up actually replays (no bulk-load shortcut).
        objects = clustered_boxes(
            cfg.n, dims=cfg.dims, avg_side_fraction=cfg.avg_side_fraction, seed=cfg.seed
        )
        for i, (box, value) in enumerate(objects):
            primary.insert(box, value)
            if i % 10 == 9:  # churn: every 10th identity dies again
                primary.delete(*objects[i - 5])
        ops_before_checkpoint = replog.head_lsn

        start = time.perf_counter()
        primary.checkpoint()
        checkpoint_s = time.perf_counter() - start

        # The tail a laggard replays: mutations shipped after the snapshot.
        tail_target = max(32, cfg.queries * 2)
        for box, value in clustered_boxes(
            tail_target, dims=cfg.dims, avg_side_fraction=0.02, seed=cfg.seed + 1
        ):
            primary.insert(box, value)

        stats = replog.stats()
        log_bytes_per_op = stats["log_bytes"] / replog.head_lsn

        # Tail-replay throughput: fold the entire log from LSN 1 in memory.
        start = time.perf_counter()
        replog.state_at(use_checkpoint=False)
        fold_s = time.perf_counter() - start
        replay_krec_s = replog.head_lsn / fold_s / 1000.0 if fold_s else 0.0

        # Catch-up: checkpoint + tail into a cold member, bulk-load path.
        restored = _make_service(cfg, MetricsRegistry())
        start = time.perf_counter()
        report = replog.restore_into(restored)
        catchup_s = time.perf_counter() - start
        catchup_writes = _page_writes(restored)

        # Full rebuild: the same history through the per-op mutation path.
        rebuilt, rebuild_s = _rebuild_per_op(cfg, replog)
        rebuild_writes = _page_writes(rebuilt)
        write_pct = 100.0 * catchup_writes / rebuild_writes if rebuild_writes else 0.0

        return [
            (
                "log_bytes_per_op",
                round(log_bytes_per_op, 1),
                "B",
                f"segment bytes per logged mutation over {replog.head_lsn} records",
            ),
            (
                "checkpoint_bytes",
                stats["checkpoint_bytes"],
                "B",
                f"folded snapshot at LSN {ops_before_checkpoint} "
                f"({int(stats['state_identities'])} live identities)",
            ),
            (
                "catchup_tail_records",
                float(report.tail_records),
                "records",
                "log replayed past the checkpoint on catch-up",
            ),
            (
                "catchup_write_pct",
                round(write_pct, 1),
                "%",
                f"restore page writes {catchup_writes} / per-op rebuild {rebuild_writes}",
            ),
            (
                "tail_replay_krec_s",
                round(replay_krec_s, 1),
                "krec/s",
                "full-log fold rate from LSN 1 (wall clock, not gated)",
            ),
            (
                "catchup_speedup_wall",
                round(rebuild_s / catchup_s, 1) if catchup_s else 0.0,
                "x",
                f"rebuild {1000 * rebuild_s:.0f}ms / catch-up {1000 * catchup_s:.0f}ms, "
                f"checkpoint {1000 * checkpoint_s:.1f}ms (wall clock, not gated)",
            ),
        ]
    finally:
        for service in (primary, restored, rebuilt):
            if service is not None:
                service.close()
        replog.close()


def replog_experiment(cfg: BenchConfig, verbose: bool = True) -> List[Row]:
    """Measure the four deterministic log-shipping costs plus wall-clock rows."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-replog-") as tmp:
        rows = _run(cfg, os.path.join(tmp, "replog"))
    if verbose:
        print(banner(f"replog: log-shipped recovery costs (n={cfg.n}, d={cfg.dims})"))
        print(
            format_table(
                ["metric", "value", "unit", "note"],
                [(name, value, unit, note) for name, value, unit, note in rows],
            )
        )
    return rows


def replog_smoke_metrics(cfg: BenchConfig, verbose: bool = False) -> Dict[str, float]:
    """Lower-is-better gate metrics for the smoke slice.

    Only the deterministic rows are exported — replay throughput and the
    catch-up speedup are wall clock and would flake CI.
    """
    rows = replog_experiment(cfg, verbose=verbose)
    deterministic = {
        "log_bytes_per_op",
        "checkpoint_bytes",
        "catchup_tail_records",
        "catchup_write_pct",
    }
    return {
        f"replog.{name}": float(value)
        for name, value, _unit, _note in rows
        if name in deterministic
    }
