"""Index construction and measurement helpers shared by the experiments."""

from __future__ import annotations

import time
from typing import Dict, Sequence, Tuple

from ..core.aggregator import BoxSumIndex, FunctionalBoxSumIndex
from ..core.geometry import Box
from ..storage import StorageContext
from .config import BenchConfig

#: Display name -> facade backend, for the four Figure 9 contenders plus R*.
METHOD_BACKENDS: Dict[str, str] = {
    "aR": "ar",
    "ECDFu": "ecdf-bu",
    "ECDFq": "ecdf-bq",
    "BAT": "ba",
    "R*": "rstar",
}


def fresh_storage(cfg: BenchConfig) -> StorageContext:
    """A storage context with the experiment's page size and buffer."""
    return StorageContext(page_size=cfg.page_size, buffer_pages=cfg.buffer_pages)


def build_boxsum_index(
    method: str, objects: Sequence[Tuple[Box, float]], cfg: BenchConfig
) -> BoxSumIndex:
    """Build one contender over its own simulated disk (bulk-loaded)."""
    index = BoxSumIndex(
        cfg.dims,
        backend=METHOD_BACKENDS[method],
        storage=fresh_storage(cfg),
    )
    index.bulk_load(objects)
    return index


def build_functional_index(
    method: str, objects, degree: int, cfg: BenchConfig
) -> FunctionalBoxSumIndex:
    """Build a functional contender (``BAT`` or ``aR``) for Figure 9c."""
    index = FunctionalBoxSumIndex(
        cfg.dims,
        backend=METHOD_BACKENDS[method],
        max_degree=degree,
        storage=fresh_storage(cfg),
    )
    index.bulk_load(objects)
    return index


def measure_query_batch(index, queries: Sequence[Box], functional: bool = False):
    """Run a query batch from a cold cache; returns (total I/Os, CPU seconds).

    The batch shares the LRU buffer across queries, as in the paper's runs;
    only the start state is cold.
    """
    storage = index.storage
    storage.cold_cache()
    storage.reset_stats()
    start = time.process_time()
    if functional:
        for query in queries:
            index.functional_box_sum(query)
    else:
        for query in queries:
            index.box_sum(query)
    cpu = time.process_time() - start
    return storage.counter.total_ios, cpu


def measure_insert_batch(index, objects: Sequence[Tuple[Box, float]]):
    """Insert a batch from a cold cache; returns (total I/Os, page accesses)."""
    storage = index.storage
    storage.cold_cache()
    storage.reset_stats()
    for box, value in objects:
        index.insert(box, value)
    return storage.counter.total_ios, storage.counter.accesses
