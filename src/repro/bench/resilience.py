"""Resilience experiment: what fault tolerance costs, measured.

Four deterministic costs (seeded chaos, sequential fan-out, simulated
disk — bit-stable across runs, so they gate in the smoke baseline):

* **replication write amplification** — page writes across every replica
  group member as a percentage of primary-only writes; synchronous
  K-replication costs ``~(1+K)×`` on the mutation path, and this measures
  the real multiplier through the page layer (bulk load + online inserts);
* **failover attempt overhead** — serve attempts as a percentage of
  successful serves under seeded primary chaos: how much extra work
  failover does to hide a flaky member (100 = no faults, 130 ≈ every
  third serve needed one retry);
* **breaker containment** — how many attempts a *dead* primary absorbs
  across a fixed workload before its circuit breaker stops routing to it;
  without a breaker this equals the workload size, with one it flattens to
  roughly ``min_requests`` plus the half-open probes;
* **degraded coverage** — with one shard of a kd-partitioned cluster down
  and ``partial_results`` opted in, the percentage of hotspot queries
  whose :class:`~repro.resilience.partial.PartialResult` answer is *not*
  provably exact (tainted by the dead shard's extent) — the observable
  blast radius of a single-shard outage.

One wall-clock experiment rides along for the CLI table only (never
gated): **hedged-read tail latency** — p50/p95 of a replicated group
serving with a delay-chaotic primary, with and without hedging.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..core.aggregator import BoxSumIndex
from ..obs import MetricsRegistry
from ..resilience import (
    BreakerConfig,
    ChaosPlan,
    FaultyQueryService,
    PartialResult,
    ReplicaGroup,
    ResilienceConfig,
    chaos_member_wrapper,
)
from ..service import QueryService
from ..shard import ShardedService
from ..workloads import clustered_boxes, hotspot_boxes
from .config import BenchConfig
from .report import banner, format_table

#: (metric, value, unit, note)
Row = Tuple[str, float, str, str]


def _storage_factory(cfg: BenchConfig):
    def factory(sid: int, member: int) -> BoxSumIndex:
        return BoxSumIndex(
            cfg.dims,
            backend="ba",
            page_size=cfg.page_size,
            buffer_pages=cfg.buffer_pages,
        )

    return factory


def _write_amplification(cfg: BenchConfig, objects, replicas: int = 1) -> float:
    """Member page writes as a percentage of primary-only page writes."""
    with ShardedService(
        cfg.dims,
        2,
        partitioner="kd",
        index_factory=_storage_factory(cfg),
        workers=0,
        replicas=replicas,
        registry=MetricsRegistry(),
        label="bench-resilience-wamp",
    ) as cluster:
        cluster.bulk_load(objects)
        extra = clustered_boxes(
            max(16, cfg.queries), dims=cfg.dims, avg_side_fraction=0.02, seed=cfg.seed + 1
        )
        for box, value in extra:
            cluster.insert(box, value)
        primary_writes = 0
        total_writes = 0
        for group in cluster.groups:
            for mid, member in enumerate(group.members):
                writes = member.index.storage.counter.writes
                total_writes += writes
                if mid == 0:
                    primary_writes += writes
    return 100.0 * total_writes / primary_writes if primary_writes else 0.0


def _failover_overhead(cfg: BenchConfig, objects, queries) -> float:
    """Attempts per successful serve (as a pct) under seeded primary chaos."""
    with ShardedService(
        cfg.dims,
        2,
        partitioner="kd",
        workers=0,
        replicas=1,
        registry=MetricsRegistry(),
        service_wrapper=chaos_member_wrapper(ChaosPlan(seed=cfg.seed, raise_rate=0.3)),
        resilience=ResilienceConfig(max_attempts=4, backoff_base_s=0.0, seed=cfg.seed),
        label="bench-resilience-failover",
    ) as cluster:
        cluster.bulk_load(objects)
        for query in queries:
            cluster.box_sum(query)
        attempts = sum(g["attempts"] for g in cluster.resilience_stats())
        failed = sum(g["failures"] + g["timeouts"] for g in cluster.resilience_stats())
    successes = attempts - failed
    return 100.0 * attempts / successes if successes else 0.0


def _breaker_containment(cfg: BenchConfig, objects, queries) -> float:
    """Attempts a dead primary absorbs across the workload, breaker on."""
    primaries: List[FaultyQueryService] = []

    def wrapper(service, sid: int, member: int):
        if member != 0:
            return service
        faulty = FaultyQueryService(service, ChaosPlan(raise_rate=1.0).with_seed(cfg.seed + sid))
        primaries.append(faulty)
        return faulty

    with ShardedService(
        cfg.dims,
        2,
        partitioner="kd",
        workers=0,
        replicas=1,
        registry=MetricsRegistry(),
        service_wrapper=wrapper,
        resilience=ResilienceConfig(
            max_attempts=3,
            backoff_base_s=0.0,
            breaker=BreakerConfig(window=8, min_requests=4, cooldown_s=3600.0),
            seed=cfg.seed,
        ),
        label="bench-resilience-breaker",
    ) as cluster:
        cluster.bulk_load(objects)
        for query in queries:
            cluster.box_sum(query)
        # bulk_load counts once per primary; only serve-path calls matter.
        calls = sum(p.faults["raise"] for p in primaries)
    return float(calls)


def _degraded_coverage(cfg: BenchConfig, objects, queries) -> float:
    """Pct of hotspot queries a one-shard outage taints (not provably exact)."""

    def dead_wrapper(service, sid: int, member: int):
        if sid != 0:
            return service
        return FaultyQueryService(service, ChaosPlan(raise_rate=1.0).with_seed(cfg.seed + member))

    with ShardedService(
        cfg.dims,
        4,
        partitioner="kd",
        workers=0,
        registry=MetricsRegistry(),
        service_wrapper=dead_wrapper,
        resilience=ResilienceConfig(
            max_attempts=2, backoff_base_s=0.0, partial_results=True, seed=cfg.seed
        ),
        label="bench-resilience-partial",
    ) as cluster:
        cluster.bulk_load(objects)
        outcome = cluster.batch(queries)
        if not isinstance(outcome, PartialResult):
            return 0.0  # the dead shard pruned everywhere: outage invisible
        tainted = len(queries) - len(outcome.exact_indices())
    return 100.0 * tainted / len(queries) if queries else 0.0


def _hedged_tail(cfg: BenchConfig, objects, queries) -> Tuple[float, float, float, float]:
    """(p50, p95) serve latency in ms without and with hedging (wall clock)."""

    def build_group(hedge: bool) -> ReplicaGroup:
        members = []
        for member in range(2):
            index = BoxSumIndex(cfg.dims, backend="ba")
            index.bulk_load(objects)
            service = QueryService(index, registry=MetricsRegistry())
            if member == 0:
                service = FaultyQueryService(
                    service,
                    ChaosPlan(seed=cfg.seed, delay_rate=0.3, delay_s=0.01),
                )
            members.append(service)
        return ReplicaGroup(
            0,
            members,
            config=ResilienceConfig(
                backoff_base_s=0.0,
                hedge_delay_s=0.002 if hedge else None,
                seed=cfg.seed,
            ),
            registry=MetricsRegistry(),
        )

    def percentile(samples: List[float], q: float) -> float:
        ordered = sorted(samples)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    out: List[float] = []
    for hedge in (False, True):
        group = build_group(hedge)
        try:
            latencies = []
            for query in queries:
                start = time.perf_counter()
                group.box_sum(query)
                latencies.append(1000.0 * (time.perf_counter() - start))
        finally:
            group.close()
        out.append(percentile(latencies, 0.50))
        out.append(percentile(latencies, 0.95))
    return out[0], out[1], out[2], out[3]


def resilience_experiment(cfg: BenchConfig, verbose: bool = True) -> List[Row]:
    """Measure the four deterministic resilience costs plus the hedging tail."""
    objects = clustered_boxes(
        cfg.n, dims=cfg.dims, avg_side_fraction=cfg.avg_side_fraction, seed=cfg.seed
    )
    queries = hotspot_boxes(
        cfg.queries, qbs_fraction=0.01, dims=cfg.dims, hotspot=0.3, seed=cfg.seed
    )

    rows: List[Row] = [
        (
            "write_amplification_pct",
            round(_write_amplification(cfg, objects), 1),
            "%",
            "member page writes / primary-only (1 replica, sync fan-out)",
        ),
        (
            "failover_attempt_overhead_pct",
            round(_failover_overhead(cfg, objects, queries), 1),
            "%",
            "serve attempts / successes at 30% primary fault rate",
        ),
        (
            "breaker_dead_primary_attempts",
            _breaker_containment(cfg, objects, queries),
            "attempts",
            f"dead-primary probes over {len(queries)} queries (breaker on)",
        ),
        (
            "degraded_tainted_query_pct",
            round(_degraded_coverage(cfg, objects, queries), 1),
            "%",
            "hotspot queries not provably exact with 1/4 shards down",
        ),
    ]
    p50, p95, hp50, hp95 = _hedged_tail(cfg, objects, queries)
    rows.append(
        (
            "hedged_tail_p95_ms",
            round(hp95, 3),
            "ms",
            f"p50 {p50:.3f}->{hp50:.3f}, p95 {p95:.3f}->{hp95:.3f} (wall clock, not gated)",
        )
    )

    if verbose:
        print(banner(f"resilience: failure-handling costs (n={cfg.n}, d={cfg.dims})"))
        print(
            format_table(
                ["metric", "value", "unit", "note"],
                [(name, value, unit, note) for name, value, unit, note in rows],
            )
        )
    return rows


def resilience_smoke_metrics(cfg: BenchConfig, verbose: bool = False) -> Dict[str, float]:
    """Lower-is-better gate metrics for the smoke slice.

    Only the deterministic rows are exported — the wall-clock hedging tail
    stays out of the gate (timing noise would flake CI).
    """
    rows = resilience_experiment(cfg, verbose=verbose)
    deterministic = {
        "write_amplification_pct",
        "failover_attempt_overhead_pct",
        "breaker_dead_primary_attempts",
        "degraded_tainted_query_pct",
    }
    return {
        f"resilience.{name}": float(value)
        for name, value, _unit, _note in rows
        if name in deterministic
    }
