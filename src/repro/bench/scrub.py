"""Operational scrubbing: walk durable shard files, report every bad slot.

Two entry points behind ``python -m repro.bench scrub``:

* :func:`scrub_paths` — the operator tool: offline-checksum the given
  pager files (every slot, header included) and print one
  :class:`~repro.storage.filepager.ScrubReport` per file.  Offline means
  the file is never *opened* as a pager — a corrupt header cannot stop
  the walk, and a live owner's cache is never touched.
* :func:`scrub_experiment` — the self-contained proof: build a small
  durable shard set, flip one bit on disk in one shard, scrub everything
  and show exactly one corrupt slot found (and zero on the clean
  shards).  Deterministic, so it doubles as the CI-facing demo.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import List, Sequence, Tuple

from ..core.errors import PageCorruptionError
from ..durable import DurableAggIndex
from ..storage.codec import unseal_page
from ..storage.filepager import _MAGIC, ScrubReport
from .config import BenchConfig
from .report import banner, format_table

#: (metric, value, unit, note)
Row = Tuple[str, float, str, str]


def scrub_file(path: str) -> ScrubReport:
    """Offline scrub: checksum every slot of a pager file, never raise.

    Reads the page size from the file header and walks the file slot by
    slot — every materialized slot (the pager keeps the file dense) was
    written through :func:`~repro.storage.codec.seal_page`, so each must
    unseal cleanly.  The file is only read; a live pager owning it is
    unaffected (scrub its object instead for read-your-writes:
    :meth:`~repro.storage.filepager.FilePager.scrub`).
    """
    errors: List[Tuple[object, str]] = []
    with open(path, "rb") as f:
        head = f.read(12)
        if len(head) < 12 or head[:8] != _MAGIC:
            return ScrubReport(
                path, 1, 1, (("header", "not a pager file (bad magic)"),)
            )
        page_size = int.from_bytes(head[8:12], "little")
        f.seek(0)
        scanned = 0
        slot = 0
        while True:
            data = f.read(page_size)
            if not data:
                break
            scanned += 1
            label: object = "header" if slot == 0 else slot - 1
            if len(data) < page_size:
                errors.append((label, f"slot {label} truncated on disk"))
            else:
                try:
                    unseal_page(data, label)
                except PageCorruptionError as exc:
                    errors.append((label, str(exc)))
            slot += 1
    return ScrubReport(path, scanned, len(errors), tuple(errors))


def scrub_paths(paths: Sequence[str], verbose: bool = True) -> List[ScrubReport]:
    """Scrub each pager file; print its report; return them all."""
    from ..inspect import dump_scrub

    reports = []
    for path in paths:
        report = scrub_file(path)
        reports.append(report)
        if verbose:
            print(dump_scrub(report))
    return reports


def _flip_bit(path: str, offset: int) -> None:
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0x01]))


def scrub_experiment(cfg: BenchConfig, verbose: bool = True) -> List[Row]:
    """Build durable shards, corrupt one bit, prove the scrub finds it."""
    shards = 3
    keys_per_shard = max(64, cfg.n // 64)
    tmp = tempfile.mkdtemp(prefix="repro-scrub-")
    try:
        paths = []
        for sid in range(shards):
            path = os.path.join(tmp, f"shard-{sid:04d}.pages")
            with DurableAggIndex.open(path, page_size=512, buffer_pages=None) as index:
                for i in range(keys_per_shard):
                    # Seeded only by structure: the same keys land in the
                    # same slots every run, so the flipped bit below hits
                    # a deterministic page.
                    index.insert(float((i * 37 + sid) % keys_per_shard), 1.0)
                index.checkpoint()
            paths.append(path)
        clean = scrub_paths(paths, verbose=False)
        clean_slots = sum(r.scanned for r in clean)
        clean_corrupt = sum(r.corrupt for r in clean)
        # One bit, mid-file: offset 3 pages in + 100 bytes lands inside a
        # data slot's body on every shard this size.
        _flip_bit(paths[1], 3 * 512 + 100)
        damaged = scrub_paths(paths, verbose=False)
        corrupt_total = sum(r.corrupt for r in damaged)
        corrupt_files = sum(1 for r in damaged if not r.clean)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    rows: List[Row] = [
        ("shards_scrubbed", float(shards), "files", "durable 1-d shard files"),
        ("slots_scanned", float(clean_slots), "slots", "header + live pages, per pass"),
        ("corrupt_before", float(clean_corrupt), "slots", "fresh checkpointed shards"),
        ("corrupt_found", float(corrupt_total), "slots", "after flipping 1 bit in shard 1"),
        ("files_flagged", float(corrupt_files), "files", "shards the scrub flagged"),
    ]
    if verbose:
        print(banner(f"scrub: offline slot checksums over {shards} durable shards"))
        print(
            format_table(
                ["metric", "value", "unit", "note"],
                [(name, value, unit, note) for name, value, unit, note in rows],
            )
        )
    return rows


__all__ = ["scrub_file", "scrub_paths", "scrub_experiment"]
