"""Serving experiment: corner-sharing batches through the query service.

A dashboard-style workload (:func:`repro.workloads.hot_query_boxes` — a
small pool of distinct boxes drawn with Zipf popularity) is served twice
through a :class:`repro.service.QueryService` over a BA-tree:

* the **cold** batch measures the batch planner's corner sharing — how many
  of the ``2^d`` signed probes per query (Theorem 2) collapse onto shared
  ``(tree, point)`` identities across the batch;
* the **warm** repeat of the same batch measures the epoch-tagged result
  cache — every query should come straight out of the cache with zero
  probes executed.

Every served answer is cross-checked against :class:`NaiveBoxSum`, so the
experiment doubles as an end-to-end correctness gate.  All reported numbers
are deterministic (seeded RNG, counted probes — never wall time).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..core.aggregator import BoxSumIndex
from ..core.errors import ReproError
from ..core.naive import NaiveBoxSum
from ..obs import MetricsRegistry
from ..service import QueryService
from ..workloads import clustered_boxes, hot_query_boxes
from .config import BenchConfig
from .report import banner, format_table

#: (phase, queries, planned, unique, executed, result_hits)
Row = Tuple[str, int, int, int, int, int]


def _check_answers(phase: str, queries, answers, oracle: NaiveBoxSum) -> None:
    for query, got in zip(queries, answers):
        want = oracle.box_sum(query)
        if not math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9):
            raise ReproError(
                f"service answer mismatch ({phase}): {got!r} != naive {want!r} "
                f"for {query}"
            )


def service_batch_experiment(cfg: BenchConfig, verbose: bool = True) -> List[Row]:
    """Cold + warm service batches over a BA-tree, cross-checked vs. naive."""
    objects = clustered_boxes(
        cfg.n,
        dims=cfg.dims,
        avg_side_fraction=cfg.avg_side_fraction,
        seed=cfg.seed,
    )
    index = BoxSumIndex(
        cfg.dims,
        backend="ba",
        page_size=cfg.page_size,
        buffer_pages=cfg.buffer_pages,
    )
    index.bulk_load(objects)
    oracle = NaiveBoxSum(cfg.dims)
    for box, value in objects:
        oracle.insert(box, value)

    queries = hot_query_boxes(
        cfg.queries,
        qbs_fraction=0.01,
        dims=cfg.dims,
        pool_size=max(2, cfg.queries // 3),
        seed=cfg.seed,
    )

    rows: List[Row] = []
    with QueryService(index, registry=MetricsRegistry(), label="bench") as service:
        for phase in ("cold", "warm"):
            result = service.batch(queries)
            _check_answers(phase, queries, result.results, oracle)
            rows.append(
                (
                    phase,
                    len(queries),
                    result.probes_planned,
                    result.probes_unique,
                    result.probes_executed,
                    result.result_cache_hits,
                )
            )

    if verbose:
        print(banner(f"service: corner-sharing batch (n={cfg.n}, d={cfg.dims})"))
        print(
            format_table(
                ["phase", "queries", "planned", "unique", "executed", "result hits"],
                rows,
            )
        )
        cold = rows[0]
        ratio = cold[2] / cold[3] if cold[3] else 1.0
        print(f"cold dedup ratio (planned/unique): {ratio:.2f}x")
    return rows


def service_smoke_metrics(cfg: BenchConfig, verbose: bool = False) -> Dict[str, float]:
    """Lower-is-better gate metrics for the smoke slice.

    Dedup is exported as ``probe_overhead_pct`` — unique probes as a
    percentage of planned — so a *lost* dedup (ratio collapsing toward 1.0)
    pushes the metric up toward 100 and trips the lower-is-better gate.
    """
    rows = service_batch_experiment(cfg, verbose=verbose)
    by_phase = {row[0]: row for row in rows}
    cold, warm = by_phase["cold"], by_phase["warm"]
    overhead_pct = 100.0 * cold[3] / cold[2] if cold[2] else 100.0
    return {
        "service.cold.probes_planned": float(cold[2]),
        "service.cold.probes_executed": float(cold[4]),
        "service.cold.probe_overhead_pct": round(overhead_pct, 2),
        "service.warm.probes_executed": float(warm[4]),
        "service.warm.result_misses": float(warm[1] - warm[5]),
    }
