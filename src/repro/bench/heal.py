"""Self-healing soak: seeded chaos in, converged-and-exact cluster out.

The proof the supervisor exists for: a replicated cluster under three
concurrent seeded fault streams —

* **kills** — a replica's worker "process" dies between calls
  (:class:`~repro.resilience.chaos.CrashableService`), so the next
  mutation poisons it and the healer must restart + log-restore it;
* **silent drops** — a replica swallows mutations while acking them
  (:class:`~repro.resilience.chaos.LostWriteService`), the failure only
  the stream-digest audit can see;
* **read faults** — the primary raises (and stalls, via seeded
  ``delay_ms`` draws) on a seeded schedule
  (:class:`~repro.resilience.chaos.FaultyQueryService`), tripping its
  breaker; the healer's probes must walk it back closed —

while every round's queries are compared ``==`` against an unsharded
oracle (unit values, so float addition order cannot perturb a bit).  The
run must end with ``inexact == 0``, every shard group converged, and —
once chaos stops — fully healthy within the repair budget, with **zero
operator calls**: the supervisor's tick is the only recovery driver.

``run_heal_soak`` is the reusable runner (the ``heal``-marked test in
``tests/heal`` drives the same loop); :func:`heal_experiment` renders it
as a bench table.  The supervisor runs on a virtual clock, so the soak is
deterministic and fast.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from typing import Dict, List, Tuple

from ..core.geometry import Box
from ..heal import HealPolicy, HealSupervisor
from ..obs import MetricsRegistry
from ..resilience import (
    BreakerConfig,
    ChaosPlan,
    CrashableService,
    FaultyQueryService,
    LostWriteService,
    ResilienceConfig,
)
from ..shard import ShardedService
from .config import BenchConfig
from .report import banner, format_table

#: (metric, value, unit, note)
Row = Tuple[str, float, str, str]


class VirtualClock:
    """A monotonic clock whose ``sleep`` just advances it (no waiting)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


def _random_box(rng: random.Random, dims: int, span: float = 100.0, side: float = 12.0) -> Box:
    low = [rng.uniform(0.0, span - side) for _ in range(dims)]
    high = [lo + rng.uniform(0.5, side) for lo in low]
    return Box(low, high)


def run_heal_soak(
    *,
    seed: int = 0,
    shards: int = 2,
    dims: int = 2,
    rounds: int = 12,
    mutations_per_round: int = 16,
    queries_per_round: int = 8,
    budget_s: float = 30.0,
) -> Dict[str, float]:
    """One seeded chaos soak; returns the outcome counters.

    Keys: ``inexact`` (exact-path answers that differed from the oracle —
    must be 0), ``kills`` / ``drops`` / ``read_faults`` (injected),
    ``repairs`` / ``quarantines`` / ``ticks`` (supervisor work),
    ``converged`` / ``fully_healthy`` (1.0 = yes, after the final
    chaos-off convergence run).
    """
    rng = random.Random(seed)
    registry = MetricsRegistry()
    crashables: List[CrashableService] = []
    droppers: List[LostWriteService] = []
    faulties: List[FaultyQueryService] = []

    def make_fresh():
        from ..core.aggregator import BoxSumIndex
        from ..service import QueryService

        return QueryService(BoxSumIndex(dims, backend="ba"), registry=registry)

    def wrapper(service, sid: int, member: int):
        if member == 0:
            faulty = FaultyQueryService(
                service,
                ChaosPlan(
                    seed=seed + 101 * sid,
                    raise_rate=0.4,
                    delay_rate=0.1,
                    delay_ms=(0.0, 1.0),
                ),
            )
            faulty.enabled = False
            faulties.append(faulty)
            return faulty
        if member == 1:
            crashable = CrashableService(make_fresh, initial=service)
            crashables.append(crashable)
            return crashable
        dropper = LostWriteService(service, drop_rate=1.0, seed=seed + 211 * sid)
        dropper.enabled = False
        droppers.append(dropper)
        return dropper

    clock = VirtualClock()
    tmp = tempfile.mkdtemp(prefix="repro-heal-soak-")
    oracle: List[Tuple[Box, float]] = []
    inexact = 0
    kills = drops = 0
    try:
        cluster = ShardedService(
            dims,
            shards,
            replicas=2,
            workers=0,
            partitioner="kd",
            replog_dir=tmp,
            registry=registry,
            resilience=ResilienceConfig(
                max_attempts=4,
                backoff_base_s=0.0,
                breaker=BreakerConfig(window=8, min_requests=4, cooldown_s=0.0),
                seed=seed,
            ),
            service_wrapper=wrapper,
            label="heal-soak",
        )
        supervisor = HealSupervisor(
            cluster,
            HealPolicy(
                tick_interval_s=0.01,
                audit_every_ticks=1,
                audit_probes=4,
                backoff_base_s=0.0,
                max_repair_attempts=6,
                failure_window_s=1000.0,
                repair_budget_s=budget_s,
                auto_start=False,
                seed=seed,
            ),
            registry=registry,
            label="heal-soak",
            clock=clock,
            sleep=clock.sleep,
        )
        with cluster:
            for round_no in range(rounds):
                # Chaos first: arm this round's fault windows.
                if round_no % 3 == 1:
                    victim = rng.randrange(len(crashables))
                    crashables[victim].kill()
                    kills += 1
                if round_no % 4 == 2:
                    dropper = droppers[rng.randrange(len(droppers))]
                    dropper.enabled = True
                for faulty in faulties:
                    faulty.enabled = round_no % 2 == 0
                # Mutate: cluster and oracle see the same stream.  Unit
                # values keep every sum an integer, so `==` is order-proof.
                for _ in range(mutations_per_round):
                    if oracle and rng.random() < 0.25:
                        box, value = oracle.pop(rng.randrange(len(oracle)))
                        cluster.delete(box, value)
                    else:
                        box = _random_box(rng, dims)
                        cluster.insert(box, 1.0)
                        oracle.append((box, 1.0))
                drops += sum(d.dropped for d in droppers)
                for dropper in droppers:
                    dropper.dropped = 0
                    dropper.enabled = False
                # Heal: the audit tick runs *before* the queries, so a
                # silently diverged member is poisoned before any read
                # could fail over onto it.
                supervisor.tick()
                # Verify: exact path vs oracle, bit for bit.
                for _ in range(queries_per_round):
                    query = _random_box(rng, dims, side=30.0)
                    expected = float(
                        sum(value for box, value in oracle if box.intersects(query))
                    )
                    if cluster.box_sum(query) != expected:
                        inexact += 1
            # Chaos off; the supervisor must converge on its own.
            for faulty in faulties:
                faulty.enabled = False
            report = supervisor.run_until_converged(budget_s)
            stats = supervisor.stats()
            read_faults = sum(f.faults["raise"] for f in faulties)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "inexact": float(inexact),
        "kills": float(kills),
        "drops": float(drops),
        "read_faults": float(read_faults),
        "diverged_caught": float(stats["diverged"]),
        "repairs": float(stats["repairs_ok"]),
        "quarantines": float(stats["quarantines"]),
        "ticks": float(stats["ticks"]),
        "converge_ticks": float(report.ticks),
        "converged": 1.0 if report.converged else 0.0,
        "fully_healthy": 1.0 if report.fully_healthy else 0.0,
    }


def heal_experiment(cfg: BenchConfig, verbose: bool = True) -> List[Row]:
    """Run the seeded soak and render the outcome as a table."""
    outcome = run_heal_soak(
        seed=cfg.seed,
        rounds=max(8, min(24, cfg.queries // 8)),
    )
    rows: List[Row] = [
        ("soak_inexact_answers", outcome["inexact"], "answers", "exact path vs oracle — must be 0"),
        ("faults_kills", outcome["kills"], "faults", "replica processes killed mid-soak"),
        ("faults_silent_drops", outcome["drops"], "faults", "mutations silently swallowed by a replica"),
        ("faults_read_raises", outcome["read_faults"], "faults", "primary read faults (breaker food)"),
        ("digest_divergence_caught", outcome["diverged_caught"], "members", "poisoned by the stream-digest audit"),
        ("repairs_completed", outcome["repairs"], "repairs", "restart/catch-up cycles the supervisor drove"),
        ("quarantines", outcome["quarantines"], "members", "crash-looped members (0 = all recoverable)"),
        ("converged", outcome["converged"], "bool", "no suspect/repairing members at the end"),
        ("fully_healthy", outcome["fully_healthy"], "bool", "every member back in rotation"),
        ("convergence_ticks", outcome["converge_ticks"], "ticks", "final chaos-off convergence run"),
    ]
    if verbose:
        print(banner("heal: self-healing soak under seeded chaos (virtual time)"))
        print(
            format_table(
                ["metric", "value", "unit", "note"],
                [(name, value, unit, note) for name, value, unit, note in rows],
            )
        )
    return rows


__all__ = ["VirtualClock", "run_heal_soak", "heal_experiment"]
