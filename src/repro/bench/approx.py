"""Approximate-tier experiment: what the bounded synopsis costs and buys.

``python -m repro.bench approx`` builds the :mod:`repro.approx` synopsis
over a seeded workload and measures it against the exact answers:

* **cells / build pages** — the synopsis footprint: grid cells across the
  2^d corner transforms and the page-count equivalent of its byte size
  (this is the whole point — a constant-size sketch of an n-object index);
* **probes per query** — always 2^d: one envelope probe per corner
  transform, independent of n;
* **bound width** — mean/max certified band width as a percentage of the
  workload's gross weight: how much certainty degraded answers give up;
* **actual error** — mean distance of the estimate from the exact answer,
  same scale: how good the polynomial fit is inside its band;
* **unsound** — queries whose exact answer escapes the certified band.
  This is pinned at zero in the smoke gate; any other value is a bug in
  the envelope derivation, not a tuning problem.

Everything here is deterministic under a fixed seed (pure arithmetic, no
clocks), so every row gates in the smoke baseline.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..approx import build_synopsis
from ..core.naive import NaiveBoxSum
from ..workloads import uniform_boxes
from .config import BenchConfig
from .report import banner, format_table

#: (metric, value, unit, note)
Row = Tuple[str, float, str, str]

#: Queries measured per run (side fraction spreads selectivities).
APPROX_QUERY_SIDE_FRACTION = 0.05


def run_approx(cfg: BenchConfig) -> List[Row]:
    """Build one synopsis, probe it, and compare against the exact oracle."""
    objects = uniform_boxes(
        cfg.n, dims=cfg.dims, avg_side_fraction=cfg.avg_side_fraction, seed=cfg.seed
    )
    oracle = NaiveBoxSum(cfg.dims)
    for box, value in objects:
        oracle.insert(box, value)
    synopsis = build_synopsis(
        [(box, value, 1) for box, value in objects], cfg.dims, epoch=0, version=len(objects)
    )

    queries = [
        box
        for box, _value in uniform_boxes(
            max(cfg.queries, 8),
            dims=cfg.dims,
            avg_side_fraction=APPROX_QUERY_SIDE_FRACTION,
            seed=cfg.seed + 1,
        )
    ]
    scale = sum(abs(value) for _box, value in objects) or 1.0
    widths: List[float] = []
    errors: List[float] = []
    unsound = 0
    for query in queries:
        bounded = synopsis.box_sum(query)
        exact = oracle.box_sum(query)
        widths.append(100.0 * bounded.width / scale)
        errors.append(100.0 * abs(bounded.estimate - exact) / scale)
        if not bounded.contains(exact):
            unsound += 1

    build_pages = math.ceil(synopsis.nbytes() / cfg.page_size)
    return [
        (
            "cells",
            float(synopsis.num_cells()),
            "cells",
            f"grid cells across {2**cfg.dims} corner transforms",
        ),
        (
            "build_pages",
            float(build_pages),
            "pages",
            f"synopsis bytes / page size ({synopsis.nbytes()} B @ {cfg.page_size} B pages)",
        ),
        (
            "probes_per_query",
            float(synopsis.probes_per_query),
            "probes",
            "one envelope probe per corner transform, independent of n",
        ),
        (
            "mean_width_pct",
            round(sum(widths) / len(widths), 4),
            "%",
            f"mean certified band width over {len(queries)} queries, vs gross weight",
        ),
        (
            "max_width_pct",
            round(max(widths), 4),
            "%",
            "widest certified band of the run",
        ),
        (
            "mean_err_pct",
            round(sum(errors) / len(errors), 4),
            "%",
            "mean |estimate - exact|, same scale (fit quality inside the band)",
        ),
        (
            "unsound",
            float(unsound),
            "queries",
            "exact answers outside the certified band (must be 0)",
        ),
    ]


def approx_experiment(cfg: BenchConfig, verbose: bool = True) -> List[Row]:
    """Measure the synopsis footprint, band width and soundness."""
    rows = run_approx(cfg)
    if verbose:
        print(banner(f"approx: bounded synopsis vs exact (n={cfg.n}, d={cfg.dims})"))
        print(
            format_table(
                ["metric", "value", "unit", "note"],
                [(name, value, unit, note) for name, value, unit, note in rows],
            )
        )
    return rows


def approx_smoke_metrics(cfg: BenchConfig, verbose: bool = False) -> Dict[str, float]:
    """Lower-is-better gate metrics: footprint, band width, soundness."""
    rows = approx_experiment(cfg, verbose=verbose)
    return {f"approx.{name}": float(value) for name, value, _unit, _note in rows}


__all__ = [
    "APPROX_QUERY_SIDE_FRACTION",
    "approx_experiment",
    "approx_smoke_metrics",
    "run_approx",
]
