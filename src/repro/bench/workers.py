"""Process-worker experiment: wall-clock scaling behind the RPC seam.

``python -m repro.bench workers`` serves a clustered dataset through
``ShardedService(workers="process")`` at 1, 2 and 4 worker processes
(kd-median partitioning, uniform query batches) and times the same batch
through each topology, plus an in-process 4-shard reference that isolates
the wire overhead.

Where the speedup comes from matters for honest reading.  Every worker —
however many there are — gets the *same fixed per-process resource
budget*: a :data:`WORKER_PROBE_CACHE`-entry probe cache, the model of a
worker process with a bounded memory allowance.  Scaling out therefore
multiplies the cluster's aggregate cache capacity, which is the classic
reason scale-out pays even without extra cores: the batch's probe working
set overflows one worker's cache and LRU-thrashes it (every repetition
re-executes every probe), while a kd-partitioned four-worker cluster holds
each shard's slice of the working set comfortably, so repeated batches
execute *zero* probes.  The per-query result cache is disabled on all
topologies: it is keyed by the full query box, would short-circuit
identically everywhere, and would therefore measure nothing about the
sharded probe path.  On a multi-core host the fan-out pool overlaps the
workers' compute and the gain compounds true parallelism on top; on a
single-core container the aggregate-cache effect alone carries the
acceptance floor of 1.5× at four workers.

:func:`workers_smoke_metrics` exports only the *deterministic* slice to
the CI gate (exactness mismatches, transport errors, probe-work and
fan-out percentages); wall-clock speedup is printed for humans but never
gated, because a loaded CI host would flake it.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Tuple

from ..core.aggregator import BoxSumIndex
from ..core.errors import ReproError
from ..obs import MetricsRegistry
from ..shard import ShardedService
from ..shard.router import ClusterBatchResult
from ..workloads import clustered_boxes, query_boxes
from .config import BenchConfig
from .report import banner, format_table

#: Worker-process counts exercised by the sweep.
WORKER_COUNTS = (1, 2, 4)

#: Timed repetitions per topology (the minimum is reported: each
#: topology's steady state is deterministic — a thrashing cache thrashes
#: every repetition, a fitting cache hits every repetition after the
#: first — so min is the cleanest noise filter).
TIMING_REPS = 3

#: Per-worker probe-cache capacity (entries) — the fixed per-process
#: resource budget.  Sized so the default workload's probe working set
#: (~350 probes at the default ``BenchConfig``) overflows a single
#: worker's cache but each kd-quarter's slice (~130-200 probes) fits a
#: worker's cache with room to spare.
WORKER_PROBE_CACHE = 250

#: (transport, workers, wall_ms, speedup, probe_work_pct, fanout_pct, mismatches)
Row = Tuple[str, int, float, float, float, float, int]


def _make_cluster(cfg: BenchConfig, shards: int, transport: str) -> ShardedService:
    return ShardedService(
        cfg.dims,
        shards,
        partitioner="kd",
        workers="process" if transport == "process" else None,
        index_kwargs={"page_size": cfg.page_size, "buffer_pages": cfg.buffer_pages},
        # The fixed per-worker budget: a bounded probe cache per process,
        # and no result cache (it would short-circuit every topology
        # identically — see the module docstring).
        shard_kwargs={"result_cache": 0, "probe_cache": WORKER_PROBE_CACHE},
        registry=MetricsRegistry(),
        label=f"bench-workers-{transport}{shards}",
    )


def _timed_batches(cluster: ShardedService, queries) -> Tuple[float, ClusterBatchResult]:
    best = float("inf")
    result = None
    for _ in range(TIMING_REPS):
        start = time.perf_counter()
        result = cluster.batch(queries)
        best = min(best, time.perf_counter() - start)
    return best, result


def workers_experiment(cfg: BenchConfig, verbose: bool = True) -> List[Row]:
    """Wall-clock sweep over process-worker counts, cross-checked exactly."""
    objects = clustered_boxes(
        cfg.n, dims=cfg.dims, avg_side_fraction=cfg.avg_side_fraction, seed=cfg.seed
    )
    # Uniform queries, not hotspot ones: the aggregate-cache effect needs
    # the probe working set spread across the kd partitions (a hotspot
    # batch lands almost the whole set on one shard, whose cache then
    # thrashes exactly like the single worker's).
    queries = query_boxes(cfg.queries, 0.01, dims=cfg.dims, seed=cfg.seed + 1)
    reference = BoxSumIndex(
        cfg.dims, page_size=cfg.page_size, buffer_pages=cfg.buffer_pages
    )
    reference.bulk_load(objects)
    want = [reference.box_sum(q) for q in queries]

    rows: List[Row] = []
    baseline_wall = None
    baseline_probes = None
    answers: Dict[Tuple[str, int], List[float]] = {}
    runs = [("process", w) for w in WORKER_COUNTS] + [("inproc", WORKER_COUNTS[-1])]
    for transport, shards in runs:
        with _make_cluster(cfg, shards, transport) as cluster:
            cluster.bulk_load(objects)
            wall, result = _timed_batches(cluster, queries)
            answers[(transport, shards)] = list(result.results)
            # Exactness audit vs the unsharded index: a partitioned merge
            # re-associates float additions and the dominance-sum probes
            # cancel values ~n in magnitude, so the band is 1e-6 —
            # bit-identity is asserted below, between the two *transports*
            # at the same topology, where the computation is identical and
            # `==` must hold.
            mismatches = sum(
                1
                for got, ref in zip(result.results, want)
                if not math.isclose(got, ref, rel_tol=1e-6, abs_tol=1e-6)
            )
            if mismatches:
                raise ReproError(
                    f"workers bench: {mismatches} answers differ from the "
                    f"unsharded index ({transport}, {shards} workers)"
                )
            if transport == "process" and shards == 1:
                baseline_wall = wall
                baseline_probes = max(1, result.probes_executed)
            speedup = baseline_wall / wall if baseline_wall and wall else 1.0
            probe_work_pct = (
                100.0 * result.probes_executed / baseline_probes if baseline_probes else 100.0
            )
            rows.append(
                (
                    transport,
                    shards,
                    round(wall * 1000.0, 2),
                    round(speedup, 2),
                    round(probe_work_pct, 1),
                    round(100.0 * result.fanout, 1),
                    mismatches,
                )
            )

    top = WORKER_COUNTS[-1]
    if answers[("process", top)] != answers[("inproc", top)]:
        raise ReproError(
            f"workers bench: process transport at {top} workers is not "
            "bit-identical to the in-process transport"
        )

    if verbose:
        print(banner(f"workers: multiprocess shard transport (n={cfg.n}, d={cfg.dims})"))
        print(
            format_table(
                ["transport", "workers", "wall ms", "speedup", "probe work %", "fanout %", "mismatch"],
                rows,
            )
        )
    return rows


def workers_smoke_metrics(cfg: BenchConfig, verbose: bool = False) -> Dict[str, float]:
    """Lower-is-better gate metrics — the deterministic slice only.

    ``mismatches`` pins the bit-identity of the process transport (any
    nonzero fails the experiment outright, so the gate value is a hard 0),
    ``probe_work_pct`` pins that partitioned workers still *reduce* total
    probe work versus one worker (losing extent pruning or kd balance
    inflates it), ``fanout_pct`` pins the routing selectivity.  Wall-clock
    speedup is deliberately absent: timings on a shared CI host are not
    gateable.
    """
    rows = workers_experiment(cfg, verbose=verbose)
    by_key = {(row[0], row[1]): row for row in rows}
    top = by_key[("process", WORKER_COUNTS[-1])]
    return {
        "workers.mismatches": float(sum(row[6] for row in rows)),
        f"workers.p{WORKER_COUNTS[-1]}.probe_work_pct": top[4],
        f"workers.p{WORKER_COUNTS[-1]}.fanout_pct": top[5],
    }


__all__ = [
    "WORKER_COUNTS",
    "WORKER_PROBE_CACHE",
    "workers_experiment",
    "workers_smoke_metrics",
]
