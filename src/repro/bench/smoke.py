"""Smoke benchmark: a reduced slice of every experiment, with a CI gate.

``python -m repro.bench smoke`` runs every experiment driver (the paper's
ten figures/tables plus the query-service batch slice) at a tiny, fixed
scale and extracts only the *deterministic* metrics — page counts, I/O
counts and probe counts, never CPU or wall time — into a flat
``name -> value`` dict.
Given the same seed and config these are bit-stable (seeded RNG, simulated
disk), so CI can compare a fresh run against the committed baseline at
``benchmarks/baseline_smoke.json`` and fail on regressions beyond the
baseline's tolerance bands.

The emitted payload is schema-versioned and wrapped in the shared run
metadata envelope (seed, config, git rev, timestamp, wall time), so any
two dumps are comparable knowing exactly what produced them.

Baseline format::

    {
      "schema_version": 1,
      "default_rel_tol": 0.1,
      "abs_slack": 2.0,
      "per_metric_rel_tol": {"fig9b.aR.qbs=10.00%": 0.2},
      "metrics": {"fig9a.BAT.pages": 123.0, ...}
    }

Every smoke metric is *lower-is-better*; the gate fails when a current
value exceeds ``baseline * (1 + tol) + abs_slack`` or when a baseline
metric is missing from the run.  Improvements and new metrics are reported
but do not fail the gate (refresh the baseline to lock them in).
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Tuple

from .approx import approx_smoke_metrics
from .config import BenchConfig
from .figures import (
    ablation_border_touch,
    fig9a_index_sizes,
    fig9b_crossover,
    fig9b_query_cost,
    fig9c_functional,
    reduction_experiment,
    rstar_speedup,
    shape_robustness,
    table1_complexity,
    three_dimensional,
)
from .replog import replog_smoke_metrics
from .resilience import resilience_smoke_metrics
from .runmeta import run_metadata
from .service import service_smoke_metrics
from .shard import shard_smoke_metrics
from .traffic import traffic_smoke_metrics
from .workers import workers_smoke_metrics

#: Version of the BENCH_smoke.json payload format.
SMOKE_SCHEMA_VERSION = 1

#: Default relative tolerance band when the baseline specifies none.
DEFAULT_REL_TOL = 0.10

#: Flat slack added to every band (absorbs off-by-a-page noise on tiny counts).
DEFAULT_ABS_SLACK = 2.0


def smoke_config(base: Optional[BenchConfig] = None) -> BenchConfig:
    """The fixed reduced-scale configuration of the smoke slice."""
    base = base if base is not None else BenchConfig()
    return base.scaled(n=2500, queries=15, page_size=2048, buffer_mb=0.0625)


# -- metric extraction (deterministic values only) ----------------------------


def _metrics_from_experiments(cfg: BenchConfig, verbose: bool) -> Dict[str, float]:
    metrics: Dict[str, float] = {}

    for method, _mb, pages in fig9a_index_sizes(cfg, verbose=verbose):
        metrics[f"fig9a.{method}.pages"] = float(pages)

    for method, qbs, ios in fig9b_query_cost(cfg, verbose=verbose):
        metrics[f"fig9b.{method}.qbs={qbs}"] = float(ios)

    for n, ar, bat in fig9b_crossover(cfg, verbose=verbose):
        metrics[f"crossover.n={n}.aR"] = float(ar)
        metrics[f"crossover.n={n}.BAT"] = float(bat)

    for label, _total, ios, _cpu in fig9c_functional(cfg, verbose=verbose):
        metrics[f"fig9c.{label}.ios"] = float(ios)

    _counts, measured = reduction_experiment(cfg, verbose=verbose)
    for name, ios, _mb in measured:
        key = "corner" if name.startswith("corner") else "eo82"
        metrics[f"reduction.{key}.ios"] = float(ios)

    rows, _ratio = rstar_speedup(cfg, verbose=verbose)
    for method, ios in rows:
        metrics[f"rstar.{method}.ios"] = float(ios)

    for aspect, ar, bat in shape_robustness(cfg, verbose=verbose):
        metrics[f"shape.aspect={aspect:g}.aR"] = float(ar)
        metrics[f"shape.aspect={aspect:g}.BAT"] = float(bat)

    for qbs, ar, bat in three_dimensional(cfg, verbose=verbose):
        metrics[f"dims3.qbs={qbs}.aR"] = float(ar)
        metrics[f"dims3.qbs={qbs}.BAT"] = float(bat)

    for variant, n, space, build_ios, query_acc, update_acc in table1_complexity(
        cfg, verbose=verbose
    ):
        prefix = f"table1.{variant}.n={n}"
        metrics[f"{prefix}.space_pages"] = float(space)
        metrics[f"{prefix}.build_ios"] = float(build_ios)
        metrics[f"{prefix}.query_accesses"] = float(query_acc)
        metrics[f"{prefix}.update_accesses"] = float(update_acc)

    for name, accesses, _cpu in ablation_border_touch(cfg, verbose=verbose):
        metrics[f"ablation.{name}.accesses_per_insert"] = float(accesses)

    metrics.update(service_smoke_metrics(cfg, verbose=verbose))
    metrics.update(shard_smoke_metrics(cfg, verbose=verbose))
    metrics.update(resilience_smoke_metrics(cfg, verbose=verbose))
    metrics.update(replog_smoke_metrics(cfg, verbose=verbose))
    metrics.update(traffic_smoke_metrics(cfg, verbose=verbose))
    metrics.update(workers_smoke_metrics(cfg, verbose=verbose))
    metrics.update(approx_smoke_metrics(cfg, verbose=verbose))

    return metrics


def run_smoke(cfg: Optional[BenchConfig] = None, verbose: bool = False) -> Dict[str, Any]:
    """Run the smoke slice and return the schema-versioned payload."""
    cfg = smoke_config(cfg)
    start = time.time()
    metrics = _metrics_from_experiments(cfg, verbose=verbose)
    wall = time.time() - start
    overhead = metrics.get("service.cold.probe_overhead_pct", 0.0)
    critical_pct = metrics.get("shard.s4.read_critical_pct", 0.0)
    extra = {
        "service_dedup_ratio": round(100.0 / overhead, 3) if overhead else None,
        "shard_speedup_4x": round(100.0 / critical_pct, 2) if critical_pct else None,
    }
    return {
        "schema_version": SMOKE_SCHEMA_VERSION,
        "kind": "bench-smoke",
        "metadata": run_metadata(cfg, wall_time_s=wall, extra=extra),
        "metrics": metrics,
    }


# -- baseline comparison -----------------------------------------------------------


def make_baseline(
    payload: Dict[str, Any],
    default_rel_tol: float = DEFAULT_REL_TOL,
    abs_slack: float = DEFAULT_ABS_SLACK,
) -> Dict[str, Any]:
    """Turn a smoke payload into a committable baseline document."""
    return {
        "schema_version": SMOKE_SCHEMA_VERSION,
        "default_rel_tol": default_rel_tol,
        "abs_slack": abs_slack,
        "per_metric_rel_tol": {},
        "metrics": dict(payload["metrics"]),
    }


def compare_to_baseline(
    payload: Dict[str, Any], baseline: Dict[str, Any]
) -> Tuple[bool, List[str]]:
    """Gate a smoke payload against a baseline; returns ``(ok, report lines)``.

    Fails on: schema mismatch, a baseline metric missing from the run, or a
    current value beyond ``base * (1 + tol) + abs_slack`` (all smoke metrics
    are lower-is-better).  Improvements beyond the band and metrics new in
    this run are reported as notes only.
    """
    lines: List[str] = []
    ok = True
    if baseline.get("schema_version") != payload.get("schema_version"):
        return False, [
            f"FAIL schema mismatch: baseline v{baseline.get('schema_version')} "
            f"vs run v{payload.get('schema_version')}"
        ]
    rel_tol = float(baseline.get("default_rel_tol", DEFAULT_REL_TOL))
    abs_slack = float(baseline.get("abs_slack", DEFAULT_ABS_SLACK))
    per_metric = baseline.get("per_metric_rel_tol", {}) or {}
    base_metrics: Dict[str, float] = baseline.get("metrics", {})
    current: Dict[str, float] = payload.get("metrics", {})

    for name in sorted(base_metrics):
        base = float(base_metrics[name])
        if name not in current:
            ok = False
            lines.append(f"FAIL {name}: missing from this run (baseline {base:g})")
            continue
        cur = float(current[name])
        tol = float(per_metric.get(name, rel_tol))
        ceiling = base * (1.0 + tol) + abs_slack
        if cur > ceiling:
            ok = False
            lines.append(
                f"FAIL {name}: {cur:g} > allowed {ceiling:g} "
                f"(baseline {base:g}, rel_tol {tol:g}, abs_slack {abs_slack:g})"
            )
        elif cur < base - (base * tol + abs_slack):
            lines.append(
                f"note {name}: improved to {cur:g} from {base:g} "
                "(consider refreshing the baseline)"
            )
    for name in sorted(set(current) - set(base_metrics)):
        lines.append(f"note {name}: new metric {current[name]:g} (not in baseline)")
    lines.append(f"{'OK' if ok else 'REGRESSION'}: {len(base_metrics)} baseline metric(s) checked")
    return ok, lines


def load_json(path: str) -> Dict[str, Any]:
    """Parse one JSON document from ``path``."""
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def dump_json(payload: Dict[str, Any], path: str) -> None:
    """Write a payload as stable, human-diffable JSON."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True, default=str)
        f.write("\n")
