"""Experiment drivers — one per paper table/figure (see DESIGN.md's index).

Every function returns structured rows and, with ``verbose=True``, prints
the same series the paper plots.  Absolute numbers differ from the paper
(simulated disk, scaled-down dataset); the *shapes* — who wins, by what
order, where the curves cross — are the reproduction targets recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..core.aggregator import BoxSumIndex, make_dominance_index
from ..core.reduction import reduction_comparison
from ..storage import CostModel
from ..workloads import functional_objects, query_boxes, query_points, uniform_boxes
from .builders import (
    build_boxsum_index,
    build_functional_index,
    fresh_storage,
    measure_insert_batch,
    measure_query_batch,
)
from .config import BenchConfig
from .plot import ascii_chart, bar_chart
from .report import banner, format_table

#: The four contenders of Figures 9a/9b, in the paper's order.
FIG9_METHODS = ("aR", "ECDFu", "ECDFq", "BAT")
#: Query-box sizes of Figure 9b, as fractions of the space.
QBS_SERIES = (0.0001, 0.001, 0.01, 0.1)


# ---------------------------------------------------------------------------
# E1 — Figure 9a: index sizes
# ---------------------------------------------------------------------------

def fig9a_index_sizes(cfg: BenchConfig = BenchConfig(), verbose: bool = True):
    """Index size (MB) per method, over the paper's uniform dataset."""
    objects = uniform_boxes(cfg.n, cfg.dims, cfg.avg_side_fraction, seed=cfg.seed)
    rows: List[Tuple[str, float, int]] = []
    for method in FIG9_METHODS:
        index = build_boxsum_index(method, objects, cfg)
        rows.append((method, index.storage.size_mb, index.storage.num_pages))
    if verbose:
        print(banner(f"Figure 9a — index sizes (n={cfg.n}, page={cfg.page_size}B)"))
        print(format_table(["method", "size (MB)", "pages"], rows))
        print()
        print(bar_chart([(m, mb) for m, mb, _p in rows], title="index size (MB)"))
    return rows


# ---------------------------------------------------------------------------
# E2 — Figure 9b: query cost vs query-box size
# ---------------------------------------------------------------------------

def fig9b_query_cost(cfg: BenchConfig = BenchConfig(), verbose: bool = True):
    """Total I/Os per query batch, per method and QBS."""
    objects = uniform_boxes(cfg.n, cfg.dims, cfg.avg_side_fraction, seed=cfg.seed)
    indices = {m: build_boxsum_index(m, objects, cfg) for m in FIG9_METHODS}
    rows: List[Tuple[str, str, int]] = []
    table: Dict[str, List[object]] = {m: [m] for m in FIG9_METHODS}
    for qbs in QBS_SERIES:
        queries = query_boxes(cfg.queries, qbs, cfg.dims, seed=cfg.seed + 1)
        for method in FIG9_METHODS:
            ios, _cpu = measure_query_batch(indices[method], queries)
            rows.append((method, f"{qbs:.2%}", ios))
            table[method].append(ios)
    if verbose:
        print(
            banner(
                f"Figure 9b — query I/Os over {cfg.queries} queries "
                f"(n={cfg.n}, buffer={cfg.buffer_pages} pages)"
            )
        )
        headers = ["method", *(f"QBS {q:.2%}" for q in QBS_SERIES)]
        print(format_table(headers, [table[m] for m in FIG9_METHODS]))
        series = {m: list(zip(QBS_SERIES, table[m][1:])) for m in FIG9_METHODS}
        print()
        print(
            ascii_chart(
                series,
                log_x=True,
                log_y=True,
                title="batch I/Os vs query-box size",
                y_label=f"total I/Os over {cfg.queries} queries",
            )
        )
    return rows


# ---------------------------------------------------------------------------
# E9 — Figure 9b's asymptotic story: the aR/BAT crossover as n grows
# ---------------------------------------------------------------------------

def fig9b_crossover(cfg: BenchConfig = BenchConfig(), qbs: float = 0.1, verbose: bool = True):
    """Per-query I/O of aR vs BAT over an n sweep at a fixed large QBS.

    The paper's aR curve sits above the BA-tree at every query size because
    at n = 6M even tiny queries cover many objects; at scaled-down n the aR
    index is small enough to win on small queries.  This sweep shows the
    mechanism: the aR cost per query grows ~ sqrt(n * QBS / B) (boundary
    leaves) while the BA-tree stays flat — the paper's regime is the
    right-hand side.
    """
    sizes = [cfg.n // 8, cfg.n // 4, cfg.n // 2, cfg.n]
    rows: List[Tuple[int, float, float]] = []
    for n in sizes:
        objects = uniform_boxes(n, cfg.dims, cfg.avg_side_fraction, seed=cfg.seed)
        queries = query_boxes(cfg.queries, qbs, cfg.dims, seed=cfg.seed + 8)
        per_query = {}
        for method in ("aR", "BAT"):
            index = build_boxsum_index(method, objects, cfg)
            ios, _cpu = measure_query_batch(index, queries)
            per_query[method] = ios / len(queries)
        rows.append((n, per_query["aR"], per_query["BAT"]))
    if verbose:
        print(banner(f"aR vs BA-tree crossover — I/Os per query at QBS={qbs:.0%}"))
        print(format_table(["n", "aR I/O per query", "BAT I/O per query"], rows))
        series = {
            "aR": [(n, a) for n, a, _b in rows],
            "BAT": [(n, b) for n, _a, b in rows],
        }
        print()
        print(ascii_chart(series, title="I/Os per query vs n", y_label="I/Os per query"))
    return rows


# ---------------------------------------------------------------------------
# E3 — Figure 9c: functional box-sum execution time
# ---------------------------------------------------------------------------

def fig9c_functional(cfg: BenchConfig = BenchConfig(), qbs: float = 0.01, verbose: bool = True):
    """CPU + 10 ms/I/O execution time for BAT vs aR at degree 0 and 2."""
    model = CostModel(io_time_ms=10.0)
    queries = query_boxes(cfg.queries, qbs, cfg.dims, seed=cfg.seed + 2)
    rows: List[Tuple[str, float, int, float]] = []
    for degree in (0, 2):
        objects = functional_objects(cfg.n, degree, cfg.dims, cfg.avg_side_fraction, seed=cfg.seed)
        for method in ("aR", "BAT"):
            index = build_functional_index(method, objects, degree, cfg)
            ios, cpu = measure_query_batch(index, queries, functional=True)
            total = model.execution_time(cpu, ios)
            rows.append((f"{method}_d{degree}", total, ios, cpu))
    if verbose:
        print(
            banner(
                f"Figure 9c — functional box-sum, QBS={qbs:.0%}, "
                f"{cfg.queries} queries (CPU + 10ms x I/O)"
            )
        )
        print(format_table(["method", "exec time (s)", "I/Os", "CPU (s)"], rows))
    return rows


# ---------------------------------------------------------------------------
# E4 — Theorem 1 vs Theorem 2: reduction counts (and an operational check)
# ---------------------------------------------------------------------------

def reduction_experiment(cfg: BenchConfig = BenchConfig(), max_dims: int = 8, verbose: bool = True):
    """The reduction-count table plus measured query I/Os for both reductions."""
    counts = reduction_comparison(max_dims)
    small = cfg.scaled(n=min(cfg.n, 5000))
    objects = uniform_boxes(small.n, small.dims, small.avg_side_fraction, seed=small.seed)
    measured: List[Tuple[str, int, float]] = []
    for name, reduction in (("corner (Thm 2)", "corner"), ("EO82 (Thm 1)", "eo82")):
        index = BoxSumIndex(
            small.dims,
            backend="ba",
            reduction=reduction,
            storage=fresh_storage(small),
        )
        index.bulk_load(objects)
        queries = query_boxes(small.queries, 0.01, small.dims, seed=small.seed + 3)
        ios, _cpu = measure_query_batch(index, queries)
        measured.append((name, ios, index.storage.size_mb))
    if verbose:
        print(banner("Theorem 1 vs Theorem 2 — dominance-sum queries per box-sum"))
        print(format_table(["d", "EO82 (3^d - 1)", "corner (2^d)"], counts))
        print()
        print(format_table(["reduction (d=2, BA backend)", "batch I/Os", "index MB"], measured))
    return counts, measured


# ---------------------------------------------------------------------------
# E5 — Section 6 claim: BA-tree vs plain R*-tree
# ---------------------------------------------------------------------------

def rstar_speedup(cfg: BenchConfig = BenchConfig(), qbs: float = 0.1, verbose: bool = True):
    """Query I/Os of the plain R*-tree vs the BA-tree approach at a large QBS."""
    objects = uniform_boxes(cfg.n, cfg.dims, cfg.avg_side_fraction, seed=cfg.seed)
    queries = query_boxes(cfg.queries, qbs, cfg.dims, seed=cfg.seed + 4)
    rows: List[Tuple[str, int]] = []
    for method in ("R*", "BAT"):
        index = build_boxsum_index(method, objects, cfg)
        ios, _cpu = measure_query_batch(index, queries)
        rows.append((method, ios))
    ratio = rows[0][1] / max(1, rows[1][1])
    if verbose:
        print(banner(f"Plain R*-tree vs BA-tree, QBS={qbs:.0%} (paper: >200x)"))
        print(format_table(["method", "batch I/Os"], rows))
        print(f"\nspeedup: {ratio:.1f}x fewer I/Os for the BA-tree")
    return rows, ratio


# ---------------------------------------------------------------------------
# E10 — query-shape robustness ("independent of the query shape or size")
# ---------------------------------------------------------------------------

def shape_robustness(cfg: BenchConfig = BenchConfig(), qbs: float = 0.01, verbose: bool = True):
    """Per-query I/O of aR vs BAT over an aspect-ratio sweep at fixed area.

    The paper's conclusion: "the BA-tree query performance is independent
    of the query shape or size."  The aR-tree's cost follows the query
    boundary, which grows as the box gets skinnier at constant area; the
    BA-tree issues the same 2^d dominance-sums regardless.
    """
    aspects = (1.0, 4.0, 16.0, 64.0)
    objects = uniform_boxes(cfg.n, cfg.dims, cfg.avg_side_fraction, seed=cfg.seed)
    indices = {m: build_boxsum_index(m, objects, cfg) for m in ("aR", "BAT")}
    rows: List[Tuple[float, float, float]] = []
    for aspect in aspects:
        queries = query_boxes(cfg.queries, qbs, cfg.dims, aspect=aspect, seed=cfg.seed + 9)
        per_query = {}
        for method, index in indices.items():
            ios, _cpu = measure_query_batch(index, queries)
            per_query[method] = ios / len(queries)
        rows.append((aspect, per_query["aR"], per_query["BAT"]))
    if verbose:
        print(
            banner(
                f"Query-shape robustness — I/Os per query at QBS={qbs:.0%}, "
                "varying aspect ratio"
            )
        )
        print(format_table(["aspect", "aR I/O per query", "BAT I/O per query"], rows))
    return rows


# ---------------------------------------------------------------------------
# E11 — three-dimensional box-sums (the §5 higher-dimension claim)
# ---------------------------------------------------------------------------

def three_dimensional(cfg: BenchConfig = BenchConfig(), verbose: bool = True):
    """BAT (8 corner trees) vs aR in 3-d: flat vs QBS-driven query cost."""
    cfg3 = cfg.scaled(dims=3, n=min(cfg.n, 30_000))
    objects = uniform_boxes(cfg3.n, 3, cfg3.avg_side_fraction, seed=cfg3.seed)
    indices = {m: build_boxsum_index(m, objects, cfg3) for m in ("aR", "BAT")}
    rows: List[Tuple[str, float, float]] = []
    for qbs in (0.001, 0.01, 0.1):
        queries = query_boxes(cfg3.queries, qbs, 3, seed=cfg3.seed + 10)
        per_query = {}
        for method, index in indices.items():
            ios, _cpu = measure_query_batch(index, queries)
            per_query[method] = ios / len(queries)
        rows.append((f"{qbs:.1%}", per_query["aR"], per_query["BAT"]))
    if verbose:
        print(banner(f"3-dimensional box-sums (n={cfg3.n}) — I/Os per query"))
        print(format_table(["QBS", "aR I/O per query", "BAT I/O per query"], rows))
    return rows


# ---------------------------------------------------------------------------
# E6 — Table 1: empirical complexity trends of the ECDF-B-trees
# ---------------------------------------------------------------------------

def table1_complexity(cfg: BenchConfig = BenchConfig(), verbose: bool = True):
    """Space / build / query / update measurements for Bu vs Bq over an n sweep."""
    sizes = [cfg.n // 8, cfg.n // 4, cfg.n // 2, cfg.n]
    rows: List[Tuple[str, int, int, int, float, float]] = []
    for variant, backend in (("Bu", "ecdf-bu"), ("Bq", "ecdf-bq")):
        for n in sizes:
            objects = uniform_boxes(n, cfg.dims, cfg.avg_side_fraction, seed=cfg.seed)
            points = [(box.corner((0,) * cfg.dims), value) for box, value in objects]
            storage = fresh_storage(cfg)
            tree = make_dominance_index(backend, cfg.dims, storage=storage)
            storage.reset_stats()
            tree.bulk_load(points)
            build_ios = storage.counter.total_ios
            space_pages = storage.num_pages
            probe_points = query_points(50, cfg.dims, seed=cfg.seed + 5)
            storage.cold_cache()
            storage.reset_stats()
            for p in probe_points:
                tree.dominance_sum(p)
            query_ios = storage.counter.accesses / len(probe_points)
            inserts = query_points(50, cfg.dims, seed=cfg.seed + 6)
            storage.cold_cache()
            storage.reset_stats()
            for p in inserts:
                tree.insert(p, 1.0)
            update_ios = storage.counter.accesses / len(inserts)
            rows.append((variant, n, space_pages, build_ios, query_ios, update_ios))
    if verbose:
        from ..analysis import fit_power_law

        print(banner("Table 1 — ECDF-Bu vs ECDF-Bq empirical scaling (2-d)"))
        print(
            format_table(
                [
                    "variant",
                    "n",
                    "space (pages)",
                    "build I/Os",
                    "query accesses",
                    "update accesses",
                ],
                rows,
            )
        )
        fits = []
        for variant in ("Bu", "Bq"):
            points = [(float(n), float(space)) for v, n, space, *_ in rows if v == variant]
            exponent, _c = fit_power_law(points)
            fits.append((variant, exponent))
        print(
            "\nfitted space growth n^e: "
            + ", ".join(f"{v}: e={e:.2f}" for v, e in fits)
            + "  (Table 1 predicts both near-linear in n, Bq larger by ~B/log factors)"
        )
        print(
            "predictions: Bu space ~ (n/B)log_B n, Bq space ~ n*log_B n;\n"
            "Bq query ~ log^2 n << Bu query ~ B*log^2 n;\n"
            "Bu update ~ log^2 n << Bq update ~ B*log^2 n."
        )
    return rows


# ---------------------------------------------------------------------------
# E8 — ablation: borders touched per update, BA-tree vs ECDF-Bq
# ---------------------------------------------------------------------------

def ablation_border_touch(cfg: BenchConfig = BenchConfig(), verbose: bool = True):
    """The sqrt(B) claim: BA-tree updates touch far fewer pages than ECDF-Bq's.

    "any line intersecting the box of some index page in a 2-dimensional
    BA-tree 'cuts' about sqrt(B) index records.  The update of the
    ECDF-Bq-tree is expensive since each update affects O(B) borders.  The
    BA-tree is faster since only O(sqrt(B)) borders are affected."
    """
    objects = uniform_boxes(cfg.n, cfg.dims, cfg.avg_side_fraction, seed=cfg.seed)
    points = [(box.corner((0,) * cfg.dims), value) for box, value in objects]
    inserts = query_points(200, cfg.dims, seed=cfg.seed + 7)
    rows: List[Tuple[str, float, float]] = []
    for name, backend in (("BAT", "ba"), ("ECDFq", "ecdf-bq"), ("ECDFu", "ecdf-bu")):
        storage = fresh_storage(cfg)
        tree = make_dominance_index(backend, cfg.dims, storage=storage)
        tree.bulk_load(points)
        start = time.process_time()
        _ios, accesses = measure_insert_batch(tree, [(p, 1.0) for p in inserts])
        cpu = time.process_time() - start
        rows.append((name, accesses / len(inserts), cpu))
    if verbose:
        print(banner("Ablation — page accesses per insert (sqrt(B) vs B borders)"))
        print(format_table(["method", "accesses / insert", "CPU (s)"], rows))
    return rows
