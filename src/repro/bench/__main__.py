"""CLI entry point: ``python -m repro.bench <experiment> [options]``."""

from __future__ import annotations

import argparse
import json
import sys
import time

from .config import BenchConfig
from .figures import (
    ablation_border_touch,
    fig9a_index_sizes,
    fig9b_crossover,
    fig9b_query_cost,
    fig9c_functional,
    reduction_experiment,
    rstar_speedup,
    shape_robustness,
    table1_complexity,
    three_dimensional,
)

EXPERIMENTS = {
    "fig9a": fig9a_index_sizes,
    "fig9b": fig9b_query_cost,
    "crossover": fig9b_crossover,
    "fig9c": fig9c_functional,
    "reduction": reduction_experiment,
    "rstar": rstar_speedup,
    "shape": shape_robustness,
    "dims3": three_dimensional,
    "table1": table1_complexity,
    "ablation": ablation_border_touch,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument("--n", type=int, default=None, help="number of objects")
    parser.add_argument("--queries", type=int, default=None, help="queries per batch")
    parser.add_argument("--page-size", type=int, default=None, help="page size in bytes")
    parser.add_argument("--buffer-mb", type=float, default=None, help="LRU buffer in MB")
    parser.add_argument("--seed", type=int, default=None, help="base RNG seed")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump the structured rows of each experiment as JSON",
    )
    args = parser.parse_args(argv)

    cfg = BenchConfig()
    overrides = {
        "n": args.n,
        "queries": args.queries,
        "page_size": args.page_size,
        "buffer_mb": args.buffer_mb,
        "seed": args.seed,
    }
    cfg = cfg.scaled(**{k: v for k, v in overrides.items() if v is not None})

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    results = {}
    for name in names:
        start = time.time()
        rows = EXPERIMENTS[name](cfg)
        results[name] = rows
        print(f"\n[{name} done in {time.time() - start:.1f}s]")
    if args.json:
        payload = {
            "config": {
                "n": cfg.n,
                "dims": cfg.dims,
                "page_size": cfg.page_size,
                "buffer_pages": cfg.buffer_pages,
                "queries": cfg.queries,
                "seed": cfg.seed,
            },
            "results": results,
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, default=list)
        print(f"[wrote {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
