"""CLI entry point: ``python -m repro.bench <experiment> [options]``.

Besides the paper's experiments, ``python -m repro.bench smoke`` runs the
reduced-scale smoke slice (see :mod:`repro.bench.smoke`): ``--json`` dumps
the schema-versioned payload, ``--check BASELINE`` gates it against a
committed baseline (exit code 1 on regression), and ``--write-baseline``
refreshes the baseline from this run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .approx import approx_experiment
from .config import BenchConfig
from .heal import heal_experiment
from .figures import (
    ablation_border_touch,
    fig9a_index_sizes,
    fig9b_crossover,
    fig9b_query_cost,
    fig9c_functional,
    reduction_experiment,
    rstar_speedup,
    shape_robustness,
    table1_complexity,
    three_dimensional,
)
from .replog import replog_experiment
from .resilience import resilience_experiment
from .runmeta import run_metadata
from .scrub import scrub_experiment, scrub_paths
from .service import service_batch_experiment
from .shard import shard_scaling_experiment
from .smoke import (
    compare_to_baseline,
    dump_json,
    load_json,
    make_baseline,
    run_smoke,
)
from .traffic import run_traffic, traffic_experiment
from .workers import workers_experiment

EXPERIMENTS = {
    "fig9a": fig9a_index_sizes,
    "fig9b": fig9b_query_cost,
    "crossover": fig9b_crossover,
    "fig9c": fig9c_functional,
    "reduction": reduction_experiment,
    "rstar": rstar_speedup,
    "shape": shape_robustness,
    "dims3": three_dimensional,
    "table1": table1_complexity,
    "ablation": ablation_border_touch,
    "service": service_batch_experiment,
    "shard": shard_scaling_experiment,
    "resilience": resilience_experiment,
    "replog": replog_experiment,
    "traffic": traffic_experiment,
    "workers": workers_experiment,
    "approx": approx_experiment,
    "heal": heal_experiment,
    "scrub": scrub_experiment,
}

RESULTS_SCHEMA_VERSION = 1


def _run_smoke_command(args: argparse.Namespace) -> int:
    payload = run_smoke(verbose=args.verbose)
    meta = payload["metadata"]
    print(
        f"[smoke: {len(payload['metrics'])} metrics in "
        f"{meta.get('wall_time_s', 0.0):.1f}s, seed={meta['seed']}]"
    )
    dedup = meta.get("service_dedup_ratio")
    if dedup:
        print(f"[service batch dedup ratio: {dedup:.2f}x probes shared]")
    speedup = meta.get("shard_speedup_4x")
    if speedup:
        print(f"[shard speedup at 4 shards: {speedup:.2f}x critical-path reads]")
    if args.json:
        dump_json(payload, args.json)
        print(f"[wrote {args.json}]")
    if args.write_baseline:
        dump_json(make_baseline(payload), args.write_baseline)
        print(f"[wrote baseline {args.write_baseline}]")
    if args.check:
        baseline = load_json(args.check)
        ok, lines = compare_to_baseline(payload, baseline)
        for line in lines:
            print(line)
        if not ok:
            return 1
    return 0


def _run_traffic_command(args: argparse.Namespace, cfg: BenchConfig) -> int:
    payload = run_traffic(
        cfg, mode=args.mode, chaos=args.chaos, degrade=args.degrade, verbose=True
    )
    report = payload["report"]
    if args.json:
        dump_json(payload, args.json)
        print(f"[wrote {args.json}]")
    if args.report:
        from ..loadgen import SLOReport

        with open(args.report, "w", encoding="utf-8") as f:
            f.write(SLOReport.from_dict(report).render())
            f.write("\n")
        print(f"[wrote {args.report}]")
    return 1 if report["checks"]["failed"] else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "smoke"],
        help="which table/figure to regenerate, or 'smoke' for the CI slice",
    )
    parser.add_argument("--n", type=int, default=None, help="number of objects")
    parser.add_argument("--queries", type=int, default=None, help="queries per batch")
    parser.add_argument("--page-size", type=int, default=None, help="page size in bytes")
    parser.add_argument("--buffer-mb", type=float, default=None, help="LRU buffer in MB")
    parser.add_argument("--seed", type=int, default=None, help="base RNG seed")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump the structured rows of each experiment as JSON",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="(smoke only) compare against a baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="(smoke only) write this run out as a new baseline",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="(smoke only) print each experiment's tables while running",
    )
    parser.add_argument(
        "--mode",
        choices=["virtual", "wall"],
        default="virtual",
        help="(traffic only) virtual clock (deterministic) or wall clock",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="(traffic only) replicate the cluster and inject seeded read chaos",
    )
    parser.add_argument(
        "--degrade",
        choices=["off", "bounded"],
        default=None,
        help="(traffic only) degradation mode: 'bounded' answers sheds/outages "
        "from the certified approximate tier instead of rejecting",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="(traffic only) also write the SLO report's text render",
    )
    parser.add_argument(
        "--path",
        metavar="FILE",
        action="append",
        default=None,
        help="(scrub only) pager file to offline-scrub; repeatable; exit 1 "
        "if any slot is corrupt.  Without --path, runs the self-contained "
        "corruption demo instead",
    )
    args = parser.parse_args(argv)

    if args.experiment == "smoke":
        return _run_smoke_command(args)

    cfg = BenchConfig()
    overrides = {
        "n": args.n,
        "queries": args.queries,
        "page_size": args.page_size,
        "buffer_mb": args.buffer_mb,
        "seed": args.seed,
    }
    cfg = cfg.scaled(**{k: v for k, v in overrides.items() if v is not None})

    if args.experiment == "traffic":
        return _run_traffic_command(args, cfg)

    if args.experiment == "scrub" and args.path:
        reports = scrub_paths(args.path)
        return 1 if any(not r.clean for r in reports) else 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    results = {}
    start_all = time.time()
    for name in names:
        start = time.time()
        rows = EXPERIMENTS[name](cfg)
        results[name] = rows
        print(f"\n[{name} done in {time.time() - start:.1f}s]")
    if args.json:
        payload = {
            "schema_version": RESULTS_SCHEMA_VERSION,
            "kind": "bench-results",
            "metadata": run_metadata(cfg, wall_time_s=time.time() - start_all),
            "config": {
                "n": cfg.n,
                "dims": cfg.dims,
                "page_size": cfg.page_size,
                "buffer_pages": cfg.buffer_pages,
                "queries": cfg.queries,
                "seed": cfg.seed,
            },
            "results": results,
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, default=list)
        print(f"[wrote {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
