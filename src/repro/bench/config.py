"""Experiment configuration and scaling notes.

The paper ran 6,000,000 objects against 8 KB pages and a 10 MB LRU buffer.
Pure Python cannot rebuild that testbed in minutes, so the defaults scale
every knob down together: fewer objects, smaller pages (keeping tree depth
comparable) and a proportionally smaller buffer.  All knobs are exposed on
the CLI, so larger runs only cost time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class BenchConfig:
    """Knobs shared by all experiments."""

    #: Number of data objects (paper: 6,000,000).
    n: int = 50_000
    #: Dimensionality of the space (paper: 2).
    dims: int = 2
    #: Logical page size in bytes (paper: 8192).
    page_size: int = 2048
    #: LRU buffer size in MB (paper: 10 MB ~ 5% of the smallest index; the
    #: default keeps roughly that ratio at the scaled-down n).
    buffer_mb: float = 0.0625
    #: Queries per batch (paper: 1000).
    queries: int = 100
    #: Average object side as a fraction of the space (paper: 1/10,000).
    avg_side_fraction: float = 1e-4
    #: Base RNG seed.
    seed: int = 7

    @property
    def buffer_pages(self) -> int:
        """LRU capacity in pages."""
        return max(8, int(self.buffer_mb * 1024 * 1024 / self.page_size))

    def scaled(self, **overrides: object) -> "BenchConfig":
        """A copy with some knobs replaced."""
        return replace(self, **overrides)
