"""Benchmark harness regenerating every table and figure of the paper.

Each experiment is a function returning structured rows (so the pytest
benchmarks can assert the paper's qualitative shape) and printing the
table the paper reports.  Run standalone via::

    python -m repro.bench fig9a --n 50000
    python -m repro.bench all
"""

from .config import BenchConfig
from .figures import (
    ablation_border_touch,
    fig9a_index_sizes,
    fig9b_crossover,
    fig9b_query_cost,
    fig9c_functional,
    reduction_experiment,
    rstar_speedup,
    shape_robustness,
    table1_complexity,
    three_dimensional,
)

__all__ = [
    "BenchConfig",
    "fig9a_index_sizes",
    "fig9b_query_cost",
    "fig9b_crossover",
    "fig9c_functional",
    "reduction_experiment",
    "rstar_speedup",
    "table1_complexity",
    "ablation_border_touch",
    "shape_robustness",
    "three_dimensional",
]
