"""Run-metadata envelope for bench JSON dumps.

Every structured dump — ``python -m repro.bench ... --json`` and the smoke
benchmark — carries the same metadata block (seed, full config, git
revision, timestamp, interpreter), so two dumps can always be compared
knowing exactly what produced them.
"""

from __future__ import annotations

import platform
import subprocess
import time
from typing import Any, Dict, Optional

from .config import BenchConfig


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit hash, or None outside a repository."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def config_dict(cfg: BenchConfig) -> Dict[str, Any]:
    """The full benchmark configuration as a JSON-ready dict."""
    return {
        "n": cfg.n,
        "dims": cfg.dims,
        "page_size": cfg.page_size,
        "buffer_mb": cfg.buffer_mb,
        "buffer_pages": cfg.buffer_pages,
        "queries": cfg.queries,
        "avg_side_fraction": cfg.avg_side_fraction,
        "seed": cfg.seed,
    }


def run_metadata(
    cfg: BenchConfig,
    wall_time_s: Optional[float] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Everything needed to reproduce and compare a bench run.

    ``extra`` merges additional run-level facts into the envelope (e.g. the
    smoke slice's measured service dedup ratio); it cannot override the
    reserved keys above.
    """
    meta: Dict[str, Any] = {
        "seed": cfg.seed,
        "config": config_dict(cfg),
        "git_rev": git_revision(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if wall_time_s is not None:
        meta["wall_time_s"] = round(wall_time_s, 3)
    if extra:
        for key, value in extra.items():
            meta.setdefault(key, value)
    return meta
