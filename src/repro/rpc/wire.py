"""CRC-framed, length-prefixed message transport for shard workers.

One frame on the socket is::

    u32 length | u32 crc | u8 kind | u8 flags | u32 request_id | payload

``length`` counts everything after the crc (the 6 header bytes plus the
payload) and ``crc`` is CRC32 over those same bytes — the discipline the
write-ahead log (:mod:`repro.storage.wal`) and replication log
(:mod:`repro.replog.log`) already use: a frame either parses and checks,
or the connection is declared dead.  There is no resynchronization
heuristics on a stream socket; a single bad CRC means a framing bug or a
torn write, and the only safe reaction is to drop the worker.

``request_id`` matches responses to requests.  The client serializes
round-trips under a mutex, but a deadline-abandoned exchange can leave a
stale response in the stream; discarding frames whose id predates the
current request keeps one late answer from skewing every call after it.

The worker announces itself with one ``MSG_HELLO`` frame (magic, protocol
version, pid, supports_probes, epoch, label) before serving; a version
mismatch fails fast at spawn, not mid-query.

Message kind numbers are wire-stable: never renumber, only append.
"""

from __future__ import annotations

import socket
import struct
import zlib
from typing import NamedTuple, Tuple

from ..core.errors import WireProtocolError

#: Protocol version spoken by this build (bump on incompatible change).
PROTOCOL_VERSION = 1

#: Magic prefix of the HELLO payload.
HELLO_MAGIC = b"RPRORPC\x01"

#: Frames larger than this are a bug, not a payload (64 MiB, comfortably
#: above the replication log's 16 MiB record cap).
MAX_FRAME = 64 * 1024 * 1024

#: Frame flag: the caller holds an active tracer; the worker should record
#: its own spans and attach them to the response.
FLAG_TRACE = 0x01

# -- message kinds (wire values; never renumber) --------------------------------

MSG_HELLO = 0x01

REQ_PING = 0x10
REQ_RESOLVE = 0x11
REQ_BATCH = 0x12
REQ_INSERT = 0x13
REQ_DELETE = 0x14
REQ_BULK = 0x15
REQ_SET_META = 0x16
REQ_EPOCH = 0x17
REQ_SYNC_EPOCH = 0x18
REQ_STATS = 0x19
REQ_RESTORE = 0x1A
REQ_SHUTDOWN = 0x1F

RESP_OK = 0x7E
RESP_ERR = 0x7F

_PREFIX = struct.Struct("<II")  # length, crc
_HEADER = struct.Struct("<BBI")  # kind, flags, request_id
_HELLO = struct.Struct("<8sHIBQ")  # magic, version, pid, supports_probes, epoch


class Hello(NamedTuple):
    """The worker's self-description, sent once before serving."""

    version: int
    pid: int
    supports_probes: bool
    epoch: int
    label: str


def send_frame(
    sock: socket.socket, kind: int, flags: int, request_id: int, payload: bytes
) -> int:
    """Write one frame; returns the bytes put on the wire."""
    body = _HEADER.pack(kind, flags, request_id) + payload
    if len(body) > MAX_FRAME:
        raise WireProtocolError(f"frame of {len(body)} bytes exceeds MAX_FRAME ({MAX_FRAME})")
    frame = _PREFIX.pack(len(body), zlib.crc32(body)) + body
    sock.sendall(frame)
    return len(frame)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes; EOFError on a clean close, mid-read or not."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError(f"connection closed with {remaining} of {n} bytes unread")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[int, int, int, bytes]:
    """Read one frame; returns ``(kind, flags, request_id, payload)``.

    Raises :class:`EOFError` on a closed peer and
    :class:`~repro.core.errors.WireProtocolError` on a CRC or size
    violation — the caller decides whether either means a dead worker.
    """
    length, crc = _PREFIX.unpack(_recv_exact(sock, _PREFIX.size))
    if not _HEADER.size <= length <= MAX_FRAME:
        raise WireProtocolError(f"frame length {length} outside [{_HEADER.size}, {MAX_FRAME}]")
    body = _recv_exact(sock, length)
    if zlib.crc32(body) != crc:
        raise WireProtocolError("frame CRC mismatch (torn write or framing bug)")
    kind, flags, request_id = _HEADER.unpack_from(body, 0)
    return kind, flags, request_id, body[_HEADER.size :]


def encode_hello(pid: int, supports_probes: bool, epoch: int, label: str) -> bytes:
    raw_label = label.encode("utf-8")[:0xFFFF]
    return (
        _HELLO.pack(HELLO_MAGIC, PROTOCOL_VERSION, pid, 1 if supports_probes else 0, epoch)
        + struct.pack("<H", len(raw_label))
        + raw_label
    )


def decode_hello(payload: bytes) -> Hello:
    if len(payload) < _HELLO.size + 2:
        raise WireProtocolError(f"hello payload truncated ({len(payload)} bytes)")
    magic, version, pid, probes, epoch = _HELLO.unpack_from(payload, 0)
    if magic != HELLO_MAGIC:
        raise WireProtocolError(f"bad hello magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise WireProtocolError(
            f"worker speaks protocol v{version}, this client speaks v{PROTOCOL_VERSION}"
        )
    (label_len,) = struct.unpack_from("<H", payload, _HELLO.size)
    start = _HELLO.size + 2
    if len(payload) != start + label_len:
        raise WireProtocolError("hello label length mismatch")
    label = payload[start:].decode("utf-8")
    return Hello(version, pid, bool(probes), epoch, label)


__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "FLAG_TRACE",
    "MSG_HELLO",
    "REQ_PING",
    "REQ_RESOLVE",
    "REQ_BATCH",
    "REQ_INSERT",
    "REQ_DELETE",
    "REQ_BULK",
    "REQ_SET_META",
    "REQ_EPOCH",
    "REQ_SYNC_EPOCH",
    "REQ_STATS",
    "REQ_RESTORE",
    "REQ_SHUTDOWN",
    "RESP_OK",
    "RESP_ERR",
    "Hello",
    "send_frame",
    "recv_frame",
    "encode_hello",
    "decode_hello",
]
