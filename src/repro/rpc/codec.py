"""Payload codecs for the worker wire protocol.

Framing lives in :mod:`repro.rpc.wire`; this module is purely the payload
layer, mirroring the replication log's codec discipline
(:mod:`repro.replog.records`): little-endian fixed-layout ``struct`` packs
of IEEE-754 doubles, strict trailing-byte checks, and wire-stable tag
numbers that are only ever appended to.

Three building blocks cover every verb:

* **values** — a tagged union: ``0`` float, ``1``
  :class:`~repro.core.values.SumCount`, ``2`` pickle fallback (polynomials
  and third-party value types).  Doubles cross the wire as their exact
  bit patterns, so a multiprocess answer is bit-identical to an
  in-process one by construction;
* **probe identities** — the ``(key, point)`` pairs of
  :mod:`repro.service.planner`; corner keys are flat sign tuples, EO82
  keys are ``(dims_subset, sides)`` pairs, anything else falls back to
  pickle;
* **errors** — stable error codes (table below) plus per-code attribute
  payloads, so :class:`~repro.core.errors.ServiceOverloadedError` arrives
  with its ``inflight``/``queue_depth`` intact and retryable-overload
  classification in :class:`~repro.resilience.group.ReplicaGroup` works
  identically across the process boundary.

Error codes (wire values; never renumber):

=====  ==========================================================
``0``  unknown remote exception (class name + message carried)
``1``  :class:`~repro.core.errors.ServiceOverloadedError`
``2``  :class:`~repro.core.errors.ServiceClosedError`
``3``  :class:`~repro.core.errors.ShardUnavailableError`
``4``  :class:`~repro.core.errors.NotSupportedError`
``5``  :class:`~repro.core.errors.PageCorruptionError`
``6``  :class:`~repro.core.errors.InvalidQueryError`
``7``  :class:`~repro.core.errors.DimensionMismatchError`
=====  ==========================================================
"""

from __future__ import annotations

import json
import pickle
import struct
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import (
    DimensionMismatchError,
    InvalidQueryError,
    NotSupportedError,
    PageCorruptionError,
    RpcError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardUnavailableError,
    WireProtocolError,
)
from ..approx.bounds import ApproxResult
from ..core.geometry import Box
from ..core.values import BoundedValue, SumCount
from ..resilience.partial import PartialResult
from ..service.service import BatchResult, ProbeSnapshot

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

# -- value codec (tagged union) --------------------------------------------------

VALUE_FLOAT = 0
VALUE_SUMCOUNT = 1
VALUE_PICKLE = 2
VALUE_BOUNDED = 3


def _pack_value(parts: List[bytes], value: object) -> None:
    if type(value) is float or type(value) is int:
        parts.append(_U8.pack(VALUE_FLOAT))
        parts.append(_F64.pack(float(value)))
    elif isinstance(value, SumCount):
        parts.append(_U8.pack(VALUE_SUMCOUNT))
        parts.append(struct.pack("<dd", value.total, value.count))
    elif isinstance(value, BoundedValue):
        parts.append(_U8.pack(VALUE_BOUNDED))
        parts.append(struct.pack("<ddd", value.lo, value.hi, value.estimate))
    else:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        parts.append(_U8.pack(VALUE_PICKLE))
        parts.append(_U32.pack(len(blob)))
        parts.append(blob)


def _unpack_value(payload: bytes, offset: int) -> Tuple[object, int]:
    (tag,) = _U8.unpack_from(payload, offset)
    offset += _U8.size
    if tag == VALUE_FLOAT:
        (value,) = _F64.unpack_from(payload, offset)
        return value, offset + _F64.size
    if tag == VALUE_SUMCOUNT:
        total, count = struct.unpack_from("<dd", payload, offset)
        return SumCount(total, count), offset + 16
    if tag == VALUE_BOUNDED:
        lo, hi, estimate = struct.unpack_from("<ddd", payload, offset)
        return BoundedValue(lo, hi, estimate), offset + 24
    if tag == VALUE_PICKLE:
        (length,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        value = pickle.loads(payload[offset : offset + length])
        return value, offset + length
    raise WireProtocolError(f"unknown value tag {tag}")


# -- geometry codec --------------------------------------------------------------


def _pack_point(parts: List[bytes], point: Sequence[float]) -> None:
    parts.append(_U16.pack(len(point)))
    parts.append(struct.pack(f"<{len(point)}d", *point))


def _unpack_point(payload: bytes, offset: int) -> Tuple[Tuple[float, ...], int]:
    (n,) = _U16.unpack_from(payload, offset)
    offset += _U16.size
    point = struct.unpack_from(f"<{n}d", payload, offset)
    return point, offset + 8 * n


def _pack_box(parts: List[bytes], box: Box) -> None:
    dims = box.dims
    parts.append(_U16.pack(dims))
    parts.append(struct.pack(f"<{2 * dims}d", *box.low, *box.high))


def _unpack_box(payload: bytes, offset: int) -> Tuple[Box, int]:
    (dims,) = _U16.unpack_from(payload, offset)
    offset += _U16.size
    coords = struct.unpack_from(f"<{2 * dims}d", payload, offset)
    return Box(coords[:dims], coords[dims:]), offset + 16 * dims


def _pack_boxes(parts: List[bytes], boxes: Sequence[Box]) -> None:
    parts.append(_U32.pack(len(boxes)))
    for box in boxes:
        _pack_box(parts, box)


def _unpack_boxes(payload: bytes, offset: int) -> Tuple[List[Box], int]:
    (count,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    boxes = []
    for _ in range(count):
        box, offset = _unpack_box(payload, offset)
        boxes.append(box)
    return boxes, offset


# -- probe identity codec --------------------------------------------------------

KEY_SIGNS = 0  # corner reduction: flat tuple of small ints
KEY_EO82 = 1  # EO82 reduction: (dims_subset, sides) pair of int tuples
KEY_PICKLE = 2  # anything else


def _pack_key(parts: List[bytes], key: object) -> None:
    if (
        isinstance(key, tuple)
        and key
        and all(isinstance(x, int) and 0 <= x <= 0xFF for x in key)
    ):
        parts.append(_U8.pack(KEY_SIGNS))
        parts.append(_U8.pack(len(key)))
        parts.append(bytes(key))
    elif (
        isinstance(key, tuple)
        and len(key) == 2
        and all(
            isinstance(half, tuple) and all(isinstance(x, int) and 0 <= x <= 0xFF for x in half)
            for half in key
        )
    ):
        dims_subset, sides = key
        parts.append(_U8.pack(KEY_EO82))
        parts.append(_U8.pack(len(dims_subset)))
        parts.append(bytes(dims_subset))
        parts.append(_U8.pack(len(sides)))
        parts.append(bytes(sides))
    else:
        blob = pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
        parts.append(_U8.pack(KEY_PICKLE))
        parts.append(_U32.pack(len(blob)))
        parts.append(blob)


def _unpack_key(payload: bytes, offset: int) -> Tuple[object, int]:
    (tag,) = _U8.unpack_from(payload, offset)
    offset += _U8.size
    if tag == KEY_SIGNS:
        (n,) = _U8.unpack_from(payload, offset)
        offset += _U8.size
        return tuple(payload[offset : offset + n]), offset + n
    if tag == KEY_EO82:
        (n,) = _U8.unpack_from(payload, offset)
        offset += _U8.size
        dims_subset = tuple(payload[offset : offset + n])
        offset += n
        (m,) = _U8.unpack_from(payload, offset)
        offset += _U8.size
        sides = tuple(payload[offset : offset + m])
        return (dims_subset, sides), offset + m
    if tag == KEY_PICKLE:
        (length,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        return pickle.loads(payload[offset : offset + length]), offset + length
    raise WireProtocolError(f"unknown probe-key tag {tag}")


def encode_identities(identities: Sequence[Tuple[object, Tuple[float, ...]]]) -> bytes:
    parts: List[bytes] = [_U32.pack(len(identities))]
    for key, point in identities:
        _pack_key(parts, key)
        _pack_point(parts, point)
    return b"".join(parts)


def decode_identities(payload: bytes) -> List[Tuple[object, Tuple[float, ...]]]:
    (count,) = _U32.unpack_from(payload, 0)
    offset = _U32.size
    identities = []
    for _ in range(count):
        key, offset = _unpack_key(payload, offset)
        point, offset = _unpack_point(payload, offset)
        identities.append((key, point))
    _check_consumed(payload, offset, "identities")
    return identities


def _check_consumed(payload: bytes, offset: int, what: str) -> None:
    if offset != len(payload):
        raise WireProtocolError(
            f"trailing bytes in {what} payload ({len(payload) - offset} unread)"
        )


# -- request codecs --------------------------------------------------------------


def encode_queries(queries: Sequence[Box]) -> bytes:
    parts: List[bytes] = []
    _pack_boxes(parts, queries)
    return b"".join(parts)


def decode_queries(payload: bytes) -> List[Box]:
    boxes, offset = _unpack_boxes(payload, 0)
    _check_consumed(payload, offset, "queries")
    return boxes


def encode_object(box: Box, value: float) -> bytes:
    parts: List[bytes] = []
    _pack_box(parts, box)
    parts.append(_F64.pack(float(value)))
    return b"".join(parts)


def decode_object(payload: bytes) -> Tuple[Box, float]:
    box, offset = _unpack_box(payload, 0)
    (value,) = _F64.unpack_from(payload, offset)
    _check_consumed(payload, offset + _F64.size, "object")
    return box, value


def encode_objects(objects: Sequence[Tuple[Box, float]]) -> bytes:
    parts: List[bytes] = [_U32.pack(len(objects))]
    for box, value in objects:
        _pack_box(parts, box)
        parts.append(_F64.pack(float(value)))
    return b"".join(parts)


def _unpack_objects(payload: bytes, offset: int) -> Tuple[List[Tuple[Box, float]], int]:
    (count,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    objects = []
    for _ in range(count):
        box, offset = _unpack_box(payload, offset)
        (value,) = _F64.unpack_from(payload, offset)
        offset += _F64.size
        objects.append((box, value))
    return objects, offset


def decode_objects(payload: bytes) -> List[Tuple[Box, float]]:
    objects, offset = _unpack_objects(payload, 0)
    _check_consumed(payload, offset, "objects")
    return objects


def encode_meta(key: str, blob: bytes) -> bytes:
    raw = key.encode("utf-8")
    return _U16.pack(len(raw)) + _U32.pack(len(blob)) + raw + bytes(blob)


def decode_meta(payload: bytes) -> Tuple[str, bytes]:
    (key_len,) = _U16.unpack_from(payload, 0)
    (blob_len,) = _U32.unpack_from(payload, _U16.size)
    start = _U16.size + _U32.size
    if len(payload) != start + key_len + blob_len:
        raise WireProtocolError("set_meta payload length mismatch")
    return payload[start : start + key_len].decode("utf-8"), payload[start + key_len :]


def encode_epoch(epoch: int) -> bytes:
    return _U64.pack(epoch)


def decode_epoch(payload: bytes) -> int:
    (epoch,) = _U64.unpack_from(payload, 0)
    _check_consumed(payload, _U64.size, "epoch")
    return epoch


# -- response codecs -------------------------------------------------------------


def encode_snapshot(snapshot: ProbeSnapshot) -> bytes:
    parts: List[bytes] = [
        _U64.pack(snapshot.epoch),
        _U32.pack(snapshot.probes_executed),
        _U32.pack(snapshot.probe_cache_hits),
    ]
    _pack_value(parts, snapshot.base)
    _pack_value(parts, snapshot.total)
    parts.append(_U32.pack(len(snapshot.values)))
    for value in snapshot.values:
        _pack_value(parts, value)
    return b"".join(parts)


def decode_snapshot(payload: bytes) -> ProbeSnapshot:
    (epoch,) = _U64.unpack_from(payload, 0)
    offset = _U64.size
    (executed,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    (hits,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    base, offset = _unpack_value(payload, offset)
    total, offset = _unpack_value(payload, offset)
    (count,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    values: List[object] = []
    for _ in range(count):
        value, offset = _unpack_value(payload, offset)
        values.append(value)
    _check_consumed(payload, offset, "snapshot")
    return ProbeSnapshot(
        values=values,
        base=base,
        total=total,
        epoch=epoch,
        probes_executed=executed,
        probe_cache_hits=hits,
    )


def encode_batch_result(result: BatchResult) -> bytes:
    parts: List[bytes] = [
        _U64.pack(result.epoch),
        _U32.pack(result.result_cache_hits),
        _U32.pack(result.probes_planned),
        _U32.pack(result.probes_unique),
        _U32.pack(result.probes_executed),
        _U32.pack(result.probe_cache_hits),
        _F64.pack(result.queue_wait_s),
        _U32.pack(len(result.results)),
    ]
    for value in result.results:
        _pack_value(parts, value)
    return b"".join(parts)


def decode_batch_result(payload: bytes) -> BatchResult:
    (epoch,) = _U64.unpack_from(payload, 0)
    offset = _U64.size
    counters = []
    for _ in range(5):
        (n,) = _U32.unpack_from(payload, offset)
        counters.append(n)
        offset += _U32.size
    (queue_wait_s,) = _F64.unpack_from(payload, offset)
    offset += _F64.size
    (count,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    results: List[object] = []
    for _ in range(count):
        value, offset = _unpack_value(payload, offset)
        results.append(value)
    _check_consumed(payload, offset, "batch result")
    return BatchResult(
        results=results,
        epoch=epoch,
        result_cache_hits=counters[0],
        probes_planned=counters[1],
        probes_unique=counters[2],
        probes_executed=counters[3],
        probe_cache_hits=counters[4],
        queue_wait_s=queue_wait_s,
    )


def encode_stats(stats: Dict[str, object]) -> bytes:
    return json.dumps(stats, sort_keys=True, default=float).encode("utf-8")


def decode_stats(payload: bytes) -> Dict[str, object]:
    return json.loads(payload.decode("utf-8"))


# -- restore codec (log-driven worker bootstrap) ---------------------------------


def encode_restore(
    objects: Sequence[Tuple[Box, float]],
    negatives: Sequence[Tuple[Box, float, int]],
    meta: Sequence[Tuple[str, bytes]],
) -> bytes:
    """One-shot restore payload: the materialization of a ``LogicalState``.

    Shipping the whole logical state in one frame (bulk positives, signed
    negatives, metadata blobs) keeps restore a single round-trip instead of
    one per replayed mutation, and the worker applies it exactly as
    :meth:`~repro.replog.state.LogicalState.materialize` would in-process:
    un-logged bulk load, per-instance deletes, per-blob set_meta.
    """
    parts: List[bytes] = [encode_objects(objects)]
    parts.append(_U32.pack(len(negatives)))
    for box, value, count in negatives:
        _pack_box(parts, box)
        parts.append(_F64.pack(float(value)))
        parts.append(_I32.pack(count))
    parts.append(_U16.pack(len(meta)))
    for key, blob in meta:
        parts.append(encode_meta(key, blob))
    return b"".join(parts)


def decode_restore(
    payload: bytes,
) -> Tuple[List[Tuple[Box, float]], List[Tuple[Box, float, int]], List[Tuple[str, bytes]]]:
    objects, offset = _unpack_objects(payload, 0)
    (n_neg,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    negatives = []
    for _ in range(n_neg):
        box, offset = _unpack_box(payload, offset)
        (value,) = _F64.unpack_from(payload, offset)
        offset += _F64.size
        (count,) = _I32.unpack_from(payload, offset)
        offset += _I32.size
        negatives.append((box, value, count))
    (n_meta,) = _U16.unpack_from(payload, offset)
    offset += _U16.size
    meta = []
    for _ in range(n_meta):
        (key_len,) = _U16.unpack_from(payload, offset)
        (blob_len,) = _U32.unpack_from(payload, offset + _U16.size)
        start = offset + _U16.size + _U32.size
        key = payload[start : start + key_len].decode("utf-8")
        blob = payload[start + key_len : start + key_len + blob_len]
        meta.append((key, blob))
        offset = start + key_len + blob_len
    _check_consumed(payload, offset, "restore")
    return objects, negatives, meta


# -- error codec (stable codes, attribute round-trips) ---------------------------

ERR_UNKNOWN = 0
ERR_OVERLOADED = 1
ERR_CLOSED = 2
ERR_SHARD_UNAVAILABLE = 3
ERR_NOT_SUPPORTED = 4
ERR_CORRUPTION = 5
ERR_INVALID_QUERY = 6
ERR_DIMENSION_MISMATCH = 7

_SIMPLE_ERRORS = {
    ERR_CLOSED: ServiceClosedError,
    ERR_NOT_SUPPORTED: NotSupportedError,
    ERR_CORRUPTION: PageCorruptionError,
    ERR_INVALID_QUERY: InvalidQueryError,
    ERR_DIMENSION_MISMATCH: DimensionMismatchError,
}
_SIMPLE_CODES = {cls: code for code, cls in _SIMPLE_ERRORS.items()}


def _pack_str(parts: List[bytes], text: str) -> None:
    raw = text.encode("utf-8")[:0xFFFF]
    parts.append(_U16.pack(len(raw)))
    parts.append(raw)


def _unpack_str(payload: bytes, offset: int) -> Tuple[str, int]:
    (length,) = _U16.unpack_from(payload, offset)
    offset += _U16.size
    return payload[offset : offset + length].decode("utf-8"), offset + length


def _pack_opt_int(parts: List[bytes], value: Optional[int]) -> None:
    if value is None:
        parts.append(_U8.pack(0))
    else:
        parts.append(_U8.pack(1))
        parts.append(_I64.pack(int(value)))


def _unpack_opt_int(payload: bytes, offset: int) -> Tuple[Optional[int], int]:
    (present,) = _U8.unpack_from(payload, offset)
    offset += _U8.size
    if not present:
        return None, offset
    (value,) = _I64.unpack_from(payload, offset)
    return value, offset + _I64.size


def encode_error(exc: BaseException) -> bytes:
    """Serialize an exception to its stable-code wire form."""
    message = getattr(exc, "raw_message", None)
    if message is None:
        message = str(exc)
    if isinstance(exc, ServiceOverloadedError):
        parts: List[bytes] = [_U16.pack(ERR_OVERLOADED)]
        _pack_str(parts, message)
        _pack_opt_int(parts, exc.inflight)
        _pack_opt_int(parts, exc.queue_depth)
        _pack_opt_int(parts, exc.shard)
        return b"".join(parts)
    if isinstance(exc, ShardUnavailableError):
        parts = [_U16.pack(ERR_SHARD_UNAVAILABLE)]
        _pack_str(parts, message)
        _pack_opt_int(parts, exc.shard)
        _pack_opt_int(parts, exc.attempts)
        members = exc.members_tried
        if members is None:
            parts.append(_U8.pack(0))
        else:
            parts.append(_U8.pack(1))
            parts.append(_U16.pack(len(members)))
            for mid in members:
                parts.append(_I32.pack(mid))
        return b"".join(parts)
    code = _SIMPLE_CODES.get(type(exc), ERR_UNKNOWN)
    parts = [_U16.pack(code)]
    _pack_str(parts, message)
    if code == ERR_UNKNOWN:
        _pack_str(parts, type(exc).__name__)
    return b"".join(parts)


class RemoteWorkerError(RpcError):
    """An exception class the wire has no stable code for, re-raised here.

    Carries the remote class name in :attr:`remote_type`; the failover
    loop treats it like any other member failure.
    """

    def __init__(self, message: str, *, remote_type: str = "Exception") -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type


def decode_error(payload: bytes) -> BaseException:
    """Reconstruct the exception a worker shipped (never raises it)."""
    (code,) = _U16.unpack_from(payload, 0)
    offset = _U16.size
    message, offset = _unpack_str(payload, offset)
    if code == ERR_OVERLOADED:
        inflight, offset = _unpack_opt_int(payload, offset)
        queue_depth, offset = _unpack_opt_int(payload, offset)
        shard, offset = _unpack_opt_int(payload, offset)
        return ServiceOverloadedError(
            message, inflight=inflight, queue_depth=queue_depth, shard=shard
        )
    if code == ERR_SHARD_UNAVAILABLE:
        shard, offset = _unpack_opt_int(payload, offset)
        attempts, offset = _unpack_opt_int(payload, offset)
        (present,) = _U8.unpack_from(payload, offset)
        offset += _U8.size
        members: Optional[Tuple[int, ...]] = None
        if present:
            (count,) = _U16.unpack_from(payload, offset)
            offset += _U16.size
            mids = []
            for _ in range(count):
                (mid,) = _I32.unpack_from(payload, offset)
                offset += _I32.size
                mids.append(mid)
            members = tuple(mids)
        return ShardUnavailableError(
            message, shard=shard, attempts=attempts, members_tried=members
        )
    if code in _SIMPLE_ERRORS:
        return _SIMPLE_ERRORS[code](message)
    remote_type, offset = _unpack_str(payload, offset)
    return RemoteWorkerError(message, remote_type=remote_type)


# -- PartialResult codec ---------------------------------------------------------


def encode_partial_result(partial: PartialResult) -> bytes:
    """Round-trip codec for the degraded-batch value (wire-safe seam)."""
    parts: List[bytes] = [_U32.pack(len(partial.results))]
    for value in partial.results:
        _pack_value(parts, value)
    parts.append(_U16.pack(len(partial.answered)))
    for sid in partial.answered:
        parts.append(_I32.pack(sid))
    parts.append(_U16.pack(len(partial.missing)))
    for sid in partial.missing:
        parts.append(_I32.pack(sid))
        extent = partial.missing_extents.get(sid)
        if extent is None:
            parts.append(_U8.pack(0))
        else:
            parts.append(_U8.pack(1))
            _pack_box(parts, extent)
    queries = partial._queries
    if queries is None:
        parts.append(_U8.pack(0))
    else:
        parts.append(_U8.pack(1))
        _pack_boxes(parts, queries)
    return b"".join(parts)


def decode_partial_result(payload: bytes) -> PartialResult:
    (n_results,) = _U32.unpack_from(payload, 0)
    offset = _U32.size
    results: List[object] = []
    for _ in range(n_results):
        value, offset = _unpack_value(payload, offset)
        results.append(value)
    (n_answered,) = _U16.unpack_from(payload, offset)
    offset += _U16.size
    answered = []
    for _ in range(n_answered):
        (sid,) = _I32.unpack_from(payload, offset)
        offset += _I32.size
        answered.append(sid)
    (n_missing,) = _U16.unpack_from(payload, offset)
    offset += _U16.size
    missing = []
    extents: Dict[int, Optional[Box]] = {}
    for _ in range(n_missing):
        (sid,) = _I32.unpack_from(payload, offset)
        offset += _I32.size
        (present,) = _U8.unpack_from(payload, offset)
        offset += _U8.size
        extent: Optional[Box] = None
        if present:
            extent, offset = _unpack_box(payload, offset)
        missing.append(sid)
        extents[sid] = extent
    (has_queries,) = _U8.unpack_from(payload, offset)
    offset += _U8.size
    queries: Optional[List[Box]] = None
    if has_queries:
        queries, offset = _unpack_boxes(payload, offset)
    _check_consumed(payload, offset, "partial result")
    return PartialResult(
        results,
        answered=answered,
        missing=missing,
        missing_extents=extents,
        queries=queries,
    )


# -- ApproxResult codec ----------------------------------------------------------


def encode_approx_result(result: ApproxResult) -> bytes:
    """Round-trip codec for certified bounded answers (wire kind for degradation)."""
    parts: List[bytes] = [_U32.pack(len(result.results))]
    for bv in result.results:
        parts.append(struct.pack("<ddd", bv.lo, bv.hi, bv.estimate))
    _pack_str(parts, result.reason)
    parts.append(_U64.pack(result.version))
    parts.append(_U64.pack(result.staleness))
    parts.append(_U64.pack(result.probes))
    parts.append(_U16.pack(len(result.answered)))
    for sid in result.answered:
        parts.append(_I32.pack(sid))
    parts.append(_U16.pack(len(result.approximated)))
    for sid in result.approximated:
        parts.append(_I32.pack(sid))
    queries = result.queries
    if queries is None:
        parts.append(_U8.pack(0))
    else:
        parts.append(_U8.pack(1))
        _pack_boxes(parts, queries)
    return b"".join(parts)


def decode_approx_result(payload: bytes) -> ApproxResult:
    (n_results,) = _U32.unpack_from(payload, 0)
    offset = _U32.size
    results: List[BoundedValue] = []
    for _ in range(n_results):
        lo, hi, estimate = struct.unpack_from("<ddd", payload, offset)
        offset += 24
        results.append(BoundedValue(lo, hi, estimate))
    reason, offset = _unpack_str(payload, offset)
    (version,) = _U64.unpack_from(payload, offset)
    offset += _U64.size
    (staleness,) = _U64.unpack_from(payload, offset)
    offset += _U64.size
    (probes,) = _U64.unpack_from(payload, offset)
    offset += _U64.size
    (n_answered,) = _U16.unpack_from(payload, offset)
    offset += _U16.size
    answered = []
    for _ in range(n_answered):
        (sid,) = _I32.unpack_from(payload, offset)
        offset += _I32.size
        answered.append(sid)
    (n_approximated,) = _U16.unpack_from(payload, offset)
    offset += _U16.size
    approximated = []
    for _ in range(n_approximated):
        (sid,) = _I32.unpack_from(payload, offset)
        offset += _I32.size
        approximated.append(sid)
    (has_queries,) = _U8.unpack_from(payload, offset)
    offset += _U8.size
    queries: Optional[List[Box]] = None
    if has_queries:
        queries, offset = _unpack_boxes(payload, offset)
    _check_consumed(payload, offset, "approx result")
    return ApproxResult(
        results,
        reason=reason,
        approximated=approximated,
        answered=answered,
        version=version,
        staleness=staleness,
        probes=probes,
        queries=queries,
    )


__all__ = [
    "ERR_UNKNOWN",
    "ERR_OVERLOADED",
    "ERR_CLOSED",
    "ERR_SHARD_UNAVAILABLE",
    "ERR_NOT_SUPPORTED",
    "ERR_CORRUPTION",
    "ERR_INVALID_QUERY",
    "ERR_DIMENSION_MISMATCH",
    "RemoteWorkerError",
    "encode_identities",
    "decode_identities",
    "encode_queries",
    "decode_queries",
    "encode_object",
    "decode_object",
    "encode_objects",
    "decode_objects",
    "encode_meta",
    "decode_meta",
    "encode_epoch",
    "decode_epoch",
    "encode_snapshot",
    "decode_snapshot",
    "encode_batch_result",
    "decode_batch_result",
    "encode_stats",
    "decode_stats",
    "encode_restore",
    "decode_restore",
    "encode_error",
    "decode_error",
    "encode_partial_result",
    "decode_partial_result",
    "encode_approx_result",
    "decode_approx_result",
]
