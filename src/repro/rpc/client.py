"""``WorkerClient``: the parent-side half of a multiprocess shard worker.

Duck-types the :class:`~repro.service.service.QueryService` surface that
:class:`~repro.shard.router.ShardRouter`,
:class:`~repro.shard.cluster.ShardedService` and
:class:`~repro.resilience.group.ReplicaGroup` consume — every verb becomes
one framed round-trip to a child process hosting the real service.  The
existing breaker / deadline / hedged-read machinery wraps this transport
unchanged: a crashed worker surfaces as
:class:`~repro.core.errors.WorkerCrashedError` from an ordinary method
call, which the failover loop treats exactly like any other member
failure.

Design notes:

* **planning twin** — ``.index`` is a parent-side *empty* index built from
  the same spec.  The router only ever uses a shard's index for planning
  (``probe_plan`` / ``zero`` / ``box_sum_from_probes``), which is
  data-independent, so the twin never needs the worker's objects.  Restores
  bypass it entirely (:meth:`WorkerClient.restore_state` ships the logical
  state over the wire instead of mutating the twin).
* **one mutex, matched ids** — round-trips are serialized per client;
  responses carry the request id and stale frames (from an exchange a
  previous caller abandoned mid-crash) are discarded, so one late answer
  can never skew every call after it.
* **client-side oplog** — an attached replication log is appended *after*
  the worker acks the mutation, still under the client mutex, preserving
  the ``epoch = base_epoch + LSN`` invariant the log-shipping layer
  relies on.  Replicated clusters attach the log at the group level
  instead, exactly as with in-process members.
* **lifecycle escalation** — :meth:`close` drains with a graceful
  SHUTDOWN round-trip (bounded by ``shutdown_timeout``), then
  ``terminate()``, then ``kill()``; no worker child outlives its cluster.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import struct
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import (
    NotSupportedError,
    ServiceClosedError,
    WireProtocolError,
    WorkerCrashedError,
)
from ..core.geometry import Box
from ..obs import trace as _trace
from ..obs.registry import MetricsRegistry, get_registry
from ..replog.digest import StateDigest
from ..replog.records import BulkLoadOp, DeleteOp, InsertOp, SetMetaOp
from ..service.service import BatchResult, ProbeSnapshot
from . import codec, wire
from .worker import WorkerSpec, build_index, worker_main

_TRACE_LEN = struct.Struct("<I")

#: Seconds to wait for the worker's HELLO after spawn.
START_TIMEOUT_S = 30.0

#: RPC latency histogram buckets (seconds).
RPC_LATENCY_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0)


def _fork_context():
    methods = multiprocessing.get_all_start_methods()
    if "fork" not in methods:
        raise NotSupportedError(
            "process workers need the 'fork' start method (sockets and specs "
            f"are inherited, not pickled); this platform offers {methods}"
        )
    return multiprocessing.get_context("fork")


class WorkerClient:
    """One shard served by a child process, behind the QueryService surface.

    Parameters
    ----------
    spec:
        The :class:`~repro.rpc.worker.WorkerSpec` the child builds its
        index and service from.
    oplog:
        Optional parent-side :class:`~repro.replog.ReplicationLog`; every
        acked mutation appends one record (see module docstring).
    planning_index:
        The parent-side planning twin; built from the spec when omitted.
    shutdown_timeout:
        Deadline (seconds) for each stage of the close escalation.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        *,
        registry: Optional[MetricsRegistry] = None,
        oplog=None,
        planning_index=None,
        shutdown_timeout: float = 5.0,
    ) -> None:
        self.spec = spec
        self.label = spec.label
        self.oplog = oplog
        self.shutdown_timeout = shutdown_timeout
        self.index = planning_index if planning_index is not None else build_index(spec)
        self._supports_probes = bool(getattr(self.index, "supports_probes", False))
        self._lock = threading.RLock()
        self._next_rid = 1
        self._closed = False
        self._crashed = False
        self._last_epoch = 0
        #: Parent-side stream digest of the worker's applied mutations —
        #: maintained on ack, so the divergence audit never needs a
        #: round-trip to a possibly-dead child.
        self._digest = StateDigest()
        self._sock: Optional[socket.socket] = None
        self._proc = None
        self._stats_lock = threading.Lock()
        self._counts: Dict[str, float] = {
            "requests": 0.0,
            "errors": 0.0,
            "crashes": 0.0,
            "restarts": 0.0,
            "bytes_sent": 0.0,
            "bytes_received": 0.0,
        }
        registry = registry if registry is not None else get_registry()
        self._m_requests = registry.counter(
            "repro_rpc_requests", "worker round-trips, by verb and outcome"
        )
        self._m_bytes = registry.counter(
            "repro_rpc_bytes", "bytes framed on the worker wire, by direction"
        )
        self._m_latency = registry.histogram(
            "repro_rpc_latency_seconds",
            "round-trip seconds per worker call",
            buckets=RPC_LATENCY_BUCKETS,
        )
        self._m_restarts = registry.counter(
            "repro_rpc_restarts", "worker processes respawned after a crash"
        )
        self._m_live = registry.gauge("repro_rpc_workers_live", "worker children alive")
        with self._lock:
            self._spawn_locked()

    # -- process lifecycle -----------------------------------------------------------

    def _spawn_locked(self) -> None:
        ctx = _fork_context()
        parent_sock, child_sock = socket.socketpair()
        proc = ctx.Process(
            target=worker_main,
            args=(child_sock, parent_sock, self.spec),
            daemon=True,
            name=f"repro-rpc[{self.label}]",
        )
        proc.start()
        child_sock.close()
        try:
            parent_sock.settimeout(START_TIMEOUT_S)
            kind, _flags, _rid, payload = wire.recv_frame(parent_sock)
            if kind != wire.MSG_HELLO:
                raise WireProtocolError(f"expected HELLO, got kind 0x{kind:02x}")
            hello = wire.decode_hello(payload)
            parent_sock.settimeout(None)
        except Exception:
            parent_sock.close()
            proc.terminate()
            proc.join(self.shutdown_timeout)
            raise
        self._sock = parent_sock
        self._proc = proc
        self._hello = hello
        self._last_epoch = hello.epoch
        self._m_live.set(1.0, label=self.label)

    @property
    def pid(self) -> Optional[int]:
        """The worker child's pid (None before spawn)."""
        return self._proc.pid if self._proc is not None else None

    @property
    def crashed(self) -> bool:
        """True once a call failed because the worker process died."""
        return self._crashed

    def restart(self) -> int:
        """Respawn a dead worker as a fresh, *empty* process; returns its pid.

        The new worker holds no objects: the caller must restore it (the
        replica-group path runs ``catch_up`` → ``restore_into`` →
        :meth:`restore_state` right after).  Restarting a healthy worker is
        refused — kill it first or use close().
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError(f"worker client {self.label!r} is closed")
            self._reap_locked()
            self._spawn_locked()
            self._crashed = False
            # The fresh child holds no objects; the stream digest must say
            # so until a restore re-seeds both sides together.
            self._digest = StateDigest()
        with self._stats_lock:
            self._counts["restarts"] += 1
        self._m_restarts.inc(label=self.label)
        return self.pid

    def _reap_locked(self) -> None:
        """Tear down the current child: socket, then join→terminate→kill."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        proc = self._proc
        if proc is None:
            return
        proc.join(self.shutdown_timeout)
        if proc.is_alive():
            proc.terminate()
            proc.join(self.shutdown_timeout)
        if proc.is_alive():
            proc.kill()
            proc.join(self.shutdown_timeout)
        self._proc = None
        self._m_live.set(0.0, label=self.label)

    def close(self) -> None:
        """Graceful drain → terminate → kill escalation; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._sock is not None and not self._crashed:
                try:
                    self._sock.settimeout(self.shutdown_timeout)
                    rid = self._next_rid
                    self._next_rid += 1
                    wire.send_frame(self._sock, wire.REQ_SHUTDOWN, 0, rid, b"")
                    while True:
                        _kind, _flags, rrid, _payload = wire.recv_frame(self._sock)
                        if rrid == rid:
                            break
                except (EOFError, OSError, WireProtocolError):
                    pass  # escalation below reaps regardless
            self._reap_locked()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerClient":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- the round-trip core ---------------------------------------------------------

    def _mark_crashed(self) -> None:
        self._crashed = True
        self._m_live.set(0.0, label=self.label)
        with self._stats_lock:
            self._counts["crashes"] += 1

    def _exchange_locked(self, kind: int, payload: bytes, flags: int) -> bytes:
        """One send/recv under the client mutex; returns the result payload.

        Raises the decoded remote error on RESP_ERR, WorkerCrashedError
        when the process died mid-call.  Worker-side trace spans (when
        requested) are grafted onto the active tracer here.
        """
        if self._closed:
            raise ServiceClosedError(f"worker client {self.label!r} is closed")
        if self._crashed or self._sock is None:
            raise WorkerCrashedError(
                f"worker {self.label!r} (pid {self.pid}) is dead; restart() + catch_up to revive"
            )
        rid = self._next_rid
        self._next_rid += 1
        try:
            sent = wire.send_frame(self._sock, kind, flags, rid, payload)
            while True:
                rkind, rflags, rrid, rpayload = wire.recv_frame(self._sock)
                if rrid == rid:
                    break
                if rrid > rid:
                    raise WireProtocolError(f"response id {rrid} from the future (sent {rid})")
                # A stale frame from an abandoned exchange: drop and re-read.
        except (EOFError, OSError, WireProtocolError) as exc:
            self._mark_crashed()
            raise WorkerCrashedError(
                f"worker {self.label!r} (pid {self.pid}) died mid-call: {exc}"
            ) from exc
        with self._stats_lock:
            self._counts["bytes_sent"] += sent
            self._counts["bytes_received"] += len(rpayload)
        self._m_bytes.inc(sent, direction="sent", label=self.label)
        self._m_bytes.inc(len(rpayload), direction="received", label=self.label)
        if rkind == wire.RESP_ERR:
            raise codec.decode_error(rpayload)
        if rkind != wire.RESP_OK:
            self._mark_crashed()
            raise WorkerCrashedError(f"worker {self.label!r} sent unknown kind 0x{rkind:02x}")
        (trace_len,) = _TRACE_LEN.unpack_from(rpayload, 0)
        result = rpayload[_TRACE_LEN.size + trace_len :]
        if trace_len:
            tracer = _trace._ACTIVE
            if tracer is not None:
                blob = rpayload[_TRACE_LEN.size : _TRACE_LEN.size + trace_len]
                try:
                    tracer.event(
                        "rpc_worker_trace", worker=self.label, trace=json.loads(blob)
                    )
                except (ValueError, UnicodeDecodeError):
                    pass  # a mangled trace must never fail the call
        return result

    def _call(self, kind: int, payload: bytes, *, verb: str, record=None) -> bytes:
        tracer = _trace._ACTIVE
        flags = wire.FLAG_TRACE if tracer is not None else 0
        start = time.perf_counter()
        outcome = "ok"
        try:
            if tracer is None:
                with self._lock:
                    result = self._exchange_locked(kind, payload, flags)
                    if record is not None:
                        self._digest.note(record)
                        if self.oplog is not None:
                            self.oplog.record(record)
            else:
                with tracer.span("rpc.call", verb=verb, worker=self.label, pid=self.pid):
                    with self._lock:
                        result = self._exchange_locked(kind, payload, flags)
                        if record is not None:
                            self._digest.note(record)
                            if self.oplog is not None:
                                self.oplog.record(record)
            return result
        except WorkerCrashedError:
            outcome = "crash"
            raise
        except ServiceClosedError:
            outcome = "closed"
            raise
        except Exception:
            outcome = "error"
            raise
        finally:
            elapsed = time.perf_counter() - start
            with self._stats_lock:
                self._counts["requests"] += 1
                if outcome not in ("ok", "closed"):
                    self._counts["errors"] += 1
            self._m_requests.inc(verb=verb, outcome=outcome, label=self.label)
            self._m_latency.observe(elapsed, verb=verb, label=self.label)

    # -- queries ---------------------------------------------------------------------

    def resolve_probe_values(self, identities) -> ProbeSnapshot:
        result = self._call(wire.REQ_RESOLVE, codec.encode_identities(identities), verb="resolve")
        return codec.decode_snapshot(result)

    def batch(self, queries: Sequence[Box]) -> BatchResult:
        result = self._call(wire.REQ_BATCH, codec.encode_queries(queries), verb="batch")
        decoded = codec.decode_batch_result(result)
        self._last_epoch = decoded.epoch
        return decoded

    def box_sum_batch(self, queries: Sequence[Box]) -> List[object]:
        return self.batch(queries).results

    def box_sum(self, query: Box) -> object:
        return self.batch([query]).results[0]

    def ping(self, payload: bytes = b"") -> bytes:
        """Liveness probe (round-trips ``payload`` verbatim)."""
        return self._call(wire.REQ_PING, payload, verb="ping")

    # -- mutations -------------------------------------------------------------------

    def _mutation(self, kind: int, payload: bytes, *, verb: str, record) -> int:
        epoch = codec.decode_epoch(self._call(kind, payload, verb=verb, record=record))
        self._last_epoch = epoch
        return epoch

    def insert(self, box: Box, value: float = 1.0) -> int:
        return self._mutation(
            wire.REQ_INSERT,
            codec.encode_object(box, value),
            verb="insert",
            record=InsertOp(box, float(value)),
        )

    def delete(self, box: Box, value: float = 1.0) -> int:
        return self._mutation(
            wire.REQ_DELETE,
            codec.encode_object(box, value),
            verb="delete",
            record=DeleteOp(box, float(value)),
        )

    def bulk_load(self, objects) -> int:
        objects = [(box, float(value)) for box, value in objects]
        return self._mutation(
            wire.REQ_BULK,
            codec.encode_objects(objects),
            verb="bulk_load",
            record=BulkLoadOp(tuple(objects)),
        )

    def set_meta(self, key: str, blob: bytes) -> int:
        return self._mutation(
            wire.REQ_SET_META,
            codec.encode_meta(key, blob),
            verb="set_meta",
            record=SetMetaOp(key, bytes(blob)),
        )

    def mutate(self, fn, op: str = "mutate", record=None) -> int:
        raise NotSupportedError(
            "a WorkerClient cannot ship arbitrary mutation closures across the "
            "process boundary; use the typed verbs (insert/delete/bulk_load/"
            "set_meta) or restore_state"
        )

    # -- log-shipping seam -----------------------------------------------------------

    def restore_state(self, state) -> int:
        """Materialize a :class:`~repro.replog.state.LogicalState` remotely.

        The hook :meth:`LogicalState.materialize` duck-types on: the whole
        state crosses the wire in one un-logged frame (restoring from the
        log must never write the log) and the worker applies it exactly as
        the in-process path would.  Returns the worker's resulting epoch;
        epoch alignment stays the caller's job (``sync_epoch``).
        """
        payload = codec.encode_restore(
            state.expanded(), state.negatives(), sorted(state.meta.items())
        )
        epoch = codec.decode_epoch(self._call(wire.REQ_RESTORE, payload, verb="restore"))
        self._last_epoch = epoch
        with self._lock:
            self._digest = state.digest_state()
        return epoch

    def sync_epoch(self, epoch: int) -> None:
        self._call(wire.REQ_SYNC_EPOCH, codec.encode_epoch(epoch), verb="sync_epoch")
        self._last_epoch = epoch

    def sync_digest(self, digest: StateDigest) -> None:
        """Re-seed the parent-side stream digest after a log-driven restore."""
        with self._lock:
            self._digest = digest.copy()

    @property
    def state_digest(self) -> int:
        """The 64-bit stream digest of acknowledged worker mutations."""
        return self._digest.value

    def checkpoint(self):
        """Checkpoint the client-side oplog at the worker's epoch.

        Holding the client mutex across the epoch fetch and the checkpoint
        pins a mutation boundary: no mutation can interleave, so the
        ``epoch = base_epoch + LSN`` invariant lands in the checkpoint
        exactly as the in-process write-lock variant guarantees.
        """
        if self.oplog is None:
            raise NotSupportedError(f"worker client {self.label!r} has no replication log")
        with self._lock:
            epoch = codec.decode_epoch(self._exchange_locked(wire.REQ_EPOCH, b"", 0))
            self._last_epoch = epoch
            return self.oplog.checkpoint(epoch)

    # -- introspection ---------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The worker's epoch (last known value once closed or crashed)."""
        if self._closed or self._crashed:
            return self._last_epoch
        try:
            epoch = codec.decode_epoch(self._call(wire.REQ_EPOCH, b"", verb="epoch"))
        except (WorkerCrashedError, ServiceClosedError):
            return self._last_epoch
        self._last_epoch = epoch
        return epoch

    def stats(self) -> Dict[str, object]:
        """Worker-side service stats merged with client-side ``rpc.*`` counters."""
        out: Dict[str, object] = {}
        if not (self._closed or self._crashed):
            try:
                out = self._call(wire.REQ_STATS, b"", verb="stats")
                out = codec.decode_stats(out)
            except (WorkerCrashedError, ServiceClosedError):
                out = {}
        with self._stats_lock:
            for key, value in self._counts.items():
                out[f"rpc.{key}"] = value
        out["rpc.pid"] = self.pid
        out["rpc.crashed"] = self._crashed
        return out


def spawn_workers(
    specs: Sequence[WorkerSpec],
    *,
    registry: Optional[MetricsRegistry] = None,
    oplogs: Optional[Sequence[object]] = None,
) -> Tuple[WorkerClient, ...]:
    """Spawn one client per spec; tears every child down on partial failure."""
    clients: List[WorkerClient] = []
    try:
        for i, spec in enumerate(specs):
            oplog = oplogs[i] if oplogs is not None else None
            clients.append(WorkerClient(spec, registry=registry, oplog=oplog))
    except Exception:
        for client in clients:
            client.close()
        raise
    return tuple(clients)


__all__ = ["WorkerClient", "spawn_workers", "START_TIMEOUT_S"]
