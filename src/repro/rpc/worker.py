"""The shard worker: a child process hosting one shard-local QueryService.

:func:`worker_main` is the child's entire life: build the index and
service from a declarative :class:`WorkerSpec` (no closures cross the
process boundary — the spec is the same ``(dims, backend, reduction,
measure, index_kwargs)`` tuple :class:`~repro.shard.ShardedService` builds
in-process shards from), announce itself with a HELLO frame, then serve a
single-threaded dispatch loop until a SHUTDOWN request or EOF.

Concurrency lives on the *parent* side: the cluster's fan-out thread pool
overlaps round-trips to different workers, while inside each worker the
loop handles one request at a time (the per-client mutex in
:class:`~repro.rpc.client.WorkerClient` already serializes them, so a
worker-side executor would only add idle threads).

Every request is answered — ``RESP_OK`` with the verb's payload, or
``RESP_ERR`` with the stable-coded error (:mod:`repro.rpc.codec`) — so the
parent can always distinguish "the verb failed" from "the worker died".
When the request carries ``FLAG_TRACE`` the worker activates a local
:class:`~repro.obs.Tracer` for the call and ships its spans back inside
the response, letting the parent graft worker-side ``service.batch`` spans
under its own ``rpc.call`` span.
"""

from __future__ import annotations

import os
import socket
import struct
from typing import Dict, NamedTuple, Optional, Tuple

from ..core.aggregator import BoxSumIndex
from ..obs import trace as _trace
from ..obs.registry import MetricsRegistry
from ..service.service import QueryService
from . import codec, wire

_TRACE_LEN = struct.Struct("<I")


class WorkerSpec(NamedTuple):
    """Everything needed to rebuild one shard service in a child process.

    Deliberately declarative (strings, numbers, plain dicts): the spec
    must survive a process boundary, so arbitrary ``index_factory``
    callables are out — that is why ``ShardedService(workers="process")``
    rejects factories.
    """

    dims: int
    backend: str = "ba"
    reduction: str = "corner"
    measure: str = "sum"
    index_kwargs: Tuple[Tuple[str, object], ...] = ()
    service_kwargs: Tuple[Tuple[str, object], ...] = ()
    label: str = "worker"


def make_spec(
    dims: int,
    *,
    backend: str = "ba",
    reduction: str = "corner",
    measure: str = "sum",
    index_kwargs: Optional[Dict[str, object]] = None,
    service_kwargs: Optional[Dict[str, object]] = None,
    label: str = "worker",
) -> WorkerSpec:
    """Build a spec from the cluster's keyword form (dicts become tuples)."""
    return WorkerSpec(
        dims=dims,
        backend=backend,
        reduction=reduction,
        measure=measure,
        index_kwargs=tuple(sorted((index_kwargs or {}).items())),
        service_kwargs=tuple(sorted((service_kwargs or {}).items())),
        label=label,
    )


def build_index(spec: WorkerSpec) -> BoxSumIndex:
    """The spec's index — used both worker-side and for the planning twin."""
    return BoxSumIndex(
        spec.dims,
        backend=spec.backend,
        reduction=spec.reduction,
        measure=spec.measure,
        **dict(spec.index_kwargs),
    )


def build_service(spec: WorkerSpec) -> QueryService:
    """The worker-side service (its own registry: metrics stay per-process)."""
    return QueryService(
        build_index(spec),
        registry=MetricsRegistry(),
        label=spec.label,
        **dict(spec.service_kwargs),
    )


# -- request handlers ------------------------------------------------------------


def _handle_resolve(service: QueryService, payload: bytes) -> bytes:
    snapshot = service.resolve_probe_values(codec.decode_identities(payload))
    return codec.encode_snapshot(snapshot)


def _handle_batch(service: QueryService, payload: bytes) -> bytes:
    return codec.encode_batch_result(service.batch(codec.decode_queries(payload)))


def _handle_insert(service: QueryService, payload: bytes) -> bytes:
    box, value = codec.decode_object(payload)
    return codec.encode_epoch(service.insert(box, value))


def _handle_delete(service: QueryService, payload: bytes) -> bytes:
    box, value = codec.decode_object(payload)
    return codec.encode_epoch(service.delete(box, value))


def _handle_bulk(service: QueryService, payload: bytes) -> bytes:
    return codec.encode_epoch(service.bulk_load(codec.decode_objects(payload)))


def _handle_set_meta(service: QueryService, payload: bytes) -> bytes:
    key, blob = codec.decode_meta(payload)
    return codec.encode_epoch(service.set_meta(key, blob))


def _handle_epoch(service: QueryService, payload: bytes) -> bytes:
    return codec.encode_epoch(service.epoch)


def _handle_sync_epoch(service: QueryService, payload: bytes) -> bytes:
    service.sync_epoch(codec.decode_epoch(payload))
    return codec.encode_epoch(service.epoch)


def _handle_stats(service: QueryService, payload: bytes) -> bytes:
    return codec.encode_stats(service.stats())


def _handle_ping(service: QueryService, payload: bytes) -> bytes:
    return payload


def _handle_restore(service: QueryService, payload: bytes) -> bytes:
    """Apply a shipped logical state exactly as materialize() would in-process.

    Every mutation passes ``record=None``: a worker restored *from* the log
    must never write the log (the oplog lives parent-side anyway, but the
    invariant is worth stating where it is enforced).
    """
    objects, negatives, meta = codec.decode_restore(payload)
    index = service.index
    epoch = service.mutate(lambda: index.bulk_load(objects), op="restore", record=None)
    for box, value, count in negatives:
        for _ in range(-count):
            epoch = service.mutate(
                lambda b=box, v=value: index.delete(b, v), op="restore", record=None
            )
    set_meta = getattr(index, "set_meta", None)
    if set_meta is not None:
        for _key, blob in meta:
            epoch = service.mutate(lambda b=blob: set_meta(b), op="restore", record=None)
    return codec.encode_epoch(epoch)


_HANDLERS = {
    wire.REQ_PING: _handle_ping,
    wire.REQ_RESOLVE: _handle_resolve,
    wire.REQ_BATCH: _handle_batch,
    wire.REQ_INSERT: _handle_insert,
    wire.REQ_DELETE: _handle_delete,
    wire.REQ_BULK: _handle_bulk,
    wire.REQ_SET_META: _handle_set_meta,
    wire.REQ_EPOCH: _handle_epoch,
    wire.REQ_SYNC_EPOCH: _handle_sync_epoch,
    wire.REQ_STATS: _handle_stats,
    wire.REQ_RESTORE: _handle_restore,
}


# -- the child's main loop -------------------------------------------------------


def _serve_one(
    sock: socket.socket, service: QueryService, kind: int, flags: int, rid: int, payload: bytes
) -> None:
    tracer = None
    if flags & wire.FLAG_TRACE and _trace.active() is None:
        tracer = _trace.activate(_trace.Tracer())
    try:
        handler = _HANDLERS.get(kind)
        if handler is None:
            raise codec.RemoteWorkerError(
                f"unknown request kind 0x{kind:02x}", remote_type="WireProtocolError"
            )
        try:
            result = handler(service, payload)
        except Exception as exc:  # noqa: BLE001 — every failure becomes a framed error
            sock_payload = codec.encode_error(exc)
            wire.send_frame(sock, wire.RESP_ERR, 0, rid, sock_payload)
            return
    finally:
        if tracer is not None:
            _trace.deactivate()
    if tracer is not None:
        trace_blob = tracer.to_json().encode("utf-8")
    else:
        trace_blob = b""
    wire.send_frame(
        sock, wire.RESP_OK, flags & wire.FLAG_TRACE, rid, _TRACE_LEN.pack(len(trace_blob)) + trace_blob + result
    )


def worker_main(
    sock: socket.socket,
    parent_side: Optional[socket.socket],
    spec: WorkerSpec,
) -> None:
    """Entry point of the child process (also callable in-process by tests).

    ``parent_side`` is the parent's end of the socketpair: a forked child
    inherits it, and must close its copy first thing or the parent closing
    its end would never read as EOF here.
    """
    if parent_side is not None:
        parent_side.close()
    service = build_service(spec)
    wire.send_frame(
        sock,
        wire.MSG_HELLO,
        0,
        0,
        wire.encode_hello(os.getpid(), service._supports_probes, service.epoch, spec.label),
    )
    try:
        while True:
            try:
                kind, flags, rid, payload = wire.recv_frame(sock)
            except (EOFError, OSError):
                break  # parent went away; nothing to answer to
            if kind == wire.REQ_SHUTDOWN:
                try:
                    service.close()
                    wire.send_frame(sock, wire.RESP_OK, 0, rid, _TRACE_LEN.pack(0))
                except OSError:
                    pass
                break
            try:
                _serve_one(sock, service, kind, flags, rid, payload)
            except (BrokenPipeError, ConnectionResetError):
                break
    finally:
        try:
            sock.close()
        except OSError:
            pass


__all__ = ["WorkerSpec", "make_spec", "build_index", "build_service", "worker_main"]
