"""``repro.rpc``: multiprocess shard workers behind a wire-protocol seam.

Shards can run as *processes*: each worker is a ``multiprocessing`` child
hosting a shard-local :class:`~repro.service.QueryService`, spoken to over
a CRC-framed, length-prefixed binary protocol on a socketpair
(:mod:`repro.rpc.wire` for framing, :mod:`repro.rpc.codec` for payloads).
The parent-side :class:`WorkerClient` duck-types the service surface the
router and replica groups already consume, so
``ShardedService(workers="process")`` is a configuration flip — breakers,
deadlines, hedged reads, log shipping and the chaos harness all wrap the
process transport unchanged, and the answers stay bit-identical to the
in-process path because the same doubles cross the wire as exact IEEE-754
bit patterns.
"""

from .client import WorkerClient, spawn_workers
from .codec import RemoteWorkerError
from .wire import FLAG_TRACE, MAX_FRAME, PROTOCOL_VERSION, Hello
from .worker import WorkerSpec, build_index, build_service, make_spec, worker_main

__all__ = [
    "WorkerClient",
    "spawn_workers",
    "RemoteWorkerError",
    "WorkerSpec",
    "make_spec",
    "build_index",
    "build_service",
    "worker_main",
    "Hello",
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "FLAG_TRACE",
]
