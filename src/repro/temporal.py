"""Temporal aggregation: intervals as 1-dimensional boxes.

Related-work Section 7 of the paper: "The cumulative temporal aggregation
query finds the aggregate value over all records whose intervals intersect
a given interval.  Since a time interval can be regarded as a
1-dimensional box, the cumulative temporal aggregation query for SUM is an
1-dimensional box-sum query."

This module packages that observation into a small API over the library's
1-d machinery (two aggregated B+-trees via the Theorem 2 corner
reduction), covering both temporal query flavors:

* **cumulative** — aggregate over records whose interval *intersects* a
  query interval (the [37] JSB-tree query);
* **instantaneous** — aggregate over records whose interval *contains* a
  time instant (the [20] aggregation-tree query), the degenerate-interval
  special case.
"""

from __future__ import annotations

from typing import Optional

from .core.aggregator import BoxSumIndex
from .core.errors import InvalidQueryError
from .core.geometry import Box
from .storage import StorageContext


class TemporalAggregateIndex:
    """SUM / COUNT / AVG over weighted time intervals.

    Intervals follow the paper's box semantics: ``[start, end]`` intersects
    ``[qs, qe]`` iff ``start < qe and not (end < qs)``.  An instantaneous
    query at ``t`` is the degenerate interval ``[t, t]``: it covers records
    with ``start < t <= end``.
    """

    def __init__(
        self,
        backend: str = "ba",
        measure: str = "sum+count",
        storage: Optional[StorageContext] = None,
        **backend_kwargs: object,
    ) -> None:
        self._index = BoxSumIndex(
            1, backend=backend, measure=measure, storage=storage, **backend_kwargs
        )

    # -- updates -------------------------------------------------------------------

    def insert(self, start: float, end: float, value: float = 1.0) -> None:
        """Record an interval ``[start, end]`` with a weight."""
        self._index.insert(self._interval(start, end), value)

    def delete(self, start: float, end: float, value: float = 1.0) -> None:
        """Retract a previously recorded interval (same start/end/value)."""
        self._index.delete(self._interval(start, end), value)

    def bulk_load(self, records) -> None:
        """Build from ``(start, end, value)`` triples."""
        self._index.bulk_load([(self._interval(s, e), v) for s, e, v in records])

    # -- queries ---------------------------------------------------------------------

    def cumulative_sum(self, start: float, end: float) -> float:
        """SUM over records intersecting ``[start, end]``."""
        return self._index.box_sum(self._interval(start, end))

    def cumulative_count(self, start: float, end: float) -> float:
        """COUNT over records intersecting ``[start, end]``."""
        return self._index.box_count(self._interval(start, end))

    def cumulative_avg(self, start: float, end: float) -> float:
        """AVG over records intersecting ``[start, end]``."""
        return self._index.box_avg(self._interval(start, end))

    def instantaneous_sum(self, t: float) -> float:
        """SUM over records whose interval contains the instant ``t``."""
        return self._index.box_sum(Box((float(t),), (float(t),)))

    def instantaneous_count(self, t: float) -> float:
        """COUNT over records whose interval contains the instant ``t``."""
        return self._index.box_count(Box((float(t),), (float(t),)))

    def total(self):
        """Aggregate over every record ever inserted."""
        return self._index.total()

    @property
    def num_records(self) -> int:
        """Live record count."""
        return self._index.num_objects

    @property
    def size_bytes(self) -> int:
        """Disk footprint of the underlying index."""
        return self._index.size_bytes

    @staticmethod
    def _interval(start: float, end: float) -> Box:
        if end < start:
            raise InvalidQueryError(f"interval end {end} precedes start {start}")
        return Box((float(start),), (float(end),))
