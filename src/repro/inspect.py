"""Structure dumps: human-readable renderings of every index's page tree.

Debugging aids: each function walks a structure (without touching the I/O
counters — inspection is free) and renders its pages, records, borders and
aggregates as an indented outline.  :func:`dump` dispatches on the
structure type.

::

    >>> print(dump(tree))
    AggBPlusTree(entries=5, height=2)
      internal#3 children=2 total=5
        leaf#0 [1:1, 2:1, 3:1] total=3
        leaf#2 [4:1, 5:1] total=2
"""

from __future__ import annotations

from typing import List

from .approx.builder import ApproxTier
from .batree import BATree
from .bptree import AggBPlusTree
from .core.errors import NotSupportedError
from .core.explain import QueryProfile
from .ecdf.ecdf_b import EcdfBTree
from .heal import HealSupervisor
from .kdb.kdbtree import KdbTree
from .obs import Tracer, render_dict
from .replog import ReplicationLog
from .resilience.group import ReplicaGroup
from .rtree.rstar import RStarTree
from .service import QueryService
from .shard import ShardedService
from .storage.filepager import ScrubReport

_INDENT = "  "


def dump(structure: object, max_depth: int = 12) -> str:
    """Render any shipped index structure — or a trace/profile — as text.

    Besides the index structures, accepts a live :class:`repro.obs.Tracer`,
    a :class:`repro.core.explain.QueryProfile`, a running
    :class:`repro.service.QueryService`, or a parsed trace payload
    (a dict with ``"spans"``, e.g. ``json.loads`` of a dumped trace).
    """
    if isinstance(structure, AggBPlusTree):
        return dump_bptree(structure, max_depth)
    if isinstance(structure, BATree):
        return dump_batree(structure, max_depth)
    if isinstance(structure, EcdfBTree):
        return dump_ecdf_b(structure, max_depth)
    if isinstance(structure, KdbTree):
        return dump_kdb(structure, max_depth)
    if isinstance(structure, RStarTree):
        return dump_rtree(structure, max_depth)
    if isinstance(structure, QueryProfile):
        return structure.render()
    if isinstance(structure, QueryService):
        return dump_service(structure)
    if isinstance(structure, ShardedService):
        return dump_cluster(structure)
    if isinstance(structure, ReplicaGroup):
        return dump_resilience(structure)
    if isinstance(structure, ApproxTier):
        return dump_approx(structure)
    if isinstance(structure, ReplicationLog):
        return dump_replog(structure)
    if isinstance(structure, HealSupervisor):
        return dump_heal(structure)
    if isinstance(structure, ScrubReport):
        return dump_scrub(structure)
    if isinstance(structure, Tracer):
        return structure.render(max_depth=max_depth)
    if isinstance(structure, dict) and "spans" in structure:
        return render_dict(structure, max_depth=max_depth)
    raise NotSupportedError(f"cannot dump {type(structure).__name__}")


def _fmt_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return type(value).__name__


def _fmt_box(box) -> str:
    low = ",".join(f"{c:g}" for c in box.low)
    high = ",".join(f"{c:g}" for c in box.high)
    return f"[{low}]..[{high}]"


# -- aggregated B+-tree -------------------------------------------------------

def dump_bptree(tree: AggBPlusTree, max_depth: int = 12) -> str:
    lines = [f"AggBPlusTree(entries={len(tree)}, height={tree.height})"]
    _dump_bptree_node(tree, tree.root_pid, 1, max_depth, lines)
    return "\n".join(lines)


def _dump_bptree_node(tree, pid, depth, max_depth, lines: List[str]) -> None:
    node = tree.storage.pager.get(pid)
    pad = _INDENT * depth
    if node.is_leaf:
        entries = ", ".join(f"{k:g}:{_fmt_value(v)}" for k, v in zip(node.keys, node.values))
        lines.append(f"{pad}leaf#{pid} [{entries}] total={_fmt_value(node.total)}")
        return
    lines.append(
        f"{pad}internal#{pid} children={len(node.children)} "
        f"seps={[round(s, 3) for s in node.seps]} total={_fmt_value(node.total)}"
    )
    if depth >= max_depth:
        lines.append(f"{pad}{_INDENT}...")
        return
    for child in node.children:
        _dump_bptree_node(tree, child, depth + 1, max_depth, lines)


# -- BA-tree ---------------------------------------------------------------------

def dump_batree(tree: BATree, max_depth: int = 12) -> str:
    if tree._delegate is not None:
        return "BATree(1-d delegate)\n" + dump_bptree(tree._delegate, max_depth)
    lines = [f"BATree(dims={tree.dims}, entries={len(tree)})"]
    _dump_ba_page(tree, tree._root.child, 1, max_depth, lines)
    return "\n".join(lines)


def _fmt_border(border) -> str:
    mode = "tree" if border.is_spilled else "array"
    return f"{len(border)}({mode})"


def _dump_ba_page(tree, pid, depth, max_depth, lines: List[str]) -> None:
    page = tree.storage.pager.get(pid)
    pad = _INDENT * depth
    if page.is_leaf:
        lines.append(f"{pad}leaf#{pid} points={len(page.entries)}")
        return
    lines.append(f"{pad}index#{pid} records={len(page.records)}")
    if depth >= max_depth:
        lines.append(f"{pad}{_INDENT}...")
        return
    for record in page.records:
        borders = " ".join(f"b{j}={_fmt_border(b)}" for j, b in enumerate(record.borders))
        lines.append(
            f"{pad}{_INDENT}record {_fmt_box(record.box)} "
            f"subtotal={_fmt_value(record.subtotal)} {borders}"
        )
        _dump_ba_page(tree, record.child, depth + 2, max_depth, lines)


# -- ECDF-B-tree --------------------------------------------------------------------

def dump_ecdf_b(tree: EcdfBTree, max_depth: int = 12) -> str:
    if tree._delegate is not None:
        return "EcdfBTree(1-d delegate)\n" + dump_bptree(tree._delegate, max_depth)
    lines = [
        f"EcdfB{tree.variant}Tree(dims={tree.dims}, entries={len(tree)}, "
        f"height={tree.height})"
    ]
    _dump_ecdf_node(tree, tree.root_pid, 1, max_depth, lines)
    return "\n".join(lines)


def _dump_ecdf_node(tree, pid, depth, max_depth, lines: List[str]) -> None:
    node = tree.storage.pager.get(pid)
    pad = _INDENT * depth
    if node.is_leaf:
        lines.append(f"{pad}leaf#{pid} points={len(node.entries)}")
        return
    borders = " ".join(f"t{i}={_fmt_border(b)}" for i, b in enumerate(node.borders))
    lines.append(
        f"{pad}node#{pid} children={len(node.children)} "
        f"seps={[round(s, 3) for s in node.seps]} {borders}"
    )
    if depth >= max_depth:
        lines.append(f"{pad}{_INDENT}...")
        return
    for child in node.children:
        _dump_ecdf_node(tree, child, depth + 1, max_depth, lines)


# -- k-d-B-tree ------------------------------------------------------------------------

def dump_kdb(tree: KdbTree, max_depth: int = 12) -> str:
    lines = [f"KdbTree(dims={tree.dims}, points={len(tree)})"]
    _dump_kdb_page(tree, tree.root_pid, 1, max_depth, lines)
    return "\n".join(lines)


def _dump_kdb_page(tree, pid, depth, max_depth, lines: List[str]) -> None:
    page = tree.storage.pager.get(pid)
    pad = _INDENT * depth
    if page.is_leaf:
        lines.append(f"{pad}leaf#{pid} points={len(page.entries)}")
        return
    lines.append(f"{pad}index#{pid} records={len(page.records)}")
    if depth >= max_depth:
        lines.append(f"{pad}{_INDENT}...")
        return
    for record in page.records:
        lines.append(f"{pad}{_INDENT}record {_fmt_box(record.box)}")
        _dump_kdb_page(tree, record.child, depth + 2, max_depth, lines)


# -- query service -----------------------------------------------------------------------

def dump_service(service: QueryService) -> str:
    """Serving-state outline: admission, epoch, traffic, planner and caches."""
    stats = service.stats()
    state = "closed" if service.closed else "open"
    lines = [
        f"QueryService(label={service.label}, {state}, epoch={int(stats['epoch'])})",
        f"{_INDENT}admission max_inflight={service.max_inflight} "
        f"max_queue={service.max_queue} inflight={int(stats['inflight'])} "
        f"rejected={int(stats['rejected'])}",
        f"{_INDENT}traffic queries={int(stats['queries'])} "
        f"(batches={int(stats['batches'])} singles={int(stats['singles'])}) "
        f"mutations={int(stats['mutations'])}",
        f"{_INDENT}planner probes planned={int(stats['probes_planned'])} "
        f"unique={int(stats['probes_unique'])} executed={int(stats['probes_executed'])} "
        f"dedup_ratio={stats['dedup_ratio']:.2f}",
    ]
    for cache in ("result_cache", "probe_cache"):
        lines.append(
            f"{_INDENT}{cache} entries={int(stats[f'{cache}.entries'])} "
            f"hits={int(stats[f'{cache}.hits'])} misses={int(stats[f'{cache}.misses'])} "
            f"stale={int(stats[f'{cache}.stale'])} "
            f"hit_rate={stats[f'{cache}.hit_rate']:.2f}"
        )
    return "\n".join(lines)


# -- sharded cluster -----------------------------------------------------------------------

def dump_cluster(cluster: ShardedService) -> str:
    """Cluster outline: balance, map, traffic, then each shard's service."""
    stats = cluster.stats()
    state = "closed" if cluster.closed else "open"
    objects = stats["objects"]
    lines = [
        f"ShardedService(label={cluster.label}, {state}, shards={stats['shards']}, "
        f"replicas={stats['replicas']}, partitioner={stats['partitioner']})",
        f"{_INDENT}balance objects={stats['objects_total']} per_shard={objects} "
        f"imbalance={stats['imbalance']:.2f}",
        f"{_INDENT}traffic queries={int(stats['queries'])} "
        f"batches={int(stats['batches'])} mutations={int(stats['mutations'])} "
        f"rejected={int(stats['rejected'])}",
        f"{_INDENT}rebalancing rounds={int(stats['rebalances'])} "
        f"migrated={int(stats['migrated'])}",
    ]
    if cluster.approx_tier is not None:
        for line in dump_approx(cluster.approx_tier).splitlines():
            lines.append(f"{_INDENT}{line}")
    if cluster.groups:
        for group in cluster.groups:
            for line in dump_resilience(group).splitlines():
                lines.append(f"{_INDENT}{line}")
    for sid, (service, extent) in enumerate(zip(cluster.services, cluster.extents())):
        extent_s = _fmt_box(extent) if extent is not None else "empty"
        lines.append(f"{_INDENT}shard {sid} extent={extent_s}")
        for line in dump_service(service).splitlines():
            lines.append(f"{_INDENT}{_INDENT}{line}")
    return "\n".join(lines)


# -- resilience (replica groups) -------------------------------------------------------------

def dump_resilience(target) -> str:
    """Failover outline: per-member breaker states and failover traffic.

    Accepts a single :class:`~repro.resilience.group.ReplicaGroup` or a
    replicated :class:`~repro.shard.ShardedService` (one line-group per
    shard; an unreplicated cluster renders a single note).
    """
    if isinstance(target, ShardedService):
        if not target.groups:
            return "resilience: cluster is unreplicated (no replica groups)"
        return "\n".join(dump_resilience(group) for group in target.groups)
    group = target
    stats = group.stats()
    lines = [
        f"ReplicaGroup(shard={group.shard_id}, members={stats['members']}, "
        f"epoch={group.epoch})",
        f"{_INDENT}serving attempts={int(stats['attempts'])} "
        f"failures={int(stats['failures'])} timeouts={int(stats['timeouts'])} "
        f"failovers={int(stats['failovers'])} unavailable={int(stats['unavailable'])}",
        f"{_INDENT}hedging dispatched={int(stats['hedges'])} "
        f"wins={int(stats['hedge_wins'])}",
    ]
    member_states = stats["member_states"]
    trips = stats["breaker_trips"]
    for mid, (state, trip_count) in enumerate(zip(member_states, trips)):
        role = "primary" if mid == 0 else f"replica{mid}"
        lines.append(f"{_INDENT}member {mid} ({role}) breaker={state} trips={int(trip_count)}")
    lines.append(f"{_INDENT}available={'yes' if group.available else 'no'}")
    return "\n".join(lines)


# -- approximate tier ---------------------------------------------------------------------

def dump_approx(tier: ApproxTier) -> str:
    """Approximate-tier outline: policy, mirrors, per-slot synopses."""
    stats = tier.stats()
    lines = [
        f"ApproxTier(label={tier.label}, slots={stats['slots']}, "
        f"measure={stats['measure']}, desynced={stats['desynced']})",
        f"{_INDENT}policy pieces={stats['pieces']} degree={stats['degree']} "
        f"max_staleness={stats['max_staleness']} auto_refresh={stats['auto_refresh']}",
        f"{_INDENT}version={stats['version']}",
    ]
    for slot, snap in enumerate(stats["per_slot"]):
        built = (
            f"built@{snap['built_version']}" if snap["built_version"] >= 0 else "unbuilt"
        )
        lines.append(
            f"{_INDENT}slot {slot} {built} pending={snap['pending']} "
            f"cells={snap['cells']} nbytes={snap['nbytes']} objects={snap['objects']}"
        )
    return "\n".join(lines)


# -- replication log ----------------------------------------------------------------------

def dump_replog(replog: ReplicationLog) -> str:
    """Log-shipping outline: LSN range, segments, checkpoints, folded state."""
    stats = replog.stats()
    head = int(stats["head_lsn"])
    lines = [
        f"ReplicationLog(label={replog.label}, head_lsn={head}, "
        f"epoch={replog.epoch_at(head)}, base_epoch={replog.base_epoch})",
        f"{_INDENT}log oldest_lsn={int(stats['oldest_lsn'])} "
        f"segments={int(stats['segments'])} bytes={int(stats['log_bytes'])}",
        f"{_INDENT}state identities={int(stats['state_identities'])} "
        f"instances={int(stats['state_instances'])} "
        f"extent={_fmt_box(replog.extent()) if replog.extent() is not None else 'empty'}",
        f"{_INDENT}checkpoints retained={int(stats['checkpoints'])} "
        f"(retain={replog.checkpoint_retain}) bytes={int(stats['checkpoint_bytes'])}",
    ]
    sizes = replog.checkpoints.sizes()
    for lsn in sorted(sizes):
        lines.append(
            f"{_INDENT}{_INDENT}checkpoint lsn={lsn} epoch={replog.epoch_at(lsn)} "
            f"bytes={sizes[lsn]} tail={head - lsn}"
        )
    return "\n".join(lines)


# -- self-healing supervisor ---------------------------------------------------------------

def dump_heal(supervisor: HealSupervisor, events: int = 8) -> str:
    """Supervisor outline: convergence, per-member health, recent events."""
    stats = supervisor.stats()
    states = stats["states"]
    lines = [
        f"HealSupervisor(label={supervisor.label}, "
        f"{'running' if stats['running'] else 'stopped'}, "
        f"ticks={int(stats['ticks'])}, "
        f"converged={'yes' if stats['converged'] else 'no'}, "
        f"fully_healthy={'yes' if stats['fully_healthy'] else 'no'})",
        f"{_INDENT}states "
        + " ".join(f"{state}={states[state]}" for state in sorted(states)),
        f"{_INDENT}audits runs={int(stats['audits'])} "
        f"diverged={int(stats['diverged'])}",
        f"{_INDENT}repairs ok={int(stats['repairs_ok'])} "
        f"failed={int(stats['repairs_failed'])} "
        f"quarantines={int(stats['quarantines'])} "
        f"members_added={int(stats['members_added'])}",
        f"{_INDENT}probes ok={int(stats['probes_ok'])} "
        f"failed={int(stats['probes_failed'])}",
    ]
    for component in supervisor.health():
        if component.state == "healthy":
            continue
        reason = f" ({component.reason})" if component.reason else ""
        lines.append(
            f"{_INDENT}member s{component.shard}/m{component.member} "
            f"{component.state}{reason} attempts={component.attempts} "
            f"lag={component.lag}"
        )
    recent = supervisor.events()[-events:]
    if recent:
        lines.append(f"{_INDENT}recent events")
        for event in recent:
            detail = f": {event.detail}" if event.detail else ""
            lines.append(
                f"{_INDENT}{_INDENT}tick {event.tick} {event.kind} "
                f"s{event.shard}/m{event.member}{detail}"
            )
    return "\n".join(lines)


# -- storage scrub ------------------------------------------------------------------------

def dump_scrub(report: ScrubReport) -> str:
    """Scrub outline: slots scanned, corrupt count, per-slot damage."""
    verdict = "clean" if report.clean else "CORRUPT"
    lines = [
        f"ScrubReport(path={report.path}, {verdict}, "
        f"scanned={report.scanned}, corrupt={report.corrupt})"
    ]
    for pid, error in report.errors:
        lines.append(f"{_INDENT}slot {pid}: {error}")
    return "\n".join(lines)


# -- R-tree family ------------------------------------------------------------------------

def dump_rtree(tree: RStarTree, max_depth: int = 12) -> str:
    name = type(tree).__name__
    lines = [f"{name}(dims={tree.dims}, objects={len(tree)}, height={tree.height})"]
    _dump_rtree_node(tree, tree.root_pid, 1, max_depth, lines)
    return "\n".join(lines)


def _dump_rtree_node(tree, pid, depth, max_depth, lines: List[str]) -> None:
    node = tree.storage.pager.get(pid)
    pad = _INDENT * depth
    if node.is_leaf:
        lines.append(f"{pad}leaf#{pid} objects={len(node.entries)}")
        return
    lines.append(f"{pad}node#{pid} level={node.level} entries={len(node.entries)}")
    if depth >= max_depth:
        lines.append(f"{pad}{_INDENT}...")
        return
    for entry in node.entries:
        agg = f" agg={_fmt_value(entry.agg)}" if tree.aggregated else ""
        lines.append(f"{pad}{_INDENT}entry {_fmt_box(entry.box)}{agg}")
        _dump_rtree_node(tree, entry.child, depth + 2, max_depth, lines)
