"""``OperationLog``: an LSN-stamped, segmented logical mutation log.

Every admitted mutation appends one CRC-framed record stamped with the
next log sequence number (LSN, 1-based, strictly contiguous).  Records
live in *segment* files named by the first LSN they hold::

    <dir>/00000000000000000001.seg
    <dir>/00000000000000000421.seg
    ...

    segment header:  8s magic "REPROLG1" | u64 base_lsn
    record:          u8 kind | u64 lsn | u32 length | u32 crc | payload

The record CRC32 covers the packed ``(kind, lsn, length)`` prefix plus the
payload — the same discipline as :mod:`repro.storage.wal` — so a torn
record, a torn length field or a bit flip truncate the scan instead of
replaying garbage.  A torn *final* record (the debris of a crash
mid-append) is discarded on open and overwritten by the next append; a
tear anywhere else breaks LSN contiguity and raises
:class:`~repro.core.errors.ReplicationLogError`, because silently skipping
a shipped mutation would desynchronize every replica built from the log.

Segments **rotate** once the active one exceeds ``segment_bytes`` and are
**retained** until :meth:`OperationLog.prune` drops those wholly below the
oldest checkpoint still needed for bootstrap (the
:class:`~repro.replog.shipper.ReplicationLog` facade drives retention).
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Callable, Iterator, List, Optional, Tuple

from ..core.errors import ReplicationLogError
from ..obs.registry import MetricsRegistry, get_registry
from ..storage.wal import fsync_file

_SEG_MAGIC = b"REPROLG1"
_SEG_HEADER = struct.Struct("<8sQ")  # magic, base_lsn
_REC_HEADER = struct.Struct("<BQII")  # kind, lsn, length, crc
_REC_BODY = struct.Struct("<BQI")  # the crc-covered prefix

#: Hard ceiling on one record's payload (a bulk-load of ~300k 2-d boxes).
MAX_PAYLOAD = 16 * 1024 * 1024


def _default_opener(path: str, mode: str):
    return open(path, mode)


def _segment_name(base_lsn: int) -> str:
    return f"{base_lsn:020d}.seg"


class OperationLog:
    """Append-only logical log over a directory of rotating segments.

    Parameters
    ----------
    directory:
        Created if missing.  Existing segments are scanned on open: the
        final segment's torn tail (if any) is truncated away and the head
        LSN resumes exactly after the last intact record.
    segment_bytes:
        Rotation threshold; an append that would start past this size in
        the active segment opens a new one (records are never split).
    fsync:
        When True (default) every append is flushed and fsynced before the
        LSN is handed out — a shipped record is durable.  Benchmarks can
        disable it to measure the pure framing cost.
    opener:
        Injectable ``open`` (the fault-injection seam, exactly as for the
        page WAL).
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_bytes: int = 1 << 20,
        fsync: bool = True,
        opener: Callable[[str, str], object] = _default_opener,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if segment_bytes < _SEG_HEADER.size + _REC_HEADER.size:
            raise ValueError(f"segment_bytes too small: {segment_bytes}")
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        self._opener = opener
        registry = registry if registry is not None else get_registry()
        self._m_records = registry.counter(
            "repro_replog_records", "logical mutation records appended, by kind"
        )
        self._m_segments = registry.counter(
            "repro_replog_segments", "log segment files opened (rotations + initial)"
        )
        self._m_head = registry.gauge("repro_replog_head_lsn", "newest LSN in the replication log")
        self._m_torn = registry.counter(
            "repro_replog_torn_discarded", "torn tail records discarded on open"
        )
        os.makedirs(directory, exist_ok=True)
        #: sorted (base_lsn, path) for sealed + active segments
        self._segments: List[Tuple[int, str]] = self._discover()
        self._head = 0
        self._active = None
        self._active_base = 0
        self._active_size = 0
        if self._segments:
            self._open_tail()
        # else: lazily created on the first append (base_lsn = 1)

    # -- open / recovery ---------------------------------------------------------------

    def _discover(self) -> List[Tuple[int, str]]:
        found: List[Tuple[int, str]] = []
        for name in os.listdir(self.directory):
            if not name.endswith(".seg"):
                continue
            stem = name[: -len(".seg")]
            if not stem.isdigit():
                raise ReplicationLogError(f"alien file in log directory: {name}")
            found.append((int(stem), os.path.join(self.directory, name)))
        found.sort()
        return found

    def _open_tail(self) -> None:
        """Scan the final segment, truncate its torn tail, resume the head."""
        # Sealed segments are only length-checked lazily (on replay); the
        # active one must be scanned now so the next append lands after the
        # last intact record, not after crash debris.
        base, path = self._segments[-1]
        f = self._opener(path, "r+b")
        header = f.read(_SEG_HEADER.size)
        if len(header) < _SEG_HEADER.size:
            # A crash tore the rotation's own header write.  The header is
            # fsynced before any record can follow it, so a short final
            # segment provably holds nothing: re-seal it and resume here.
            f.seek(0)
            f.truncate()
            f.write(_SEG_HEADER.pack(_SEG_MAGIC, base))
            fsync_file(f)
            self._m_torn.inc()
        else:
            magic, stored_base = _SEG_HEADER.unpack(header)
            if magic != _SEG_MAGIC:
                raise ReplicationLogError(f"{path} is not a replication log segment")
            if stored_base != base:
                raise ReplicationLogError(
                    f"{path}: header says base LSN {stored_base}, name says {base}"
                )
        end = _SEG_HEADER.size
        lsn = base - 1
        while True:
            rec = self._read_record(f, expect_lsn=lsn + 1)
            if rec is None:
                break
            lsn += 1
            end = f.tell()
        size = os.fstat(f.fileno()).st_size
        if size > end:
            f.seek(end)
            f.truncate()
            fsync_file(f)
            self._m_torn.inc()
        if lsn < base - 1:
            # The segment holds no intact record at all: a crash between
            # rotation and the first append.  Keep it; appends resume here.
            lsn = base - 1
            if len(self._segments) > 1 and self._segments[-2][0] > lsn:
                raise ReplicationLogError(f"{path}: empty segment breaks LSN order")
        self._active = f
        self._active_base = base
        self._active_size = end
        self._head = lsn
        self._m_head.set(float(lsn))

    @staticmethod
    def _read_record(f, expect_lsn: Optional[int] = None):
        """One framed record, or None on a clean/torn end (file pos unmoved past it)."""
        start = f.tell()
        header = f.read(_REC_HEADER.size)
        if len(header) < _REC_HEADER.size:
            f.seek(start)
            return None
        kind, lsn, length, crc = _REC_HEADER.unpack(header)
        if length > MAX_PAYLOAD or (expect_lsn is not None and lsn != expect_lsn):
            f.seek(start)
            return None
        payload = f.read(length)
        if len(payload) < length:
            f.seek(start)
            return None
        if zlib.crc32(_REC_BODY.pack(kind, lsn, length) + payload) != crc:
            f.seek(start)
            return None
        return lsn, kind, payload

    # -- appending ---------------------------------------------------------------------

    @property
    def head_lsn(self) -> int:
        """The newest LSN on disk (0 when the log is empty)."""
        return self._head

    def append(self, kind: int, payload: bytes) -> int:
        """Frame and append one record; returns its freshly assigned LSN.

        Not thread-safe by itself: callers serialize appends (the service's
        write lock or the group's mutation mutex) because the mutation
        *order* is the contract being logged.
        """
        if len(payload) > MAX_PAYLOAD:
            raise ReplicationLogError(f"record payload {len(payload)} exceeds {MAX_PAYLOAD} bytes")
        lsn = self._head + 1
        if self._active is None or self._active_size >= self.segment_bytes:
            self._rotate(lsn)
        crc = zlib.crc32(_REC_BODY.pack(kind, lsn, len(payload)) + payload)
        frame = _REC_HEADER.pack(kind, lsn, len(payload), crc) + payload
        self._active.seek(self._active_size)
        self._active.write(frame)
        if self.fsync:
            fsync_file(self._active)
        else:
            self._active.flush()
        self._active_size += len(frame)
        self._head = lsn
        self._m_records.inc(kind=str(kind))
        self._m_head.set(float(lsn))
        return lsn

    def _rotate(self, base_lsn: int) -> None:
        if self._active is not None:
            fsync_file(self._active)
            self._active.close()
        path = os.path.join(self.directory, _segment_name(base_lsn))
        f = self._opener(path, "w+b")
        f.write(_SEG_HEADER.pack(_SEG_MAGIC, base_lsn))
        fsync_file(f)
        self._active = f
        self._active_base = base_lsn
        self._active_size = _SEG_HEADER.size
        self._segments.append((base_lsn, path))
        self._m_segments.inc()

    # -- reading -----------------------------------------------------------------------

    def records(
        self, start_lsn: int = 1, end_lsn: Optional[int] = None
    ) -> Iterator[Tuple[int, int, bytes]]:
        """Yield ``(lsn, kind, payload)`` for LSNs in ``[start_lsn, end_lsn]``.

        Raises :class:`~repro.core.errors.ReplicationLogError` when the
        requested range starts below the oldest retained segment (pruned
        history cannot be replayed) or when a sealed segment ends before
        its successor's base LSN (mid-log corruption).
        """
        if self._active is not None:
            self._active.flush()
        end = self._head if end_lsn is None else min(end_lsn, self._head)
        if start_lsn > end:
            return
        if not self._segments or start_lsn < self._segments[0][0]:
            raise ReplicationLogError(
                f"LSN {start_lsn} predates the oldest retained segment "
                f"(history was pruned)"
            )
        expect = start_lsn
        for i, (base, path) in enumerate(self._segments):
            next_base = (self._segments[i + 1][0] if i + 1 < len(self._segments) else end + 1)
            if next_base <= start_lsn or base > end:
                continue
            last_seen = base - 1
            with self._opener(path, "rb") as f:
                header = f.read(_SEG_HEADER.size)
                if len(header) < _SEG_HEADER.size:
                    raise ReplicationLogError(f"{path}: truncated segment header")
                magic, stored_base = _SEG_HEADER.unpack(header)
                if magic != _SEG_MAGIC or stored_base != base:
                    raise ReplicationLogError(f"{path}: bad segment header")
                lsn = base - 1
                while lsn < end:
                    rec = self._read_record(f, expect_lsn=lsn + 1)
                    if rec is None:
                        break
                    lsn, kind, payload = rec
                    last_seen = lsn
                    if lsn >= expect and lsn <= end:
                        yield lsn, kind, payload
                        expect = lsn + 1
            if last_seen + 1 < min(next_base, end + 1):
                raise ReplicationLogError(
                    f"{path}: segment ends at LSN {last_seen}, expected "
                    f"{min(next_base, end + 1) - 1} (mid-log corruption)"
                )

    # -- retention ---------------------------------------------------------------------

    @property
    def oldest_lsn(self) -> int:
        """The first LSN still replayable (0 when the log is empty)."""
        if not self._segments:
            return 0
        return self._segments[0][0]

    def prune(self, keep_from_lsn: int) -> int:
        """Delete segments wholly below ``keep_from_lsn``; returns files removed.

        A segment is removable only when its *successor's* base LSN is at
        or below ``keep_from_lsn`` — i.e. every record it holds is older
        than anything a retained checkpoint still needs.  The active
        segment is never removed.
        """
        removed = 0
        while len(self._segments) > 1 and self._segments[1][0] <= keep_from_lsn:
            _base, path = self._segments.pop(0)
            os.remove(path)
            removed += 1
        return removed

    def segment_files(self) -> List[Tuple[int, str, int]]:
        """``(base_lsn, path, bytes)`` per retained segment, oldest first."""
        if self._active is not None:
            self._active.flush()
        return [(base, path, os.path.getsize(path)) for base, path in self._segments]

    def size_bytes(self) -> int:
        """Total bytes across every retained segment."""
        return sum(size for _b, _p, size in self.segment_files())

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        if self._active is not None:
            fsync_file(self._active)
            self._active.close()
            self._active = None

    def __enter__(self) -> "OperationLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["OperationLog", "MAX_PAYLOAD"]
