"""``LogicalState``: the replayable multiset an index's mutations reduce to.

Replaying a prefix of the operation log through plain dict arithmetic
gives the *logical* content of the index at that LSN — a signed multiset
of ``(box, value)`` identities plus the metadata blobs — without building
any index at all.  That is what makes checkpoints cheap (fold the log, or
fold live state, into a flat table) and what makes point-in-time recovery
possible (fold to an arbitrary LSN, then materialize).

Counts are *signed*: the sharded cluster deliberately routes deletions by
the current shard map, so a shard can absorb a delete for an object it
never held (the ledger nets out across the cluster).  A faithful replica
must reproduce that, so ``apply(DeleteOp(...))`` below zero is legal and
:meth:`LogicalState.materialize` replays the negative counts as real
deletions after the bulk load.

Materialization is bit-exact by construction: every index family computes
aggregates as sums over the stored instances, and IEEE-754 addition over
the *same multiset applied in a deterministic order* yields the same
bits on every member.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.errors import DimensionMismatchError
from ..core.geometry import Box
from .checkpoint import Checkpoint
from .digest import StateDigest
from .records import (
    BulkLoadOp,
    DeleteOp,
    InsertOp,
    Operation,
    SetMetaOp,
)

#: One object identity: the box corners plus its weight.
Identity = Tuple[Box, float]


class LogicalState:
    """A signed multiset of object identities plus metadata blobs."""

    def __init__(self, dims: Optional[int] = None) -> None:
        self.dims = dims
        self._counts: Dict[Identity, int] = {}
        self.meta: Dict[str, bytes] = {}
        self._digest = StateDigest()

    # -- building ----------------------------------------------------------------

    def _check_dims(self, box: Box) -> None:
        if self.dims is None:
            self.dims = box.dims
        elif box.dims != self.dims:
            raise DimensionMismatchError(f"log mixes {self.dims}-d and {box.dims}-d objects")

    def _bump(self, box: Box, value: float, delta: int) -> None:
        self._check_dims(box)
        key = (box, float(value))
        count = self._counts.get(key, 0) + delta
        if count:
            self._counts[key] = count
        else:
            self._counts.pop(key, None)
        self._digest.bump(box, float(value), delta)

    def apply(self, op: Operation) -> None:
        """Fold one logical operation into the state."""
        if isinstance(op, InsertOp):
            self._bump(op.box, op.value, 1)
        elif isinstance(op, DeleteOp):
            self._bump(op.box, op.value, -1)
        elif isinstance(op, SetMetaOp):
            self.meta[op.key] = bytes(op.blob)
            self._digest.set_meta(op.key, bytes(op.blob))
        elif isinstance(op, BulkLoadOp):
            # A bulk load *replaces* the object population (the index verb
            # rebuilds from scratch); metadata survives it.
            self._counts.clear()
            self._digest.clear_objects()
            for box, value in op.objects:
                self._bump(box, value, 1)
        else:
            raise TypeError(f"cannot apply {type(op).__name__}")

    # -- views -------------------------------------------------------------------

    def __len__(self) -> int:
        """Distinct identities with a non-zero count."""
        return len(self._counts)

    @property
    def net_instances(self) -> int:
        """Signed instance total (negative counts subtract)."""
        return sum(self._counts.values())

    @property
    def digest(self) -> int:
        """Order-insensitive 64-bit content digest (see :mod:`.digest`)."""
        return self._digest.value

    def digest_state(self) -> StateDigest:
        """A copy of the incremental digest, for seeding a member's own
        stream digest after a restore (:meth:`QueryService.sync_digest`)."""
        return self._digest.copy()

    def items(self) -> Iterable[Tuple[Box, float, int]]:
        """``(box, value, count)`` per identity, in deterministic order."""
        for (box, value), count in sorted(
            self._counts.items(), key=lambda kv: (kv[0][0].low, kv[0][0].high, kv[0][1])
        ):
            yield box, value, count

    def expanded(self) -> List[Tuple[Box, float]]:
        """Positive counts expanded to a flat bulk-loadable object list."""
        out: List[Tuple[Box, float]] = []
        for box, value, count in self.items():
            for _ in range(max(count, 0)):
                out.append((box, value))
        return out

    def negatives(self) -> List[Tuple[Box, float, int]]:
        """Identities whose count went below zero (cluster-routed deletes)."""
        return [(box, value, count) for box, value, count in self.items() if count < 0]

    def extent(self) -> Optional[Box]:
        """Bounding box of every stored identity (None when empty).

        Used to seed the catch-up audit's probe boxes so they actually
        overlap the data; negative-count identities are included — they
        affect answers just as positives do.
        """
        boxes = [box for box, _value, _count in self.items()]
        if not boxes:
            return None
        return Box.enclosing(boxes)

    # -- checkpoints -------------------------------------------------------------

    def to_checkpoint(self, lsn: int, epoch: int) -> Checkpoint:
        return Checkpoint(
            lsn=lsn,
            epoch=epoch,
            dims=self.dims if self.dims is not None else 0,
            objects=tuple(self.items()),
            meta=tuple(sorted(self.meta.items())),
        )

    @classmethod
    def from_checkpoint(cls, checkpoint: Checkpoint) -> "LogicalState":
        state = cls(checkpoint.dims if checkpoint.dims else None)
        for box, value, count in checkpoint.objects:
            state._bump(box, value, count)
        for key, blob in checkpoint.meta:
            state.meta[key] = bytes(blob)
            state._digest.set_meta(key, bytes(blob))
        return state

    # -- materialization ---------------------------------------------------------

    def materialize(self, service) -> int:
        """Rebuild ``service``'s index to equal this state; returns its epoch.

        Applied as un-logged mutations (``record=None``) so restoring a
        member from the log never writes the log: one ``bulk_load`` of the
        expanded positives, one ``delete`` per negative instance, and a
        ``set_meta`` per blob when the index exposes the hook.  Epoch
        alignment is the caller's job (:meth:`QueryService.sync_epoch`).

        A service that exposes ``restore_state`` (the RPC
        :class:`~repro.rpc.WorkerClient` does) takes over wholesale: the
        in-process path below would mutate the client's *local planning
        twin* instead of the remote worker, so the whole state ships
        across the wire in one un-logged frame instead.
        """
        restore_state = getattr(service, "restore_state", None)
        if restore_state is not None:
            return restore_state(self)
        index = service.index
        epoch = service.mutate(lambda: index.bulk_load(self.expanded()), op="restore", record=None)
        for box, value, count in self.negatives():
            for _ in range(-count):
                epoch = service.mutate(
                    lambda b=box, v=value: index.delete(b, v), op="restore", record=None
                )
        set_meta = getattr(index, "set_meta", None)
        if set_meta is not None:
            for _key, blob in sorted(self.meta.items()):
                epoch = service.mutate(lambda b=blob: set_meta(b), op="restore", record=None)
        return epoch

    def copy(self) -> "LogicalState":
        clone = LogicalState(self.dims)
        clone._counts = dict(self._counts)
        clone.meta = dict(self.meta)
        clone._digest = self._digest.copy()
        return clone


__all__ = ["LogicalState"]
