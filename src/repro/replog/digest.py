"""Order-insensitive 64-bit digests over logical state.

The divergence audit (:meth:`repro.resilience.group.ReplicaGroup.audit_digests`,
driven by :class:`repro.heal.HealSupervisor`) needs to compare the *content*
of every group member against the replication log's folded state on every
tick, which rules out anything proportional to the state size.  A
:class:`StateDigest` is an incrementally-maintained commutative checksum:

* each object identity ``(box, value)`` hashes to a stable 64-bit token
  (BLAKE2b over the packed corner/value doubles — independent of
  ``PYTHONHASHSEED``, process, or platform);
* the object component is the count-weighted sum of tokens mod ``2**64``,
  so an insert adds a token, a delete subtracts one, and two states with
  the same signed multiset agree *regardless of mutation order*;
* metadata blobs contribute one token per key (replacement subtracts the
  old token, so ``set_meta`` stays O(1)).

Equality of digests therefore tracks equality of folds: two members fed
the same admitted mutation multiset agree bit-for-bit, and a member that
lost or misapplied a write disagrees with the log with probability
``1 - 2**-64``.  The invariant the audit enforces is

    ``digest(log) == digest(folded state) == digest(every live member)``

maintained at append time on all three (``ReplicationLog.record`` folds
into its in-memory :class:`~repro.replog.state.LogicalState`;
``QueryService.mutate`` and ``WorkerClient``'s typed verbs fold the same
record stream member-side), so the comparison itself is O(members).
"""

from __future__ import annotations

import struct
from hashlib import blake2b
from typing import Dict, Iterable, Tuple

_MASK = (1 << 64) - 1


def identity_token(box, value: float) -> int:
    """A stable 64-bit token for one ``(box, value)`` object identity."""
    dims = box.dims
    payload = struct.pack(f"<I{2 * dims + 1}d", dims, *box.low, *box.high, float(value))
    return int.from_bytes(blake2b(payload, digest_size=8).digest(), "little")


def meta_token(key: str, blob: bytes) -> int:
    """A stable 64-bit token for one metadata ``key -> blob`` binding."""
    raw = key.encode("utf-8")
    payload = b"meta\x00" + struct.pack("<I", len(raw)) + raw + bytes(blob)
    return int.from_bytes(blake2b(payload, digest_size=8).digest(), "little")


class StateDigest:
    """Incremental commutative digest of a signed object multiset + metadata.

    Maintained in O(1) per mutation from the logical record stream alone
    (:meth:`note`), or piecewise via :meth:`bump` / :meth:`set_meta` /
    :meth:`clear_objects` when the caller already dispatches on op kinds
    (:class:`~repro.replog.state.LogicalState` does).  ``value`` is the
    64-bit integer two digests are compared by.
    """

    __slots__ = ("_objects", "_meta")

    def __init__(self) -> None:
        self._objects = 0
        #: key -> token, kept so a replacement can subtract the old binding
        self._meta: Dict[str, int] = {}

    @property
    def value(self) -> int:
        """The combined 64-bit digest (objects + metadata bindings)."""
        return (self._objects + sum(self._meta.values())) & _MASK

    # -- incremental updates -------------------------------------------------------

    def bump(self, box, value: float, delta: int = 1) -> None:
        """Fold ``delta`` instances of one identity in (negative = remove)."""
        self._objects = (self._objects + delta * identity_token(box, value)) & _MASK

    def clear_objects(self) -> None:
        """Drop the object component (a bulk load replaces the population)."""
        self._objects = 0

    def set_meta(self, key: str, blob: bytes) -> None:
        """Bind ``key`` to ``blob``, replacing any previous binding."""
        self._meta[key] = meta_token(key, blob)

    def reset_objects(self, objects: Iterable[Tuple[object, float]]) -> None:
        """Replace the object component with a fresh population."""
        total = 0
        for box, value in objects:
            total += identity_token(box, value)
        self._objects = total & _MASK

    def note(self, op) -> None:
        """Fold one logical operation record (the one-seam entry point)."""
        from .records import BulkLoadOp, DeleteOp, InsertOp, SetMetaOp

        if isinstance(op, InsertOp):
            self.bump(op.box, op.value, 1)
        elif isinstance(op, DeleteOp):
            self.bump(op.box, op.value, -1)
        elif isinstance(op, BulkLoadOp):
            self.reset_objects(op.objects)
        elif isinstance(op, SetMetaOp):
            self.set_meta(op.key, bytes(op.blob))
        else:
            raise TypeError(f"cannot digest {type(op).__name__}")

    # -- plumbing --------------------------------------------------------------------

    def copy(self) -> "StateDigest":
        clone = StateDigest.__new__(StateDigest)
        clone._objects = self._objects
        clone._meta = dict(self._meta)
        return clone

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StateDigest):
            return self.value == other.value
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:
        return f"StateDigest(0x{self.value:016x})"


__all__ = ["StateDigest", "identity_token", "meta_token"]
