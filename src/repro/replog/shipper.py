"""``ReplicationLog``: the log + checkpoint facade the serving layers ship on.

One instance fronts one logical index's history — a segmented
:class:`~repro.replog.log.OperationLog` plus a
:class:`~repro.replog.checkpoint.CheckpointStore` in a ``checkpoints/``
subdirectory — and keeps the *current* :class:`~repro.replog.state.LogicalState`
folded in memory, so taking a checkpoint is a flat serialization rather
than a replay.  The three verbs the rest of the system uses:

``record(op)``
    Append one admitted mutation; returns its LSN.  Callers serialize
    (the service write lock or the group mutation mutex) — the order of
    records *is* the replication contract.

``checkpoint(epoch)``
    Snapshot the folded state at the head LSN, retain the newest few
    checkpoints, and prune log segments nothing retained still needs.

``restore_into(service, upto_lsn=...)``
    Rebuild any member bit-exactly: newest intact checkpoint at or below
    the target, tail replay to the target LSN, epoch re-sync.  With
    ``upto_lsn`` in the past this is point-in-time recovery
    (:meth:`ReplicationLog.recover_to`).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.errors import ReplicationLogError
from ..obs import trace as _trace
from ..obs.registry import MetricsRegistry, get_registry
from .checkpoint import Checkpoint, CheckpointStore
from .log import OperationLog
from .records import Operation, decode_op, encode_op
from .state import LogicalState


@dataclass(frozen=True)
class RestoreReport:
    """What one restore actually did (for logs, tests and the bench)."""

    upto_lsn: int
    epoch: int
    #: LSN of the checkpoint used, or 0 when the restore replayed from scratch
    checkpoint_lsn: int
    #: records replayed after the checkpoint
    tail_records: int
    #: object instances bulk-loaded from the checkpoint + tail state
    objects_loaded: int
    #: negative-count identities replayed as deletions
    negatives_replayed: int


class ReplicationLog:
    """Log-shipping facade over one directory: segments + checkpoints + state.

    Parameters
    ----------
    directory:
        Segment files live here, checkpoints under ``checkpoints/``.
        Opening an existing directory recovers the folded state from the
        newest intact checkpoint plus the log tail.
    base_epoch:
        The service epoch *before* the first logged record.  Every record
        corresponds to exactly one epoch bump, so the epoch at LSN ``L``
        is ``base_epoch + L`` — the invariant that lets a restored member
        re-sync its epoch without ever having seen the primary.
    checkpoint_retain:
        How many checkpoints to keep; older ones (and the log segments
        only they needed) are pruned by :meth:`checkpoint`.
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_bytes: int = 1 << 20,
        fsync: bool = True,
        opener: Optional[Callable[[str, str], object]] = None,
        registry: Optional[MetricsRegistry] = None,
        base_epoch: int = 0,
        checkpoint_retain: int = 2,
        label: str = "replog",
    ) -> None:
        if checkpoint_retain < 1:
            raise ValueError(f"checkpoint_retain must be >= 1, got {checkpoint_retain}")
        registry = registry if registry is not None else get_registry()
        kwargs = {"segment_bytes": segment_bytes, "fsync": fsync, "registry": registry}
        if opener is not None:
            kwargs["opener"] = opener
        self.label = label
        self.base_epoch = base_epoch
        self.checkpoint_retain = checkpoint_retain
        self.log = OperationLog(directory, **kwargs)
        self.checkpoints = CheckpointStore(os.path.join(directory, "checkpoints"))
        self._m_checkpoints = registry.counter("repro_replog_checkpoints", "checkpoints taken")
        self._m_restores = registry.counter(
            "repro_replog_restores", "members restored from checkpoint + tail"
        )
        self._m_ckpt_bytes = registry.gauge(
            "repro_replog_checkpoint_bytes", "size of the newest checkpoint file"
        )
        self._lock = threading.RLock()
        self._state = self._recover_state()

    # -- recovery ----------------------------------------------------------------

    def _recover_state(self) -> LogicalState:
        """Fold the newest intact checkpoint + log tail into memory."""
        checkpoint = self.checkpoints.best_for(self.log.head_lsn)
        if checkpoint is not None:
            state = LogicalState.from_checkpoint(checkpoint)
            start = checkpoint.lsn + 1
        else:
            state = LogicalState()
            start = 1
        for _lsn, kind, payload in self.log.records(start_lsn=start):
            state.apply(decode_op(kind, payload))
        return state

    # -- the write path ----------------------------------------------------------

    def record(self, op: Operation) -> int:
        """Append one admitted mutation; returns its LSN."""
        kind, payload = encode_op(op)
        with self._lock:
            lsn = self.log.append(kind, payload)
            self._state.apply(op)
        return lsn

    @property
    def head_lsn(self) -> int:
        return self.log.head_lsn

    @property
    def oldest_lsn(self) -> int:
        return self.log.oldest_lsn

    def epoch_at(self, lsn: int) -> int:
        """The service epoch after applying record ``lsn`` (one bump each)."""
        return self.base_epoch + lsn

    def extent(self):
        """Bounding box of the current folded state (None when empty)."""
        with self._lock:
            return self._state.extent()

    @property
    def digest(self) -> int:
        """Order-insensitive 64-bit digest of the folded state.

        Maintained at append time (``record`` folds each op into the
        in-memory state, whose digest updates in O(1)) — this is the
        authority the divergence audit compares every group member
        against: ``digest(log) == digest(folded state)`` by construction,
        and a live member whose own stream digest disagrees has lost or
        misapplied a write.
        """
        with self._lock:
            return self._state.digest

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self, epoch: Optional[int] = None) -> Checkpoint:
        """Snapshot the folded state at the head LSN; retain + prune.

        ``epoch`` defaults to the LSN invariant (``base_epoch + head``);
        pass the service's actual epoch when taking the snapshot under its
        write lock, which also asserts the invariant held.
        """
        with self._lock:
            head = self.log.head_lsn
            if epoch is None:
                epoch = self.epoch_at(head)
            checkpoint = self._state.to_checkpoint(head, epoch)
            tracer = _trace._ACTIVE
            if tracer is None:
                path = self.checkpoints.save(checkpoint)
            else:
                with tracer.span("replog.checkpoint", label=self.label, lsn=head):
                    path = self.checkpoints.save(checkpoint)
            keep_from = self.checkpoints.retain(self.checkpoint_retain)
            if keep_from:
                self.log.prune(keep_from)
            self._m_checkpoints.inc(label=self.label)
            self._m_ckpt_bytes.set(float(self.checkpoints.sizes()[head]), label=self.label)
        return checkpoint

    # -- reads / restores --------------------------------------------------------

    def state_at(self, lsn: Optional[int] = None, *, use_checkpoint: bool = True) -> LogicalState:
        """The logical state after record ``lsn`` (None = head).

        Reconstructed from the newest intact checkpoint at or below the
        target plus a tail replay — or from LSN 1 when ``use_checkpoint``
        is False (raises if that history was pruned).
        """
        with self._lock:
            head = self.log.head_lsn
            target = head if lsn is None else lsn
            if target > head:
                raise ReplicationLogError(f"LSN {target} is beyond the head ({head})")
            if target == head and use_checkpoint:
                return self._state.copy()
            checkpoint = self.checkpoints.best_for(target) if use_checkpoint else None
            if checkpoint is not None:
                state = LogicalState.from_checkpoint(checkpoint)
                start = checkpoint.lsn + 1
            else:
                state = LogicalState()
                start = 1
            for _lsn, kind, payload in self.log.records(start_lsn=start, end_lsn=target):
                state.apply(decode_op(kind, payload))
            return state

    def restore_into(
        self,
        service,
        *,
        upto_lsn: Optional[int] = None,
        use_checkpoint: bool = True,
    ) -> RestoreReport:
        """Rebuild ``service``'s index to the state at ``upto_lsn`` (None = head).

        The member ends bit-exact with any other member at that LSN: same
        multiset, same deterministic apply order, same epoch
        (``base_epoch + lsn`` via :meth:`QueryService.sync_epoch`).
        """
        with self._lock:
            head = self.log.head_lsn
            target = head if upto_lsn is None else upto_lsn
            if target > head:
                raise ReplicationLogError(f"LSN {target} is beyond the head ({head})")
            checkpoint = self.checkpoints.best_for(target) if use_checkpoint else None
            if checkpoint is not None:
                state = LogicalState.from_checkpoint(checkpoint)
                start = checkpoint.lsn + 1
            else:
                state = LogicalState()
                start = 1
            tail = 0
            for _lsn, kind, payload in self.log.records(start_lsn=start, end_lsn=target):
                state.apply(decode_op(kind, payload))
                tail += 1
        epoch = self.epoch_at(target)
        tracer = _trace._ACTIVE
        if tracer is None:
            state.materialize(service)
        else:
            with tracer.span("replog.restore", label=self.label, lsn=target, tail=tail):
                state.materialize(service)
        service.sync_epoch(epoch)
        # Re-seed the member's stream digest from the restored state so the
        # divergence audit's invariant holds from the first post-restore
        # mutation (materialize applies un-logged record=None mutations,
        # which by design do not touch the member's digest).
        sync_digest = getattr(service, "sync_digest", None)
        if sync_digest is not None:
            sync_digest(state.digest_state())
        self._m_restores.inc(label=self.label)
        return RestoreReport(
            upto_lsn=target,
            epoch=epoch,
            checkpoint_lsn=checkpoint.lsn if checkpoint is not None else 0,
            tail_records=tail,
            objects_loaded=len(state.expanded()),
            negatives_replayed=sum(-c for _b, _v, c in state.negatives()),
        )

    def recover_to(self, lsn: int, index_factory: Optional[Callable[[], object]] = None):
        """Point-in-time recovery: the state (or a live service) at ``lsn``.

        Without a factory, returns the :class:`LogicalState` — enough for
        an audit diff.  With one, builds a fresh index, wraps it in a
        :class:`~repro.service.service.QueryService` and restores it to
        exactly the historical epoch, ready to answer queries as the
        group would have at that point.
        """
        if index_factory is None:
            return self.state_at(lsn)
        from ..service.service import QueryService

        service = QueryService(index_factory(), label=f"{self.label}@{lsn}")
        self.restore_into(service, upto_lsn=lsn)
        return service

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        """Flat counters for inspect/bench: sizes, heads, retention."""
        with self._lock:
            segments = self.log.segment_files()
            ckpt_sizes = self.checkpoints.sizes()
            return {
                "head_lsn": float(self.log.head_lsn),
                "oldest_lsn": float(self.log.oldest_lsn),
                "segments": float(len(segments)),
                "log_bytes": float(sum(size for _b, _p, size in segments)),
                "checkpoints": float(len(ckpt_sizes)),
                "checkpoint_bytes": float(sum(ckpt_sizes.values())),
                "newest_checkpoint_lsn": float(max(ckpt_sizes) if ckpt_sizes else 0),
                "state_identities": float(len(self._state)),
                "state_instances": float(self._state.net_instances),
                "state_digest": self._state.digest,
            }

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self.log.close()

    def __enter__(self) -> "ReplicationLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CatchUpDaemon:
    """A background loop that keeps driving a catch-up callable.

    Wraps any zero-argument callable — typically
    ``cluster.catch_up_all`` or a bound ``group.catch_up`` — and invokes
    it every ``interval`` seconds until stopped.  Exceptions are counted,
    never raised into the thread (a failed catch-up attempt leaves the
    member poisoned; the next tick retries).

    .. deprecated::
        Superseded by :class:`repro.heal.HealSupervisor`, which drives the
        same catch-up verbs from an actual health model (breaker state,
        process liveness, digest audits) with backoff and crash-loop
        quarantine instead of blind periodic retries.  The daemon remains
        for callers that want exactly a dumb retry loop.
    """

    def __init__(
        self,
        fn: Callable[[], object],
        *,
        interval: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        label: str = "replog",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._fn = fn
        self.interval = interval
        self.label = label
        registry = registry if registry is not None else get_registry()
        self._m_ticks = registry.counter(
            "repro_replog_catchup_ticks",
            "catch-up daemon invocations, by outcome (ok/noop/error)",
        )
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.errors = 0
        self.ticks = 0

    def start(self) -> "CatchUpDaemon":
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("daemon already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-catchup[{self.label}]", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.ticks += 1
            try:
                result = self._fn()
            except Exception:
                self.errors += 1
                self._m_ticks.inc(outcome="error", label=self.label)
            else:
                # A falsy result (catch_up_all returns {} when nothing was
                # poisoned) is a no-op tick — split out so dashboards can
                # tell "healthy and idle" from "actively reviving".
                outcome = "ok" if result else "noop"
                self._m_ticks.inc(outcome=outcome, label=self.label)

    def stop(self, timeout: Optional[float] = 5.0) -> bool:
        """Stop the loop; idempotent, safe before :meth:`start`.

        Joins the thread with ``timeout`` (None = wait forever).  Returns
        True when the thread is down (or never ran), False when the join
        timed out — the thread keeps draining its current tick and the
        caller may stop() again.
        """
        self._stop.set()
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout)
        if thread.is_alive():
            return False
        self._thread = None
        return True

    def __enter__(self) -> "CatchUpDaemon":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


__all__ = ["ReplicationLog", "RestoreReport", "CatchUpDaemon"]
