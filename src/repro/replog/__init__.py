"""Log-shipping replication: operation log, checkpoints, catch-up, PITR.

The :class:`~repro.replog.shipper.ReplicationLog` facade is the public
entry point; :mod:`~repro.replog.records` defines the logical operation
codec, :mod:`~repro.replog.log` the CRC-framed segmented log,
:mod:`~repro.replog.checkpoint` the atomic snapshot store and
:mod:`~repro.replog.state` the replayable multiset they all share.
"""

from .checkpoint import Checkpoint, CheckpointStore
from .log import MAX_PAYLOAD, OperationLog
from .records import (
    OP_BULK,
    OP_DELETE,
    OP_INSERT,
    OP_SET_META,
    BulkLoadOp,
    DeleteOp,
    InsertOp,
    Operation,
    SetMetaOp,
    decode_op,
    encode_op,
)
from .digest import StateDigest, identity_token, meta_token
from .shipper import CatchUpDaemon, ReplicationLog, RestoreReport
from .state import LogicalState

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "OperationLog",
    "MAX_PAYLOAD",
    "OP_INSERT",
    "OP_DELETE",
    "OP_SET_META",
    "OP_BULK",
    "InsertOp",
    "DeleteOp",
    "SetMetaOp",
    "BulkLoadOp",
    "Operation",
    "encode_op",
    "decode_op",
    "ReplicationLog",
    "RestoreReport",
    "CatchUpDaemon",
    "LogicalState",
    "StateDigest",
    "identity_token",
    "meta_token",
]
