"""Checkpoints: consistent logical snapshots tagged with their last LSN.

A checkpoint is the *logical* state of one served index — the multiset of
live ``(box, value)`` objects (per-key signed counts; a count can be
negative when a deletion was routed to a shard that never held the object,
exactly as the cluster ledger allows) plus the metadata blobs — serialized
with the LSN of the last mutation it reflects and the service epoch at
that point.  Restoring a member is then ``bulk_load(checkpoint)`` followed
by replaying the log tail ``(checkpoint.lsn, head]``: bounded work however
long the group has lived, which is what turns "rebuild the replica by
hand" into :meth:`~repro.resilience.group.ReplicaGroup.catch_up`.

On-disk format (one file per checkpoint, ``ckpt-<lsn 20 digits>.ckpt``)::

    header:   8s magic "REPROCKP" | u64 lsn | u64 epoch | u16 dims
              | u32 n_objects | u32 n_meta
    object:   (2*dims+1) f64 (low…, high…, value) | i64 count
    meta:     u16 key_len | u32 blob_len | key utf-8 | blob
    trailer:  u32 crc32 over everything above

Writes are atomic: payload to a ``.tmp`` sibling, flush + fsync, then
``os.replace`` — a crash leaves either the old set of checkpoints or the
old set plus one complete new file, never a torn one.  A checkpoint whose
CRC fails on load is *skipped* (older ones remain usable); it is only an
error when no intact checkpoint at or below the requested LSN exists and
the log cannot cover the gap.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.errors import ReplicationLogError
from ..core.geometry import Box
from ..storage.wal import fsync_file

_CKPT_MAGIC = b"REPROCKP"
_HEADER = struct.Struct("<8sQQHII")  # magic, lsn, epoch, dims, n_objects, n_meta
_COUNT = struct.Struct("<q")
_META_LENS = struct.Struct("<HI")
_CRC = struct.Struct("<I")


@dataclass(frozen=True)
class Checkpoint:
    """One consistent snapshot: objects + meta at ``lsn`` / ``epoch``."""

    lsn: int
    epoch: int
    dims: int
    #: per-identity signed instance counts
    objects: Tuple[Tuple[Box, float, int], ...]
    meta: Tuple[Tuple[str, bytes], ...]

    def encode(self) -> bytes:
        parts = [
            _HEADER.pack(
                _CKPT_MAGIC,
                self.lsn,
                self.epoch,
                self.dims,
                len(self.objects),
                len(self.meta),
            )
        ]
        width = f"<{2 * self.dims + 1}d"
        for box, value, count in self.objects:
            parts.append(struct.pack(width, *box.low, *box.high, float(value)))
            parts.append(_COUNT.pack(count))
        for key, blob in self.meta:
            encoded = key.encode("utf-8")
            parts.append(_META_LENS.pack(len(encoded), len(blob)))
            parts.append(encoded)
            parts.append(bytes(blob))
        body = b"".join(parts)
        return body + _CRC.pack(zlib.crc32(body))

    @classmethod
    def decode(cls, blob: bytes) -> "Checkpoint":
        if len(blob) < _HEADER.size + _CRC.size:
            raise ReplicationLogError("checkpoint file truncated")
        body, (crc,) = blob[: -_CRC.size], _CRC.unpack(blob[-_CRC.size :])
        if zlib.crc32(body) != crc:
            raise ReplicationLogError("checkpoint checksum mismatch")
        magic, lsn, epoch, dims, n_objects, n_meta = _HEADER.unpack_from(body, 0)
        if magic != _CKPT_MAGIC:
            raise ReplicationLogError("not a checkpoint file (bad magic)")
        offset = _HEADER.size
        width = struct.Struct(f"<{2 * dims + 1}d")
        objects: List[Tuple[Box, float, int]] = []
        try:
            for _ in range(n_objects):
                fields = width.unpack_from(body, offset)
                offset += width.size
                (count,) = _COUNT.unpack_from(body, offset)
                offset += _COUNT.size
                objects.append(
                    (Box(fields[:dims], fields[dims : 2 * dims]), fields[2 * dims], count)
                )
            meta: List[Tuple[str, bytes]] = []
            for _ in range(n_meta):
                key_len, blob_len = _META_LENS.unpack_from(body, offset)
                offset += _META_LENS.size
                key = body[offset : offset + key_len].decode("utf-8")
                offset += key_len
                meta.append((key, body[offset : offset + blob_len]))
                offset += blob_len
        except (struct.error, UnicodeDecodeError) as exc:
            raise ReplicationLogError(f"malformed checkpoint body: {exc}") from exc
        if offset != len(body):
            raise ReplicationLogError("trailing bytes in checkpoint body")
        return cls(lsn, epoch, dims, tuple(objects), tuple(meta))

    @property
    def num_instances(self) -> int:
        """Net object instances (signed counts summed)."""
        return sum(count for _b, _v, count in self.objects)


def _checkpoint_name(lsn: int) -> str:
    return f"ckpt-{lsn:020d}.ckpt"


class CheckpointStore:
    """A directory of atomic, CRC-sealed checkpoint files keyed by LSN."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def lsns(self) -> List[int]:
        """Checkpoint LSNs on disk, ascending (torn ``.tmp`` debris ignored)."""
        out = []
        for name in os.listdir(self.directory):
            if name.startswith("ckpt-") and name.endswith(".ckpt"):
                stem = name[len("ckpt-") : -len(".ckpt")]
                if stem.isdigit():
                    out.append(int(stem))
        out.sort()
        return out

    def save(self, checkpoint: Checkpoint) -> str:
        """Write atomically (tmp + fsync + rename); returns the final path."""
        path = os.path.join(self.directory, _checkpoint_name(checkpoint.lsn))
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(checkpoint.encode())
            fsync_file(f)
        os.replace(tmp, path)
        return path

    def load(self, lsn: int) -> Checkpoint:
        path = os.path.join(self.directory, _checkpoint_name(lsn))
        with open(path, "rb") as f:
            checkpoint = Checkpoint.decode(f.read())
        if checkpoint.lsn != lsn:
            raise ReplicationLogError(f"{path}: names LSN {lsn} but body says {checkpoint.lsn}")
        return checkpoint

    def best_for(self, lsn: Optional[int] = None) -> Optional[Checkpoint]:
        """The newest intact checkpoint at or below ``lsn`` (None = newest).

        A corrupt file is skipped — an older intact checkpoint plus a
        longer log tail still restores exactly.
        """
        for candidate in reversed(self.lsns()):
            if lsn is not None and candidate > lsn:
                continue
            try:
                return self.load(candidate)
            except (OSError, ReplicationLogError):
                continue
        return None

    def latest(self) -> Optional[Checkpoint]:
        return self.best_for(None)

    def retain(self, keep: int) -> int:
        """Keep the newest ``keep`` checkpoints; returns the oldest kept LSN.

        Returns 0 when nothing remains.  The caller prunes the log only up
        to the oldest *retained* checkpoint, so every surviving checkpoint
        stays replayable to the head.
        """
        if keep < 1:
            raise ValueError(f"must retain at least 1 checkpoint, got {keep}")
        lsns = self.lsns()
        for lsn in lsns[:-keep] if len(lsns) > keep else []:
            os.remove(os.path.join(self.directory, _checkpoint_name(lsn)))
        remaining = self.lsns()
        return remaining[0] if remaining else 0

    def sizes(self) -> Dict[int, int]:
        """``lsn -> file bytes`` for every checkpoint on disk."""
        return {
            lsn: os.path.getsize(os.path.join(self.directory, _checkpoint_name(lsn)))
            for lsn in self.lsns()
        }


__all__ = ["Checkpoint", "CheckpointStore"]
