"""Logical operation records for the replication log.

Unlike the page-image WAL (:mod:`repro.storage.wal`), which guards one
file's *physical* checkpoints, the replication log ships *logical*
mutations — the box, the weight, the metadata blob — so any member of a
replica group (or a brand-new one) can replay the exact mutation sequence
against its own index, whatever backend or storage it fronts.  Four
operation kinds cover everything a
:class:`~repro.service.service.QueryService` admits:

==============  =====================================================
``OP_INSERT``   one weighted box object added
``OP_DELETE``   one weighted box object removed (negation insert)
``OP_SET_META`` an opaque ``(key, blob)`` metadata write
``OP_BULK``     a full rebuild from an explicit object list
==============  =====================================================

Payloads are fixed-layout ``struct`` packs of IEEE-754 doubles, so the
same operation always encodes to the same bytes — which is what makes
checkpoint sizes and log sizes deterministic enough to gate in the smoke
benchmark, and replay bit-exact across members.

Framing (record header, CRC, segment files) lives in
:mod:`repro.replog.log`; this module is purely the payload codec.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple, Union

from ..core.errors import ReplicationLogError
from ..core.geometry import Box

#: Operation kinds (wire values; never renumber).
OP_INSERT = 1
OP_DELETE = 2
OP_SET_META = 3
OP_BULK = 4

_DIMS = struct.Struct("<H")
_COUNT = struct.Struct("<I")
_VALUE = struct.Struct("<d")
_META_LENS = struct.Struct("<HI")  # key length (utf-8 bytes), blob length


@dataclass(frozen=True)
class InsertOp:
    """One weighted box added to the index."""

    box: Box
    value: float = 1.0

    kind = OP_INSERT


@dataclass(frozen=True)
class DeleteOp:
    """One weighted box removed (the same identity insert used)."""

    box: Box
    value: float = 1.0

    kind = OP_DELETE


@dataclass(frozen=True)
class SetMetaOp:
    """An opaque metadata write (e.g. a durable backend's header blob)."""

    key: str
    blob: bytes

    kind = OP_SET_META


@dataclass(frozen=True)
class BulkLoadOp:
    """A full rebuild from an explicit ``(box, value)`` list."""

    objects: Tuple[Tuple[Box, float], ...]

    kind = OP_BULK


Operation = Union[InsertOp, DeleteOp, SetMetaOp, BulkLoadOp]


def _pack_object(box: Box, value: float) -> bytes:
    dims = box.dims
    return struct.pack(f"<{2 * dims + 1}d", *box.low, *box.high, float(value))


def _unpack_object(dims: int, payload: bytes, offset: int) -> Tuple[Box, float, int]:
    width = 8 * (2 * dims + 1)
    fields = struct.unpack_from(f"<{2 * dims + 1}d", payload, offset)
    box = Box(fields[:dims], fields[dims : 2 * dims])
    return box, fields[2 * dims], offset + width


def encode_op(op: Operation) -> Tuple[int, bytes]:
    """Serialize an operation to its ``(kind, payload)`` wire form."""
    if isinstance(op, (InsertOp, DeleteOp)):
        return op.kind, _DIMS.pack(op.box.dims) + _pack_object(op.box, op.value)
    if isinstance(op, SetMetaOp):
        key = op.key.encode("utf-8")
        if len(key) > 0xFFFF:
            raise ReplicationLogError(f"meta key too long ({len(key)} bytes)")
        return op.kind, _META_LENS.pack(len(key), len(op.blob)) + key + bytes(op.blob)
    if isinstance(op, BulkLoadOp):
        if not op.objects:
            return op.kind, _DIMS.pack(0) + _COUNT.pack(0)
        dims = op.objects[0][0].dims
        parts = [_DIMS.pack(dims), _COUNT.pack(len(op.objects))]
        for box, value in op.objects:
            if box.dims != dims:
                raise ReplicationLogError(f"bulk-load mixes {dims}-d and {box.dims}-d objects")
            parts.append(_pack_object(box, value))
        return op.kind, b"".join(parts)
    raise ReplicationLogError(f"cannot encode {type(op).__name__} as a log record")


def decode_op(kind: int, payload: bytes) -> Operation:
    """Parse a ``(kind, payload)`` wire record back into an operation."""
    try:
        if kind in (OP_INSERT, OP_DELETE):
            (dims,) = _DIMS.unpack_from(payload, 0)
            box, value, end = _unpack_object(dims, payload, _DIMS.size)
            if end != len(payload):
                raise ReplicationLogError(
                    f"trailing bytes in {'insert' if kind == OP_INSERT else 'delete'} record"
                )
            cls = InsertOp if kind == OP_INSERT else DeleteOp
            return cls(box, value)
        if kind == OP_SET_META:
            key_len, blob_len = _META_LENS.unpack_from(payload, 0)
            start = _META_LENS.size
            if len(payload) != start + key_len + blob_len:
                raise ReplicationLogError("set_meta record length mismatch")
            key = payload[start : start + key_len].decode("utf-8")
            blob = payload[start + key_len :]
            return SetMetaOp(key, blob)
        if kind == OP_BULK:
            (dims,) = _DIMS.unpack_from(payload, 0)
            (count,) = _COUNT.unpack_from(payload, _DIMS.size)
            offset = _DIMS.size + _COUNT.size
            objects = []
            for _ in range(count):
                box, value, offset = _unpack_object(dims, payload, offset)
                objects.append((box, value))
            if offset != len(payload):
                raise ReplicationLogError("trailing bytes in bulk-load record")
            return BulkLoadOp(tuple(objects))
    except ReplicationLogError:
        raise
    except (struct.error, UnicodeDecodeError) as exc:
        raise ReplicationLogError(f"malformed record payload (kind {kind}): {exc}") from exc
    raise ReplicationLogError(f"unknown log record kind {kind}")


__all__ = [
    "OP_INSERT",
    "OP_DELETE",
    "OP_SET_META",
    "OP_BULK",
    "InsertOp",
    "DeleteOp",
    "SetMetaOp",
    "BulkLoadOp",
    "Operation",
    "encode_op",
    "decode_op",
]
