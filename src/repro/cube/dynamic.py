"""BA-tree-backed dynamic data-cube range-sums.

Paper Section 1: "our solution applies also to computing range-sums over
data cubes ... the BA-tree differs from [the dynamic data cube of] [14] in
two ways.  First, it is disk-based ...  Second, the BA-tree partitions the
space based on the data distribution while [14] does partitioning based on
a uniform grid."

A cube cell update becomes a weighted point insert; a range-sum becomes
``2^d`` dominance-sums over the cell-index corners.  Only non-zero cells
occupy space, which is the data-distribution advantage quoted above.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

from ..batree import BATree
from ..core.errors import DimensionMismatchError, InvalidQueryError
from ..storage import StorageContext


class DynamicCube:
    """A sparse, disk-resident data cube answering dynamic range-sums."""

    def __init__(
        self,
        shape: Sequence[int],
        storage: Optional[StorageContext] = None,
        **batree_kwargs: object,
    ) -> None:
        if not shape or any(s < 1 for s in shape):
            raise InvalidQueryError(f"invalid cube shape {tuple(shape)}")
        self.shape = tuple(int(s) for s in shape)
        self.dims = len(self.shape)
        self.storage = storage or StorageContext()
        self._tree = BATree(self.storage, self.dims, **batree_kwargs)

    # -- updates ------------------------------------------------------------------

    def update(self, cell: Sequence[int], delta: float) -> None:
        """Add ``delta`` to one cell — ``O(poly-log)`` page I/Os, not O(cells)."""
        cell = self._check_cell(cell)
        self._tree.insert(tuple(float(c) for c in cell), float(delta))

    # -- queries --------------------------------------------------------------------

    def range_sum(self, low: Sequence[int], high: Sequence[int]) -> float:
        """Sum of cells in the inclusive range ``[low, high]`` via 2^d dominance-sums."""
        low = self._check_cell(low)
        high = self._check_cell(high)
        if any(lo > hi for lo, hi in zip(low, high)):
            raise InvalidQueryError(f"empty range {low}..{high}")
        total = 0.0
        for signs in itertools.product((0, 1), repeat=self.dims):
            corner = tuple(
                float(low[i]) if signs[i] else float(high[i]) + 1.0
                for i in range(self.dims)
            )
            parity = -1 if sum(signs) % 2 else 1
            total += parity * self._tree.dominance_sum(corner)
        return total

    def cell_value(self, cell: Sequence[int]) -> float:
        """Current value of a single cell (a 1-cell range-sum)."""
        return self.range_sum(cell, cell)

    def total(self) -> float:
        """Sum over the whole cube."""
        return float(self._tree.total())

    @property
    def size_bytes(self) -> int:
        """Disk footprint — proportional to the non-zero cells, not the grid."""
        return self.storage.size_bytes

    def _check_cell(self, cell: Sequence[int]) -> Tuple[int, ...]:
        if len(cell) != self.dims:
            raise DimensionMismatchError(f"cell arity {len(cell)} != cube dims {self.dims}")
        out = tuple(int(c) for c in cell)
        for c, s in zip(out, self.shape):
            if not 0 <= c < s:
                raise InvalidQueryError(f"cell {out} outside cube shape {self.shape}")
        return out
