"""Data-cube range-sum: the prefix-sum array baseline and the BA-tree adapter."""

from .prefix_sum import PrefixSumCube
from .dynamic import DynamicCube

__all__ = ["PrefixSumCube", "DynamicCube"]
