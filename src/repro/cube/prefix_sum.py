"""The prefix-sum cube of Ho et al. [18] — O(1) queries, O(cells) updates.

"[18] proposed to maintain a prefix-sum array P which is of the same size
as A.  The range-sum query is then transformed into 2^d array look-ups in
P ... However this approach uses O(k) update cost, where k is the number
of array cells." (paper Section 7).  This is the classic baseline the
dynamic structures (and our BA-tree adapter) improve on.
"""

from __future__ import annotations

import itertools
from typing import Sequence, Tuple

import numpy as np

from ..core.errors import DimensionMismatchError, InvalidQueryError


class PrefixSumCube:
    """A dense d-dimensional array with a materialized prefix-sum array."""

    def __init__(self, shape: Sequence[int]) -> None:
        if not shape or any(s < 1 for s in shape):
            raise InvalidQueryError(f"invalid cube shape {tuple(shape)}")
        self.shape = tuple(int(s) for s in shape)
        self.dims = len(self.shape)
        self._cells = np.zeros(self.shape, dtype=np.float64)
        self._prefix = np.zeros(self.shape, dtype=np.float64)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "PrefixSumCube":
        """Build a cube (and its prefix sums) from an existing dense array."""
        cube = cls(array.shape)
        cube._cells = np.asarray(array, dtype=np.float64).copy()
        cube._rebuild()
        return cube

    def _rebuild(self) -> None:
        prefix = self._cells.copy()
        for axis in range(self.dims):
            np.cumsum(prefix, axis=axis, out=prefix)
        self._prefix = prefix

    # -- updates ------------------------------------------------------------------

    def update(self, cell: Sequence[int], delta: float) -> int:
        """Add ``delta`` to one cell; returns the number of prefix cells touched.

        The prefix array must be patched at every cell dominating the
        update — the O(k) cost the paper quotes for this structure.
        """
        cell = self._check_cell(cell)
        self._cells[cell] += delta
        region = tuple(slice(c, None) for c in cell)
        self._prefix[region] += delta
        touched = 1
        for c, s in zip(cell, self.shape):
            touched *= s - c
        return touched

    # -- queries -------------------------------------------------------------------

    def cell_value(self, cell: Sequence[int]) -> float:
        """Current value of a single cell."""
        return float(self._cells[self._check_cell(cell)])

    def range_sum(self, low: Sequence[int], high: Sequence[int]) -> float:
        """Sum of cells in the inclusive index range ``[low, high]`` via 2^d look-ups."""
        low = self._check_cell(low)
        high = self._check_cell(high)
        if any(lo > hi for lo, hi in zip(low, high)):
            raise InvalidQueryError(f"empty range {low}..{high}")
        total = 0.0
        for signs in itertools.product((0, 1), repeat=self.dims):
            corner = tuple((low[i] - 1) if signs[i] else high[i] for i in range(self.dims))
            if any(c < 0 for c in corner):
                continue  # prefix over an empty slab is zero
            parity = -1 if sum(signs) % 2 else 1
            total += parity * float(self._prefix[corner])
        return total

    def total(self) -> float:
        """Sum of the whole cube (the last prefix cell)."""
        return float(self._prefix[tuple(s - 1 for s in self.shape)])

    def _check_cell(self, cell: Sequence[int]) -> Tuple[int, ...]:
        if len(cell) != self.dims:
            raise DimensionMismatchError(f"cell arity {len(cell)} != cube dims {self.dims}")
        out = tuple(int(c) for c in cell)
        for c, s in zip(out, self.shape):
            if not 0 <= c < s:
                raise InvalidQueryError(f"cell {out} outside cube shape {self.shape}")
        return out
