"""Durable 1-dimensional aggregate index: an aggregated B+-tree on a real file.

The in-memory simulated disk is what the experiments use (its page I/O
accounting is the paper's metric); this module is the production-shaped
durability path: struct-encoded page images in fixed slots of an ordinary
file, with the tree's root and counters persisted in the file header so
the index reopens exactly where it left off.

::

    with DurableAggIndex.open("ledger.pages") as index:
        index.insert(17.5, 100.0)
        print(index.range_sum(0.0, 50.0))

1-d is the scope because the recursive structures hold live Border objects
inside their pages; persisting those would need an object graph format
(pickle images, see :meth:`repro.storage.pager.Pager.save`), not fixed
binary slots.  The 1-d tree is also the practically-durable piece: it is
the base case every recursive structure bottoms out in.
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

from .bptree import AggBPlusTree
from .core.errors import StorageError
from .core.polynomial import Polynomial
from .core.values import SumCount, Value
from .storage import StorageContext
from .storage.layout import PAGE_CHECKSUM_BYTES
from .storage.codec import (
    BPlusNodeCodec,
    PolynomialValueCodec,
    ScalarValueCodec,
    SumCountValueCodec,
)
from .storage.filepager import FilePager

_VALUE_KINDS = ("scalar", "sum+count", "polynomial")


def _make_codec(value_kind: str, poly_dims: int) -> Tuple[BPlusNodeCodec, Value, int]:
    """Codec, zero element and value byte-width for a value kind."""
    if value_kind == "scalar":
        return BPlusNodeCodec(ScalarValueCodec(), zero=0.0), 0.0, 8
    if value_kind == "sum+count":
        zero = SumCount(0.0, 0.0)
        return BPlusNodeCodec(SumCountValueCodec(), zero=zero), zero, 16
    if value_kind == "polynomial":
        zero = Polynomial(poly_dims)
        codec = BPlusNodeCodec(PolynomialValueCodec(poly_dims), zero=zero)
        # Worst-case tuple width is workload-dependent; charge a page
        # quarter so fan-out stays sane and encoding is checked at write.
        return codec, zero, 8 + 16 * (8 + poly_dims)
    raise StorageError(f"unknown value kind {value_kind!r}; pick one of {_VALUE_KINDS}")


class DurableAggIndex:
    """A file-backed 1-d dominance/range-sum index that survives restarts."""

    def __init__(
        self,
        path: str,
        value_kind: str = "scalar",
        poly_dims: int = 1,
        page_size: int = 8192,
        buffer_pages: Optional[int] = 256,
        create: bool = True,
        wal: bool = True,
        opener=None,
    ) -> None:
        codec, zero, value_bytes = _make_codec(value_kind, poly_dims)
        self.value_kind = value_kind
        self._closed = False
        pager_kwargs = {} if opener is None else {"opener": opener}
        self._pager = FilePager(
            path, codec, page_size=page_size, create=create, wal=wal, **pager_kwargs
        )
        self.storage = StorageContext(
            page_size=page_size,
            buffer_pages=buffer_pages,
            value_bytes=value_bytes,
            pager=self._pager,
        )
        meta = self._load_meta()
        # Header-aware capacities: a leaf image is 9 bytes of header plus
        # the trailing total; an internal image 5 bytes plus the total, and
        # one separator fewer than children.  Every slot also reserves a
        # trailing CRC32.  The codec enforces the fit at every write.
        usable = page_size - PAGE_CHECKSUM_BYTES
        leaf_capacity = (usable - 9 - value_bytes) // (8 + value_bytes)
        internal_capacity = (usable - 5 - value_bytes + 8) // (12 + value_bytes)
        self._tree = AggBPlusTree(
            self.storage,
            zero=zero,
            value_bytes=value_bytes,
            leaf_capacity=max(2, leaf_capacity),
            internal_capacity=max(3, internal_capacity),
        )
        if meta is not None:
            if meta["value_kind"] != value_kind:
                raise StorageError(
                    f"index at {path} stores {meta['value_kind']!r} values, "
                    f"opened as {value_kind!r}"
                )
            # Reattach to the persisted tree instead of the fresh empty root.
            self._pager.free(self._tree.root_pid)
            self._tree.root_pid = meta["root_pid"]
            self._tree.num_entries = meta["num_entries"]
            self._tree.height = meta["height"]

    @classmethod
    def open(cls, path: str, **kwargs: object) -> "DurableAggIndex":
        """Open (creating if missing) a durable index at ``path``."""
        return cls(path, **kwargs)

    def _load_meta(self) -> Optional[dict]:
        if not self._pager.user_meta:
            return None
        return json.loads(self._pager.user_meta.decode("utf-8"))

    # -- index protocol -----------------------------------------------------------

    def insert(self, key: float, value: Value) -> None:
        """Insert a weighted key (duplicates merge)."""
        self._tree.insert(key, value)

    def dominance_sum(self, key: float) -> Value:
        """Sum of values with stored key strictly below ``key``."""
        return self._tree.dominance_sum(key)

    def range_sum(self, low: float, high: float) -> Value:
        """Sum of values with key in ``[low, high)``."""
        return self._tree.range_sum(low, high)

    def total(self) -> Value:
        """Sum of everything stored."""
        return self._tree.total()

    def __len__(self) -> int:
        return len(self._tree)

    # -- durability ----------------------------------------------------------------

    def _meta_blob(self) -> bytes:
        meta = {
            "value_kind": self.value_kind,
            "root_pid": self._tree.root_pid,
            "num_entries": self._tree.num_entries,
            "height": self._tree.height,
        }
        return json.dumps(meta).encode("utf-8")

    def checkpoint(self) -> None:
        """Atomically persist every dirty page and the tree metadata; fsync.

        The page images and the header (root pid, counters) commit in one
        WAL batch — a crash at any point recovers to either the previous
        checkpoint or this one, never a mix.
        """
        self._pager.set_meta(self._meta_blob())

    def verify(self) -> int:
        """Checkpoint, then checksum-scrub every page; returns pages verified.

        Raises :class:`~repro.core.errors.PageCorruptionError` on the first
        damaged slot.
        """
        return self._pager.verify()

    def scrub(self):
        """Checkpoint, then checksum every slot and report *all* damage.

        The operational counterpart of :meth:`verify`: returns a
        :class:`~repro.storage.filepager.ScrubReport` listing every
        corrupt slot instead of raising at the first one.
        """
        return self._pager.scrub()

    def close(self) -> None:
        """Checkpoint and release the file; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._pager.set_meta(self._meta_blob())
        except BaseException:
            self._pager.close(checkpoint=False)
            raise
        self._pager.close()

    def __enter__(self) -> "DurableAggIndex":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is None:
            self.close()
        else:
            # A failed operation must not checkpoint a half-mutated cache
            # over good on-disk state: release the file without syncing.
            self._closed = True
            self._pager.close(checkpoint=False)
