"""``ShardedService``: N shard-local query services behind one exact facade.

Each shard owns a full :class:`~repro.core.aggregator.BoxSumIndex` (its own
epoch caches, readers–writer lock and, optionally, storage context) wrapped
in a :class:`~repro.service.service.QueryService`; the cluster adds:

* **routing** — inserts go where the :class:`~repro.shard.partition.ShardMap`
  assigns them; deletes follow the *ledger* (the cluster's authoritative
  per-object ownership record), falling back to the map for objects it has
  never seen (still exact: a dominance negation cancels additively no
  matter which shard absorbs it);
* **cluster-wide admission** — an :class:`~repro.service.locks.AdmissionGate`
  in front of the scatter path, stacked above the per-shard gates, so
  overload is shed before it fans out;
* **exact scatter-gather queries** — via :class:`~repro.shard.router.ShardRouter`
  with per-shard grow-only extent MBRs enabling probe pruning/covering;
* **online rebalancing** — under the cluster write lock (queries drain
  first, none can start), the hottest shard either has its kd region split
  (map-aware) or sheds objects to the coldest shard through the ledger
  (map-agnostic); either way no query ever observes a torn half-migrated
  view.

Locking order is strictly ``cluster lock → metadata mutex → shard locks``;
queries and single-object mutations take the cluster lock *shared* (each
shard serializes its own mutations), only rebalancing takes it exclusive.
"""

from __future__ import annotations

import itertools
import os
import threading
from inspect import signature
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..approx.bounds import ApproxResult
from ..approx.builder import ApproxPolicy, ApproxTier
from ..core.aggregator import BoxSumIndex
from ..core.errors import (
    NotSupportedError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardUnavailableError,
)
from ..core.geometry import Box
from ..obs import trace as _trace
from ..obs.registry import MetricsRegistry, get_registry
from ..replog import ReplicationLog
from ..resilience.config import ResilienceConfig
from ..resilience.group import ReplicaGroup
from ..resilience.partial import PartialResult
from ..service.locks import AdmissionGate, RWLock
from ..service.service import QUEUE_WAIT_BUCKETS, QueryService
from .partition import ShardMap, make_shard_map
from .router import ClusterBatchResult, ShardRouter

#: One ledger entry: an exact object key → per-shard instance counts.
_LedgerKey = Tuple[Tuple[float, ...], Tuple[float, ...], float]


class WorkerRestartReport(NamedTuple):
    """Outcome of one :meth:`ShardedService.restart_worker` invocation."""

    shard: int
    #: Member ids repaired (empty when no member was found dead).
    members: Tuple[int, ...]
    #: Pid of the last worker respawned (None for in-process members).
    pid: Optional[int]


class RebalanceReport(NamedTuple):
    """Outcome of one :meth:`ShardedService.rebalance` invocation."""

    source: int
    target: int
    moved: int
    #: ``"split"`` (the shard map refined its regions), ``"ledger"`` (generic
    #: migration without touching the map), or ``"noop"``.
    strategy: str
    objects: Tuple[int, ...]

    @property
    def imbalance(self) -> float:
        """Post-rebalance max/mean object-count ratio (1.0 = perfect)."""
        return _imbalance(self.objects)


def _imbalance(counts: Sequence[int]) -> float:
    clamped = [max(0, c) for c in counts]
    total = sum(clamped)
    if not clamped or total == 0:
        return 1.0
    return max(clamped) / (total / len(clamped))


class ShardedService:
    """Exact box-sum serving over horizontally partitioned objects.

    Parameters
    ----------
    dims:
        Dimensionality of every shard index.
    num_shards:
        Number of shard-local indices (>= 1).
    backend / reduction / measure / index_kwargs:
        Forwarded to each shard's :class:`~repro.core.aggregator.BoxSumIndex`
        (ignored when ``index_factory`` is given).
    index_factory:
        ``shard_id -> index`` override for heterogeneous or durable shards
        (e.g. each shard on its own :class:`~repro.storage.StorageContext`).
    partitioner:
        A registry name (``"kd"``, ``"hash"``, ``"roundrobin"``), a
        :class:`~repro.shard.partition.Partitioner`, or a restored
        :class:`~repro.shard.partition.ShardMap`.
    max_inflight / max_queue / queue_timeout:
        The *cluster* admission gate.  Per-shard services default to the
        same budget (the cluster gate is then the binding constraint); tune
        individual shards via ``shard_kwargs``.
    workers:
        Scatter fan-out pool size; None sizes it to ``min(num_shards, 8)``,
        0 keeps the fan-out sequential (deterministic, still exact).  The
        string ``"process"`` switches every shard member to a
        :class:`~repro.rpc.WorkerClient` — a ``multiprocessing`` child
        hosting the shard service behind the wire protocol of
        :mod:`repro.rpc` — with the fan-out pool at its default size so
        round-trips to different workers overlap.  Answers stay
        bit-identical; ``index_factory`` is rejected (a factory closure
        cannot cross the process boundary — use the declarative
        backend/kwargs form).
    replicas:
        Synchronous replicas per shard beyond the primary.  Any non-zero
        value (or a ``resilience`` config, or a ``service_wrapper``) turns
        each shard into a :class:`~repro.resilience.group.ReplicaGroup`:
        mutations fan out to every member, queries fail over between them
        behind per-member circuit breakers — and stay bit-identical, since
        every member answers exactly.
    resilience:
        The failover policy (:class:`~repro.resilience.config.ResilienceConfig`):
        retry budget, per-attempt deadline, backoff, hedged reads, and
        whether a whole-group outage degrades to a
        :class:`~repro.resilience.partial.PartialResult` instead of raising
        :class:`~repro.core.errors.ShardUnavailableError`.
    service_wrapper:
        ``(service, shard_id, member_id) -> service`` hook applied to every
        member service as the groups are built — the chaos harness's seam
        (:func:`~repro.resilience.chaos.chaos_member_wrapper`), also usable
        for bespoke instrumentation.
    replog_dir:
        When set, every shard ships its admitted mutations to a
        :class:`~repro.replog.ReplicationLog` under
        ``<replog_dir>/shard-<sid>``.  Replicated shards log at the group
        level (one record per admitted group mutation); unreplicated
        shards attach the log to the shard service itself.  Enables
        :meth:`checkpoint`, :meth:`add_replica`, :meth:`catch_up` /
        :meth:`catch_up_all` and per-shard point-in-time recovery.
        Members built here are *not* run through ``service_wrapper`` when
        seeded later — a freshly restored member starts clean.
    replog_options:
        Extra keyword arguments for each shard's
        :class:`~repro.replog.ReplicationLog` (``segment_bytes``,
        ``fsync``, ``checkpoint_retain``, ...).
    degrade:
        ``"off"`` (default) or ``"bounded"``.  With ``"bounded"`` the
        cluster keeps a per-shard :class:`~repro.approx.ApproxTier` fed
        from the admitted mutation stream; queries that admission would
        shed, or whose shards are entirely unavailable, answer from the
        synopsis as a typed :class:`~repro.approx.ApproxResult` carrying
        certified ``[lo, hi]`` bounds instead of failing.  Exact-path
        answers are bit-identical either way — the tier only ever serves
        requests that would otherwise shed, degrade or raise.
    approx_policy:
        The tier's :class:`~repro.approx.ApproxPolicy` (fit granularity
        and degree, bounded-staleness budget, auto-refresh) when
        ``degrade="bounded"``; ignored otherwise.
    heal:
        A :class:`~repro.heal.HealPolicy` (or ``True`` for the defaults)
        attaches a :class:`~repro.heal.HealSupervisor` to the cluster:
        automatic detection and repair of poisoned members, dead worker
        processes, tripped breakers and digest-diverged replicas.  With
        ``policy.auto_start`` (the default) the wall-clock supervisor
        thread starts here and is stopped by :meth:`close`.
    """

    def __init__(
        self,
        dims: int,
        num_shards: int,
        *,
        backend: str = "ba",
        reduction: str = "corner",
        measure: str = "sum",
        partitioner="kd",
        index_factory=None,
        index_kwargs: Optional[Dict[str, object]] = None,
        shard_kwargs: Optional[Dict[str, object]] = None,
        max_inflight: int = 8,
        max_queue: int = 32,
        queue_timeout: Optional[float] = None,
        workers: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        label: str = "cluster",
        replicas: int = 0,
        resilience: Optional[ResilienceConfig] = None,
        service_wrapper=None,
        replog_dir: Optional[str] = None,
        replog_options: Optional[Dict[str, object]] = None,
        degrade: str = "off",
        approx_policy: Optional[ApproxPolicy] = None,
        heal=None,
    ) -> None:
        self.dims = dims
        self.label = label
        process_workers = workers == "process"
        if process_workers:
            workers = None  # fan-out pool reverts to its default sizing
            if index_factory is not None:
                raise NotSupportedError(
                    "workers='process' cannot ship an index_factory closure "
                    "across the process boundary; use the declarative "
                    "backend/reduction/measure/index_kwargs form"
                )
        self._process_workers = process_workers
        self._map = make_shard_map(partitioner, num_shards, replicas=replicas)
        replicas = self._map.replicas
        registry = registry if registry is not None else get_registry()
        index_kwargs = dict(index_kwargs or {})
        shard_kwargs = dict(shard_kwargs or {})
        shard_kwargs.setdefault("max_inflight", max_inflight)
        shard_kwargs.setdefault("max_queue", max_queue)
        # Replication, an explicit failover policy or a member wrapper all
        # switch the shards to replica groups; otherwise the plain
        # single-service path is untouched (no extra layers, no threads).
        self._resilient = bool(replicas or resilience is not None or service_wrapper is not None)
        self.resilience = (
            (resilience if resilience is not None else ResilienceConfig())
            if self._resilient
            else None
        )
        if degrade not in ("off", "bounded"):
            raise ValueError(f'degrade must be "off" or "bounded", got {degrade!r}')
        self.degrade = degrade
        # The approximate tier mirrors the declared measure; clusters built
        # through an index_factory must declare the matching measure= too.
        self._approx = (
            ApproxTier(
                dims,
                num_shards,
                policy=approx_policy,
                measure=measure,
                registry=registry,
                label=f"{label}-approx",
            )
            if degrade == "bounded"
            else None
        )
        factory_arity = 1
        if index_factory is not None:
            try:
                factory_arity = len(signature(index_factory).parameters)
            except (TypeError, ValueError):
                factory_arity = 1

        def build_index(sid: int, member: int):
            if index_factory is None:
                return BoxSumIndex(
                    dims,
                    backend=backend,
                    reduction=reduction,
                    measure=measure,
                    **index_kwargs,
                )
            # A 2-arg factory places each member separately (e.g. its own
            # storage directory); a 1-arg factory is called once per member
            # and must yield equivalent empty indices.
            if factory_arity >= 2:
                return index_factory(sid, member)
            return index_factory(sid)

        self._replogs: List[Optional[ReplicationLog]] = []
        replog_options = dict(replog_options or {})

        def build_replog(sid: int) -> Optional[ReplicationLog]:
            if replog_dir is None:
                return None
            return ReplicationLog(
                os.path.join(replog_dir, f"shard-{sid:04d}"),
                registry=registry,
                label=f"{label}/s{sid}",
                **replog_options,
            )

        if process_workers:
            # Imported lazily: the cluster only depends on the RPC layer
            # when process workers are actually requested.
            from ..rpc.client import WorkerClient
            from ..rpc.worker import make_spec

            def build_member(sid: int, member: int, suffix: str, oplog):
                spec = make_spec(
                    dims,
                    backend=backend,
                    reduction=reduction,
                    measure=measure,
                    index_kwargs=index_kwargs,
                    service_kwargs=shard_kwargs,
                    label=f"{label}/{suffix}",
                )
                return WorkerClient(spec, registry=registry, oplog=oplog)

        else:

            def build_member(sid: int, member: int, suffix: str, oplog):
                return QueryService(
                    build_index(sid, member),
                    registry=registry,
                    label=f"{label}/{suffix}",
                    oplog=oplog,
                    **shard_kwargs,
                )

        self._groups: List[ReplicaGroup] = []
        self._shards: List[Union[QueryService, ReplicaGroup]] = []
        self._build_index = build_index
        #: member ids for log-seeded members (2-arg index factories place
        #: each member separately, so late members need fresh ids)
        self._member_ids = itertools.count(1000)
        for sid in range(num_shards):
            replog = build_replog(sid)
            self._replogs.append(replog)
            members: List[QueryService] = []
            for member in range(1 + replicas):
                suffix = f"s{sid}" if member == 0 else f"s{sid}r{member}"
                # Replicated shards log at the group level; attaching the
                # log to members too would double-ship every record.
                service = build_member(
                    sid, member, suffix, replog if not self._resilient else None
                )
                if service_wrapper is not None:
                    service = service_wrapper(service, sid, member)
                members.append(service)
            if self._resilient:

                def make_member(sid=sid) -> QueryService:
                    member = next(self._member_ids)
                    return build_member(sid, member, f"s{sid}m{member}", None)

                group = ReplicaGroup(
                    sid,
                    members,
                    config=self.resilience,
                    registry=registry,
                    label=label,
                    replication_log=replog,
                    member_factory=make_member,
                )
                self._groups.append(group)
                self._shards.append(group)
            else:
                self._shards.append(members[0])
        self._executor = None
        if workers is None:
            workers = min(num_shards, 8) if num_shards > 1 else 0
        if workers > 0:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
        self._router = ShardRouter(
            self._shards,
            executor=self._executor,
            registry=registry,
            label=label,
            allow_partial=bool(self.resilience and self.resilience.partial_results)
            or self._approx is not None,
        )
        self._gate = AdmissionGate(
            max_inflight, max_queue, queue_timeout, scope=f"cluster[{label}]"
        )
        self._cluster_lock = RWLock()
        self._meta = threading.Lock()
        self._ledger: Dict[_LedgerKey, Dict[int, int]] = {}
        self._extents: List[Optional[Box]] = [None] * num_shards
        self._object_counts: List[int] = [0] * num_shards
        self._stats_lock = threading.Lock()
        self._counts: Dict[str, float] = {
            "queries": 0.0,
            "batches": 0.0,
            "rejected": 0.0,
            "mutations": 0.0,
            "rebalances": 0.0,
            "migrated": 0.0,
            "partial_batches": 0.0,
            "degraded_batches": 0.0,
        }
        self._m_objects = registry.gauge(
            "repro_shard_objects", "objects currently owned, per shard"
        )
        self._m_imbalance = registry.gauge(
            "repro_shard_imbalance", "max/mean per-shard object-count ratio"
        )
        self._m_queries = registry.counter(
            "repro_shard_queries", "box-sum queries answered by the cluster"
        )
        self._m_rejected = registry.counter(
            "repro_shard_rejected", "batches shed by the cluster admission gate"
        )
        self._m_mutations = registry.counter(
            "repro_shard_mutations", "mutations routed to shards, by op"
        )
        self._m_rebalances = registry.counter(
            "repro_shard_rebalances", "rebalance rounds, by strategy"
        )
        self._m_migrated = registry.counter(
            "repro_shard_migrated", "objects moved between shards by rebalancing"
        )
        self._m_queue_wait = registry.histogram(
            "repro_shard_queue_wait_seconds",
            "seconds batches waited at the cluster gate",
            buckets=QUEUE_WAIT_BUCKETS,
        )
        self._m_partial = registry.counter(
            "repro_resilience_partial_batches",
            "batches degraded to PartialResult by whole-group outages",
        )
        self._m_degraded = registry.counter(
            "repro_approx_degraded_batches",
            "batches answered with certified bounds instead of failing, by reason",
        )
        self._publish_balance()
        self._heal = None
        if heal:
            # Imported lazily: the cluster only depends on the heal layer
            # when a supervisor is actually requested.
            from ..heal import HealPolicy, HealSupervisor

            policy = heal if isinstance(heal, HealPolicy) else HealPolicy()
            self._heal = HealSupervisor(
                self, policy, registry=registry, label=f"{label}-heal"
            )
            if policy.auto_start:
                self._heal.start()

    # -- introspection accessors ---------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def num_objects(self) -> int:
        """Objects currently owned across every shard (ledger count)."""
        with self._meta:
            return sum(self._object_counts)

    @property
    def shard_map(self) -> ShardMap:
        return self._map

    @property
    def services(self) -> Tuple[QueryService, ...]:
        """The shard-local services, in shard-id order (read-only use).

        In a replicated cluster these are the *primaries*; use
        :attr:`groups` for the full replica topology.
        """
        if self._groups:
            return tuple(group.primary for group in self._groups)
        return tuple(self._shards)

    @property
    def groups(self) -> Tuple[ReplicaGroup, ...]:
        """The replica groups (empty tuple when the cluster is unreplicated)."""
        return tuple(self._groups)

    @property
    def admission(self) -> AdmissionGate:
        """The cluster admission gate (read its limits; don't drive it)."""
        return self._gate

    @property
    def replicas(self) -> int:
        """Synchronous replicas per shard beyond the primary."""
        return self._map.replicas

    @property
    def heal_supervisor(self):
        """The self-healing supervisor (None when built without ``heal=``)."""
        return self._heal

    @property
    def imbalance(self) -> float:
        """Current max/mean object-count ratio (1.0 = perfectly balanced)."""
        with self._meta:
            return _imbalance(self._object_counts)

    def object_counts(self) -> List[int]:
        """Per-shard object counts, in shard-id order."""
        with self._meta:
            return list(self._object_counts)

    def extents(self) -> List[Optional[Box]]:
        """Per-shard grow-only extent MBRs (None = shard never touched)."""
        with self._meta:
            return list(self._extents)

    def epochs(self) -> List[int]:
        """Per-shard service epochs, in shard-id order."""
        return [service.epoch for service in self._shards]

    # -- queries -------------------------------------------------------------------

    def box_sum(self, query: Box) -> Union[float, PartialResult, ApproxResult]:
        """One exact cluster-wide box-sum.

        With ``partial_results`` opted in and a whole replica group down,
        returns a single-query :class:`PartialResult` instead of a bare
        float; with ``degrade="bounded"`` an outage (or an overload shed)
        returns an :class:`~repro.approx.ApproxResult` with certified
        bounds — a degraded answer is never a silently wrong number.
        """
        outcome = self.batch([query])
        if isinstance(outcome, (PartialResult, ApproxResult)):
            return outcome
        return outcome.results[0]

    def box_sum_batch(
        self, queries: Sequence[Box]
    ) -> Union[List[float], PartialResult, ApproxResult]:
        """Exact answers for a batch, in request order (or a typed degradation)."""
        outcome = self.batch(queries)
        if isinstance(outcome, (PartialResult, ApproxResult)):
            return outcome
        return outcome.results

    def batch(
        self, queries: Sequence[Box]
    ) -> Union[ClusterBatchResult, PartialResult, ApproxResult]:
        """Scatter a batch across the shards and gather the exact merge.

        Returns a :class:`ClusterBatchResult` when every shard answered.
        A dead replica group raises
        :class:`~repro.core.errors.ShardUnavailableError` by default;
        with :class:`~repro.resilience.config.ResilienceConfig`
        ``partial_results=True`` it degrades to a :class:`PartialResult`
        carrying the answered-shard sums and the missing shards' extents.
        With ``degrade="bounded"`` both failure modes — an admission shed
        and a whole-group outage — degrade to an
        :class:`~repro.approx.ApproxResult` instead: the answered shards'
        exact sums plus certified synopsis intervals for what's missing,
        merged by interval arithmetic (bounded beats partial when both
        are enabled; a refused tier falls back to partial, then raises).
        """
        queries = list(queries)
        try:
            wait_s = self._admit()
        except ServiceOverloadedError:
            degraded = self._degraded(queries, reason="overload")
            if degraded is not None:
                return degraded
            raise
        try:
            with self._cluster_lock.read():
                extents = self.extents()
                result = self._router.scatter(queries, extents)
        finally:
            self._gate.release()
        with self._stats_lock:
            self._counts["batches"] += 1
            self._counts["queries"] += len(queries)
            self._m_queries.inc(len(queries), label=self.label)
            self._m_queue_wait.observe(wait_s, label=self.label)
        if result.shards_failed:
            answered = [
                sid for sid in range(self.num_shards) if sid not in result.shards_failed
            ]
            degraded = self._degraded(
                queries,
                reason="outage",
                slots=result.shards_failed,
                base=result.results,
                answered=answered,
            )
            if degraded is not None:
                return degraded
            if self.resilience and self.resilience.partial_results:
                with self._stats_lock:
                    self._counts["partial_batches"] += 1
                    self._m_partial.inc(label=self.label)
                return PartialResult(
                    result.results,
                    answered=answered,
                    missing=result.shards_failed,
                    missing_extents={sid: extents[sid] for sid in result.shards_failed},
                    queries=queries,
                )
            raise ShardUnavailableError(
                f"shards {sorted(result.shards_failed)} unavailable and no degraded "
                "answer was possible",
                shard=sorted(result.shards_failed)[0],
            )
        return result

    def degraded_batch(self, queries: Sequence[Box], *, reason: str = "direct") -> ApproxResult:
        """Answer straight from the approximate tier (bypasses admission).

        This is the explicit entry point for callers that already know the
        exact path is saturated (e.g. a load generator's queue model) and
        for tests; serving's own overload/outage fallbacks use the same
        tier.  Raises :class:`~repro.core.errors.NotSupportedError` when
        the cluster was built without ``degrade="bounded"`` or the tier
        refuses (desynced mirrors).
        """
        if self._approx is None:
            raise NotSupportedError(
                f'cluster {self.label!r} was built without degrade="bounded"'
            )
        result = self._approx.answer(list(queries), reason=reason)
        self._note_degraded(reason)
        return result

    def _degraded(
        self,
        queries: List[Box],
        *,
        reason: str,
        slots=None,
        base=None,
        answered: Sequence[int] = (),
    ) -> Optional[ApproxResult]:
        """A certified bounded answer, or None to let the caller fail loudly."""
        if self._approx is None:
            return None
        result = self._approx.try_answer(
            queries, reason=reason, slots=slots, base=base, answered=answered
        )
        if result is not None:
            self._note_degraded(reason)
        return result

    def _note_degraded(self, reason: str) -> None:
        with self._stats_lock:
            self._counts["degraded_batches"] += 1
            self._m_degraded.inc(reason=reason, label=self.label)

    @property
    def approx_tier(self) -> Optional[ApproxTier]:
        """The approximate tier, when ``degrade="bounded"`` (else None)."""
        return self._approx

    def _admit(self) -> float:
        try:
            return self._gate.admit()
        except ServiceOverloadedError:
            with self._stats_lock:
                self._counts["rejected"] += 1
                self._m_rejected.inc(label=self.label)
            raise

    # -- mutations -----------------------------------------------------------------

    def insert(self, box: Box, value: float = 1.0) -> int:
        """Insert one object on its assigned shard; returns the shard id."""
        with self._cluster_lock.read():
            self._check_open()
            key = self._ledger_key(box, value)
            with self._meta:
                sid = self._map.assign(box)
                # Extent grows *before* the shard mutation lands so a
                # concurrent scatter can only overcover (safe), never
                # undercover (which would wrongly prune a live object).
                self._grow_extent(sid, box)
                owners = self._ledger.setdefault(key, {})
                owners[sid] = owners.get(sid, 0) + 1
                self._object_counts[sid] += 1
            self._shards[sid].insert(box, value)
            if self._approx is not None:
                self._approx.note_insert(sid, box, value)
        self._note_mutation("insert", sid)
        return sid

    def delete(self, box: Box, value: float = 1.0) -> int:
        """Delete one object from its owning shard; returns the shard id.

        Ownership comes from the ledger; an object the cluster never saw is
        routed by the map and still cancels exactly (the negation is
        additive wherever it lands), at the cost of a transiently negative
        count on that shard.
        """
        with self._cluster_lock.read():
            self._check_open()
            key = self._ledger_key(box, value)
            with self._meta:
                owners = self._ledger.get(key)
                if owners:
                    sid = min(owners)
                    owners[sid] -= 1
                    if owners[sid] == 0:
                        del owners[sid]
                    if not owners:
                        del self._ledger[key]
                else:
                    sid = self._map.assign(box)
                # The negation corners land on this shard, so its extent
                # must cover them too.
                self._grow_extent(sid, box)
                self._object_counts[sid] -= 1
            self._shards[sid].delete(box, value)
            if self._approx is not None:
                self._approx.note_delete(sid, box, value)
        self._note_mutation("delete", sid)
        return sid

    def bulk_load(self, objects: Iterable[Tuple[Box, float]], *, fit: bool = True) -> List[int]:
        """Partition and load a fresh object set; returns per-shard counts.

        ``fit=True`` first adapts the partitioner to the data (the kd
        partitioner builds its median tree here; hash/round-robin ignore
        it).  Runs under the cluster write lock: no query can observe a
        partially loaded cluster.
        """
        pairs = [(box, float(value)) for box, value in objects]
        with self._cluster_lock.write():
            self._check_open()
            with self._meta:
                if fit:
                    self._map.fit([box for box, _ in pairs])
                per_shard: List[List[Tuple[Box, float]]] = [[] for _ in self._shards]
                self._ledger.clear()
                self._extents = [None] * self.num_shards
                for box, value in pairs:
                    sid = self._map.assign(box)
                    per_shard[sid].append((box, value))
                    self._grow_extent(sid, box)
                    owners = self._ledger.setdefault(self._ledger_key(box, value), {})
                    owners[sid] = owners.get(sid, 0) + 1
                self._object_counts = [len(chunk) for chunk in per_shard]
            for sid, service in enumerate(self._shards):
                service.bulk_load(per_shard[sid])
            if self._approx is not None:
                self._approx.note_bulk_load(per_shard)
        self._note_mutation("bulk_load", None)
        return [len(chunk) for chunk in per_shard]

    # -- rebalancing ---------------------------------------------------------------

    def rebalance(self) -> RebalanceReport:
        """Move load from the hottest shard to the coldest, atomically.

        Under the cluster write lock (queries drain, none can start): pick
        the shards with the most and fewest owned objects; ask the map to
        split the hot region (kd succeeds, hash/round-robin decline); then
        migrate — map-directed objects after a split, or the first half of
        the count difference in deterministic ledger order otherwise.  Each
        migration is a delete on the source plus an insert on the target,
        so every shard's index stays internally exact throughout.
        """
        with self._cluster_lock.write():
            self._check_open()
            counts = [max(0, c) for c in self._object_counts]
            hot = max(range(len(counts)), key=counts.__getitem__)
            cold = min(range(len(counts)), key=counts.__getitem__)
            if hot == cold or counts[hot] - counts[cold] <= 1:
                report = RebalanceReport(hot, cold, 0, "noop", tuple(self._object_counts))
            else:
                hot_entries = [
                    (key, owners[hot])
                    for key, owners in self._ledger.items()
                    if owners.get(hot, 0) > 0
                ]
                centers = [
                    Box(key[0], key[1]).center()
                    for key, count in hot_entries
                    for _ in range(count)
                ]
                if self._map.rebalance(hot, cold, centers):
                    to_move = [
                        (key, count)
                        for key, count in hot_entries
                        if self._map.assign(Box(key[0], key[1])) == cold
                    ]
                    strategy = "split"
                else:
                    deficit = (counts[hot] - counts[cold]) // 2
                    to_move = []
                    taken = 0
                    for key, count in hot_entries:
                        if taken >= deficit:
                            break
                        take = min(count, deficit - taken)
                        to_move.append((key, take))
                        taken += take
                    strategy = "ledger"
                moved = self._migrate(hot, cold, to_move)
                report = RebalanceReport(hot, cold, moved, strategy, tuple(self._object_counts))
        with self._stats_lock:
            self._counts["rebalances"] += 1
            self._counts["migrated"] += report.moved
            self._m_rebalances.inc(strategy=report.strategy, label=self.label)
            if report.moved:
                self._m_migrated.inc(report.moved, label=self.label)
        self._publish_balance()
        tracer = _trace._ACTIVE
        if tracer is not None:
            tracer.event(
                "shard_rebalance",
                source=report.source,
                target=report.target,
                moved=report.moved,
                strategy=report.strategy,
            )
        return report

    def _migrate(self, source: int, target: int, entries: List[Tuple[_LedgerKey, int]]) -> int:
        """Move ``count`` instances of each keyed object between shards.

        Caller holds the cluster write lock, so the ledger, extents and both
        shard indices change with no reader in flight.
        """
        moved = 0
        for key, count in entries:
            box = Box(key[0], key[1])
            value = key[2]
            for _ in range(count):
                self._grow_extent(source, box)
                self._grow_extent(target, box)
                self._shards[source].delete(box, value)
                self._shards[target].insert(box, value)
                if self._approx is not None:
                    self._approx.note_migrate(source, target, box, value)
            owners = self._ledger[key]
            owners[source] -= count
            if owners[source] == 0:
                del owners[source]
            owners[target] = owners.get(target, 0) + count
            self._object_counts[source] -= count
            self._object_counts[target] += count
            moved += count
        return moved

    # -- log-shipping / recovery -----------------------------------------------------

    @property
    def replication_logs(self) -> Tuple[Optional[ReplicationLog], ...]:
        """Per-shard replication logs (all None without ``replog_dir``)."""
        return tuple(self._replogs)

    def _require_replog(self, sid: int) -> ReplicationLog:
        if not 0 <= sid < self.num_shards:
            raise ValueError(f"unknown shard {sid}")
        replog = self._replogs[sid]
        if replog is None:
            raise NotSupportedError(
                f"cluster {self.label!r} was built without replog_dir; "
                "log-shipping verbs are unavailable"
            )
        return replog

    def checkpoint(self) -> List[object]:
        """Checkpoint every shard's replication log at a mutation boundary.

        Runs under the cluster read lock (rebalances excluded); each
        shard's own mutation serialization makes its snapshot consistent.
        Returns the per-shard :class:`~repro.replog.Checkpoint` list.
        """
        self._require_replog(0)
        checkpoints = []
        with self._cluster_lock.read():
            for shard in self._shards:
                checkpoints.append(shard.checkpoint())
        return checkpoints

    def add_replica(self, sid: int) -> int:
        """Seed one new member for shard ``sid`` from checkpoint + log tail.

        The member is built by the shard's member factory, restored to the
        group's head LSN and only then enters the serve rotation.  Returns
        the new member id within the group.
        """
        self._require_replog(sid)
        if not self._groups:
            raise NotSupportedError(
                f"cluster {self.label!r} is unreplicated; "
                "build it with replicas/resilience to host replica groups"
            )
        with self._cluster_lock.read():
            return self._groups[sid].add_member()

    def catch_up(self, sid: int, mid: int, *, audit_probes: int = 16):
        """Restore shard ``sid``'s poisoned member ``mid`` from its log."""
        self._require_replog(sid)
        if not self._groups:
            raise NotSupportedError(f"cluster {self.label!r} is unreplicated")
        with self._cluster_lock.read():
            return self._groups[sid].catch_up(mid, audit_probes=audit_probes)

    def catch_up_all(self, *, audit_probes: int = 16) -> Dict[int, List[int]]:
        """Catch up every poisoned member, cluster-wide.

        Returns ``{shard_id: [revived member ids]}`` for shards where
        anything changed.  This is the callable to hand a
        :class:`~repro.replog.CatchUpDaemon`.
        """
        if not self._groups:
            return {}
        revived: Dict[int, List[int]] = {}
        with self._cluster_lock.read():
            for sid, group in enumerate(self._groups):
                if self._replogs[sid] is None:
                    continue
                members = group.catch_up_all(audit_probes=audit_probes)
                if members:
                    revived[sid] = members
        return revived

    def restart_worker(self, sid: int) -> WorkerRestartReport:
        """Respawn and restore shard ``sid``'s dead worker process(es).

        The public remedy for
        :class:`~repro.core.errors.WorkerCrashedError` ("restart() +
        catch_up to revive").  In a replicated cluster every crashed
        member routes through
        :meth:`~repro.resilience.group.ReplicaGroup.repair`: the dead
        member is poisoned (if a mutation has not already witnessed the
        death), respawned, restored from checkpoint + log tail and
        bit-exactness-audited before re-entering the rotation.  An
        unreplicated shard restarts its worker and restores it from the
        shard's log directly.  Either way a replication log is required —
        a respawned worker is empty, and without the log there is nothing
        to restore it *from* — so clusters built without ``replog_dir``
        raise :class:`~repro.core.errors.NotSupportedError` before any
        worker is touched.  Returns the member ids actually repaired
        (empty when nothing was dead — an idempotent no-op).
        """
        replog = self._require_replog(sid)
        with self._cluster_lock.read():
            if self._groups:
                group = self._groups[sid]
                repaired: List[int] = []
                pid: Optional[int] = None
                for mid in range(len(group.members)):
                    member = group.members[mid]
                    if not getattr(member, "crashed", False):
                        continue
                    group.repair(mid, audit_probes=16)
                    repaired.append(mid)
                    pid = getattr(member, "pid", pid)
                return WorkerRestartReport(sid, tuple(repaired), pid)
            shard = self._shards[sid]
            restart = getattr(shard, "restart", None)
            if restart is None:
                raise NotSupportedError(
                    f"shard {sid} is served in-process; there is no worker "
                    "to restart (build the cluster with workers='process')"
                )
            if not getattr(shard, "crashed", False):
                return WorkerRestartReport(sid, (), getattr(shard, "pid", None))
            restart()
            replog.restore_into(shard)
            return WorkerRestartReport(sid, (0,), getattr(shard, "pid", None))

    def recover_shard_to(self, sid: int, lsn: int) -> QueryService:
        """Point-in-time recovery: shard ``sid`` as of record ``lsn``.

        Builds a fresh index through the shard's own factory settings and
        replays checkpoint + tail into it — an offline forensic replica;
        the live shard is untouched.
        """
        replog = self._require_replog(sid)
        member = next(self._member_ids)
        return replog.recover_to(lsn, lambda: self._build_index(sid, member))

    # -- internals -----------------------------------------------------------------

    @staticmethod
    def _ledger_key(box: Box, value: float) -> _LedgerKey:
        return (box.low, box.high, float(value))

    def _grow_extent(self, sid: int, box: Box) -> None:
        current = self._extents[sid]
        self._extents[sid] = box if current is None else current.union(box)

    def _check_open(self) -> None:
        if self._gate.closed:
            raise ServiceClosedError("cluster is closed")

    def _note_mutation(self, op: str, sid: Optional[int]) -> None:
        with self._stats_lock:
            self._counts["mutations"] += 1
            if sid is None:
                self._m_mutations.inc(op=op, label=self.label)
            else:
                self._m_mutations.inc(op=op, shard=str(sid), label=self.label)
        self._publish_balance()

    def _publish_balance(self) -> None:
        with self._meta:
            counts = list(self._object_counts)
        for sid, count in enumerate(counts):
            self._m_objects.set(float(count), shard=str(sid), label=self.label)
        self._m_imbalance.set(_imbalance(counts), label=self.label)

    # -- stats / lifecycle ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Cluster counters plus per-shard object counts and epochs."""
        with self._stats_lock:
            out: Dict[str, object] = dict(self._counts)
        with self._meta:
            counts = list(self._object_counts)
        out["shards"] = self.num_shards
        out["replicas"] = self.replicas
        out["objects"] = counts
        out["objects_total"] = sum(counts)
        out["imbalance"] = _imbalance(counts)
        out["partitioner"] = self._map.name
        out["epochs"] = self.epochs()
        out["inflight"] = self._gate.inflight
        out["degrade"] = self.degrade
        if self._approx is not None:
            out["approx"] = self._approx.stats()
        if any(replog is not None for replog in self._replogs):
            out["head_lsns"] = [
                replog.head_lsn if replog is not None else None
                for replog in self._replogs
            ]
        if self._heal is not None:
            out["heal"] = self._heal.stats()
        return out

    def shard_stats(self) -> List[Dict[str, float]]:
        """Each shard service's own :meth:`~QueryService.stats` snapshot."""
        return [service.stats() for service in self._shards]

    def resilience_stats(self) -> List[Dict[str, object]]:
        """Per-group failover/breaker snapshots (empty when unreplicated)."""
        return [group.stats() for group in self._groups]

    def close(self) -> None:
        """Graceful close: reject new batches, drain accepted ones, close shards.

        The cluster gate closes first (new admissions fail with
        :class:`~repro.core.errors.ServiceClosedError`), then already
        admitted batches drain, then the fan-out pool and every shard
        service (each draining its own accepted work) shut down.
        """
        if self._heal is not None:
            # The supervisor must stop *first*: a repair racing the close
            # would restore into shards that are already shutting down.
            self._heal.stop()
        if not self._gate.close():
            return
        self._gate.drain()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        for service in self._shards:
            service.close()
        for replog in self._replogs:
            if replog is not None:
                replog.close()

    @property
    def closed(self) -> bool:
        return self._gate.closed

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


__all__ = ["ShardedService", "RebalanceReport", "WorkerRestartReport"]
