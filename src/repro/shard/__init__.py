"""Horizontal sharding: exact box-sum serving over partitioned objects.

Dominance sums are additive over any disjoint partition of the object set,
so a box-sum evaluated shard-by-shard and merged by addition is *exactly*
the unsharded answer — no approximation, no double counting (Lemma 1's
probes are pure sums over the stored corners).  This package exploits that:

* :mod:`repro.shard.partition` — pluggable partitioners (round-robin,
  hash, recursive kd-median space partitioning) behind a serializable
  :class:`ShardMap`;
* :mod:`repro.shard.router` — :class:`ShardRouter`, the scatter-gather
  evaluator: batch-wide probe dedup, per-shard extent shortcuts (prune /
  cover without I/O), torn-view-free per-shard snapshots, additive merge;
* :mod:`repro.shard.cluster` — :class:`ShardedService`, the operational
  wrapper: per-shard :class:`~repro.service.QueryService` instances,
  cluster-wide admission control, ledger-routed deletes, online
  rebalancing under an exclusive cluster lock.

Quickstart::

    from repro import Box
    from repro.shard import ShardedService

    cluster = ShardedService(dims=2, num_shards=4, partitioner="kd")
    cluster.bulk_load([(Box((0, 0), (1, 1)), 2.0), ...])
    cluster.box_sum(Box((0, 0), (10, 10)))   # == the unsharded answer
    cluster.rebalance()                      # split the hottest shard
"""

from ..core.errors import ShardError, ShardMapError
from .cluster import RebalanceReport, ShardedService
from .partition import (
    PARTITIONERS,
    HashPartitioner,
    KdMedianPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    ShardMap,
    make_shard_map,
)
from .router import ClusterBatchResult, ShardRouter

__all__ = [
    "ClusterBatchResult",
    "HashPartitioner",
    "KdMedianPartitioner",
    "PARTITIONERS",
    "Partitioner",
    "RebalanceReport",
    "RoundRobinPartitioner",
    "ShardError",
    "ShardMap",
    "ShardMapError",
    "ShardRouter",
    "ShardedService",
    "make_shard_map",
]
