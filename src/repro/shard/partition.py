"""Object partitioners and the serializable shard map.

A sharded deployment (:mod:`repro.shard.cluster`) splits the object set
across N shard-local indices.  Correctness never depends on *where* an
object lands — dominance sums are additive over any disjoint partition of
the objects — so the partitioner is purely a performance policy:

* :class:`RoundRobinPartitioner` — perfectly balanced counts, no locality;
* :class:`HashPartitioner` — stateless and deterministic (CRC32 over the
  canonical byte encoding of the box corners, never Python's salted
  ``hash``), balanced in expectation;
* :class:`KdMedianPartitioner` — recursive median splits of the objects'
  representative points (box centers), giving each shard a spatially
  compact region; the router's extent-based probe pruning then skips whole
  shards for queries outside their region.

:class:`ShardMap` wraps a partitioner with a versioned, JSON-serializable
envelope so a cluster layout survives process restarts and can travel with
a durable snapshot.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..core.errors import ShardMapError
from ..core.geometry import Box, Coords

#: Serialization format version of :meth:`ShardMap.to_dict` payloads.
#: Version 2 added the replica topology (``replicas``); version 1 payloads
#: are still accepted and read as replica-free (``replicas = 0``).
SHARD_MAP_VERSION = 2


class Partitioner:
    """Base class: maps each object box to a shard id in ``[0, num_shards)``.

    ``fit`` and ``rebalance`` are optional refinements — the base
    implementations make every partitioner usable unfitted (assignment
    just cannot be data-aware) and let the cluster fall back to generic
    ledger-driven migration when ``rebalance`` returns False.
    """

    name = "base"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ShardMapError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    def assign(self, box: Box) -> int:
        """Shard id for a new object (must be in ``[0, num_shards)``)."""
        raise NotImplementedError

    def fit(self, boxes: Sequence[Box]) -> None:
        """Adapt the partitioner to a sample of objects (default: no-op)."""

    def rebalance(self, hot: int, cold: int, centers: Sequence[Coords]) -> bool:
        """Carve part of shard ``hot``'s assignment region over to ``cold``.

        ``centers`` are the representative points of the objects currently
        on the hot shard.  Returns True when the assignment rule changed
        (the cluster then migrates objects whose assignment moved), False
        when this partitioner cannot express the refinement — the cluster
        falls back to ledger-driven migration that leaves ``assign``
        untouched.
        """
        return False

    def state(self) -> Dict[str, object]:
        """JSON-serializable internal state (inverse of :meth:`load_state`)."""
        return {}

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state` output (default: nothing to restore)."""


class RoundRobinPartitioner(Partitioner):
    """Cycle through the shards: perfect count balance, zero locality."""

    name = "roundrobin"

    def __init__(self, num_shards: int) -> None:
        super().__init__(num_shards)
        self._cursor = 0

    def assign(self, box: Box) -> int:
        shard = self._cursor
        self._cursor = (self._cursor + 1) % self.num_shards
        return shard

    def state(self) -> Dict[str, object]:
        return {"cursor": self._cursor}

    def load_state(self, state: Dict[str, object]) -> None:
        cursor = state.get("cursor", 0)
        if not isinstance(cursor, int) or not 0 <= cursor < self.num_shards:
            raise ShardMapError(f"roundrobin cursor {cursor!r} out of range")
        self._cursor = cursor


class HashPartitioner(Partitioner):
    """Stateless deterministic assignment by box-corner checksum.

    CRC32 over the IEEE-754 encoding of ``(low, high)`` is stable across
    processes and Python versions, unlike the interpreter's salted
    ``hash`` — two replicas of the same shard map must agree on every
    assignment.
    """

    name = "hash"

    def assign(self, box: Box) -> int:
        payload = struct.pack(f"<{2 * box.dims}d", *box.low, *box.high)
        return zlib.crc32(payload) % self.num_shards


class _KdNode:
    """One node of the kd assignment tree: a split plane or a shard leaf."""

    __slots__ = ("dim", "value", "low", "high", "shard")

    def __init__(
        self,
        shard: Optional[int] = None,
        dim: Optional[int] = None,
        value: Optional[float] = None,
        low: "Optional[_KdNode]" = None,
        high: "Optional[_KdNode]" = None,
    ) -> None:
        self.shard = shard
        self.dim = dim
        self.value = value
        self.low = low
        self.high = high

    @property
    def is_leaf(self) -> bool:
        return self.shard is not None

    def to_dict(self) -> Dict[str, object]:
        if self.is_leaf:
            return {"shard": self.shard}
        assert self.low is not None and self.high is not None
        return {
            "dim": self.dim,
            "value": self.value,
            "low": self.low.to_dict(),
            "high": self.high.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "_KdNode":
        if "shard" in payload:
            shard = payload["shard"]
            if not isinstance(shard, int) or shard < 0:
                raise ShardMapError(f"kd leaf shard {shard!r} is not a shard id")
            return cls(shard=shard)
        try:
            dim = payload["dim"]
            value = payload["value"]
            low = payload["low"]
            high = payload["high"]
        except KeyError as exc:
            raise ShardMapError(f"kd node missing field {exc}") from None
        if not isinstance(dim, int) or dim < 0:
            raise ShardMapError(f"kd split dim {dim!r} is not a dimension")
        if not isinstance(value, (int, float)):
            raise ShardMapError(f"kd split value {value!r} is not a number")
        if not isinstance(low, dict) or not isinstance(high, dict):
            raise ShardMapError("kd node children must be objects")
        return cls(
            dim=dim,
            value=float(value),
            low=cls.from_dict(low),
            high=cls.from_dict(high),
        )


def _median_split(
    centers: Sequence[Coords],
) -> Optional[Tuple[int, float, List[Coords], List[Coords]]]:
    """Pick the widest-spread dimension and split at its median.

    Returns ``(dim, value, low_side, high_side)`` with both sides non-empty,
    or None when the points are degenerate (fewer than two distinct values
    in every dimension).
    """
    if len(centers) < 2:
        return None
    dims = len(centers[0])
    best: Optional[Tuple[float, int]] = None
    for d in range(dims):
        values = [c[d] for c in centers]
        spread = max(values) - min(values)
        if spread > 0 and (best is None or spread > best[0]):
            best = (spread, d)
    if best is None:
        return None
    dim = best[1]
    ordered = sorted(c[dim] for c in centers)
    value = ordered[len(ordered) // 2]
    if value == ordered[0]:
        # The median coincides with the minimum (heavy duplicates); take the
        # smallest strictly larger coordinate so the low side is non-empty.
        larger = [v for v in ordered if v > value]
        if not larger:
            return None
        value = larger[0]
    low_side = [c for c in centers if c[dim] < value]
    high_side = [c for c in centers if c[dim] >= value]
    if not low_side or not high_side:
        return None
    return dim, value, low_side, high_side


class KdMedianPartitioner(Partitioner):
    """Recursive kd-median space partitioner over representative points.

    ``fit`` greedily splits the most populous region at the median of its
    widest-spread dimension until there is one region per shard; ``assign``
    routes an object by its box center.  Spatially compact shard regions
    are what make the router's extent shortcuts bite: a query far from a
    shard's region prunes (or covers) all of that shard's probes.

    Unfitted (or when the sample is too degenerate to split), the tree is a
    single leaf and everything lands on shard 0 — exact, just unbalanced,
    and :meth:`ShardMap.fit` or online rebalancing can fix it later.
    """

    name = "kd"

    def __init__(self, num_shards: int) -> None:
        super().__init__(num_shards)
        self._root = _KdNode(shard=0)

    def assign(self, box: Box) -> int:
        node = self._root
        center = box.center()
        while not node.is_leaf:
            assert node.dim is not None and node.value is not None
            node = node.low if center[node.dim] < node.value else node.high
            assert node is not None
        assert node.shard is not None
        return node.shard

    def fit(self, boxes: Sequence[Box]) -> None:
        """Rebuild the tree from a sample of object boxes."""
        centers = [box.center() for box in boxes]
        self._root = _KdNode(shard=0)
        if not centers:
            return
        # (leaf, points routed to it); split the most populous until one
        # region per shard or every candidate is degenerate.
        leaves: List[Tuple[_KdNode, List[Coords]]] = [(self._root, list(centers))]
        next_shard = 1
        while next_shard < self.num_shards:
            leaves.sort(key=lambda item: len(item[1]), reverse=True)
            split = None
            for i, (leaf, points) in enumerate(leaves):
                split = _median_split(points)
                if split is not None:
                    leaves.pop(i)
                    break
            if split is None:
                return
            dim, value, low_side, high_side = split
            low = _KdNode(shard=leaf.shard)
            high = _KdNode(shard=next_shard)
            leaf.shard = None
            leaf.dim = dim
            leaf.value = value
            leaf.low = low
            leaf.high = high
            leaves.append((low, low_side))
            leaves.append((high, high_side))
            next_shard += 1

    def rebalance(self, hot: int, cold: int, centers: Sequence[Coords]) -> bool:
        """Split the hot shard's fullest leaf, handing one half to ``cold``."""
        leaf = self._route_fullest_leaf(hot, centers)
        if leaf is None:
            return False
        node, points = leaf
        split = _median_split(points)
        if split is None:
            return False
        dim, value, _low_side, _high_side = split
        node.shard = None
        node.dim = dim
        node.value = value
        node.low = _KdNode(shard=hot)
        node.high = _KdNode(shard=cold)
        return True

    def _route_fullest_leaf(
        self, shard: int, centers: Sequence[Coords]
    ) -> Optional[Tuple[_KdNode, List[Coords]]]:
        """The leaf assigned to ``shard`` holding the most of ``centers``."""
        per_leaf: Dict[int, Tuple[_KdNode, List[Coords]]] = {}
        for center in centers:
            node = self._root
            while not node.is_leaf:
                assert node.dim is not None and node.value is not None
                nxt = node.low if center[node.dim] < node.value else node.high
                assert nxt is not None
                node = nxt
            if node.shard != shard:
                continue
            entry = per_leaf.setdefault(id(node), (node, []))
            entry[1].append(center)
        if not per_leaf:
            return None
        return max(per_leaf.values(), key=lambda item: len(item[1]))

    def state(self) -> Dict[str, object]:
        return {"tree": self._root.to_dict()}

    def load_state(self, state: Dict[str, object]) -> None:
        tree = state.get("tree")
        if not isinstance(tree, dict):
            raise ShardMapError("kd state is missing its 'tree' payload")
        root = _KdNode.from_dict(tree)
        self._check_shards(root)
        self._root = root

    def _check_shards(self, node: _KdNode) -> None:
        if node.is_leaf:
            assert node.shard is not None
            if node.shard >= self.num_shards:
                raise ShardMapError(
                    f"kd leaf routes to shard {node.shard} "
                    f"but the map has {self.num_shards} shards"
                )
            return
        assert node.low is not None and node.high is not None
        self._check_shards(node.low)
        self._check_shards(node.high)


#: Registry of constructable partitioners, keyed by their ``name``.
PARTITIONERS: Dict[str, Type[Partitioner]] = {
    RoundRobinPartitioner.name: RoundRobinPartitioner,
    HashPartitioner.name: HashPartitioner,
    KdMedianPartitioner.name: KdMedianPartitioner,
}


class ShardMap:
    """A partitioner plus the versioned serialization envelope.

    The map is the *assignment policy* of a cluster, not its ownership
    record — the cluster's ledger is authoritative for where an object
    actually lives (relevant after generic rebalancing, which moves objects
    without changing ``assign``).  Round-tripping through
    :meth:`to_dict`/:meth:`from_dict` reproduces assignment exactly.

    ``replicas`` records the cluster's replica topology — how many
    synchronous replicas each shard's replica group carries beyond its
    primary (0 = unreplicated).  Placement is not a per-object decision
    (every member of a group holds the *same* objects), so one integer is
    the whole topology; it travels with the map so a restored cluster
    rebuilds the same groups.
    """

    def __init__(self, partitioner: Partitioner, *, replicas: int = 0) -> None:
        if replicas < 0:
            raise ShardMapError(f"replicas must be >= 0, got {replicas}")
        self.partitioner = partitioner
        self.replicas = replicas

    @property
    def num_shards(self) -> int:
        return self.partitioner.num_shards

    @property
    def name(self) -> str:
        return self.partitioner.name

    def assign(self, box: Box) -> int:
        shard = self.partitioner.assign(box)
        if not 0 <= shard < self.num_shards:
            raise ShardMapError(
                f"partitioner {self.name!r} routed to shard {shard} "
                f"of {self.num_shards}"
            )
        return shard

    def fit(self, boxes: Sequence[Box]) -> None:
        self.partitioner.fit(boxes)

    def rebalance(self, hot: int, cold: int, centers: Sequence[Coords]) -> bool:
        return self.partitioner.rebalance(hot, cold, centers)

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": SHARD_MAP_VERSION,
            "partitioner": self.name,
            "num_shards": self.num_shards,
            "replicas": self.replicas,
            "state": self.partitioner.state(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ShardMap":
        version = payload.get("version")
        if version not in (1, SHARD_MAP_VERSION):
            raise ShardMapError(f"unsupported shard map version {version!r}")
        name = payload.get("partitioner")
        if name not in PARTITIONERS:
            raise ShardMapError(f"unknown partitioner {name!r}")
        num_shards = payload.get("num_shards")
        if not isinstance(num_shards, int):
            raise ShardMapError(f"num_shards {num_shards!r} is not an int")
        replicas = payload.get("replicas", 0) if version >= 2 else 0
        if not isinstance(replicas, int) or replicas < 0:
            raise ShardMapError(f"replicas {replicas!r} is not a count")
        partitioner = PARTITIONERS[name](num_shards)
        state = payload.get("state", {})
        if not isinstance(state, dict):
            raise ShardMapError("shard map state must be an object")
        partitioner.load_state(state)
        return cls(partitioner, replicas=replicas)


def make_shard_map(spec, num_shards: int, *, replicas: int = 0) -> ShardMap:
    """Coerce a partitioner spec to a :class:`ShardMap`.

    ``spec`` may be a registry name (``"kd"``, ``"hash"``,
    ``"roundrobin"``), a :class:`Partitioner` instance, or an existing
    :class:`ShardMap`; instances must agree with ``num_shards``.  A
    non-zero ``replicas`` must agree with an existing map's recorded
    topology (a restored map with ``replicas`` set wins over the default).
    """
    if isinstance(spec, ShardMap):
        if spec.num_shards != num_shards:
            raise ShardMapError(
                f"shard map has {spec.num_shards} shards, cluster wants {num_shards}"
            )
        if replicas and spec.replicas and spec.replicas != replicas:
            raise ShardMapError(
                f"shard map records {spec.replicas} replicas, caller wants {replicas}"
            )
        if replicas and not spec.replicas:
            spec.replicas = replicas
        return spec
    if isinstance(spec, Partitioner):
        if spec.num_shards != num_shards:
            raise ShardMapError(
                f"partitioner has {spec.num_shards} shards, cluster wants {num_shards}"
            )
        return ShardMap(spec, replicas=replicas)
    if isinstance(spec, str):
        if spec not in PARTITIONERS:
            raise ShardMapError(f"unknown partitioner {spec!r}")
        return ShardMap(PARTITIONERS[spec](num_shards), replicas=replicas)
    raise ShardMapError(f"cannot build a shard map from {type(spec).__name__}")


__all__ = [
    "Partitioner",
    "RoundRobinPartitioner",
    "HashPartitioner",
    "KdMedianPartitioner",
    "ShardMap",
    "PARTITIONERS",
    "SHARD_MAP_VERSION",
    "make_shard_map",
]
