"""Scatter-gather query routing across shard-local query services.

The paper's reduction makes sharding *exact*: a box-sum is an
inclusion–exclusion of strict dominance sums (Lemma 1), and a dominance sum
over a disjoint union of object sets is the sum of the per-set dominance
sums.  The router therefore:

1. plans the batch once (per-query ``2^d`` probe plans, deduped to unique
   ``(index key, point)`` identities across the whole batch — the same
   corner sharing as :class:`~repro.service.planner.BatchPlanner`, now also
   shared across shards);
2. classifies every (shard, probe) pair against the shard's grow-only
   extent MBR: **pruned** (some query coordinate is ≤ the smallest stored
   coordinate — the strict dominance sum is exactly 0, no I/O), **covered**
   (every query coordinate is > the largest stored coordinate — the sum is
   the shard's grand total, no I/O), or **needed** (must be executed);
3. fans the needed probes out to the shards — each via
   :meth:`~repro.service.service.QueryService.resolve_probe_values`, which
   returns values, reduction base, grand total and epoch under a single
   read-lock acquisition, so no shard ever contributes a torn view;
4. merges per probe identity by addition in ascending shard order and
   reassembles every query with
   :func:`~repro.core.reduction.combine_probe_values` — the same
   accumulation the unsharded path uses, so results are bit-identical to a
   single index holding all the objects (exactly so under exact weights).

Corner-reduction shards whose probes all prune are skipped entirely (their
base is the additive zero); EO82 shards are always contacted because their
base is the shard grand total, which seeds the merge.  Object backends
(``ar``/``rstar``) expose no probe seam; the router falls back to
monolithic per-shard ``box_sum_batch`` with query-level extent pruning and
merges the per-query answers by addition.
"""

from __future__ import annotations

import time
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..core.errors import ServiceOverloadedError, ShardUnavailableError
from ..core.geometry import Box
from ..core.reduction import combine_probe_values
from ..core.values import SumCount, Value
from ..obs import trace as _trace
from ..obs.registry import MetricsRegistry, get_registry
from ..service.planner import BatchPlan, ProbeIdentity
from ..service.service import ProbeSnapshot, QueryService

#: Fan-out histogram buckets (shards contacted per batch).
FANOUT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Merge-latency histogram buckets (seconds).
MERGE_BUCKETS = (0.00001, 0.0001, 0.001, 0.01, 0.05, 0.1, 0.5)

#: (shard, probe) classifications.
_NEEDED, _PRUNED, _COVERED = 0, 1, 2


class ClusterBatchResult(NamedTuple):
    """Answers of one scattered batch plus its fan-out accounting."""

    results: List[float]
    shard_epochs: Dict[int, int]
    shards_total: int
    shards_contacted: int
    probes_unique: int
    probes_needed: int
    probes_pruned: int
    probes_covered: int
    probes_executed: int
    probe_cache_hits: int
    #: Shards that failed to answer (non-empty only under ``allow_partial``,
    #: in which case ``results`` cover the answered shards only).
    shards_failed: Tuple[int, ...] = ()

    @property
    def fanout(self) -> float:
        """Fraction of shards this batch touched (1.0 = full scatter)."""
        if not self.shards_total:
            return 0.0
        return self.shards_contacted / self.shards_total

    @property
    def complete(self) -> bool:
        """True when every contacted shard answered."""
        return not self.shards_failed


def _probe_bounds(key: object, extent: Box) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Per-dimension bounds of every point a shard stored in index ``key``.

    All object corners lie inside the shard's extent MBR, so a corner index
    (key = sign vector) stores points bounded by ``(extent.low,
    extent.high)`` componentwise.  An EO82 index (key = ``(dims, sides)``)
    stores ``o.h_d`` for a LOW side — bounded by ``(extent.low[d],
    extent.high[d])`` — and ``−o.l_d`` for a HIGH side — bounded by
    ``(−extent.high[d], −extent.low[d])``.
    """
    if isinstance(key, tuple) and key and isinstance(key[0], tuple):
        dims_subset, sides = key
        lows = tuple(
            extent.low[d] if side == 0 else -extent.high[d]
            for d, side in zip(dims_subset, sides)
        )
        highs = tuple(
            extent.high[d] if side == 0 else -extent.low[d]
            for d, side in zip(dims_subset, sides)
        )
        return lows, highs
    return extent.low, extent.high


def _classify(identity: ProbeIdentity, extent: Optional[Box]) -> int:
    """Classify one probe against a shard extent (no extent → must execute)."""
    if extent is None:
        return _NEEDED
    key, point = identity
    lows, highs = _probe_bounds(key, extent)
    if any(p <= lo for p, lo in zip(point, lows)):
        return _PRUNED
    if all(p > hi for p, hi in zip(point, highs)):
        return _COVERED
    return _NEEDED


def _is_corner_key(key: object) -> bool:
    """Corner keys are flat sign vectors; EO82 keys are ``(dims, sides)`` pairs."""
    return not (isinstance(key, tuple) and key and isinstance(key[0], tuple))


class ShardRouter:
    """Scatter-gather evaluator over a list of shard-local query services.

    The router holds no object state of its own — extents arrive with each
    call (the cluster snapshots them under its metadata lock) so the router
    can also be used standalone over hand-built services.  ``executor`` may
    be any object with ``map`` (e.g. a ``ThreadPoolExecutor``); without one
    the fan-out is sequential, which is still exact.

    ``allow_partial=True`` turns a shard-level
    :class:`~repro.core.errors.ShardUnavailableError` (a whole replica
    group down) into an *omitted contribution*: the merge proceeds over
    the shards that answered and the failure lands in
    ``ClusterBatchResult.shards_failed`` for the caller to surface as a
    :class:`~repro.resilience.partial.PartialResult`.  The default (False)
    propagates the error — no silent partial answers.
    """

    def __init__(
        self,
        shards: Sequence[QueryService],
        *,
        executor=None,
        registry: Optional[MetricsRegistry] = None,
        label: str = "cluster",
        allow_partial: bool = False,
    ) -> None:
        if not shards:
            raise ValueError("a router needs at least one shard")
        self.shards = list(shards)
        self.label = label
        self.allow_partial = allow_partial
        self._executor = executor
        reference = self.shards[0].index
        self._supports_probes = bool(getattr(reference, "supports_probes", False))
        registry = registry if registry is not None else get_registry()
        self._m_batches = registry.counter("repro_shard_batches", "scatter-gather batches routed")
        self._m_probes = registry.counter(
            "repro_shard_probes",
            "per-shard probe dispositions (needed/pruned/covered)",
        )
        self._m_fanout = registry.histogram(
            "repro_shard_fanout", "shards contacted per batch", buckets=FANOUT_BUCKETS
        )
        self._m_merge = registry.histogram(
            "repro_shard_merge_seconds",
            "seconds spent merging shard snapshots",
            buckets=MERGE_BUCKETS,
        )

    # -- public entry ------------------------------------------------------------

    def scatter(
        self, queries: Sequence[Box], extents: Optional[Sequence[Optional[Box]]] = None
    ) -> ClusterBatchResult:
        """Evaluate a batch across every shard and merge the exact answer.

        ``extents[s]`` is shard ``s``'s grow-only MBR over every box ever
        inserted or deleted there (None = unknown, disables that shard's
        shortcuts).  Overcoverage is safe; *under*coverage would not be —
        the cluster grows extents before the shard mutation lands.
        """
        queries = list(queries)
        if extents is None:
            extents = [None] * len(self.shards)
        tracer = _trace._ACTIVE
        if tracer is None:
            return self._scatter(queries, extents)
        with tracer.span(
            "shard.scatter", label=self.label, shards=len(self.shards), queries=len(queries)
        ):
            result = self._scatter(queries, extents)
            tracer.event(
                "shard_gather",
                contacted=result.shards_contacted,
                pruned=result.probes_pruned,
                covered=result.probes_covered,
                executed=result.probes_executed,
            )
        return result

    def _scatter(self, queries: List[Box], extents: Sequence[Optional[Box]]) -> ClusterBatchResult:
        if not self._supports_probes:
            return self._scatter_monolithic(queries, extents)

        reference = self.shards[0].index
        plans = [reference.probe_plan(query) for query in queries]
        batch = BatchPlan(queries, plans)
        corner = all(_is_corner_key(identity[0]) for identity in batch.unique)

        # Classify every (shard, unique probe) pair against the shard extent.
        needed: List[List[ProbeIdentity]] = []
        covered: List[List[ProbeIdentity]] = []
        pruned_count = 0
        covered_count = 0
        contacted: List[int] = []
        for sid in range(len(self.shards)):
            extent = extents[sid] if sid < len(extents) else None
            shard_needed: List[ProbeIdentity] = []
            shard_covered: List[ProbeIdentity] = []
            for identity in batch.unique:
                disposition = _classify(identity, extent)
                if disposition == _NEEDED:
                    shard_needed.append(identity)
                elif disposition == _COVERED:
                    shard_covered.append(identity)
                    covered_count += 1
                else:
                    pruned_count += 1
            needed.append(shard_needed)
            covered.append(shard_covered)
            # A fully pruned corner shard contributes zero to every probe and
            # a zero base: skip it.  EO82 shards always contribute their
            # grand total as the merge base, so they are always contacted
            # (an empty-identity call is lock + two reads, no probe I/O).
            if shard_needed or shard_covered or not corner:
                contacted.append(sid)

        snapshots, failed = self._resolve(contacted, needed)

        merge_start = time.perf_counter()
        zero = reference.zero
        merged: Dict[ProbeIdentity, Value] = {}
        base: Value = zero
        shard_epochs: Dict[int, int] = {}
        probes_executed = 0
        cache_hits = 0
        for sid in contacted:
            if sid in failed:
                continue
            snapshot = snapshots[sid]
            shard_epochs[sid] = snapshot.epoch
            probes_executed += snapshot.probes_executed
            cache_hits += snapshot.probe_cache_hits
            base = base + snapshot.base
            for identity, value in zip(needed[sid], snapshot.values):
                if identity in merged:
                    merged[identity] = merged[identity] + value
                else:
                    merged[identity] = value
            for identity in covered[sid]:
                if identity in merged:
                    merged[identity] = merged[identity] + snapshot.total
                else:
                    merged[identity] = snapshot.total
        # Probes pruned on (or skipped with) every shard never entered
        # ``merged``: their cluster-wide dominance sum is exactly zero.
        for identity in batch.unique:
            if identity not in merged:
                merged[identity] = zero

        # Corner plans seed from zero, so the reference index's own
        # reassembly applies unchanged; EO82 plans must seed from the
        # *merged* cluster base (the sum of every shard's grand total), not
        # the reference shard's.
        if corner:
            results = [reference.box_sum_from_probes(plan, merged) for plan in batch.plans]
        else:
            results = [self._combine(plan, merged, base, zero) for plan in batch.plans]
        self._m_merge.observe(time.perf_counter() - merge_start, label=self.label)

        self._m_batches.inc(label=self.label)
        self._m_fanout.observe(len(contacted), label=self.label)
        needed_count = sum(len(ids) for ids in needed)
        if needed_count:
            self._m_probes.inc(needed_count, disposition="needed", label=self.label)
        if pruned_count:
            self._m_probes.inc(pruned_count, disposition="pruned", label=self.label)
        if covered_count:
            self._m_probes.inc(covered_count, disposition="covered", label=self.label)
        return ClusterBatchResult(
            results=results,
            shard_epochs=shard_epochs,
            shards_total=len(self.shards),
            shards_contacted=len(contacted),
            probes_unique=batch.probes_unique,
            probes_needed=needed_count,
            probes_pruned=pruned_count,
            probes_covered=covered_count,
            probes_executed=probes_executed,
            probe_cache_hits=cache_hits,
            shards_failed=tuple(sorted(failed)),
        )

    @staticmethod
    def _combine(plan, merged: Dict[ProbeIdentity, Value], base: Value, zero: Value) -> float:
        result = combine_probe_values(plan, merged, base, zero)
        if isinstance(result, SumCount):
            return result.total
        return float(result)

    def _resolve(
        self, contacted: List[int], needed: List[List[ProbeIdentity]]
    ) -> Tuple[Dict[int, ProbeSnapshot], set]:
        """Fan the needed identities out to the contacted shards.

        Returns the per-shard snapshots plus the set of shards that were
        unavailable (always empty unless ``allow_partial``; any other shard
        exception propagates out of the gather, with ``executor.map``
        re-raising it on iteration — the caller holds no shard locks here,
        so propagation leaks nothing).
        """

        def run(sid: int) -> Tuple[int, Optional[ProbeSnapshot]]:
            try:
                return sid, self.shards[sid].resolve_probe_values(needed[sid])
            except ShardUnavailableError:
                if self.allow_partial:
                    return sid, None
                raise
            except ServiceOverloadedError as exc:
                if exc.shard is None:
                    raise ServiceOverloadedError(
                        f"shard {sid} shed a scatter",
                        inflight=exc.inflight,
                        queue_depth=exc.queue_depth,
                        shard=sid,
                    ) from exc
                raise

        if self._executor is not None and len(contacted) > 1:
            pairs = list(self._executor.map(run, contacted))
        else:
            pairs = [run(sid) for sid in contacted]
        failed = {sid for sid, snapshot in pairs if snapshot is None}
        return {sid: s for sid, s in pairs if s is not None}, failed

    # -- monolithic fallback (object backends) ------------------------------------

    def _scatter_monolithic(
        self, queries: List[Box], extents: Sequence[Optional[Box]]
    ) -> ClusterBatchResult:
        """Per-shard ``box_sum_batch`` with query-level extent pruning.

        Every object of a shard lies inside its extent MBR, so a query that
        does not intersect the extent (paper semantics) intersects no object
        there and the shard contributes exactly 0 to that query.
        """
        relevant: List[List[int]] = []
        contacted: List[int] = []
        pruned = 0
        for sid in range(len(self.shards)):
            extent = extents[sid] if sid < len(extents) else None
            if extent is None:
                keep = list(range(len(queries)))
            else:
                keep = [i for i, q in enumerate(queries) if extent.intersects(q)]
                pruned += len(queries) - len(keep)
            relevant.append(keep)
            if keep:
                contacted.append(sid)

        def run(sid: int) -> Tuple[int, Optional[List[float]], int]:
            service = self.shards[sid]
            try:
                batch = service.batch([queries[i] for i in relevant[sid]])
            except ShardUnavailableError:
                if self.allow_partial:
                    return sid, None, -1
                raise
            except ServiceOverloadedError as exc:
                if exc.shard is None:
                    raise ServiceOverloadedError(
                        f"shard {sid} shed a scatter",
                        inflight=exc.inflight,
                        queue_depth=exc.queue_depth,
                        shard=sid,
                    ) from exc
                raise
            return sid, batch.results, batch.epoch

        if self._executor is not None and len(contacted) > 1:
            answers = list(self._executor.map(run, contacted))
        else:
            answers = [run(sid) for sid in contacted]

        merge_start = time.perf_counter()
        results = [0.0] * len(queries)
        shard_epochs: Dict[int, int] = {}
        failed: List[int] = []
        for sid, values, epoch in sorted(answers):
            if values is None:
                failed.append(sid)
                continue
            shard_epochs[sid] = epoch
            for i, value in zip(relevant[sid], values):
                results[i] += value
        self._m_merge.observe(time.perf_counter() - merge_start, label=self.label)
        self._m_batches.inc(label=self.label)
        self._m_fanout.observe(len(contacted), label=self.label)
        if pruned:
            self._m_probes.inc(pruned, disposition="pruned", label=self.label)
        return ClusterBatchResult(
            results=results,
            shard_epochs=shard_epochs,
            shards_total=len(self.shards),
            shards_contacted=len(contacted),
            probes_unique=0,
            probes_needed=0,
            probes_pruned=pruned,
            probes_covered=0,
            probes_executed=0,
            probe_cache_hits=0,
            shards_failed=tuple(failed),
        )


__all__ = ["ShardRouter", "ClusterBatchResult", "FANOUT_BUCKETS", "MERGE_BUCKETS"]
