"""Typed containers for degraded-but-certified answers.

An :class:`ApproxResult` is what the serving layer returns when it
answers from the approximate tier instead of shedding or failing: a list
of :class:`~repro.core.values.BoundedValue` intervals — one per query —
plus enough provenance (reason, which slots were approximated vs answered
exactly, staleness) for the caller to reason about the degradation.

Like :class:`~repro.resilience.partial.PartialResult`, it is deliberately
*not* iterable-as-floats: code that expects exact answers fails loudly
instead of silently consuming an interval.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.geometry import Box
from ..core.values import BoundedValue

#: The degradation paths an ApproxResult can come from.
REASONS = ("overload", "outage", "direct")


class ApproxResult:
    """A batch of certified-interval answers from the approximate tier.

    Attributes
    ----------
    results:
        One :class:`BoundedValue` per query, in query order.
    reason:
        Why the exact path was unavailable: ``"overload"`` (admission
        control would have shed), ``"outage"`` (one or more replica groups
        down; their contributions are intervals, the rest exact), or
        ``"direct"`` (explicitly requested, e.g. ``degraded_batch``).
    answered / approximated:
        Sorted slot (shard) ids whose contributions were exact sums vs
        synopsis intervals.  An unsharded service uses the single slot 0.
    version:
        The tier's mutation version at answer time (its logical epoch).
    staleness:
        Mutations noted after the serving synopses were built; their
        signed-weight envelope is already folded into the bounds.
    probes:
        Synopsis probes executed (``2^d`` per query per approximated slot).
    """

    __slots__ = (
        "results",
        "reason",
        "answered",
        "approximated",
        "version",
        "staleness",
        "probes",
        "_queries",
    )

    def __init__(
        self,
        results: Sequence[BoundedValue],
        *,
        reason: str,
        approximated: Sequence[int],
        answered: Sequence[int] = (),
        version: int = 0,
        staleness: int = 0,
        probes: int = 0,
        queries: Optional[Sequence[Box]] = None,
    ) -> None:
        results = list(results)
        for bv in results:
            if not isinstance(bv, BoundedValue):
                raise TypeError(
                    f"ApproxResult holds BoundedValue entries, got {type(bv).__name__}"
                )
        if reason not in REASONS:
            raise ValueError(f"reason must be one of {REASONS}, got {reason!r}")
        self.results = results
        self.reason = reason
        self.approximated = tuple(sorted(set(int(s) for s in approximated)))
        self.answered = tuple(sorted(set(int(s) for s in answered)))
        self.version = int(version)
        self.staleness = int(staleness)
        self.probes = int(probes)
        self._queries = tuple(queries) if queries is not None else None

    @property
    def queries(self) -> Optional[Tuple[Box, ...]]:
        """The query boxes, when the producer attached them."""
        return self._queries

    def estimates(self) -> List[float]:
        """The point estimates (always within the certified bands)."""
        return [bv.estimate for bv in self.results]

    def bands(self) -> List[Tuple[float, float]]:
        """The certified ``(lo, hi)`` intervals in query order."""
        return [(bv.lo, bv.hi) for bv in self.results]

    def max_width(self) -> float:
        """The widest certified band in the batch (0.0 when empty)."""
        return max((bv.width for bv in self.results), default=0.0)

    def contains(self, exact: Sequence[float]) -> bool:
        """True when every certified band contains its exact answer."""
        if len(exact) != len(self.results):
            raise ValueError(f"expected {len(self.results)} exact values, got {len(exact)}")
        return all(bv.contains(v) for bv, v in zip(self.results, exact))

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[BoundedValue]:
        return iter(self.results)

    def __getitem__(self, index: int) -> BoundedValue:
        return self.results[index]

    def __repr__(self) -> str:
        return (
            f"ApproxResult(n={len(self.results)}, reason={self.reason!r}, "
            f"approximated={self.approximated}, answered={self.answered}, "
            f"staleness={self.staleness}, max_width={self.max_width():.6g})"
        )


__all__ = ["REASONS", "ApproxResult"]
