"""The approximate tier: per-slot mirrors, staleness policy, degradation.

:class:`ApproxTier` is the stateful piece the serving layer plugs in.  It
keeps one deterministic :class:`~repro.replog.state.LogicalState` mirror
per slot (a slot is a shard in a cluster, or the single slot 0 for an
unsharded :class:`~repro.service.QueryService`), builds an
:class:`~repro.approx.synopsis.ApproxSynopsis` per slot on demand, and
answers batches with certified intervals when the exact path cannot.

Soundness across mutations is *bounded staleness*, not hope: every
mutation noted after a synopsis was built contributes its signed measured
weight ``s`` to a pending envelope; any query's exact answer can shift by
at most ``[sum of min(s, 0), sum of max(s, 0)]``, so stale answers widen
their bands by that envelope and stay certified.  Past
``policy.max_staleness`` pending mutations the slot is rebuilt (or, with
``auto_refresh=False``, the tier refuses and the caller falls back to
the exact-path failure).

The tier degrades to *refusing* rather than guessing whenever its mirror
may have diverged from the authoritative index: an unrecorded mutation
(``record=None``, e.g. a restore) marks it desynced until the next bulk
load reseeds the mirrors.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import NotSupportedError
from ..core.geometry import Box
from ..core.values import BoundedValue
from ..obs import registry as _registry
from ..obs import trace as _trace
from ..replog.records import BulkLoadOp, DeleteOp, InsertOp, Operation, SetMetaOp
from ..replog.state import LogicalState
from .bounds import ApproxResult
from .synopsis import SUPPORTED_MEASURES, ApproxSynopsis, build_synopsis, measured_weight


@dataclass(frozen=True)
class ApproxPolicy:
    """Tuning knobs for the approximate tier (validated, immutable).

    ``pieces``/``degree`` control the per-corner grid fits;
    ``max_staleness`` is how many un-resynopsized mutations a slot may
    accumulate before answering requires a rebuild; ``auto_refresh``
    decides whether crossing that limit rebuilds (True) or refuses
    (False, pushing the caller back to the exact-path failure).
    """

    pieces: int = 8
    degree: int = 1
    max_staleness: int = 16
    auto_refresh: bool = True

    def __post_init__(self) -> None:
        if self.pieces < 1:
            raise ValueError(f"pieces must be >= 1, got {self.pieces}")
        if self.degree not in (0, 1):
            raise ValueError(f"degree must be 0 or 1, got {self.degree}")
        if self.max_staleness < 0:
            raise ValueError(f"max_staleness must be >= 0, got {self.max_staleness}")


class ApproxTier:
    """Slot-structured approximate tier with certified staleness handling."""

    def __init__(
        self,
        dims: int,
        slots: int = 1,
        *,
        policy: Optional[ApproxPolicy] = None,
        measure: str = "sum",
        registry=None,
        label: str = "approx",
    ) -> None:
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if measure not in SUPPORTED_MEASURES:
            raise NotSupportedError(
                f"approximate tier supports measures {SUPPORTED_MEASURES}, not {measure!r}"
            )
        self.dims = dims
        self.slots = slots
        self.policy = policy or ApproxPolicy()
        self.measure = measure
        self.label = label
        self._lock = threading.Lock()
        self._states = [LogicalState(dims) for _ in range(slots)]
        self._synopses: List[Optional[ApproxSynopsis]] = [None] * slots
        self._built: List[int] = [-1] * slots
        self._pending_lo = [0.0] * slots
        self._pending_hi = [0.0] * slots
        self._pending_n = [0] * slots
        self._version = 0
        self._desynced = False
        self._probes_per_query = 1 << dims
        reg = registry if registry is not None else _registry.null_registry()
        self._m_builds = reg.counter(
            "repro_approx_builds", "synopsis (re)builds in the approximate tier"
        )
        self._m_answers = reg.counter(
            "repro_approx_answers", "batches answered with certified bounds, by reason"
        )
        self._m_refusals = reg.counter(
            "repro_approx_refusals", "degraded answers refused (desynced or too stale)"
        )
        self._m_cells = reg.gauge(
            "repro_approx_cells", "fitted synopsis cells currently serving"
        )
        self._m_staleness = reg.gauge(
            "repro_approx_staleness", "pending mutations not yet folded into a synopsis"
        )

    # -- mutation feed ----------------------------------------------------------------

    def note_insert(self, slot: int, box: Box, value: float) -> None:
        """Record an insert applied to ``slot``'s authoritative index."""
        with self._lock:
            self._note(slot, InsertOp(box, float(value)))

    def note_delete(self, slot: int, box: Box, value: float) -> None:
        """Record a delete applied to ``slot``'s authoritative index."""
        with self._lock:
            self._note(slot, DeleteOp(box, float(value)))

    def note_migrate(self, source: int, target: int, box: Box, value: float) -> None:
        """Record one object instance moving between slots (rebalance)."""
        with self._lock:
            self._note(source, DeleteOp(box, float(value)))
            self._note(target, InsertOp(box, float(value)))

    def note_bulk_load(self, per_slot: Sequence[Sequence[Tuple[Box, float]]]) -> None:
        """Reseed every slot mirror from a full bulk load (clears desync)."""
        if len(per_slot) != self.slots:
            raise ValueError(f"expected {self.slots} slot lists, got {len(per_slot)}")
        with self._lock:
            for slot, objects in enumerate(per_slot):
                self._states[slot].apply(
                    BulkLoadOp(tuple((box, float(v)) for box, v in objects))
                )
                self._reset_slot(slot)
            self._version += 1
            self._desynced = False

    def note_record(self, slot: int, record: Optional[Operation]) -> None:
        """Feed one oplog-style record; ``None`` means an unrecorded mutation."""
        with self._lock:
            if record is None:
                self._desynced = True
                return
            if isinstance(record, (InsertOp, DeleteOp)):
                self._note(slot, record)
            elif isinstance(record, BulkLoadOp):
                self._states[slot].apply(record)
                self._reset_slot(slot)
                self._version += 1
                if self.slots == 1:
                    # The whole mirror was just reseeded, so nothing stale
                    # can survive — the single-slot path to re-trusting a
                    # desynced tier (clusters reseed via note_bulk_load).
                    self._desynced = False
            elif isinstance(record, SetMetaOp):
                pass  # metadata writes do not move aggregates
            else:
                self._desynced = True

    def desync(self) -> None:
        """Mark the mirrors untrusted (refuse answers until reseeded)."""
        with self._lock:
            self._desynced = True

    def _note(self, slot: int, op: Operation) -> None:
        self._states[slot].apply(op)
        signed = measured_weight(op.value, self.measure)
        if isinstance(op, DeleteOp):
            signed = -signed
        self._pending_lo[slot] += min(signed, 0.0)
        self._pending_hi[slot] += max(signed, 0.0)
        self._pending_n[slot] += 1
        self._version += 1

    def _reset_slot(self, slot: int) -> None:
        self._synopses[slot] = None
        self._built[slot] = -1
        self._pending_lo[slot] = 0.0
        self._pending_hi[slot] = 0.0
        self._pending_n[slot] = 0

    # -- building ---------------------------------------------------------------------

    def _build(self, slot: int) -> None:
        tracer = _trace._ACTIVE
        if tracer is not None:
            with tracer.span("approx.build", slot=slot, version=self._version):
                self._build_inner(slot)
        else:
            self._build_inner(slot)

    def _build_inner(self, slot: int) -> None:
        self._synopses[slot] = build_synopsis(
            self._states[slot].items(),
            self.dims,
            measure=self.measure,
            pieces=self.policy.pieces,
            degree=self.policy.degree,
            version=self._version,
        )
        self._built[slot] = self._version
        self._pending_lo[slot] = 0.0
        self._pending_hi[slot] = 0.0
        self._pending_n[slot] = 0
        self._m_builds.inc(label=self.label)
        self._m_cells.set(
            float(sum(s.num_cells() for s in self._synopses if s is not None)),
            label=self.label,
        )

    def refresh(self, slots: Optional[Iterable[int]] = None) -> None:
        """Eagerly (re)build synopses (all slots, or the ones given)."""
        with self._lock:
            for slot in sorted(set(slots)) if slots is not None else range(self.slots):
                self._build(slot)

    # -- answering --------------------------------------------------------------------

    def try_answer(
        self,
        queries: Sequence[Box],
        *,
        reason: str,
        slots: Optional[Iterable[int]] = None,
        base: Optional[Sequence[float]] = None,
        answered: Sequence[int] = (),
    ) -> Optional[ApproxResult]:
        """Certified intervals for ``queries``, or ``None`` when refused.

        ``slots`` restricts the synopsis contribution to those slot ids
        (an outage degradation); ``base`` supplies the exact per-query
        sums already gathered from the ``answered`` slots, folded in as
        degenerate intervals.  Refusal (desynced, or stale beyond policy
        with ``auto_refresh=False``) returns ``None`` so the caller can
        fall back to its exact-path failure.
        """
        queries = list(queries)
        with self._lock:
            if self._desynced:
                self._m_refusals.inc(label=self.label)
                return None
            slot_list = sorted(set(slots)) if slots is not None else list(range(self.slots))
            for slot in slot_list:
                if slot < 0 or slot >= self.slots:
                    raise ValueError(f"slot {slot} out of range [0, {self.slots})")
                if self._synopses[slot] is None:
                    self._build(slot)
                elif self._pending_n[slot] > self.policy.max_staleness:
                    if self.policy.auto_refresh:
                        self._build(slot)
                    else:
                        self._m_refusals.inc(label=self.label)
                        return None
            staleness = sum(self._pending_n[s] for s in slot_list)
            results: List[BoundedValue] = []
            for qi, query in enumerate(queries):
                acc = BoundedValue.exact(float(base[qi]) if base is not None else 0.0)
                for slot in slot_list:
                    synopsis = self._synopses[slot]
                    assert synopsis is not None
                    bv = synopsis.box_sum(query)
                    acc = acc + bv.widen(self._pending_lo[slot], self._pending_hi[slot])
                results.append(acc)
            self._m_answers.inc(reason=reason, label=self.label)
            self._m_staleness.set(float(staleness), label=self.label)
            tracer = _trace._ACTIVE
            if tracer is not None:
                tracer.event(
                    "approx.answer",
                    reason=reason,
                    queries=len(queries),
                    slots=len(slot_list),
                    staleness=staleness,
                )
            return ApproxResult(
                results,
                reason=reason,
                approximated=slot_list,
                answered=answered,
                version=self._version,
                staleness=staleness,
                probes=len(queries) * len(slot_list) * self._probes_per_query,
                queries=queries,
            )

    def answer(
        self,
        queries: Sequence[Box],
        *,
        reason: str = "direct",
        slots: Optional[Iterable[int]] = None,
        base: Optional[Sequence[float]] = None,
        answered: Sequence[int] = (),
    ) -> ApproxResult:
        """Like :meth:`try_answer` but raises instead of returning ``None``."""
        result = self.try_answer(
            queries, reason=reason, slots=slots, base=base, answered=answered
        )
        if result is None:
            raise NotSupportedError(
                "approximate tier cannot answer: mirrors are desynced or stale "
                "beyond policy (reseed via bulk load or enable auto_refresh)"
            )
        return result

    # -- introspection ----------------------------------------------------------------

    @property
    def version(self) -> int:
        """Total mutations noted (the tier's logical epoch)."""
        with self._lock:
            return self._version

    @property
    def desynced(self) -> bool:
        """True when the mirrors can no longer be trusted."""
        with self._lock:
            return self._desynced

    def synopsis(self, slot: int = 0) -> Optional[ApproxSynopsis]:
        """The serving synopsis for ``slot`` (None before first build)."""
        with self._lock:
            return self._synopses[slot]

    def stats(self) -> Dict[str, object]:
        """A deterministic snapshot of tier state for inspect/tests."""
        with self._lock:
            slots = []
            for slot in range(self.slots):
                synopsis = self._synopses[slot]
                slots.append(
                    {
                        "built_version": self._built[slot],
                        "pending": self._pending_n[slot],
                        "pending_lo": self._pending_lo[slot],
                        "pending_hi": self._pending_hi[slot],
                        "cells": synopsis.num_cells() if synopsis is not None else 0,
                        "nbytes": synopsis.nbytes() if synopsis is not None else 0,
                        "objects": self._states[slot].net_instances,
                    }
                )
            return {
                "slots": self.slots,
                "version": self._version,
                "desynced": self._desynced,
                "measure": self.measure,
                "pieces": self.policy.pieces,
                "degree": self.policy.degree,
                "max_staleness": self.policy.max_staleness,
                "auto_refresh": self.policy.auto_refresh,
                "per_slot": slots,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ApproxTier(dims={self.dims}, slots={self.slots}, "
            f"measure={self.measure!r}, version={self._version})"
        )


__all__ = ["ApproxPolicy", "ApproxTier"]
