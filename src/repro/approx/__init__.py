"""Certified approximate tier: bounded answers when the exact path cannot.

The exact indexes answer ``box_sum`` bit-exactly, but under overload the
service can only shed, and under a replica-group outage only fail or go
partial.  This package adds a third option that is never silently wrong:
a PolyFit-style synopsis (piecewise low-degree polynomial fits over the
cumulative dominance aggregate, probed through the same 2^d corner
reduction) answering with :class:`~repro.core.values.BoundedValue`
intervals certified to contain the exact answer.

Layering:

* :mod:`repro.approx.fit` — per-corner-structure grid fits with
  certified per-piece envelopes (signed weights supported);
* :mod:`repro.approx.synopsis` — an immutable snapshot synopsis
  answering ``box_sum`` by interval arithmetic over corner probes;
* :mod:`repro.approx.builder` — :class:`ApproxTier`: per-slot mirrors,
  bounded-staleness envelopes, rebuild policy, metrics;
* :mod:`repro.approx.bounds` — :class:`ApproxResult`, the typed degraded
  answer (never confusable with an exact one).

Serving wires it in behind opt-in config (``degrade="bounded"`` on
:class:`~repro.shard.ShardedService`, ``approx=...`` on
:class:`~repro.service.QueryService`); the default-off path is untouched.
"""

from .bounds import REASONS, ApproxResult
from .builder import ApproxPolicy, ApproxTier
from .fit import CellFit, GridFit, build_grid_fit
from .synopsis import SUPPORTED_MEASURES, ApproxSynopsis, build_synopsis, measured_weight

__all__ = [
    "REASONS",
    "SUPPORTED_MEASURES",
    "ApproxPolicy",
    "ApproxResult",
    "ApproxSynopsis",
    "ApproxTier",
    "CellFit",
    "GridFit",
    "build_grid_fit",
    "build_synopsis",
    "measured_weight",
]
