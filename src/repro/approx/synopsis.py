"""A certified-bounds synopsis answering ``box_sum`` over a snapshot.

An :class:`ApproxSynopsis` carries one :class:`~repro.approx.fit.GridFit`
per corner structure and answers a box query through the *same* 2^d
corner-probe reduction the exact indexes use
(:class:`~repro.core.reduction.CornerReduction`): the exact answer is the
parity-signed sum of 2^d dominance sums, so summing the per-probe
certified intervals with interval arithmetic (negation swaps endpoints)
yields an interval certified to contain the exact answer.

The synopsis is an immutable snapshot, stamped with the epoch/version it
was built at; the staleness machinery lives one level up in
:class:`~repro.approx.builder.ApproxTier`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..core.errors import DimensionMismatchError, NotSupportedError
from ..core.geometry import Box
from ..core.reduction import all_signs, CornerReduction
from ..core.values import BoundedValue
from .fit import GridFit, build_grid_fit

Signs = Tuple[int, ...]

#: Measures the approximate tier can certify.  AVG and functional measures
#: would need interval division / coefficient-wise bands; they stay exact-only.
SUPPORTED_MEASURES = ("sum", "count")


def measured_weight(value: float, measure: str) -> float:
    """The scalar weight one object instance contributes under ``measure``."""
    return 1.0 if measure == "count" else float(value)


class ApproxSynopsis:
    """Piecewise-polynomial synopsis of a snapshot with certified bounds."""

    __slots__ = ("dims", "measure", "pieces", "degree", "epoch", "version", "_reduction", "_grids")

    def __init__(
        self,
        dims: int,
        grids: Dict[Signs, GridFit],
        *,
        measure: str = "sum",
        pieces: int = 8,
        degree: int = 1,
        epoch: int = 0,
        version: int = 0,
    ) -> None:
        self.dims = dims
        self.measure = measure
        self.pieces = pieces
        self.degree = degree
        self.epoch = epoch
        self.version = version
        self._reduction = CornerReduction(dims)
        self._grids = grids

    @property
    def probes_per_query(self) -> int:
        """Corner probes per box query (2^d, each an O(1) grid lookup)."""
        return self._reduction.num_queries

    def box_sum(self, query: Box) -> BoundedValue:
        """A certified interval containing the exact box-sum over the snapshot."""
        if query.dims != self.dims:
            raise DimensionMismatchError(
                f"query has {query.dims} dims, synopsis has {self.dims}"
            )
        lo = hi = est = 0.0
        for signs, point, parity in self._reduction.query_plan(query):
            e, pl, ph = self._grids[signs].probe(point)
            if parity > 0:
                lo += pl
                hi += ph
                est += e
            else:
                lo -= ph
                hi -= pl
                est -= e
        return BoundedValue(lo, hi, est)

    def box_sum_batch(self, queries: Iterable[Box]) -> List[BoundedValue]:
        """Certified intervals for a batch of queries."""
        return [self.box_sum(q) for q in queries]

    def num_cells(self) -> int:
        """Total fitted cells across all corner grids."""
        return sum(g.num_cells for g in self._grids.values())

    def num_points(self) -> int:
        """Weighted corner points fitted per grid (one grid's worth)."""
        return max((g.points for g in self._grids.values()), default=0)

    def max_eps(self) -> float:
        """Largest per-piece residual bound across every grid."""
        return max((g.max_eps() for g in self._grids.values()), default=0.0)

    def nbytes(self) -> int:
        """Byte footprint of the synopsis under the storage cost model."""
        return sum(g.nbytes() for g in self._grids.values())

    def stats(self) -> Dict[str, float]:
        """Deterministic introspection counters (cells, bytes, residuals)."""
        return {
            "dims": float(self.dims),
            "grids": float(len(self._grids)),
            "cells": float(self.num_cells()),
            "points": float(self.num_points()),
            "nbytes": float(self.nbytes()),
            "max_eps": self.max_eps(),
            "probes_per_query": float(self.probes_per_query),
            "epoch": float(self.epoch),
            "version": float(self.version),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ApproxSynopsis(dims={self.dims}, measure={self.measure!r}, "
            f"cells={self.num_cells()}, points={self.num_points()}, version={self.version})"
        )


def build_synopsis(
    items: Iterable[Tuple[Box, float, int]],
    dims: int,
    *,
    measure: str = "sum",
    pieces: int = 8,
    degree: int = 1,
    epoch: int = 0,
    version: int = 0,
) -> ApproxSynopsis:
    """Deterministically build a synopsis from ``(box, value, count)`` items.

    ``items`` is the shape :meth:`repro.replog.state.LogicalState.items`
    yields — counts may be negative (deletes of never-inserted identities),
    which the signed-weight grids handle natively.
    """
    if measure not in SUPPORTED_MEASURES:
        raise NotSupportedError(
            f"approximate tier supports measures {SUPPORTED_MEASURES}, not {measure!r}"
        )
    weighted: List[Tuple[Box, float]] = []
    for box, value, count in items:
        w = measured_weight(value, measure) * count
        if w != 0.0:
            weighted.append((box, w))
    grids: Dict[Signs, GridFit] = {}
    for signs in all_signs(dims):
        pts = [(box.corner(signs), w) for box, w in weighted]
        grids[signs] = build_grid_fit(pts, dims, pieces=pieces, degree=degree)
    return ApproxSynopsis(
        dims,
        grids,
        measure=measure,
        pieces=pieces,
        degree=degree,
        epoch=epoch,
        version=version,
    )


__all__ = [
    "SUPPORTED_MEASURES",
    "ApproxSynopsis",
    "build_synopsis",
    "measured_weight",
]
