"""Piecewise low-degree polynomial fits over a cumulative dominance aggregate.

PolyFit (PAPERS.md) answers range aggregates in O(1) with a guaranteed
error band by fitting low-degree polynomials to the *cumulative* form of
the data.  This module is that idea specialised to the paper's dominance
sums: one :class:`GridFit` approximates a single corner structure's
``DS(x) = sum of weights of points strictly dominated by x``.

Construction is deterministic given the input order:

1. Per dimension, pick cell edges at quantiles of the *distinct* point
   coordinates.  The first edge is the minimum coordinate and the last is
   the maximum plus a pad, so clamping a probe into the domain is exact:
   ``DS`` at the low edge is 0 in that dimension and ``DS`` beyond the
   high edge equals ``DS`` at it (strict dominance saturates).
2. Bucket every weighted point into its grid cell and run d-dimensional
   prefix sums, yielding the exact ``DS`` value at every grid *node*.
   Three grids are kept — total, positive-part and negative-part
   weights — because deletes make weights signed.
3. Per cell, certify an envelope ``[mn, mx]`` that contains ``DS(x)`` for
   every ``x`` in the cell: dominance is monotone, so moving ``x`` from
   the cell's low node to its high node can only add the points between
   the two node frontiers, and the positive/negative part grids bound
   how much that subset can add or subtract.  A small float guard widens
   the envelope to absorb IEEE-754 summation-order differences against
   the exact index.
4. Fit a polynomial per cell: degree 0 stores the envelope midpoint;
   degree 1 stores the multilinear interpolant through the ``2^d`` node
   values (built with :class:`~repro.core.polynomial.Polynomial`
   arithmetic).  The per-piece max-residual bound ``eps`` certifies
   ``|fit(x) - DS(x)| <= eps`` over the cell; the *served* band is the
   sharper node envelope, with the fit clamped into it as the estimate.

A probe is two bisections per dimension plus one polynomial evaluation —
independent of the number of objects, the O(1) path the degradation tier
leans on when the exact tree path is unavailable.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import product
from typing import Iterable, List, NamedTuple, Sequence, Tuple

from ..core.polynomial import Polynomial

Point = Tuple[float, ...]

#: Slack added to every certified envelope: ``REL_GUARD`` scales with the
#: total absolute weight (covering accumulated rounding over up to ~1e6
#: additions in either summation order), ``ABS_GUARD`` covers the
#: all-zero case.
REL_GUARD = 1e-9
ABS_GUARD = 1e-12


class CellFit(NamedTuple):
    """One grid cell: a fitted polynomial plus its certified bounds."""

    poly: Polynomial
    eps: float  # certified max |poly(x) - DS(x)| over the cell
    lo: float  # certified min of DS over the cell (guard included)
    hi: float  # certified max of DS over the cell (guard included)


def _multilinear(
    dims: int, lows: Sequence[float], highs: Sequence[float], corners: dict
) -> Polynomial:
    """The multilinear interpolant through the cell's 2^d corner values."""
    poly = Polynomial(dims)
    for signs, value in corners.items():
        if value == 0.0:
            continue
        term = Polynomial.constant(dims, value)
        for i in range(dims):
            width = highs[i] - lows[i]
            x = Polynomial.variable(dims, i)
            if signs[i]:
                basis = (x + Polynomial.constant(dims, -lows[i])).scale(1.0 / width)
            else:
                basis = (Polynomial.constant(dims, highs[i]) - x).scale(1.0 / width)
            term = term * basis
        poly = poly + term
    return poly


class GridFit:
    """A piecewise polynomial fit of one corner structure's dominance sum.

    Instances are immutable snapshots; build one with :func:`build_grid_fit`.
    """

    __slots__ = ("dims", "edges", "shape", "strides", "cells", "points", "weight_scale")

    def __init__(
        self,
        dims: int,
        edges: List[List[float]],
        shape: List[int],
        strides: List[int],
        cells: List[CellFit],
        points: int,
        weight_scale: float,
    ) -> None:
        self.dims = dims
        self.edges = edges
        self.shape = shape
        self.strides = strides
        self.cells = cells
        self.points = points
        self.weight_scale = weight_scale

    def probe(self, point: Sequence[float]) -> Tuple[float, float, float]:
        """``(estimate, lo, hi)`` with ``lo <= DS(point) <= hi`` certified.

        Cost: one ``bisect`` per dimension plus one polynomial evaluation,
        independent of how many points were fitted.
        """
        if self.points == 0:
            return (0.0, 0.0, 0.0)
        idx = 0
        clamped: List[float] = []
        for i in range(self.dims):
            e = self.edges[i]
            x = min(max(float(point[i]), e[0]), e[-1])
            cell = bisect_right(e, x) - 1
            if cell >= self.shape[i]:
                cell = self.shape[i] - 1
            idx += self.strides[i] * cell
            clamped.append(x)
        fit = self.cells[idx]
        est = fit.poly.evaluate(tuple(clamped))
        return (min(max(est, fit.lo), fit.hi), fit.lo, fit.hi)

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    def max_eps(self) -> float:
        """Largest per-piece residual bound across cells (0.0 when empty)."""
        return max((c.eps for c in self.cells), default=0.0)

    def max_band(self) -> float:
        """Widest certified envelope across cells (0.0 when empty)."""
        return max((c.hi - c.lo for c in self.cells), default=0.0)

    def nbytes(self) -> int:
        """Byte footprint under the storage cost model (edges + cells)."""
        total = 8 * sum(len(e) for e in self.edges)
        for c in self.cells:
            total += c.poly.nbytes() + 24
        return total


def build_grid_fit(
    points: Iterable[Tuple[Sequence[float], float]],
    dims: int,
    *,
    pieces: int = 8,
    degree: int = 1,
) -> GridFit:
    """Fit a :class:`GridFit` over weighted points (weights may be signed).

    ``pieces`` caps the number of grid cells per dimension (fewer when the
    data has fewer distinct coordinates); ``degree`` selects the per-cell
    fit (0 = constant, 1 = multilinear).  Deterministic in the input order.
    """
    if pieces < 1:
        raise ValueError(f"pieces must be >= 1, got {pieces}")
    if degree not in (0, 1):
        raise ValueError(f"degree must be 0 or 1, got {degree}")
    pts = [(tuple(float(c) for c in p), float(w)) for p, w in points]
    if not pts:
        return GridFit(dims, [], [], [], [], 0, 0.0)

    edges: List[List[float]] = []
    for i in range(dims):
        coords = sorted({p[i] for p, _ in pts})
        m = len(coords)
        g = min(pieces, m)
        cuts = [coords[(k * m) // g] for k in range(g)]
        span = coords[-1] - coords[0]
        cuts.append(coords[-1] + max(span / (2.0 * g), 1e-6))
        edges.append(cuts)

    shape = [len(e) - 1 for e in edges]
    strides = [0] * dims
    acc = 1
    for i in range(dims - 1, -1, -1):
        strides[i] = acc
        acc *= shape[i]
    nbuckets = acc

    tot = [0.0] * nbuckets
    pos = [0.0] * nbuckets
    neg = [0.0] * nbuckets
    weight_scale = 0.0
    for p, w in pts:
        idx = 0
        for i in range(dims):
            idx += strides[i] * (bisect_right(edges[i], p[i]) - 1)
        tot[idx] += w
        if w >= 0.0:
            pos[idx] += w
        else:
            neg[idx] += w
        weight_scale += abs(w)
    guard = REL_GUARD * weight_scale + ABS_GUARD

    # In-place d-dimensional prefix sums: after this, grid[flat(v)] is the
    # sum over every bucket whose index is <= v component-wise.
    for grid in (tot, pos, neg):
        for i in range(dims):
            stride, size = strides[i], shape[i]
            for idx in range(nbuckets):
                if (idx // stride) % size > 0:
                    grid[idx] += grid[idx - stride]

    def node(grid: List[float], v: Tuple[int, ...]) -> float:
        # DS at grid node v under strict dominance: the cumulative sum of
        # buckets strictly below it, i.e. the prefix value at v - 1.
        idx = 0
        for i in range(dims):
            if v[i] == 0:
                return 0.0
            idx += strides[i] * (v[i] - 1)
        return grid[idx]

    corner_signs = list(product((0, 1), repeat=dims))
    cells: List[CellFit] = []
    for idx in range(nbuckets):
        c = tuple((idx // strides[i]) % shape[i] for i in range(dims))
        nlo = c
        nhi = tuple(ci + 1 for ci in c)
        ds_lo = node(tot, nlo)
        # Moving x from the cell's low node to its high node can only pick
        # up points between the two frontiers; those contribute at least
        # the negative part and at most the positive part of that slab.
        mn = ds_lo + (node(neg, nhi) - node(neg, nlo)) - guard
        mx = ds_lo + (node(pos, nhi) - node(pos, nlo)) + guard
        corners = {
            s: node(tot, tuple(c[i] + s[i] for i in range(dims))) for s in corner_signs
        }
        if degree == 0:
            poly = Polynomial.constant(dims, 0.5 * (mn + mx))
            eps = 0.5 * (mx - mn)
        else:
            lows = [edges[i][c[i]] for i in range(dims)]
            highs = [edges[i][c[i] + 1] for i in range(dims)]
            poly = _multilinear(dims, lows, highs, corners)
            pmin = min(corners.values())
            pmax = max(corners.values())
            eps = max(pmax - mn, mx - pmin, 0.0)
        cells.append(CellFit(poly, eps, mn, mx))

    return GridFit(dims, edges, shape, strides, cells, len(pts), weight_scale)


__all__ = ["ABS_GUARD", "REL_GUARD", "CellFit", "GridFit", "build_grid_fit"]
