"""The R*-tree (Beckmann, Kriegel, Schneider, Seeger; SIGMOD 1990).

The paper's comparison baseline indexes the objects themselves: "A
straightforward approach to solve the box-sum queries is to index the data
objects with a multi-dimensional access method like the R*-tree and reduce
the problem to a range search."  This module implements the full R*-tree —
ChooseSubtree with minimum overlap enlargement at the leaf level,
margin-driven split-axis selection, overlap-minimal split distribution,
and forced reinsertion — plus STR (sort-tile-recursive) bulk loading.

Subtree aggregates (the aR-tree augmentation of [21, 25]) are maintained
when ``aggregated=True``; :mod:`repro.rtree.artree` builds the aggregate
query algorithms on top.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.errors import DimensionMismatchError, TreeInvariantError
from ..core.geometry import Box
from ..core.values import Value, values_equal
from ..storage import StorageContext

#: Fraction of entries removed by forced reinsertion (the paper's p = 30%).
REINSERT_FRACTION = 0.3
#: Minimum node fill used by the split distributions (40% of capacity).
MIN_FILL_FRACTION = 0.4


class Entry:
    """One slot of an R-tree node.

    Leaf entries (``child is None``) carry the object's box and payload
    ``value``; internal entries carry the child page id and the child's
    MBR.  ``agg`` is the subtree aggregate (the payload's aggregate for
    leaf entries) and is maintained only by aggregated trees.
    """

    __slots__ = ("box", "child", "value", "agg")

    def __init__(self, box: Box, child: Optional[int], value: Any, agg: Value) -> None:
        self.box = box
        self.child = child
        self.value = value
        self.agg = agg

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None


class _Node:
    __slots__ = ("pid", "level", "entries")

    def __init__(self, pid: int, level: int) -> None:
        self.pid = pid
        self.level = level  # 0 = leaf
        self.entries: List[Entry] = []

    @property
    def is_leaf(self) -> bool:
        return self.level == 0


class RStarTree:
    """A complete R*-tree over weighted boxes.

    ``aggregated=False`` gives the plain comparison baseline; subclasses
    switch on aggregation (see :class:`repro.rtree.artree.ARTree`).
    """

    aggregated = False

    def __init__(
        self,
        storage: StorageContext,
        dims: int,
        leaf_capacity: Optional[int] = None,
        internal_capacity: Optional[int] = None,
        zero: Value = 0.0,
    ) -> None:
        if dims < 1:
            raise DimensionMismatchError(f"dims must be >= 1, got {dims}")
        self.storage = storage
        self.dims = dims
        self.zero = zero
        layout = storage.layout
        self.leaf_capacity = leaf_capacity or self._default_leaf_capacity(layout)
        self.internal_capacity = internal_capacity or layout.rtree_internal_capacity(
            dims, self.aggregated
        )
        if min(self.leaf_capacity, self.internal_capacity) < 4:
            raise ValueError("R*-tree node capacities must be >= 4")
        root = self._new_node(level=0)
        self.root_pid = root.pid
        self.height = 1
        self.num_objects = 0
        self._total: Value = zero

    def _default_leaf_capacity(self, layout) -> int:
        return layout.rtree_leaf_capacity(self.dims)

    # -- aggregation hooks (overridden by functional trees) -------------------------

    def _agg_of(self, box: Box, value: Any) -> Value:
        """The aggregate contribution of one stored object."""
        return value

    # -- page plumbing ----------------------------------------------------------------

    def _new_node(self, level: int) -> _Node:
        node = _Node(self.storage.pager.allocate(), level)
        self.storage.pager.put(node.pid, node)
        return node

    def _fetch(self, pid: int, write: bool = False) -> _Node:
        self._access(pid, write=write)
        return self.storage.pager.get(pid)

    def _access(self, pid: int, write: bool = False) -> None:
        """Page-touch hook; the aR-tree reroutes reads through its path buffer."""
        self.storage.buffer.access(pid, write=write)

    def _capacity(self, node: _Node) -> int:
        return self.leaf_capacity if node.is_leaf else self.internal_capacity

    # -- insertion ---------------------------------------------------------------------

    def insert(self, box: Box, value: Any) -> None:
        """Insert one weighted box object (with R* forced reinsertion)."""
        self._check(box)
        agg = self._agg_of(box, value)
        self.num_objects += 1
        self._total = self._total + agg
        entry = Entry(box, None, value, agg)
        self._insert_entry(entry, target_level=0, reinserted_levels=set())

    def delete(self, box: Box, value: Any) -> None:
        """Logical deletion: insert the negated weight (aggregate semantics).

        The paper's aggregate indices never materialize objects, so removal
        is the insertion of the inverse value; queries over any region see
        the pair cancel exactly.  Object-level physical removal (with
        Guttman's CondenseTree) is :meth:`remove`.
        """
        self._check(box)
        neg = -self._agg_of(box, value)
        self.num_objects -= 1
        self._total = self._total + neg
        entry = Entry(box, None, self._negate_value(value), neg)
        self._insert_entry(entry, target_level=0, reinserted_levels=set())

    # -- physical deletion (FindLeaf / CondenseTree) -------------------------------

    def remove(self, box: Box, value: Any) -> bool:
        """Physically remove one stored object matching ``(box, value)``.

        Returns False when no such object exists.  Underfull nodes on the
        deletion path are dissolved and their surviving entries reinserted
        at their original level (Guttman's CondenseTree, as R*-trees use);
        MBRs and aggregates along the path are tightened.
        """
        self._check(box)
        orphans: List[Tuple[Entry, int]] = []
        removed = self._remove_from(self.root_pid, box, value, orphans)
        if removed is None:
            return False
        self.num_objects -= 1
        self._total = self._total + (-self._agg_of(box, value))
        # Decompose orphaned subtrees into leaf entries (a correctness-first
        # CondenseTree variant: Guttman reinserts whole subtrees at their
        # original level; leaf-level reinsertion is always valid regardless
        # of how far the root collapses below).
        leaf_orphans: List[Entry] = []
        for entry, _level in orphans:
            if entry.is_leaf_entry:
                leaf_orphans.append(entry)
            else:
                self._gather_leaf_entries(entry.child, leaf_orphans)
        root = self.storage.pager.get(self.root_pid)
        if not root.is_leaf and not root.entries:
            # Everything under the root was dissolved: restart from a leaf.
            self.storage.buffer.invalidate(self.root_pid)
            self.storage.pager.free(self.root_pid)
            fresh = self._new_node(level=0)
            self.root_pid = fresh.pid
            self.height = 1
        # Shrink a root chain left with single internal children.
        root = self.storage.pager.get(self.root_pid)
        while not root.is_leaf and len(root.entries) == 1:
            child_pid = root.entries[0].child
            self.storage.buffer.invalidate(self.root_pid)
            self.storage.pager.free(self.root_pid)
            self.root_pid = child_pid
            self.height -= 1
            root = self.storage.pager.get(self.root_pid)
        for entry in leaf_orphans:
            self._insert_entry(entry, 0, reinserted_levels=set())
        return True

    def _gather_leaf_entries(self, pid: int, out: List[Entry]) -> None:
        """Collect every leaf entry under ``pid`` and free the subtree's pages."""
        node = self._fetch(pid)
        if node.is_leaf:
            out.extend(node.entries)
        else:
            for entry in node.entries:
                self._gather_leaf_entries(entry.child, out)
        self.storage.buffer.invalidate(pid)
        self.storage.pager.free(pid)

    def _remove_from(self, pid: int, box: Box, value: Any, orphans: List[Tuple[Entry, int]]):
        """FindLeaf + removal; returns the aggregate drained from this subtree.

        The returned value covers both the deleted entry and any entries
        orphaned by dissolving underfull nodes — orphans re-add their
        aggregates along the root path when reinserted, so ancestors must
        have subtracted them here first.  Returns None when the object was
        not found under ``pid``.
        """
        node = self._fetch(pid, write=True)
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if entry.box == box and entry.value == value:
                    removed_agg = entry.agg
                    del node.entries[i]
                    return removed_agg
            return None
        for i, slot in enumerate(node.entries):
            if not slot.box.contains_box(box):
                continue
            drained = self._remove_from(slot.child, box, value, orphans)
            if drained is None:
                continue
            child = self.storage.pager.get(slot.child)
            min_fill = max(1, int(self._capacity(child) * MIN_FILL_FRACTION))
            if len(child.entries) < min_fill:
                # Dissolve the underfull child: its surviving entries are
                # orphaned for reinsertion and their aggregate drains too.
                for orphan in child.entries:
                    orphans.append((orphan, child.level))
                    drained = drained + orphan.agg
                self.storage.buffer.invalidate(slot.child)
                self.storage.pager.free(slot.child)
                del node.entries[i]
            else:
                slot.box = Box.enclosing([e.box for e in child.entries])
                slot.agg = slot.agg + (-drained)
            return drained
        return None

    @staticmethod
    def _negate_value(value: Any) -> Any:
        return -value

    def _insert_entry(self, entry: Entry, target_level: int, reinserted_levels: Set[int]) -> None:
        split = self._insert_at(self.root_pid, entry, target_level, reinserted_levels)
        if split is not None:
            left, right = split
            root = self.storage.pager.get(self.root_pid)
            new_root = self._new_node(level=root.level + 1)
            new_root.entries = [left, right]
            self._access(new_root.pid, write=True)
            self.root_pid = new_root.pid
            self.height += 1

    def _insert_at(
        self,
        pid: int,
        entry: Entry,
        target_level: int,
        reinserted_levels: Set[int],
    ) -> Optional[Tuple[Entry, Entry]]:
        node = self._fetch(pid, write=True)
        if node.level == target_level:
            node.entries.append(entry)
        else:
            slot = self._choose_subtree(node, entry.box)
            slot.box = slot.box.union(entry.box)
            slot.agg = slot.agg + entry.agg
            split = self._insert_at(slot.child, entry, target_level, reinserted_levels)
            if split is not None:
                idx = node.entries.index(slot)
                node.entries[idx : idx + 1] = list(split)
        if len(node.entries) <= self._capacity(node):
            return None
        return self._overflow(node, reinserted_levels)

    def _choose_subtree(self, node: _Node, box: Box) -> Entry:
        """R* ChooseSubtree: overlap-minimal above leaves, else area-minimal."""
        if node.level == 1:
            best = None
            best_key = None
            for candidate in node.entries:
                enlarged = candidate.box.union(box)
                overlap_delta = 0.0
                for other in node.entries:
                    if other is candidate:
                        continue
                    overlap_delta += _overlap(enlarged, other.box) - _overlap(
                        candidate.box, other.box
                    )
                area = candidate.box.volume()
                key = (overlap_delta, enlarged.volume() - area, area)
                if best_key is None or key < best_key:
                    best_key = key
                    best = candidate
            assert best is not None
            return best
        best = None
        best_key = None
        for candidate in node.entries:
            area = candidate.box.volume()
            enlargement = candidate.box.union(box).volume() - area
            key = (enlargement, area)
            if best_key is None or key < best_key:
                best_key = key
                best = candidate
        assert best is not None
        return best

    # -- overflow treatment ----------------------------------------------------------------

    def _overflow(self, node: _Node, reinserted_levels: Set[int]) -> Optional[Tuple[Entry, Entry]]:
        is_root = node.pid == self.root_pid
        if not is_root and node.level not in reinserted_levels:
            reinserted_levels.add(node.level)
            self._reinsert(node, reinserted_levels)
            return None
        return self._split(node)

    def _reinsert(self, node: _Node, reinserted_levels: Set[int]) -> None:
        """Forced reinsertion: evict the 30% of entries farthest from the center."""
        mbr = Box.enclosing([e.box for e in node.entries])
        center = mbr.center()
        node.entries.sort(key=lambda e: -_center_distance_sq(e.box.center(), center))
        count = max(1, int(len(node.entries) * REINSERT_FRACTION))
        evicted = node.entries[:count]
        node.entries = node.entries[count:]
        # The ancestors' boxes/aggregates already include the evicted
        # entries; subtract them before reinserting from the top.
        for entry in evicted:
            self._shrink_path(self.root_pid, node.pid, entry)
        for entry in evicted:
            self._insert_entry(entry, node.level, reinserted_levels)

    def _shrink_path(self, pid: int, target_pid: int, entry: Entry) -> bool:
        """Walk to ``target_pid`` removing ``entry``'s aggregate; recompute MBRs."""
        if pid == target_pid:
            return True
        node = self.storage.pager.get(pid)
        if node.is_leaf:
            return False
        for slot in node.entries:
            if self._shrink_path(slot.child, target_pid, entry):
                child = self.storage.pager.get(slot.child)
                if child.entries:
                    slot.box = Box.enclosing([e.box for e in child.entries])
                slot.agg = slot.agg + (-entry.agg)
                self._access(pid, write=True)
                return True
        return False

    def _split(self, node: _Node) -> Tuple[Entry, Entry]:
        """R* topological split: margin-driven axis, overlap-minimal distribution."""
        entries = node.entries
        min_fill = max(2, int(self._capacity(node) * MIN_FILL_FRACTION))
        best_axis, best_distribution = None, None
        best_margin = None
        for axis in range(self.dims):
            for key in (
                lambda e, a=axis: (e.box.low[a], e.box.high[a]),
                lambda e, a=axis: (e.box.high[a], e.box.low[a]),
            ):
                ordered = sorted(entries, key=key)
                margin = 0.0
                distributions = []
                for m in range(min_fill, len(ordered) - min_fill + 1):
                    left, right = ordered[:m], ordered[m:]
                    left_box = Box.enclosing([e.box for e in left])
                    right_box = Box.enclosing([e.box for e in right])
                    margin += left_box.margin() + right_box.margin()
                    distributions.append((left, right, left_box, right_box))
                if best_margin is None or margin < best_margin:
                    best_margin = margin
                    best_axis = axis
                    best_distribution = distributions
        assert best_distribution is not None and best_axis is not None
        best = min(
            best_distribution,
            key=lambda d: (_overlap(d[2], d[3]), d[2].volume() + d[3].volume()),
        )
        left_entries, right_entries, left_box, right_box = best
        node.entries = left_entries
        sibling = self._new_node(node.level)
        sibling.entries = right_entries
        self._access(sibling.pid, write=True)
        return (
            Entry(left_box, node.pid, None, self._sum_aggs(left_entries)),
            Entry(right_box, sibling.pid, None, self._sum_aggs(right_entries)),
        )

    def _sum_aggs(self, entries: Iterable[Entry]) -> Value:
        total = self.zero
        for e in entries:
            total = total + e.agg
        return total

    # -- bulk loading (STR) ---------------------------------------------------------------------

    def bulk_load(self, objects: Iterable[Tuple[Box, Any]], fill_factor: float = 0.9) -> None:
        """Sort-tile-recursive packing; replaces any existing content."""
        if not 0.0 < fill_factor <= 1.0:
            raise ValueError(f"fill_factor must be in (0, 1], got {fill_factor}")
        objects = list(objects)
        self._free_subtree(self.root_pid)
        self.num_objects = len(objects)
        self._total = self.zero
        entries: List[Entry] = []
        for box, value in objects:
            self._check(box)
            agg = self._agg_of(box, value)
            self._total = self._total + agg
            entries.append(Entry(box, None, value, agg))
        level = 0
        while True:
            capacity = self.leaf_capacity if level == 0 else self.internal_capacity
            per_node = max(2, int(capacity * fill_factor))
            if len(entries) <= per_node:
                root = self._new_node(level)
                root.entries = entries
                self._access(root.pid, write=True)
                self.root_pid = root.pid
                self.height = level + 1
                return
            next_entries: List[Entry] = []
            for chunk in _str_tiles(entries, per_node, self.dims):
                node = self._new_node(level)
                node.entries = chunk
                self._access(node.pid, write=True)
                next_entries.append(
                    Entry(
                        Box.enclosing([e.box for e in chunk]),
                        node.pid,
                        None,
                        self._sum_aggs(chunk),
                    )
                )
            entries = next_entries
            level += 1

    # -- queries -------------------------------------------------------------------------------------

    def box_sum(self, query: Box) -> Value:
        """Plain range-search box-sum: visit every subtree intersecting the query."""
        self._check(query)
        return self._scan_sum(self.root_pid, query)

    def _scan_sum(self, pid: int, query: Box) -> Value:
        node = self._fetch(pid)
        total = self.zero
        if node.is_leaf:
            for entry in node.entries:
                if entry.box.intersects(query):
                    total = total + entry.agg
            return total
        for entry in node.entries:
            if entry.box.intersects(query):
                total = total + self._scan_sum(entry.child, query)
        return total

    def range_report(self, query: Box) -> Iterator[Tuple[Box, Any]]:
        """Yield every stored ``(box, value)`` intersecting the query box."""
        self._check(query)
        yield from self._report(self.root_pid, query)

    def _report(self, pid: int, query: Box) -> Iterator[Tuple[Box, Any]]:
        node = self._fetch(pid)
        if node.is_leaf:
            for entry in node.entries:
                if entry.box.intersects(query):
                    yield entry.box, entry.value
            return
        for entry in node.entries:
            if entry.box.intersects(query):
                yield from self._report(entry.child, query)

    def total(self) -> Value:
        """Aggregate over every stored object."""
        return self._total

    def __len__(self) -> int:
        return self.num_objects

    # -- maintenance -----------------------------------------------------------------------------------

    def destroy(self) -> None:
        """Free every page and reset to an empty tree."""
        self._free_subtree(self.root_pid)
        root = self._new_node(level=0)
        self.root_pid = root.pid
        self.height = 1
        self.num_objects = 0
        self._total = self.zero

    def _free_subtree(self, pid: int) -> None:
        node = self.storage.pager.get(pid)
        if not node.is_leaf:
            for entry in node.entries:
                self._free_subtree(entry.child)
        self.storage.buffer.invalidate(pid)
        self.storage.pager.free(pid)

    # -- invariants ----------------------------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify MBR containment, aggregate consistency and balance."""
        count, total, _height = self._check_node(self.root_pid, None)
        if count != self.num_objects:
            raise TreeInvariantError(f"object count mismatch: {count} != {self.num_objects}")
        if not values_equal(total, self._total, tol=1e-6):
            raise TreeInvariantError("tree total mismatch")

    def _check_node(self, pid: int, bound: Optional[Box]) -> Tuple[int, Value, int]:
        node = self.storage.pager.get(pid)
        if bound is not None:
            for entry in node.entries:
                if not bound.contains_box(entry.box):
                    raise TreeInvariantError(f"entry box {entry.box} escapes parent MBR {bound}")
        if node.is_leaf:
            return len(node.entries), self._sum_aggs(node.entries), 1
        count, total = 0, self.zero
        height = None
        for entry in node.entries:
            c, t, h = self._check_node(entry.child, entry.box)
            if not values_equal(t, entry.agg, tol=1e-6):
                raise TreeInvariantError(f"aggregate mismatch under page {pid}")
            count += c
            total = total + t
            if height is None:
                height = h
            elif height != h:
                raise TreeInvariantError(f"unbalanced children under page {pid}")
        assert height is not None
        return count, total, height + 1

    def _check(self, box: Box) -> None:
        if box.dims != self.dims:
            raise DimensionMismatchError(f"box dims {box.dims} != tree dims {self.dims}")


def _overlap(a: Box, b: Box) -> float:
    """Intersection volume of two boxes (0 when disjoint)."""
    inter = a.intersection(b)
    return inter.volume() if inter is not None else 0.0


def _center_distance_sq(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


def _str_tiles(entries: List[Entry], per_node: int, dims: int) -> Iterator[List[Entry]]:
    """Sort-tile-recursive grouping of entries into node-sized chunks."""
    yield from _str_rec(entries, per_node, dims, 0)


def _str_rec(entries: List[Entry], per_node: int, dims: int, dim: int) -> Iterator[List[Entry]]:
    if dim == dims - 1 or len(entries) <= per_node:
        ordered = sorted(entries, key=lambda e: e.box.center()[dim])
        for start in range(0, len(ordered), per_node):
            yield ordered[start : start + per_node]
        return
    n_nodes = math.ceil(len(entries) / per_node)
    n_slabs = math.ceil(n_nodes ** (1.0 / (dims - dim)))
    slab_size = math.ceil(len(entries) / n_slabs)
    ordered = sorted(entries, key=lambda e: e.box.center()[dim])
    for start in range(0, len(ordered), slab_size):
        yield from _str_rec(ordered[start : start + slab_size], per_node, dims, dim + 1)
