"""aR-tree: the aggregate-augmented R*-tree comparison baseline.

"[21, 25] proposed to add aggregation summaries on the R-tree nodes (the
aggregate R-tree, or aR-Tree) so as to reduce the number of R-tree nodes
visited" (paper Section 1).  Each internal entry carries the aggregate of
its subtree; a box-sum query prunes any subtree whose MBR is fully
contained in the query box, adding the stored aggregate instead of
descending.  The worst case remains proportional to the number of entry
boxes crossing the query boundary, which is why its Figure 9b curve climbs
with the query-box size while the dominance-sum indices stay flat.

Per the paper's experimental setup, queries run through a *path buffer*
("which buffers the most recently accessed path of nodes") layered over
the shared LRU pool.

:class:`FunctionalARTree` extends the idea to the functional problem: leaf
entries keep the polynomial coefficient tuple; internal aggregates store
the scalar *full integral* of each subtree's objects, so fully-contained
subtrees still resolve without descending, and partially-overlapping
leaves integrate the polynomial over the exact intersection.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..core.errors import DimensionMismatchError
from ..core.geometry import Box
from ..core.polynomial import Polynomial
from ..core.values import Value
from ..obs import trace as _trace
from ..storage import PathBuffer, StorageContext
from .rstar import RStarTree


class ARTree(RStarTree):
    """R*-tree with subtree aggregates, containment pruning and a path buffer."""

    aggregated = True

    def __init__(
        self,
        storage: StorageContext,
        dims: int,
        leaf_capacity: Optional[int] = None,
        internal_capacity: Optional[int] = None,
        zero: Value = 0.0,
        use_path_buffer: bool = True,
    ) -> None:
        super().__init__(
            storage,
            dims,
            leaf_capacity=leaf_capacity,
            internal_capacity=internal_capacity,
            zero=zero,
        )
        self._path_buffer = PathBuffer(storage.buffer) if use_path_buffer else None
        self._query_path: List[int] = []
        self._in_query = False

    # -- page access via the path buffer -----------------------------------------

    def _access(self, pid: int, write: bool = False) -> None:
        if self._in_query and self._path_buffer is not None:
            self._path_buffer.access(pid, write=write)
            return
        super()._access(pid, write=write)

    def remove(self, box: Box, value: object) -> bool:
        """Physical removal; drops the remembered path (its pages may be freed)."""
        if self._path_buffer is not None:
            self._path_buffer.forget()
        return super().remove(box, value)

    # -- aggregate query ------------------------------------------------------------

    def box_sum(self, query: Box) -> Value:
        """SUM over objects intersecting the query, with containment pruning."""
        self._check(query)
        tracer = _trace._ACTIVE
        self._in_query = True
        self._query_path = []
        try:
            if tracer is None:
                result = self._agg_sum(self.root_pid, query)
            else:
                with tracer.span("ar.box_sum", dims=self.dims):
                    result = self._agg_sum(self.root_pid, query)
        finally:
            if self._path_buffer is not None:
                self._path_buffer.remember(self._query_path)
            self._in_query = False
        return result

    def _agg_sum(self, pid: int, query: Box) -> Value:
        node = self._fetch(pid)
        tracer = _trace._ACTIVE
        if tracer is not None:
            tracer.event("node", pid=pid, leaf=node.is_leaf)
        self._query_path.append(pid)
        total = self.zero
        if node.is_leaf:
            for entry in node.entries:
                if entry.box.intersects(query):
                    total = total + entry.agg
            return total
        for entry in node.entries:
            if not entry.box.intersects(query):
                continue
            if query.contains_box(entry.box):
                # Whole subtree inside the query: use the stored aggregate.
                total = total + entry.agg
            else:
                total = total + self._agg_sum(entry.child, query)
        return total


class FunctionalARTree(ARTree):
    """aR-tree over objects with polynomial value functions (Figure 9c baseline)."""

    def __init__(
        self,
        storage: StorageContext,
        dims: int,
        function_bytes: int = 64,
        leaf_capacity: Optional[int] = None,
        internal_capacity: Optional[int] = None,
        use_path_buffer: bool = True,
    ) -> None:
        self.function_bytes = function_bytes
        super().__init__(
            storage,
            dims,
            leaf_capacity=leaf_capacity,
            internal_capacity=internal_capacity,
            zero=0.0,
            use_path_buffer=use_path_buffer,
        )

    def _default_leaf_capacity(self, layout) -> int:
        # Leaf entries store the box plus the full coefficient tuple.
        record = 2 * 8 * self.dims + self.function_bytes
        return max(4, layout.page_size // record)

    def _agg_of(self, box: Box, value: Any) -> Value:
        """Aggregate = the object's full integral ``∫ f`` over its own box."""
        if isinstance(value, (int, float)):
            value = Polynomial.constant(self.dims, float(value))
        if not isinstance(value, Polynomial):
            raise DimensionMismatchError(
                f"functional aR-tree values must be polynomials, got {type(value)!r}"
            )
        return value.integrate_over_box(box.low, box.high)

    @staticmethod
    def _negate_value(value: Any) -> Any:
        if isinstance(value, (int, float)):
            return -float(value)
        return -value

    def functional_box_sum(self, query: Box) -> float:
        """``Σ ∫ f over (object ∩ query)`` with containment pruning.

        Fully contained subtrees contribute their precomputed full-integral
        aggregate; boundary leaves integrate each overlapping object's
        polynomial over the exact intersection box.
        """
        self._check(query)
        tracer = _trace._ACTIVE
        self._in_query = True
        self._query_path = []
        try:
            if tracer is None:
                result = self._functional_sum(self.root_pid, query)
            else:
                with tracer.span("ar.functional_box_sum", dims=self.dims):
                    result = self._functional_sum(self.root_pid, query)
        finally:
            if self._path_buffer is not None:
                self._path_buffer.remember(self._query_path)
            self._in_query = False
        return result

    def _functional_sum(self, pid: int, query: Box) -> float:
        node = self._fetch(pid)
        tracer = _trace._ACTIVE
        if tracer is not None:
            tracer.event("node", pid=pid, leaf=node.is_leaf)
        self._query_path.append(pid)
        total = 0.0
        if node.is_leaf:
            for entry in node.entries:
                if query.contains_box(entry.box):
                    total += entry.agg
                    continue
                overlap = entry.box.intersection(query)
                if overlap is None:
                    continue
                function = entry.value
                if isinstance(function, (int, float)):
                    function = Polynomial.constant(self.dims, float(function))
                total += function.integrate_over_box(overlap.low, overlap.high)
            return total
        for entry in node.entries:
            if not entry.box.intersects(query):
                continue
            if query.contains_box(entry.box):
                total += entry.agg
            else:
                total += self._functional_sum(entry.child, query)
        return total

    def bulk_load(self, objects, fill_factor: float = 0.9) -> None:
        """STR bulk loading over ``(box, polynomial)`` pairs."""
        normalized: List[Tuple[Box, Polynomial]] = []
        for box, function in objects:
            if isinstance(function, (int, float)):
                function = Polynomial.constant(self.dims, float(function))
            normalized.append((box, function))
        super().bulk_load(normalized, fill_factor=fill_factor)
