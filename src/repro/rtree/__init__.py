"""R-tree family: R*-tree, aggregate R-tree (aR-tree) and its functional variant."""

from .rstar import RStarTree
from .artree import ARTree, FunctionalARTree

__all__ = ["RStarTree", "ARTree", "FunctionalARTree"]
