"""Query workload generators.

The paper's Figure 9b batches are "1000 randomly generated query boxes
with fixed shape and size", with the query box size (QBS) "described by
the percentage of the query area in the whole space".
"""

from __future__ import annotations

import random
from typing import List

from ..core.errors import InvalidQueryError
from ..core.geometry import Box, Coords


def query_boxes(
    n: int,
    qbs_fraction: float,
    dims: int = 2,
    span: float = 1.0,
    aspect: float = 1.0,
    seed: int = 0,
) -> List[Box]:
    """``n`` fixed-shape query boxes covering ``qbs_fraction`` of the space.

    ``aspect`` stretches dimension 0 relative to the others while keeping
    the volume fraction constant (all 1.0 = hypercubes, the paper's
    setting).  Boxes are placed uniformly, fully inside the space.
    """
    if not 0.0 < qbs_fraction <= 1.0:
        raise InvalidQueryError(f"qbs_fraction must be in (0, 1], got {qbs_fraction}")
    if aspect <= 0.0:
        raise InvalidQueryError(f"aspect must be positive, got {aspect}")
    base = (qbs_fraction / aspect) ** (1.0 / dims) * span
    sides = [min(base * aspect, span)] + [min(base, span)] * (dims - 1)
    rng = random.Random(seed)
    queries: List[Box] = []
    for _ in range(n):
        low = [rng.uniform(0.0, span - s) for s in sides]
        high = [lo + s for lo, s in zip(low, sides)]
        queries.append(Box(low, high))
    return queries


def hot_query_boxes(
    n: int,
    qbs_fraction: float,
    dims: int = 2,
    span: float = 1.0,
    pool_size: int = 16,
    zipf_s: float = 1.1,
    seed: int = 0,
) -> List[Box]:
    """A serving-style stream: ``n`` draws from ``pool_size`` distinct boxes.

    Popularity is Zipf-ranked (rank 1 hottest), modeling the dashboards /
    canned-report traffic a query service actually sees: a small set of
    distinct queries asked over and over.  Such repetition is what the
    :mod:`repro.service` batch planner and result cache exploit — repeated
    boxes share all ``2^d`` corner probes.
    """
    if pool_size < 1:
        raise InvalidQueryError(f"pool_size must be >= 1, got {pool_size}")
    pool = query_boxes(pool_size, qbs_fraction, dims=dims, span=span, seed=seed)
    weights = [1.0 / rank**zipf_s for rank in range(1, pool_size + 1)]
    rng = random.Random(seed + 0x5E41)
    return rng.choices(pool, weights=weights, k=n)


def hotspot_boxes(
    n: int,
    qbs_fraction: float,
    dims: int = 2,
    span: float = 1.0,
    hotspot: float = 0.25,
    seed: int = 0,
) -> List[Box]:
    """``n`` query boxes confined to one random hotspot sub-region.

    The hotspot covers ``hotspot`` of the span in every dimension; query
    sides follow ``qbs_fraction`` of the whole space (clamped to fit the
    hotspot).  This is the spatially skewed traffic where a kd-partitioned
    cluster shines: shards whose regions lie outside the hotspot prune (or
    cover) every probe and drop off the scatter's critical path.
    """
    if not 0.0 < qbs_fraction <= 1.0:
        raise InvalidQueryError(f"qbs_fraction must be in (0, 1], got {qbs_fraction}")
    if not 0.0 < hotspot <= 1.0:
        raise InvalidQueryError(f"hotspot must be in (0, 1], got {hotspot}")
    side = min(qbs_fraction ** (1.0 / dims) * span, hotspot * span)
    rng = random.Random(seed)
    region_low = [rng.uniform(0.0, span - hotspot * span) for _ in range(dims)]
    queries: List[Box] = []
    for _ in range(n):
        low = [origin + rng.uniform(0.0, hotspot * span - side) for origin in region_low]
        queries.append(Box(low, [lo + side for lo in low]))
    return queries


def query_points(n: int, dims: int = 2, span: float = 1.0, seed: int = 0) -> List[Coords]:
    """``n`` uniform dominance-query points in the space."""
    rng = random.Random(seed)
    return [tuple(rng.uniform(0.0, span) for _ in range(dims)) for _ in range(n)]
