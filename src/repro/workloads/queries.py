"""Query workload generators.

The paper's Figure 9b batches are "1000 randomly generated query boxes
with fixed shape and size", with the query box size (QBS) "described by
the percentage of the query area in the whole space".
"""

from __future__ import annotations

import random
from typing import List

from ..core.errors import InvalidQueryError
from ..core.geometry import Box, Coords


def query_boxes(
    n: int,
    qbs_fraction: float,
    dims: int = 2,
    span: float = 1.0,
    aspect: float = 1.0,
    seed: int = 0,
) -> List[Box]:
    """``n`` fixed-shape query boxes covering ``qbs_fraction`` of the space.

    ``aspect`` stretches dimension 0 relative to the others while keeping
    the volume fraction constant (all 1.0 = hypercubes, the paper's
    setting).  Boxes are placed uniformly, fully inside the space.
    """
    if not 0.0 < qbs_fraction <= 1.0:
        raise InvalidQueryError(f"qbs_fraction must be in (0, 1], got {qbs_fraction}")
    if aspect <= 0.0:
        raise InvalidQueryError(f"aspect must be positive, got {aspect}")
    base = (qbs_fraction / aspect) ** (1.0 / dims) * span
    sides = [min(base * aspect, span)] + [min(base, span)] * (dims - 1)
    rng = random.Random(seed)
    queries: List[Box] = []
    for _ in range(n):
        low = [rng.uniform(0.0, span - s) for s in sides]
        high = [lo + s for lo, s in zip(low, sides)]
        queries.append(Box(low, high))
    return queries


def query_points(
    n: int, dims: int = 2, span: float = 1.0, seed: int = 0
) -> List[Coords]:
    """``n`` uniform dominance-query points in the space."""
    rng = random.Random(seed)
    return [tuple(rng.uniform(0.0, span) for _ in range(dims)) for _ in range(n)]
